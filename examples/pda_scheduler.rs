//! A different information appliance through the same model: the paper's
//! PDA user "trying to quickly schedule an appointment" who "will not have
//! the patience to spend five minutes using on-line help".
//!
//! Shows the resource-layer executor claim (single-threaded vs abortable)
//! and the abstract-layer burden for a PDA scheduling app.
//!
//! ```text
//! cargo run --example pda_scheduler
//! ```

use aroma_appliance::executor::{run, Policy, Workload};
use aroma_appliance::power::{battery_life, DutyCycle, PowerProfile};
use aroma_sim::{SimDuration, SimRng, SimTime};
use lpc_core::user_sim::{simulate_session, PlannerKind, SessionParams};
use lpc_core::{StateMachine, UserProfile};

fn main() {
    // --- Resource layer: the sync that cannot be aborted. -----------------
    let workload = Workload::background_plus_taps(
        SimDuration::from_secs(45),            // a HotSync-era sync
        SimDuration::from_secs(5),             // user taps every 5 s
        5,
        SimDuration::from_millis(80),          // each tap is cheap
        SimTime::ZERO + SimDuration::from_secs(3), // user mashes "cancel"
    );
    let patience = SimDuration::from_secs(2);
    println!("a 45 s sync is running; the user taps and tries to cancel:\n");
    for (name, policy) in [
        ("single-threaded (as shipped)", Policy::SingleThreaded),
        (
            "cooperative, 50 ms quantum",
            Policy::Cooperative {
                quantum: SimDuration::from_millis(50),
            },
        ),
    ] {
        let (r, frustrations) = run(policy, &workload, patience);
        println!("  {name}:");
        println!(
            "    mean tap response {:.2} s, worst {:.2} s, {} frustration event(s)",
            r.interactive_latency.mean(),
            r.interactive_latency.max().unwrap_or(0.0),
            frustrations
        );
    }

    // --- Abstract layer: scheduling an appointment. -----------------------
    let scheduler = StateMachine::new()
        .with("home", "open-datebook", "day-view")
        .with("day-view", "tap-slot", "edit")
        .with("edit", "enter-text", "edit-filled")
        .with("edit-filled", "tap-ok", "saved")
        .with("edit", "tap-ok", "day-view") // empty entry: silently discarded!
        .with("day-view", "open-menu", "menu")
        .with("menu", "close-menu", "day-view");
    let belief = StateMachine::new()
        .with("home", "open-datebook", "day-view")
        .with("day-view", "tap-slot", "edit")
        .with("edit", "tap-ok", "saved"); // believes OK saves even when empty
    let user = UserProfile::casual();
    let mut rng = SimRng::new(9);
    let session = simulate_session(
        &user.faculties,
        &belief,
        &scheduler,
        "home",
        "saved",
        PlannerKind::Bfs,
        &SessionParams::default(),
        &mut rng,
    );
    println!("\nscheduling an appointment ({}):", user.name);
    println!(
        "    reached goal: {}, steps {}, surprises {}, burden {:.2}, gave up: {}",
        session.reached_goal, session.steps, session.surprises, session.burden(), session.gave_up
    );

    // --- And the battery, because appliances die. --------------------------
    let duty = DutyCycle {
        cpu_active: 0.08,
        radio_tx: 0.0,
        radio_rx: 0.0,
        display_on: 0.3,
    };
    let life = battery_life(2500.0, &PowerProfile::future_soc(), &duty);
    println!(
        "\na future-SOC PDA at this duty cycle runs ~{:.1} days on 2.5 Wh",
        life.as_secs_f64() / 86_400.0
    );
}
