//! Mobile code in action — the Aroma research area "mobile code and data".
//!
//! A client discovers the projector's control service, downloads its proxy
//! (a real `aroma-mcode` program travelling in the registration bytes), and
//! runs it locally to learn how *this* projector wants brightness values —
//! no device-specific logic compiled into the client.
//!
//! ```text
//! cargo run --example mobile_proxy
//! ```

use aroma_discovery::apps::{ClientApp, RegistrarApp};
use aroma_discovery::codec::Template;
use aroma_discovery::proxy::{vet_proxy, VettedProxy};
use aroma_env::radio::RadioEnvironment;
use aroma_env::space::Point;
use aroma_mcode::{NullHost, Op, Program, VerifyConfig, Vm};
use aroma_net::{MacConfig, Network, NodeConfig};
use aroma_sim::SimDuration;
use smart_projector::session::SessionPolicy;
use smart_projector::SmartProjectorApp;

fn main() {
    let mut net = Network::new(RadioEnvironment::default(), MacConfig::default(), 7);
    let _registrar = net.add_node(
        NodeConfig::at(Point::new(0.0, 0.0)),
        Box::new(RegistrarApp::new(SimDuration::from_secs(30))),
    );
    let _projector = net.add_node(
        NodeConfig::at(Point::new(4.0, 0.0)),
        Box::new(SmartProjectorApp::new(
            320,
            240,
            SessionPolicy::ManualRelease,
            "A-101",
        )),
    );
    let client = net.add_node(
        NodeConfig::at(Point::new(0.0, 4.0)),
        Box::new(ClientApp::new(Template::of_kind("projector/control"))),
    );

    println!("discovering the control service…");
    net.run_for(SimDuration::from_secs(3));

    let c = net.app_as::<ClientApp>(client).unwrap();
    let item = c.found.first().expect("control service not found");
    println!(
        "found '{}' in room {} — proxy blob: {} bytes of mobile code\n",
        item.kind,
        item.attr("room").unwrap_or("?"),
        item.proxy.len()
    );

    // Untrusted bytes go through the static verifier before they may run:
    // the certificate proves stack discipline, initialization, halting
    // shape, and (here) that the code makes no host calls at all.
    let verified = match vet_proxy(&item.proxy, &VerifyConfig::default()) {
        Ok(VettedProxy::Mcode(vp)) => vp,
        Ok(VettedProxy::Inert(_)) => panic!("control proxy should be mobile code"),
        Err(e) => panic!("proxy failed static verification: {e:?}"),
    };
    println!(
        "statically verified: {} instructions, max stack depth {}, \
         {} syscalls, static fuel bound {:?}",
        verified.program().len(),
        verified.max_stack_depth(),
        verified.syscalls().len(),
        verified.fuel_bound(),
    );
    println!("running it locally on the check-free fast path:\n");
    println!("requested %  ->  device-supported %");
    for requested in [0i64, 3, 47, 52, 83, 99, 100, 250] {
        let supported = Vm
            .run_verified_default(&verified, &[requested], &mut NullHost)
            .expect("proxy execution");
        println!("       {requested:>3}  ->  {supported:>3}");
    }
    println!("\nthe lamp ladder (min 10, steps of 5) lives with the device and");
    println!("travelled to the client as code — no firmware table compiled in.");

    // A hostile registration doesn't get that far: this blob decodes and
    // validates (jumps in range), but pops an empty stack — the verifier
    // rejects it before the VM ever sees it.
    let hostile = Program::new(vec![Op::Add, Op::Halt]).unwrap().encode();
    match vet_proxy(&hostile, &VerifyConfig::default()) {
        Err(e) => println!("\nhostile proxy rejected statically: {e:?}"),
        Ok(_) => panic!("hostile proxy should not verify"),
    }
}
