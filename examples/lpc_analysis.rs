//! Reproduce the paper's "Analysis of a Pervasive Computing System"
//! section: the Smart Projector walked through all five layers — as the
//! research prototype in its lab, then in the field, then as the
//! commercial-grade redesign.
//!
//! ```text
//! cargo run --example lpc_analysis
//! ```

use aroma_env::EnvironmentKind;
use lpc_core::{Layer, UserProfile};
use smart_projector::{smart_projector_system, ProjectorVariant};

fn show(label: &str, variant: ProjectorVariant, env: EnvironmentKind, users: Vec<UserProfile>) {
    let sys = smart_projector_system(variant, env, users, true);
    let report = sys.analyze(7);
    println!("--- {label} ---\n");
    println!("{}", report.render());
    print!("per layer:");
    for layer in Layer::ALL {
        print!("  {}={}", layer.name(), report.in_layer(layer).count());
    }
    println!("\n");
}

fn main() {
    show(
        "research prototype, NIST lab, researcher at the keyboard",
        ProjectorVariant::Prototype,
        EnvironmentKind::QuietOffice,
        vec![UserProfile::researcher()],
    );
    show(
        "research prototype, conference hall, casual presenter",
        ProjectorVariant::Prototype,
        EnvironmentKind::ConferenceHall,
        vec![UserProfile::casual()],
    );
    show(
        "commercial redesign, conference hall, casual presenter",
        ProjectorVariant::Commercial,
        EnvironmentKind::ConferenceHall,
        vec![UserProfile::casual()],
    );
    println!(
        "The prototype satisfies its intended users and falls apart in the field;\n\
         the redesign clears the upper layers while the physical-layer bandwidth\n\
         limit (rapid animation over 2.4 GHz) remains — the paper's conclusion."
    );
}
