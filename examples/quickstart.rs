//! Quickstart: build a small pervasive system, run the LPC analysis, and
//! print the layer-classified report — the paper's core workflow in ~60
//! lines.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use aroma_appliance::{DeviceClass, DeviceProfile};
use aroma_env::space::Point;
use aroma_env::EnvironmentKind;
use lpc_core::analysis::{AppSpec, Binding, DeviceEntity, PervasiveSystem};
use lpc_core::intent::DesignPurpose;
use lpc_core::model;
use lpc_core::resources::DeviceResources;
use lpc_core::{StateMachine, UserGoals, UserProfile};

fn main() {
    // 1. The model itself (Figure 1).
    println!("The Layered Pervasive Computing model:\n");
    println!("{}", model::render_stack());

    // 2. Compose a tiny system: one casual user, one smart thermostat.
    let app = AppSpec {
        name: "smart thermostat".into(),
        machine: StateMachine::new()
            .with("idle", "tap-display", "menu")
            .with("menu", "select-schedule", "schedule")
            .with("schedule", "set-temp", "done")
            .with("menu", "select-wifi", "wifi-setup") // the trap
            .with("wifi-setup", "back", "menu"),
        start: "idle".into(),
        goal: "done".into(),
        uses_voice: false,
        proximity_constraint_m: Some(0.5),
        needs_bandwidth_bps: None,
        external_dependencies: vec!["the home Wi-Fi being configured".into()],
        purpose: DesignPurpose::commercial_product(),
    };
    let thermostat = DeviceEntity {
        name: "thermostat".into(),
        profile: DeviceProfile::of(DeviceClass::FutureSoc),
        resources: Some(DeviceResources::commercial_grade()),
        application: Some(app),
        link_bandwidth_bps: Some(1e6),
        position: Point::new(0.0, 0.0),
    };
    let user = UserProfile::casual();

    // 3. The user believes one tap sets the temperature.
    let belief = StateMachine::new().with("idle", "tap-display", "done");

    let system = PervasiveSystem {
        name: "home thermostat".into(),
        environment: aroma_env::EnvironmentProfile::preset(EnvironmentKind::QuietOffice).build(),
        users: vec![user],
        devices: vec![thermostat],
        bindings: vec![Binding {
            user: 0,
            device: 0,
            goals: UserGoals::casual(),
            belief,
        }],
    };

    // 4. Analyse: every issue lands in its proper layer.
    let report = system.analyze(42);
    println!("Analysis of '{}':\n", system.name);
    println!("{}", report.render());
    for (layer, count) in report.layer_counts() {
        println!("  {layer:<12} {count} issue(s)");
    }
}
