//! Exhaustive model checking of the session and lease protocols.
//!
//! Runs `aroma-check`'s two production models — the Smart Projector's
//! session protocol (real `SessionManager`s under an adversary) and the
//! lookup service's lease protocol (real `ServiceRegistry` behind a lossy,
//! duplicating, reordering channel) — to exhaustion within bounds, then
//! demonstrates the checker's counterexample traces on two seeded faults:
//! the policy-free projector (hijack in two actions) and the forgetful
//! presenter under manual release (the paper's lockout, as a liveness
//! violation).
//!
//! ```text
//! cargo run --release --example model_check            # full sweep
//! cargo run --release --example model_check -- --smoke # CI gate (50k states)
//! cargo run --release --example model_check -- --max-states 200000
//! ```

use aroma_check::{check, CheckerConfig, LeaseConfig, LeaseModel, Model, SessionConfig, SessionModel};
use aroma_sim::SimDuration;
use smart_projector::session::SessionPolicy;
use std::time::Instant;

fn parse_config() -> CheckerConfig {
    let mut cfg = CheckerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => cfg = CheckerConfig::smoke(),
            "--max-states" => {
                let n = args
                    .next()
                    .and_then(|v| v.replace('_', "").parse().ok())
                    .expect("--max-states takes a number");
                cfg = cfg.with_max_states(n);
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: model_check [--smoke] [--max-states N]");
                std::process::exit(2);
            }
        }
    }
    cfg
}

/// Run a model expected to satisfy every property; returns distinct states.
fn verify<M: Model>(name: &str, model: &M, cfg: &CheckerConfig, failures: &mut u32) -> usize {
    let start = Instant::now();
    let report = check(model, cfg);
    let secs = start.elapsed().as_secs_f64();
    let rate = (report.transitions as f64 / secs.max(1e-9)) as u64;
    println!("== {name}");
    println!("   {} ({rate} transitions/s)", report.summary());
    if report.passed() {
        println!("   PASS: all properties hold over every explored interleaving");
    } else {
        *failures += 1;
        println!("   FAIL:");
        for v in &report.violations {
            println!("{}", v.pretty(model));
        }
    }
    println!();
    report.distinct_states
}

/// Run a model expected to violate `property`; print its counterexample.
fn demonstrate<M: Model>(
    name: &str,
    model: &M,
    cfg: &CheckerConfig,
    property: &str,
    max_len: usize,
    failures: &mut u32,
) {
    let report = check(model, cfg);
    println!("== {name} (seeded fault — expecting a counterexample)");
    match report.violations.iter().find(|v| v.property == property) {
        Some(v) if v.trace.len() <= max_len => {
            println!("   found, {} actions:", v.trace.len());
            println!("{}", v.pretty(model));
        }
        Some(v) => {
            *failures += 1;
            println!(
                "   FAIL: counterexample has {} actions, expected <= {max_len}",
                v.trace.len()
            );
        }
        None => {
            *failures += 1;
            println!("   FAIL: expected a violation of '{property}', none found");
            println!("   {}", report.summary());
        }
    }
    println!();
}

fn main() {
    let cfg = parse_config();
    let mut failures = 0u32;
    println!(
        "aroma-check: exhaustive exploration (max {} states, max depth {})\n",
        cfg.max_states, cfg.max_depth
    );

    // -- Headline verification runs: the shipped policies, proven. --------

    // ManualRelease is time-free, so its symmetry-reduced space is small;
    // four users keep the run above the 10k-distinct-state coverage floor.
    let manual = SessionModel::new(SessionConfig {
        users: 4,
        stale_cap: 3,
        ..SessionConfig::default()
    });
    let s1 = verify(
        "session protocol / ManualRelease / 4 users x 2 services + adversary",
        &manual,
        &cfg,
        &mut failures,
    );

    let auto = SessionModel::new(SessionConfig {
        policy: SessionPolicy::AutoExpire {
            idle: SimDuration::from_secs(2),
        },
        allow_depart: true,
        ..SessionConfig::default()
    });
    let s2 = verify(
        "session protocol / AutoExpire + forgetful users (the paper's fix)",
        &auto,
        &cfg,
        &mut failures,
    );

    let lease = LeaseModel::new(LeaseConfig::default());
    let s3 = verify(
        "lease protocol / 2 providers, lossy+dup+reordering channel",
        &lease,
        &cfg,
        &mut failures,
    );

    // -- Seeded faults: the checker must find and print the traces. -------

    demonstrate(
        "session protocol / SessionPolicy::None",
        &SessionModel::new(SessionConfig {
            policy: SessionPolicy::None,
            users: 2,
            services: 1,
            ..SessionConfig::default()
        }),
        &cfg,
        "no-hijack",
        12,
        &mut failures,
    );

    demonstrate(
        "session protocol / ManualRelease + forgetful presenter",
        &SessionModel::new(SessionConfig {
            allow_depart: true,
            users: 2,
            services: 1,
            ..SessionConfig::default()
        }),
        &cfg,
        "service-recoverable",
        12,
        &mut failures,
    );

    // -- Coverage floor (full mode only; smoke trades depth for speed). ---

    if cfg.max_states > 100_000 {
        for (name, states) in [("ManualRelease", s1), ("AutoExpire", s2), ("lease", s3)] {
            if states < 10_000 {
                failures += 1;
                println!("FAIL: {name} model explored only {states} distinct states (< 10k)");
            }
        }
    }

    if failures > 0 {
        println!("model_check: {failures} check(s) FAILED");
        std::process::exit(1);
    }
    println!("model_check: all protocol properties verified");
}
