//! Exhaustive model checking of the session, lease, and replication
//! protocols.
//!
//! Runs `aroma-check`'s production models — the Smart Projector's
//! session protocol (real `SessionManager`s under an adversary), the
//! lookup service's lease protocol (real `ServiceRegistry` behind a lossy,
//! duplicating, reordering channel), and the replicated registrar (real
//! `ReplicaNode`s under client churn, message loss, crash/restore, and
//! elections — DESIGN.md §15) — to exhaustion within bounds, then
//! demonstrates the checker's counterexample traces on three seeded
//! faults: the policy-free projector (hijack in two actions), the
//! forgetful presenter under manual release (the paper's lockout, as a
//! liveness violation), and a replica answering lookups before the
//! commit-carrying append lands (why only the serving primary answers).
//!
//! The full sweep covers ~4.5M distinct states across the three fixpoint
//! runs plus a 600k-state bounded prefix of the replication space (a few
//! minutes single-threaded; successor generation parallelises across
//! cores by default — see DESIGN.md §12).
//!
//! ```text
//! cargo run --release --example model_check            # full sweep (~4.5M states)
//! cargo run --release --example model_check -- --smoke # CI gate (50k states)
//! cargo run --release --example model_check -- --max-states 200000 --workers 4
//! ```

use aroma_check::{
    check, AnyNodeServes, CheckerConfig, LeaseConfig, LeaseModel, Model, ReplConfig, ReplModel,
    SessionConfig, SessionModel,
};
use aroma_sim::SimDuration;
use smart_projector::session::SessionPolicy;
use std::time::Instant;

/// Full-sweep state budget: headroom over the ~4.5M states the three
/// fixpoint models actually reach, so `complete` means a true fixpoint.
const FULL_SWEEP_STATES: usize = 8_000_000;

fn parse_config() -> CheckerConfig {
    let mut cfg = CheckerConfig::default().with_max_states(FULL_SWEEP_STATES);
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => cfg = CheckerConfig::smoke().with_workers(cfg.workers),
            "--max-states" => {
                let n = args
                    .next()
                    .and_then(|v| v.replace('_', "").parse().ok())
                    .expect("--max-states takes a number");
                cfg = cfg.with_max_states(n);
            }
            "--workers" => {
                let n = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--workers takes a thread count");
                cfg = cfg.with_workers(n);
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: model_check [--smoke] [--max-states N] [--workers N]");
                std::process::exit(2);
            }
        }
    }
    cfg
}

/// Run a model expected to satisfy every property; returns distinct states.
fn verify<M>(name: &str, model: &M, cfg: &CheckerConfig, failures: &mut u32) -> usize
where
    M: Model + Sync,
    M::State: Send + Sync,
    M::Action: Send + Sync,
    M::Key: Send,
{
    let start = Instant::now();
    let report = check(model, cfg);
    let secs = start.elapsed().as_secs_f64();
    let rate = (report.transitions as f64 / secs.max(1e-9)) as u64;
    println!("== {name}");
    println!("   {} ({rate} transitions/s)", report.summary());
    if report.passed() {
        println!("   PASS: all properties hold over every explored interleaving");
    } else {
        *failures += 1;
        println!("   FAIL:");
        for v in &report.violations {
            println!("{}", v.pretty(model));
        }
    }
    println!();
    report.distinct_states
}

/// Run a model expected to violate `property`; print its counterexample.
fn demonstrate<M>(
    name: &str,
    model: &M,
    cfg: &CheckerConfig,
    property: &str,
    max_len: usize,
    failures: &mut u32,
) where
    M: Model + Sync,
    M::State: Send + Sync,
    M::Action: Send + Sync,
    M::Key: Send,
{
    let report = check(model, cfg);
    println!("== {name} (seeded fault — expecting a counterexample)");
    match report.violations.iter().find(|v| v.property == property) {
        Some(v) if v.trace.len() <= max_len => {
            println!("   found, {} actions:", v.trace.len());
            println!("{}", v.pretty(model));
        }
        Some(v) => {
            *failures += 1;
            println!(
                "   FAIL: counterexample has {} actions, expected <= {max_len}",
                v.trace.len()
            );
        }
        None => {
            *failures += 1;
            println!("   FAIL: expected a violation of '{property}', none found");
            println!("   {}", report.summary());
        }
    }
    println!();
}

fn main() {
    let cfg = parse_config();
    let mut failures = 0u32;
    println!(
        "aroma-check: exhaustive exploration (max {} states, max depth {}, {} worker(s))\n",
        cfg.max_states, cfg.max_depth, cfg.workers
    );

    // -- Headline verification runs: the shipped policies, proven. --------

    // ManualRelease is time-free, so its symmetry-reduced space is the
    // smallest of the three; five users push it past 400k states.
    let manual = SessionModel::new(SessionConfig {
        users: 5,
        stale_cap: 3,
        ..SessionConfig::default()
    });
    let s1 = verify(
        "session protocol / ManualRelease / 5 users x 2 services + adversary",
        &manual,
        &cfg,
        &mut failures,
    );

    // The headline sweep: timers, departures, and the adversary at four
    // users give a ~2.2M-state space, exhausted to a complete fixpoint.
    let auto = SessionModel::new(SessionConfig {
        policy: SessionPolicy::AutoExpire {
            idle: SimDuration::from_secs(2),
        },
        allow_depart: true,
        users: 4,
        ..SessionConfig::default()
    });
    let s2 = verify(
        "session protocol / AutoExpire + forgetful users / 4 users (the paper's fix)",
        &auto,
        &cfg,
        &mut failures,
    );

    // Three providers through a deeper lossy channel: ~2M states.
    let lease = LeaseModel::new(LeaseConfig {
        providers: 3,
        requested_quanta: vec![2, 4, 3],
        channel_cap: 4,
        ..LeaseConfig::default()
    });
    let s3 = verify(
        "lease protocol / 3 providers, lossy+dup+reordering channel (cap 4)",
        &lease,
        &cfg,
        &mut failures,
    );

    // The replicated registrar (DESIGN.md §15). Its interleaving space
    // (channel contents x durable blobs x clocks) outgrows the fixpoint
    // models, so the full mode sweeps a bounded 600k-state BFS prefix —
    // every interleaving within it checked for at-most-one-active-primary,
    // no-committed-lease-lost, and no-stale-lookup (ghost-log refinement).
    let repl_cfg = if cfg.max_states > 600_000 {
        cfg.with_max_states(600_000)
    } else {
        cfg
    };
    let repl = ReplModel::new(ReplConfig::default());
    let s4 = verify(
        "replication protocol / 3 registrars, crash+restore, lossy channel, elections",
        &repl,
        &repl_cfg,
        &mut failures,
    );

    // -- Seeded faults: the checker must find and print the traces. -------

    demonstrate(
        "session protocol / SessionPolicy::None",
        &SessionModel::new(SessionConfig {
            policy: SessionPolicy::None,
            users: 2,
            services: 1,
            ..SessionConfig::default()
        }),
        &cfg,
        "no-hijack",
        12,
        &mut failures,
    );

    demonstrate(
        "session protocol / ManualRelease + forgetful presenter",
        &SessionModel::new(SessionConfig {
            allow_depart: true,
            users: 2,
            services: 1,
            ..SessionConfig::default()
        }),
        &cfg,
        "service-recoverable",
        12,
        &mut failures,
    );

    // Why only the serving primary answers lookups: force the all-nodes
    // variant of the freshness property and watch a lagging replica serve
    // a table missing a commit that already happened.
    demonstrate(
        "replication / replica answers before the commit lands",
        &AnyNodeServes::demo(),
        &cfg,
        "every-node-lookup-fresh",
        12,
        &mut failures,
    );

    // -- Coverage floor (full mode only; smoke trades depth for speed). ---

    if cfg.max_states >= FULL_SWEEP_STATES {
        // The full sweep must actually reach the fixpoints measured when
        // these configs were chosen; shrinkage means a model regressed.
        for (name, states, floor) in [
            ("ManualRelease", s1, 300_000),
            ("AutoExpire", s2, 2_000_000),
            ("lease", s3, 1_500_000),
            // Bounded sweep: the floor is the bound itself — shrinkage
            // means the model stopped generating successors early.
            ("replication", s4, 590_000),
        ] {
            if states < floor {
                failures += 1;
                println!("FAIL: {name} model explored only {states} distinct states (< {floor})");
            }
        }
    } else if cfg.max_states > 100_000 {
        for (name, states) in [
            ("ManualRelease", s1),
            ("AutoExpire", s2),
            ("lease", s3),
            ("replication", s4),
        ] {
            if states < 10_000 {
                failures += 1;
                println!("FAIL: {name} model explored only {states} distinct states (< 10k)");
            }
        }
    }

    if failures > 0 {
        println!("model_check: {failures} check(s) FAILED");
        std::process::exit(1);
    }
    println!("model_check: all protocol properties verified");
}
