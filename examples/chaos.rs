//! Chaos walkthrough: the full Smart Projector scenario while a scripted
//! fault storm kills the lookup service, power-cycles the Aroma Adapter
//! mid-presentation, and jams the channel — and every client self-heals.
//!
//! The paper's analysis section is about hidden lower-layer dependencies;
//! this example makes them fail on purpose and prints how long each layer
//! took to recover (see DESIGN.md §11 and `repro --experiment e9`).
//!
//! ```text
//! cargo run --release --example chaos [seed]
//! ```

use lpc_bench::experiments::chaos::{chaos_run, Recovery};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xE9);
    println!("running the fault storm at seed {seed:#x}...\n");
    let run = chaos_run(seed);

    println!("injected faults, in storm order:");
    for e in run
        .snapshot
        .trace
        .iter()
        .filter(|e| e.name.starts_with("fault."))
    {
        println!("  t={:>5.1}s  {}", e.t_nanos as f64 / 1e9, e.name);
    }

    println!("\nper-layer recovery:");
    for r in &run.recoveries {
        match (r.ttr_s(), r.met()) {
            (Some(ttr), true) => println!(
                "  [{:^8}] {}: recovered in {ttr:.2} s (deadline {} s)",
                r.layer, r.fault, r.deadline_s
            ),
            (Some(ttr), false) => println!(
                "  [{:^8}] {}: recovered in {ttr:.2} s — MISSED the {} s deadline",
                r.layer, r.fault, r.deadline_s
            ),
            (None, _) => println!("  [{:^8}] {}: never recovered", r.layer, r.fault),
        }
    }

    println!("\nself-healing end-state:");
    println!("  presenter re-acquisitions .... {}", run.reacquisitions);
    println!("  adapter token incarnation .... {}", run.incarnation);
    println!("  client registrar failovers ... {}", run.client_rediscoveries);
    println!("  vnc coarse degradations ...... {}", run.degradations);
    println!("  vnc quality recoveries ....... {}", run.quality_recoveries);
    println!("  commands landed .............. {}", run.commands_ok);
    println!("  session hijacks .............. {}", run.hijacks);
    let verdict = if run.recoveries.iter().all(Recovery::met) && run.hijacks == 0 {
        "every layer recovered inside its deadline; no crash enabled a hijack"
    } else {
        "A LAYER FAILED TO RECOVER — inspect the trace above"
    };
    println!("\n=> {verdict}");
}
