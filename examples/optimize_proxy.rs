//! Translation-validated optimization of a downloaded proxy, end to end.
//!
//! A provider ships the projector's brightness mapper padded with the
//! scaffolding real registrations accumulate (constant pre-computation,
//! dead debug stores). The client vets the bytes, runs the aroma-flow
//! optimizer, and — because optimized mobile code is only as trustworthy
//! as its validation — re-checks the result two ways before believing it:
//! the fresh verification certificate (done inside `optimize_verified`)
//! and a seed-driven differential sweep comparing the optimized program
//! against the original on the checked interpreter, input by input.
//!
//! ```text
//! cargo run --example optimize_proxy -- [seed]
//! ```
//!
//! Exits non-zero if any input diverges — `scripts/check.sh` runs this
//! for three seeds as the optimizer-validation smoke gate.

use aroma_mcode::asm::{assemble, disassemble};
use aroma_mcode::opt::optimize_verified;
use aroma_mcode::{NullHost, Program, VerifyConfig, Vm};

/// The padded registration: what `smart_projector::proxy::brightness_proxy`
/// computes, wrapped in removable debris.
fn padded_brightness_proxy() -> Program {
    assemble(
        "push 3
         push 39
         add
         store 2      ; dead: never read
         push 7
         store 3      ; dead: never read
         arg 0
         push 2
         add
         push 5
         div
         push 5
         mul
         push 10
         max
         push 100
         min
         halt",
    )
    .expect("padded proxy source is well-formed")
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("seed must be an unsigned integer"))
        .unwrap_or(1);

    let original = padded_brightness_proxy();
    let config = VerifyConfig::default();
    let vp = original.verify(&config).expect("shipped proxy verifies");

    println!("original proxy ({} instructions):", original.len());
    print!("{}", indent(&disassemble(&original)));

    let validated = optimize_verified(&vp, &config);
    let optimized = validated.program.program();
    println!(
        "\noptimized proxy ({} instructions, improved: {}):",
        optimized.len(),
        validated.improved
    );
    print!("{}", indent(&disassemble(optimized)));
    println!(
        "\nstats: {} rounds, {} folds, {} branches pruned, {} dead stores, \
         {} unreachable removed, {} jumps threaded",
        validated.stats.rounds,
        validated.stats.folded,
        validated.stats.branches_pruned,
        validated.stats.dead_stores,
        validated.stats.unreachable_removed,
        validated.stats.jumps_threaded
    );

    // The differential sweep: the optimized program must agree with the
    // original on every probed input — boundary values plus seed-driven
    // random ones — under the *checked* interpreter, so even the verified
    // fast path's assumptions are not part of the trusted base here.
    let mut inputs: Vec<i64> = vec![0, 1, -1, 10, 100, 250, i64::MAX, i64::MIN];
    let mut state = seed;
    for _ in 0..56 {
        inputs.push(splitmix(&mut state) as i64);
    }
    let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
    for &x in &inputs {
        let a = Vm.run_default(&original, &[x], &mut NullHost);
        let b = Vm.run_default(optimized, &[x], &mut NullHost);
        if a != b {
            eprintln!("DIVERGENCE at input {x}: original {a:?}, optimized {b:?}");
            std::process::exit(1);
        }
        let v = match a {
            Ok(v) => v as u64,
            Err(_) => 0xE,
        };
        digest = (digest ^ v).wrapping_mul(0x0000_0100_0000_01B3);
    }
    println!("\ntrace digest: {digest:#018x}");
    println!(
        "optimizer validation: OK ({} inputs, seed {seed})",
        inputs.len()
    );
}

fn indent(s: &str) -> String {
    s.lines().map(|l| format!("  {l}\n")).collect()
}
