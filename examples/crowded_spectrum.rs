//! The paper's environment-layer worry, live: "there are many wireless
//! devices operating in the 2.4 GHz radio band, and the effect of a high
//! concentration of these devices needs to be studied."
//!
//! Sweeps co-channel device density and prints the goodput collapse, then
//! shows how much a 1/6/11 channel plan recovers.
//!
//! ```text
//! cargo run --release --example crowded_spectrum
//! ```

use aroma_net::RateAdaptation;
use aroma_sim::report::{fmt_f, Table};
use lpc_bench::scenarios::{run_density, secs, ChannelPlan};

fn main() {
    println!("saturated sender→receiver pairs sharing the 2.4 GHz band\n");
    let densities = [1usize, 2, 4, 8, 12, 16];
    let mut t = Table::new(&[
        "pairs",
        "co-ch aggregate Mbit/s",
        "co-ch per-pair Mbit/s",
        "1/6/11 per-pair Mbit/s",
        "timeouts/s (co-ch)",
    ]);
    let results = aroma_sim::sweep::run(&densities, |i, &pairs| {
        let co = run_density(
            pairs,
            ChannelPlan::AllCochannel,
            RateAdaptation::SnrBased,
            1000,
            secs(3),
            7 + i as u64,
        );
        let spread = run_density(
            pairs,
            ChannelPlan::OrthogonalSpread,
            RateAdaptation::SnrBased,
            1000,
            secs(3),
            7 + i as u64,
        );
        (co, spread)
    });
    for (pairs, (co, spread)) in densities.iter().zip(&results) {
        t.row(&[
            pairs.to_string(),
            fmt_f(co.aggregate_bps / 1e6, 2),
            fmt_f(co.per_pair_bps / 1e6, 3),
            fmt_f(spread.per_pair_bps / 1e6, 3),
            fmt_f(co.timeouts_per_s, 0),
        ]);
    }
    println!("{}", t.render());
    let (first, _) = &results[0];
    let (last, last_spread) = results.last().unwrap();
    println!(
        "per-pair goodput collapsed {:.0}x from 1 to {} co-channel pairs;",
        first.per_pair_bps / last.per_pair_bps.max(1.0),
        densities.last().unwrap()
    );
    println!(
        "spreading across channels 1/6/11 recovers {:.1}x at the highest density.",
        last_spread.per_pair_bps / last.per_pair_bps.max(1.0)
    );
}
