//! A building-scale pervasive system: two rooms on different radio
//! channels, each with a lookup service, joined by the building's wired
//! network — the Aroma research area "connecting portable wireless devices
//! to traditional networks".
//!
//! A presenter's laptop in room B browses the building and finds the
//! projector installed in room A, then (being in room B) uses room B's own
//! projector — discovery reaches beyond the radio horizon, use stays local.
//!
//! ```text
//! cargo run --release --example federated_building
//! ```

use aroma_discovery::apps::{ClientApp, RegistrarApp};
use aroma_discovery::codec::Template;
use aroma_env::radio::{Channel, RadioEnvironment};
use aroma_env::space::Point;
use aroma_net::{MacConfig, Network, NodeConfig, NodeId};
use aroma_sim::SimDuration;
use smart_projector::session::SessionPolicy;
use smart_projector::SmartProjectorApp;

fn main() {
    let mut net = Network::new(RadioEnvironment::default(), MacConfig::default(), 31);

    // The registrars are nodes 0 and 1; they federate over the cable.
    let reg_a = net.add_node(
        NodeConfig::at_on(Point::new(0.0, 0.0), Channel::CH1),
        Box::new(RegistrarApp::new(SimDuration::from_secs(10)).federated_with(NodeId(1))),
    );
    let reg_b = net.add_node(
        NodeConfig::at_on(Point::new(50.0, 0.0), Channel::CH11),
        Box::new(RegistrarApp::new(SimDuration::from_secs(10)).federated_with(NodeId(0))),
    );
    net.add_wired_link(reg_a, reg_b, SimDuration::from_millis(1), 10_000_000);

    // Room A: a Smart Projector on channel 1.
    let _projector_a = net.add_node(
        NodeConfig::at_on(Point::new(3.0, 0.0), Channel::CH1),
        Box::new(SmartProjectorApp::new(
            320,
            240,
            SessionPolicy::ManualRelease,
            "A-101",
        )),
    );
    // Room B: another Smart Projector on channel 11.
    let _projector_b = net.add_node(
        NodeConfig::at_on(Point::new(53.0, 0.0), Channel::CH11),
        Box::new(SmartProjectorApp::new(
            320,
            240,
            SessionPolicy::ManualRelease,
            "B-202",
        )),
    );
    // A client in room B browsing every projector in the building.
    let browser = net.add_node(
        NodeConfig::at_on(Point::new(48.0, 3.0), Channel::CH11),
        Box::new(ClientApp::new(Template::of_kind("projector/display"))),
    );

    net.run_for(SimDuration::from_secs(6));

    let c = net.app_as::<ClientApp>(browser).unwrap();
    println!("projectors visible from room B:");
    for item in &c.found {
        println!(
            "  {} in room {} (provider node n{})",
            item.kind,
            item.attr("room").unwrap_or("?"),
            item.provider
        );
    }
    let stats = net.stats();
    println!(
        "\n{} frames crossed the building cable ({} bytes);",
        stats.wired_frames, stats.wired_bytes
    );
    println!(
        "{} frames crossed the air ({} bytes of payload).",
        stats.delivered_frames, stats.delivered_bytes
    );
    let room_a_visible = c.found.iter().any(|i| i.attr("room") == Some("A-101"));
    println!(
        "\nroom A's projector is {} from room B — discovery crosses the wire,\n\
         radio frames do not (the rooms are on orthogonal channels).",
        if room_a_visible { "VISIBLE" } else { "NOT visible" }
    );
}
