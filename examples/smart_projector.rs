//! The full Smart Projector scenario, end to end over the simulated WLAN:
//! lookup service + Aroma Adapter + a presenter laptop, exactly the paper's
//! four entities — discovery, session acquisition, VNC projection, remote
//! control, release.
//!
//! ```text
//! cargo run --release --example smart_projector
//! ```

use aroma_discovery::apps::RegistrarApp;
use aroma_env::radio::RadioEnvironment;
use aroma_env::space::Point;
use aroma_net::{MacConfig, Network, NodeConfig};
use aroma_sim::SimDuration;
use aroma_vnc::SlideDeck;
use smart_projector::laptop::{PresenterLaptopApp, PresenterScript};
use smart_projector::session::SessionPolicy;
use smart_projector::SmartProjectorApp;

fn main() {
    let env = RadioEnvironment::default();
    let mut net = Network::new(env, MacConfig::default(), 2026);

    // The paper's four entities.
    let _lookup_service = net.add_node(
        NodeConfig::at(Point::new(0.0, 0.0)),
        Box::new(RegistrarApp::new(SimDuration::from_secs(30))),
    );
    let projector = net.add_node(
        NodeConfig::at(Point::new(4.0, 0.0)),
        Box::new(SmartProjectorApp::new(
            320,
            240,
            SessionPolicy::AutoExpire {
                idle: SimDuration::from_secs(15),
            },
            "NIST A-101",
        )),
    );
    let laptop = net.add_node(
        NodeConfig::at(Point::new(2.0, 3.0)),
        Box::new(PresenterLaptopApp::new(
            PresenterScript {
                present_for: SimDuration::from_secs(20),
                ..Default::default()
            },
            320,
            240,
            Box::new(SlideDeck::new(6.0)),
        )),
    );

    println!("running the Smart Projector scenario for 30 simulated seconds…\n");
    net.run_for(SimDuration::from_secs(30));

    let lap = net.app_as::<PresenterLaptopApp>(laptop).unwrap();
    let proj = net.app_as::<SmartProjectorApp>(projector).unwrap();

    println!("presenter phase:        {:?}", lap.phase);
    match lap.projecting_at {
        Some(t) => println!("time to projecting:     {t}"),
        None => println!("time to projecting:     never"),
    }
    println!("session denials seen:   {}", lap.denials);
    println!("control commands OK:    {}", lap.commands_ok);
    println!("projector lamp on:      {}", proj.state.powered);
    println!("projector brightness:   {}", proj.state.brightness);
    println!("services registered:    {}", proj.registrations);
    println!(
        "projection grants/denials: {}/{}",
        proj.grants, proj.denials
    );
    let stats = net.stats();
    println!("\nnetwork: {} frames delivered, {} bytes of application payload,",
        stats.delivered_frames, stats.delivered_bytes);
    println!(
        "         mean MAC service time {:.2} ms over {} acked frames",
        stats.service_time.mean() * 1e3,
        stats.service_time.count()
    );
    match proj.projected_digest() {
        Some(d) if d == lap.screen_digest() => {
            println!("\nprojected image matches the laptop screen (digest {d:#018x})")
        }
        Some(_) => println!("\nprojected image still converging"),
        None => println!("\nprojection session already released"),
    }
}
