//! # aroma-lpc — umbrella crate
//!
//! Re-exports the whole reproduction of *“A Conceptual Model for Pervasive
//! Computing”* (Ciarletta & Dima, 2000) so examples and downstream users
//! can depend on one crate. See the individual crates for the real APIs:
//!
//! * [`lpc`] (lpc-core) — the Layered Pervasive Computing model itself,
//! * [`sim`] (aroma-sim) — the discrete-event core,
//! * [`env`](mod@env) (aroma-env) — the environment layer,
//! * [`net`] (aroma-net) — the 2.4 GHz WLAN simulator,
//! * [`discovery`] (aroma-discovery) — Jini-style service discovery,
//! * [`mcode`] (aroma-mcode) — the mobile-code VM for service proxies,
//! * [`vnc`] (aroma-vnc) — the remote framebuffer,
//! * [`appliance`] (aroma-appliance) — the information-appliance runtime,
//! * [`projector`] (smart-projector) — the Smart Projector application.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use aroma_appliance as appliance;
pub use aroma_discovery as discovery;
pub use aroma_env as env;
pub use aroma_mcode as mcode;
pub use aroma_net as net;
pub use aroma_sim as sim;
pub use aroma_vnc as vnc;
pub use lpc_core as lpc;
pub use smart_projector as projector;
