//! 2.4 GHz radio propagation.
//!
//! The Smart Projector communicates "via a 2.4 GHz wireless LAN PCMCIA
//! card", and the paper flags *ranging, radio interference and scaling
//! constraints* as environment-layer issues. This module supplies the
//! physics that `aroma-net`'s PHY consumes:
//!
//! * **Path loss** — log-distance model with reference loss at 1 m (free
//!   space at 2.4 GHz ≈ 40 dB), environment-specific exponent, multi-wall
//!   attenuation and deterministic log-normal shadowing (a fixed draw per
//!   transmitter/receiver pair, as in measurement-calibrated indoor models).
//! * **Channel geometry** — the 11 North-American DSSS channels, 5 MHz
//!   apart with 22 MHz occupied bandwidth, giving partial spectral overlap
//!   between channels fewer than 5 apart. Adjacent-channel interferers leak
//!   a fraction of their power; channels ≥ 5 apart are orthogonal.
//! * **dB arithmetic** — dBm/mW conversions and noise floor.
//!
//! Everything is pure and deterministic: the shadowing draw is keyed by the
//! endpoints' node identifiers, so a given topology always yields the same
//! link budget.

use crate::space::{path_wall_loss_db, Point, Wall};
use aroma_sim::SimRng;
use serde::{Deserialize, Serialize};

/// Thermal noise floor for a 22 MHz DSSS receiver (kTB + typical NF), dBm.
pub const DBM_NOISE_FLOOR: f64 = -101.0;

/// Reference path loss at 1 m for 2.4 GHz free space, dB.
pub const REF_LOSS_DB_1M: f64 = 40.0;

/// An IEEE 802.11(b) DSSS channel (1–11).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Channel(u8);

impl Channel {
    /// Channel 1 (2412 MHz).
    pub const CH1: Channel = Channel(1);
    /// Channel 6 (2437 MHz) — the usual default.
    pub const CH6: Channel = Channel(6);
    /// Channel 11 (2462 MHz).
    pub const CH11: Channel = Channel(11);
    /// The classic non-overlapping trio.
    pub const ORTHOGONAL: [Channel; 3] = [Channel(1), Channel(6), Channel(11)];

    /// Construct channel `n`; panics unless `1 ≤ n ≤ 11`.
    pub fn new(n: u8) -> Self {
        assert!((1..=11).contains(&n), "2.4 GHz channel must be 1..=11");
        Channel(n)
    }

    /// Channel number.
    pub fn number(self) -> u8 {
        self.0
    }

    /// Centre frequency in MHz (2407 + 5·n).
    pub fn centre_mhz(self) -> u32 {
        2407 + 5 * self.0 as u32
    }

    /// Fraction of an interferer's power on `other` that leaks into a
    /// receiver tuned to `self`.
    ///
    /// Co-channel → 1.0; spacing grows 5 MHz per channel step against a
    /// 22 MHz occupied bandwidth, so the overlap decays linearly and reaches
    /// zero at a spacing of 5 channels (25 MHz ≥ 22 MHz): the familiar
    /// "1/6/11 don't interfere" rule emerges rather than being hard-coded.
    pub fn overlap(self, other: Channel) -> f64 {
        let sep = (self.0 as i8 - other.0 as i8).unsigned_abs() as f64;
        (1.0 - sep * 5.0 / 22.0).max(0.0)
    }
}

/// Convert dBm to milliwatts.
#[inline]
pub fn dbm_to_mw(dbm: f64) -> f64 {
    10f64.powf(dbm / 10.0)
}

/// Convert milliwatts to dBm (`-inf` guarded to a very low floor).
#[inline]
pub fn mw_to_dbm(mw: f64) -> f64 {
    if mw <= 0.0 {
        -300.0
    } else {
        10.0 * mw.log10()
    }
}

/// The RF environment: propagation parameters plus floor-plan walls.
#[derive(Clone, Debug)]
pub struct RadioEnvironment {
    /// Path-loss exponent (2.0 free space … 3.5 dense indoor).
    pub path_loss_exponent: f64,
    /// Log-normal shadowing standard deviation, dB.
    pub shadowing_sigma_db: f64,
    /// Walls in the floor plan.
    pub walls: Vec<Wall>,
    /// Extra wideband noise above thermal (microwave ovens, Bluetooth…), dB.
    pub ambient_noise_rise_db: f64,
    /// Seed for the deterministic per-link shadowing draws.
    pub shadowing_seed: u64,
}

impl Default for RadioEnvironment {
    fn default() -> Self {
        RadioEnvironment {
            path_loss_exponent: 3.0,
            shadowing_sigma_db: 4.0,
            walls: Vec::new(),
            ambient_noise_rise_db: 0.0,
            shadowing_seed: 0x0A0A_0A0A,
        }
    }
}

impl RadioEnvironment {
    /// Free-space-like environment (outdoor courtyard).
    pub fn open_air() -> Self {
        RadioEnvironment {
            path_loss_exponent: 2.1,
            shadowing_sigma_db: 2.0,
            ..Default::default()
        }
    }

    /// Deterministic shadowing for the link between nodes `a` and `b`
    /// (symmetric: the pair is ordered before hashing).
    pub fn shadowing_db(&self, a: u64, b: u64) -> f64 {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let mut rng = SimRng::new(self.shadowing_seed).fork(lo).fork(hi);
        rng.normal_with(0.0, self.shadowing_sigma_db)
    }

    /// Total path loss in dB between two positions for the link `(a, b)`.
    ///
    /// Distances below 1 m clamp to the reference distance (no negative
    /// near-field loss).
    pub fn path_loss_db(&self, a_id: u64, a_pos: Point, b_id: u64, b_pos: Point) -> f64 {
        let d = a_pos.distance(&b_pos).max(1.0);
        REF_LOSS_DB_1M
            + 10.0 * self.path_loss_exponent * d.log10()
            + path_wall_loss_db(&self.walls, a_pos, b_pos)
            + self.shadowing_db(a_id, b_id)
    }

    /// Received power in dBm given transmit power and link endpoints.
    pub fn received_dbm(
        &self,
        tx_dbm: f64,
        a_id: u64,
        a_pos: Point,
        b_id: u64,
        b_pos: Point,
    ) -> f64 {
        tx_dbm - self.path_loss_db(a_id, a_pos, b_id, b_pos)
    }

    /// Effective noise floor including the environment's ambient rise, dBm.
    pub fn noise_floor_dbm(&self) -> f64 {
        DBM_NOISE_FLOOR + self.ambient_noise_rise_db
    }

    /// Signal-to-interference-plus-noise ratio in dB.
    ///
    /// `signal_dbm` is the wanted carrier; `interferers` are (power dBm at
    /// the receiver, spectral overlap 0..=1) pairs. Linear-domain summation.
    pub fn sinr_db(&self, signal_dbm: f64, interferers: &[(f64, f64)]) -> f64 {
        let noise_mw = dbm_to_mw(self.noise_floor_dbm());
        let interf_mw: f64 = interferers
            .iter()
            .map(|&(p_dbm, overlap)| dbm_to_mw(p_dbm) * overlap.clamp(0.0, 1.0))
            .sum();
        mw_to_dbm(dbm_to_mw(signal_dbm)) - mw_to_dbm(noise_mw + interf_mw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::Material;

    #[test]
    fn channel_bounds_enforced() {
        assert_eq!(Channel::new(1).number(), 1);
        assert_eq!(Channel::new(11).number(), 11);
    }

    #[test]
    #[should_panic(expected = "channel must be")]
    fn channel_12_rejected() {
        Channel::new(12);
    }

    #[test]
    fn channel_centre_frequencies() {
        assert_eq!(Channel::CH1.centre_mhz(), 2412);
        assert_eq!(Channel::CH6.centre_mhz(), 2437);
        assert_eq!(Channel::CH11.centre_mhz(), 2462);
    }

    #[test]
    fn cochannel_overlap_is_total() {
        assert_eq!(Channel::CH6.overlap(Channel::CH6), 1.0);
    }

    #[test]
    fn orthogonal_trio_does_not_overlap() {
        for a in Channel::ORTHOGONAL {
            for b in Channel::ORTHOGONAL {
                if a != b {
                    assert_eq!(a.overlap(b), 0.0, "{a:?} vs {b:?}");
                }
            }
        }
    }

    #[test]
    fn overlap_decays_with_separation() {
        let base = Channel::new(3);
        let mut prev = 1.1;
        for n in 3..=8 {
            let o = base.overlap(Channel::new(n));
            assert!(o < prev, "overlap must strictly decay until zero");
            if o == 0.0 {
                break;
            }
            prev = o;
        }
        assert!(base.overlap(Channel::new(4)) > 0.5); // adjacent channels badly overlap
    }

    #[test]
    fn overlap_is_symmetric() {
        for i in 1..=11u8 {
            for j in 1..=11u8 {
                assert_eq!(
                    Channel::new(i).overlap(Channel::new(j)),
                    Channel::new(j).overlap(Channel::new(i))
                );
            }
        }
    }

    #[test]
    fn dbm_mw_round_trip() {
        for dbm in [-100.0, -50.0, 0.0, 15.0] {
            assert!((mw_to_dbm(dbm_to_mw(dbm)) - dbm).abs() < 1e-9);
        }
        assert_eq!(mw_to_dbm(0.0), -300.0);
    }

    #[test]
    fn path_loss_grows_with_distance() {
        let env = RadioEnvironment::default();
        let o = Point::new(0.0, 0.0);
        let near = env.path_loss_db(1, o, 2, Point::new(2.0, 0.0));
        let far = env.path_loss_db(1, o, 2, Point::new(40.0, 0.0));
        assert!(far > near, "loss must grow with distance");
    }

    #[test]
    fn path_loss_clamps_below_one_metre() {
        let env = RadioEnvironment {
            shadowing_sigma_db: 0.0,
            ..Default::default()
        };
        let o = Point::new(0.0, 0.0);
        let at_10cm = env.path_loss_db(1, o, 2, Point::new(0.1, 0.0));
        let at_1m = env.path_loss_db(1, o, 2, Point::new(1.0, 0.0));
        assert!((at_10cm - at_1m).abs() < 1e-9);
        assert!((at_1m - REF_LOSS_DB_1M).abs() < 1e-9);
    }

    #[test]
    fn walls_add_attenuation() {
        let mut env = RadioEnvironment {
            shadowing_sigma_db: 0.0,
            ..Default::default()
        };
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 0.0);
        let open = env.path_loss_db(1, a, 2, b);
        env.walls.push(Wall::new(
            Point::new(5.0, -5.0),
            Point::new(5.0, 5.0),
            Material::Concrete,
        ));
        let blocked = env.path_loss_db(1, a, 2, b);
        assert!((blocked - open - 12.0).abs() < 1e-9);
    }

    #[test]
    fn shadowing_is_deterministic_and_symmetric() {
        let env = RadioEnvironment::default();
        assert_eq!(env.shadowing_db(3, 9), env.shadowing_db(3, 9));
        assert_eq!(env.shadowing_db(3, 9), env.shadowing_db(9, 3));
        assert_ne!(env.shadowing_db(3, 9), env.shadowing_db(3, 10));
    }

    #[test]
    fn shadowing_sigma_scales_spread() {
        let tight = RadioEnvironment {
            shadowing_sigma_db: 0.0,
            ..Default::default()
        };
        assert_eq!(tight.shadowing_db(1, 2), 0.0);
    }

    #[test]
    fn sinr_without_interference_is_snr() {
        let env = RadioEnvironment::default();
        let sinr = env.sinr_db(-60.0, &[]);
        assert!((sinr - (-60.0 - DBM_NOISE_FLOOR)).abs() < 1e-9);
    }

    #[test]
    fn interference_reduces_sinr() {
        let env = RadioEnvironment::default();
        let clean = env.sinr_db(-60.0, &[]);
        let jammed = env.sinr_db(-60.0, &[(-70.0, 1.0)]);
        assert!(jammed < clean);
        // A strong co-channel interferer dominates the noise floor: SINR ≈ C/I.
        assert!((jammed - 10.0).abs() < 0.5, "sinr {jammed}");
    }

    #[test]
    fn orthogonal_interferer_is_harmless() {
        let env = RadioEnvironment::default();
        let clean = env.sinr_db(-60.0, &[]);
        let with_orthogonal = env.sinr_db(-60.0, &[(-40.0, 0.0)]);
        assert!((clean - with_orthogonal).abs() < 1e-9);
    }

    #[test]
    fn ambient_noise_rise_lifts_floor() {
        let noisy = RadioEnvironment {
            ambient_noise_rise_db: 6.0,
            ..Default::default()
        };
        assert!((noisy.noise_floor_dbm() - (DBM_NOISE_FLOOR + 6.0)).abs() < 1e-12);
        let quiet = RadioEnvironment::default();
        assert!(noisy.sinr_db(-60.0, &[]) < quiet.sinr_db(-60.0, &[]));
    }
}
