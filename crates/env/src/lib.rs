//! # aroma-env — the Environment layer, made executable
//!
//! The paper's first structural claim is that pervasive computing needs an
//! explicit **environment layer** beneath the physical layer: *“the mobile
//! nature of many pervasive computing applications ensures that the
//! environment cannot just be engineered into submission”*. This crate is
//! that layer as a simulation substrate. It models the three environmental
//! phenomena the paper calls out for the Smart Projector:
//!
//! * **Radio** ([`radio`]) — 2.4 GHz band propagation: log-distance path
//!   loss, wall attenuation, log-normal shadowing, channel geometry and
//!   co-/adjacent-channel spectral overlap. This is what `aroma-net` builds
//!   its PHY on, and what drives the paper's *“many wireless devices
//!   operating in the 2.4 GHz radio band”* density experiment (E2).
//! * **Acoustics** ([`acoustics`]) — background-noise fields and a
//!   speech-recognition accuracy model, for the paper's observation that
//!   *“background noise, that is currently acceptable, may become
//!   objectionable if voice recognition is used”* (E6).
//! * **Ambient climate** ([`climate`]) — temperature/humidity/illuminance
//!   operating envelopes, used by the LPC analysis engine's
//!   environment-layer compatibility checks (F2).
//!
//! [`profiles`] bundles these into named environments (quiet office, cubicle
//! farm, conference hall, subway car, outdoor courtyard) that the
//! experiments sweep over, and [`space`] provides the shared 2-D geometry.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acoustics;
pub mod climate;
pub mod profiles;
pub mod radio;
pub mod space;

pub use acoustics::{AcousticField, NoiseSource};
pub use climate::{Climate, OperatingRange};
pub use profiles::{EnvironmentKind, EnvironmentProfile};
pub use radio::{Channel, RadioEnvironment, DBM_NOISE_FLOOR};
pub use space::{Point, Wall};

/// A complete physical environment: geometry plus the three phenomenon
/// models, assembled from an [`EnvironmentProfile`] or built by hand.
#[derive(Clone, Debug)]
pub struct Environment {
    /// RF propagation model for the 2.4 GHz band.
    pub radio: radio::RadioEnvironment,
    /// Background acoustic field.
    pub acoustics: acoustics::AcousticField,
    /// Ambient climate conditions.
    pub climate: climate::Climate,
    /// Descriptive name (used in reports).
    pub name: String,
}

impl Environment {
    /// Construct from a named profile.
    pub fn from_profile(profile: &EnvironmentProfile) -> Self {
        profile.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn environment_builds_from_every_profile() {
        for kind in EnvironmentKind::ALL {
            let env = Environment::from_profile(&EnvironmentProfile::preset(kind));
            assert!(!env.name.is_empty());
        }
    }
}
