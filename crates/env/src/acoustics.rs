//! Acoustic environment and voice-interface viability.
//!
//! The paper's environment-layer analysis of the Smart Projector raises two
//! acoustic issues: background noise degrading a hypothetical voice-control
//! interface, and the *social* inappropriateness of voice interfaces in
//! shared spaces ("a cramped office environment with cubicles"). This module
//! models both:
//!
//! * an [`AcousticField`] sums a diffuse ambient level with point
//!   [`NoiseSource`]s (inverse-square spreading, wall transmission loss),
//! * [`recognition_accuracy`] maps speech-to-noise ratio to a recognition
//!   accuracy via a logistic psychometric curve — the standard shape for
//!   speech-in-noise intelligibility,
//! * [`SocialContext`] gates whether speaking aloud is acceptable at all.

use crate::space::{path_acoustic_loss_db, Point, Wall};
use serde::{Deserialize, Serialize};

/// Typical conversational speech level at 1 m, dB SPL.
pub const SPEECH_LEVEL_DB_AT_1M: f64 = 60.0;

/// A localized noise source (projector fan, conversation, train).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct NoiseSource {
    /// Location in the floor plan.
    pub position: Point,
    /// Sound pressure level at 1 m, dB SPL.
    pub level_db_at_1m: f64,
}

impl NoiseSource {
    /// Construct a noise source.
    pub fn new(position: Point, level_db_at_1m: f64) -> Self {
        NoiseSource {
            position,
            level_db_at_1m,
        }
    }
}

/// Social acceptability of audible interaction in this space.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SocialContext {
    /// Private space: speaking aloud is fine.
    Private,
    /// Shared but conversational (conference room in session).
    Shared,
    /// Quiet shared space (cubicle farm, library): voice UI is disruptive.
    QuietShared,
    /// Public transit: voice UI is both noisy and privacy-hostile.
    PublicTransit,
}

impl SocialContext {
    /// Whether a voice interface is socially appropriate here — the paper's
    /// point that acceptability is an environment property, not a device
    /// property.
    pub fn voice_appropriate(self) -> bool {
        matches!(self, SocialContext::Private | SocialContext::Shared)
    }
}

/// The acoustic state of an environment.
#[derive(Clone, Debug)]
pub struct AcousticField {
    /// Diffuse ambient noise level, dB SPL (HVAC, crowd murmur, engine).
    pub ambient_db: f64,
    /// Point sources adding to the ambient field.
    pub sources: Vec<NoiseSource>,
    /// Walls providing acoustic isolation between points.
    pub walls: Vec<Wall>,
    /// Social acceptability of audible interaction.
    pub social: SocialContext,
}

impl Default for AcousticField {
    fn default() -> Self {
        AcousticField {
            ambient_db: 40.0, // quiet office
            sources: Vec::new(),
            walls: Vec::new(),
            social: SocialContext::Private,
        }
    }
}

/// Sum sound levels expressed in dB (incoherent addition in power domain).
pub fn db_sum(levels: impl IntoIterator<Item = f64>) -> f64 {
    let power: f64 = levels.into_iter().map(|l| 10f64.powf(l / 10.0)).sum();
    if power <= 0.0 {
        0.0
    } else {
        10.0 * power.log10()
    }
}

impl AcousticField {
    /// Total noise level at a listening position, dB SPL.
    ///
    /// Point sources decay 20 dB/decade (inverse-square) from their 1 m
    /// reference and lose wall transmission loss; the diffuse ambient level
    /// is position-independent.
    pub fn noise_at(&self, p: Point) -> f64 {
        let mut levels = vec![self.ambient_db];
        for s in &self.sources {
            let d = s.position.distance(&p).max(1.0);
            let level =
                s.level_db_at_1m - 20.0 * d.log10() - path_acoustic_loss_db(&self.walls, s.position, p);
            levels.push(level);
        }
        db_sum(levels)
    }

    /// Speech-to-noise ratio for a talker at `talker` heard by a microphone
    /// at `mic`, in dB.
    pub fn speech_snr_db(&self, talker: Point, mic: Point) -> f64 {
        let d = talker.distance(&mic).max(0.3); // microphones get closer than 1 m
        let speech = SPEECH_LEVEL_DB_AT_1M - 20.0 * d.max(1.0).log10();
        speech - self.noise_at(mic)
    }
}

/// Speech-recognition accuracy (word accuracy, 0..=1) as a function of SNR.
///
/// Logistic psychometric curve: ~50% at 0 dB SNR, saturating above ~15 dB,
/// collapsing below −10 dB. Chosen to match the qualitative shape of
/// speech-in-noise intelligibility data; the experiments only rely on the
/// monotone S-shape, not the absolute values.
pub fn recognition_accuracy(snr_db: f64) -> f64 {
    let k = 0.35; // slope
    let midpoint = 0.0; // dB at 50%
    0.97 / (1.0 + (-k * (snr_db - midpoint)).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::Material;

    #[test]
    fn db_sum_of_equal_levels_adds_3db() {
        let total = db_sum([60.0, 60.0]);
        assert!((total - 63.0103).abs() < 0.01);
    }

    #[test]
    fn db_sum_dominated_by_loudest() {
        let total = db_sum([80.0, 40.0]);
        assert!((total - 80.0).abs() < 0.01);
    }

    #[test]
    fn db_sum_empty_is_zero() {
        assert_eq!(db_sum([]), 0.0);
    }

    #[test]
    fn ambient_only_field_is_uniform() {
        let f = AcousticField::default();
        assert_eq!(f.noise_at(Point::new(0.0, 0.0)), f.noise_at(Point::new(9.0, 9.0)));
    }

    #[test]
    fn noise_decays_with_distance_from_source() {
        let f = AcousticField {
            ambient_db: 20.0,
            sources: vec![NoiseSource::new(Point::new(0.0, 0.0), 70.0)],
            ..Default::default()
        };
        let near = f.noise_at(Point::new(1.0, 0.0));
        let far = f.noise_at(Point::new(10.0, 0.0));
        assert!(near > far);
        // 1 m vs 10 m is one decade = 20 dB (ambient negligible here).
        assert!((near - far - 20.0).abs() < 0.5, "near {near} far {far}");
    }

    #[test]
    fn walls_isolate_noise() {
        let wall = Wall::new(Point::new(2.0, -5.0), Point::new(2.0, 5.0), Material::Concrete);
        let open = AcousticField {
            ambient_db: 10.0,
            sources: vec![NoiseSource::new(Point::new(0.0, 0.0), 75.0)],
            ..Default::default()
        };
        let walled = AcousticField {
            walls: vec![wall],
            ..open.clone()
        };
        let p = Point::new(4.0, 0.0);
        assert!(walled.noise_at(p) < open.noise_at(p) - 30.0);
    }

    #[test]
    fn speech_snr_falls_with_noise() {
        let quiet = AcousticField {
            ambient_db: 35.0,
            ..Default::default()
        };
        let loud = AcousticField {
            ambient_db: 75.0,
            ..Default::default()
        };
        let t = Point::new(0.0, 0.0);
        let m = Point::new(0.5, 0.0);
        assert!(quiet.speech_snr_db(t, m) > loud.speech_snr_db(t, m));
    }

    #[test]
    fn speech_snr_falls_with_mic_distance() {
        let f = AcousticField {
            ambient_db: 45.0,
            ..Default::default()
        };
        let t = Point::new(0.0, 0.0);
        let near = f.speech_snr_db(t, Point::new(0.5, 0.0));
        let far = f.speech_snr_db(t, Point::new(5.0, 0.0));
        assert!(near > far);
    }

    #[test]
    fn recognition_curve_is_sigmoid() {
        assert!(recognition_accuracy(-20.0) < 0.05);
        let mid = recognition_accuracy(0.0);
        assert!((mid - 0.485).abs() < 0.01, "mid {mid}");
        assert!(recognition_accuracy(20.0) > 0.9);
        // monotone
        let mut prev = 0.0;
        for snr in -30..=30 {
            let a = recognition_accuracy(snr as f64);
            assert!(a >= prev);
            prev = a;
        }
        // bounded
        assert!(recognition_accuracy(100.0) <= 1.0);
        assert!(recognition_accuracy(-100.0) >= 0.0);
    }

    #[test]
    fn social_context_gates_voice() {
        assert!(SocialContext::Private.voice_appropriate());
        assert!(SocialContext::Shared.voice_appropriate());
        assert!(!SocialContext::QuietShared.voice_appropriate());
        assert!(!SocialContext::PublicTransit.voice_appropriate());
    }
}
