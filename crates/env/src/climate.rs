//! Ambient climate conditions and operating envelopes.
//!
//! The paper contrasts "the climate controlled conditions of traditional
//! computing", where the environment is "just another engineered component",
//! with pervasive devices that must *cope with a wide variation in the
//! surrounding environment while performing their intended function*. The
//! LPC analysis engine uses these types for its environment-layer
//! compatibility checks: every physical entity (device **or** user) declares
//! an [`OperatingRange`], and the analyzer flags entities whose envelope the
//! current [`Climate`] violates.

use serde::{Deserialize, Serialize};

/// Instantaneous ambient conditions.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Climate {
    /// Air temperature, °C.
    pub temperature_c: f64,
    /// Relative humidity, percent.
    pub humidity_pct: f64,
    /// Illuminance at working surfaces, lux (matters for projection
    /// visibility and for screen readability).
    pub illuminance_lux: f64,
    /// Vibration, RMS g (subway car ≫ office).
    pub vibration_g: f64,
}

impl Default for Climate {
    fn default() -> Self {
        // A comfortable office.
        Climate {
            temperature_c: 22.0,
            humidity_pct: 45.0,
            illuminance_lux: 400.0,
            vibration_g: 0.0,
        }
    }
}

/// An entity's tolerated envelope of ambient conditions.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct OperatingRange {
    /// Minimum tolerable temperature, °C.
    pub temp_min_c: f64,
    /// Maximum tolerable temperature, °C.
    pub temp_max_c: f64,
    /// Maximum tolerable relative humidity, percent.
    pub humidity_max_pct: f64,
    /// Maximum ambient illuminance under which the entity still functions
    /// (for a projector: washes out above this).
    pub illuminance_max_lux: f64,
    /// Maximum tolerable vibration, RMS g.
    pub vibration_max_g: f64,
}

impl OperatingRange {
    /// Envelope typical of commercial indoor electronics.
    pub fn indoor_electronics() -> Self {
        OperatingRange {
            temp_min_c: 5.0,
            temp_max_c: 40.0,
            humidity_max_pct: 85.0,
            illuminance_max_lux: f64::INFINITY,
            vibration_max_g: 0.5,
        }
    }

    /// Envelope of a projection display: as electronics, but washed out by
    /// bright ambient light.
    pub fn projector() -> Self {
        OperatingRange {
            illuminance_max_lux: 1500.0,
            ..OperatingRange::indoor_electronics()
        }
    }

    /// Envelope of a comfortable, effective human (users are physical
    /// entities in the LPC model and get an envelope like any device).
    pub fn human_comfort() -> Self {
        OperatingRange {
            temp_min_c: 16.0,
            temp_max_c: 30.0,
            humidity_max_pct: 70.0,
            illuminance_max_lux: f64::INFINITY,
            vibration_max_g: 0.3,
        }
    }

    /// Ruggedised outdoor hardware.
    pub fn ruggedised() -> Self {
        OperatingRange {
            temp_min_c: -20.0,
            temp_max_c: 60.0,
            humidity_max_pct: 100.0,
            illuminance_max_lux: f64::INFINITY,
            vibration_max_g: 2.0,
        }
    }

    /// All conditions within the envelope?
    pub fn tolerates(&self, c: &Climate) -> bool {
        self.violations(c).is_empty()
    }

    /// Which conditions fall outside the envelope (empty = compatible).
    pub fn violations(&self, c: &Climate) -> Vec<ClimateViolation> {
        let mut v = Vec::new();
        if c.temperature_c < self.temp_min_c {
            v.push(ClimateViolation::TooCold);
        }
        if c.temperature_c > self.temp_max_c {
            v.push(ClimateViolation::TooHot);
        }
        if c.humidity_pct > self.humidity_max_pct {
            v.push(ClimateViolation::TooHumid);
        }
        if c.illuminance_lux > self.illuminance_max_lux {
            v.push(ClimateViolation::TooBright);
        }
        if c.vibration_g > self.vibration_max_g {
            v.push(ClimateViolation::TooShaky);
        }
        v
    }
}

/// A specific way the climate exceeds an operating range.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ClimateViolation {
    /// Below minimum temperature.
    TooCold,
    /// Above maximum temperature.
    TooHot,
    /// Above maximum humidity.
    TooHumid,
    /// Ambient light defeats the display.
    TooBright,
    /// Vibration beyond tolerance.
    TooShaky,
}

impl std::fmt::Display for ClimateViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ClimateViolation::TooCold => "ambient temperature below operating minimum",
            ClimateViolation::TooHot => "ambient temperature above operating maximum",
            ClimateViolation::TooHumid => "humidity above operating maximum",
            ClimateViolation::TooBright => "ambient illuminance defeats the display",
            ClimateViolation::TooShaky => "vibration beyond tolerance",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn office_climate_suits_everything_indoor() {
        let c = Climate::default();
        assert!(OperatingRange::indoor_electronics().tolerates(&c));
        assert!(OperatingRange::projector().tolerates(&c));
        assert!(OperatingRange::human_comfort().tolerates(&c));
    }

    #[test]
    fn freezing_outdoors_rejects_indoor_electronics() {
        let c = Climate {
            temperature_c: -5.0,
            ..Default::default()
        };
        let v = OperatingRange::indoor_electronics().violations(&c);
        assert_eq!(v, vec![ClimateViolation::TooCold]);
        assert!(OperatingRange::ruggedised().tolerates(&c));
    }

    #[test]
    fn bright_sunlight_defeats_projector_only() {
        let c = Climate {
            illuminance_lux: 30_000.0,
            ..Default::default()
        };
        assert!(!OperatingRange::projector().tolerates(&c));
        assert!(OperatingRange::indoor_electronics().tolerates(&c));
    }

    #[test]
    fn subway_vibration_bothers_humans_before_rugged_gear() {
        let c = Climate {
            vibration_g: 0.4,
            ..Default::default()
        };
        assert!(!OperatingRange::human_comfort().tolerates(&c));
        assert!(OperatingRange::indoor_electronics().tolerates(&c));
        assert!(OperatingRange::ruggedised().tolerates(&c));
    }

    #[test]
    fn multiple_violations_all_reported() {
        let c = Climate {
            temperature_c: 55.0,
            humidity_pct: 95.0,
            vibration_g: 1.0,
            ..Default::default()
        };
        let v = OperatingRange::indoor_electronics().violations(&c);
        assert!(v.contains(&ClimateViolation::TooHot));
        assert!(v.contains(&ClimateViolation::TooHumid));
        assert!(v.contains(&ClimateViolation::TooShaky));
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn violations_display_is_descriptive() {
        assert!(ClimateViolation::TooBright.to_string().contains("illuminance"));
    }
}
