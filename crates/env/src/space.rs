//! 2-D geometry shared by the radio and acoustic models.
//!
//! Positions are in metres. The only geometric primitive the propagation
//! models need beyond points is the *wall*: a line segment with a material
//! attenuation, so that a transmission path crossing k walls loses the sum
//! of their attenuations (the standard multi-wall indoor model).

use serde::{Deserialize, Serialize};

/// A point in the 2-D floor plan, in metres.
#[derive(Clone, Copy, Debug, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Easting, metres.
    pub x: f64,
    /// Northing, metres.
    pub y: f64,
}

impl Point {
    /// Construct a point.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to another point.
    pub fn distance(&self, other: &Point) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }

    /// Midpoint of the segment to `other`.
    pub fn midpoint(&self, other: &Point) -> Point {
        Point::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }
}

/// Wall material, determining per-crossing attenuation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Material {
    /// Drywall / cubicle partition (~3 dB at 2.4 GHz).
    Drywall,
    /// Glass partition (~2 dB).
    Glass,
    /// Brick (~8 dB).
    Brick,
    /// Reinforced concrete (~12 dB).
    Concrete,
    /// Metal (elevator, subway car shell; ~20 dB).
    Metal,
}

impl Material {
    /// Typical attenuation in dB per crossing at 2.4 GHz.
    pub fn attenuation_db(self) -> f64 {
        match self {
            Material::Drywall => 3.0,
            Material::Glass => 2.0,
            Material::Brick => 8.0,
            Material::Concrete => 12.0,
            Material::Metal => 20.0,
        }
    }

    /// Acoustic transmission loss in dB per crossing (speech band).
    pub fn acoustic_loss_db(self) -> f64 {
        match self {
            Material::Drywall => 15.0,
            Material::Glass => 25.0,
            Material::Brick => 40.0,
            Material::Concrete => 45.0,
            Material::Metal => 30.0,
        }
    }
}

/// A wall segment in the floor plan.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Wall {
    /// One endpoint.
    pub a: Point,
    /// Other endpoint.
    pub b: Point,
    /// Material (sets attenuation).
    pub material: Material,
}

impl Wall {
    /// Construct a wall.
    pub fn new(a: Point, b: Point, material: Material) -> Self {
        Wall { a, b, material }
    }

    /// Does the open segment `p→q` cross this wall?
    ///
    /// Uses the orientation test; touching an endpoint counts as a crossing
    /// (conservative: grazing a wall still attenuates).
    pub fn crosses(&self, p: Point, q: Point) -> bool {
        segments_intersect(p, q, self.a, self.b)
    }
}

/// Sum of RF attenuations (dB) of all walls crossed by the path `p→q`.
pub fn path_wall_loss_db(walls: &[Wall], p: Point, q: Point) -> f64 {
    walls
        .iter()
        .filter(|w| w.crosses(p, q))
        .map(|w| w.material.attenuation_db())
        .sum()
}

/// Sum of acoustic transmission losses (dB) of all walls crossed by `p→q`.
pub fn path_acoustic_loss_db(walls: &[Wall], p: Point, q: Point) -> f64 {
    walls
        .iter()
        .filter(|w| w.crosses(p, q))
        .map(|w| w.material.acoustic_loss_db())
        .sum()
}

fn orient(a: Point, b: Point, c: Point) -> f64 {
    (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)
}

fn on_segment(a: Point, b: Point, c: Point) -> bool {
    c.x >= a.x.min(b.x) - 1e-12
        && c.x <= a.x.max(b.x) + 1e-12
        && c.y >= a.y.min(b.y) - 1e-12
        && c.y <= a.y.max(b.y) + 1e-12
}

/// Robust segment intersection (including collinear overlap and endpoint
/// touching).
fn segments_intersect(p1: Point, p2: Point, q1: Point, q2: Point) -> bool {
    let d1 = orient(q1, q2, p1);
    let d2 = orient(q1, q2, p2);
    let d3 = orient(p1, p2, q1);
    let d4 = orient(p1, p2, q2);
    if ((d1 > 0.0 && d2 < 0.0) || (d1 < 0.0 && d2 > 0.0))
        && ((d3 > 0.0 && d4 < 0.0) || (d3 < 0.0 && d4 > 0.0))
    {
        return true;
    }
    (d1.abs() < 1e-12 && on_segment(q1, q2, p1))
        || (d2.abs() < 1e-12 && on_segment(q1, q2, p2))
        || (d3.abs() < 1e-12 && on_segment(p1, p2, q1))
        || (d4.abs() < 1e-12 && on_segment(p1, p2, q2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn midpoint_bisects() {
        let m = Point::new(0.0, 0.0).midpoint(&Point::new(2.0, 6.0));
        assert_eq!(m, Point::new(1.0, 3.0));
    }

    #[test]
    fn crossing_wall_detected() {
        let w = Wall::new(Point::new(0.0, -1.0), Point::new(0.0, 1.0), Material::Brick);
        assert!(w.crosses(Point::new(-1.0, 0.0), Point::new(1.0, 0.0)));
        assert!(!w.crosses(Point::new(1.0, 0.0), Point::new(2.0, 0.0)));
    }

    #[test]
    fn parallel_non_crossing() {
        let w = Wall::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0), Material::Glass);
        assert!(!w.crosses(Point::new(0.0, 1.0), Point::new(10.0, 1.0)));
    }

    #[test]
    fn endpoint_touch_counts_as_crossing() {
        let w = Wall::new(Point::new(0.0, -1.0), Point::new(0.0, 1.0), Material::Drywall);
        assert!(w.crosses(Point::new(0.0, 0.0), Point::new(5.0, 0.0)));
    }

    #[test]
    fn collinear_overlap_counts() {
        let w = Wall::new(Point::new(0.0, 0.0), Point::new(4.0, 0.0), Material::Drywall);
        assert!(w.crosses(Point::new(2.0, 0.0), Point::new(6.0, 0.0)));
        assert!(!w.crosses(Point::new(5.0, 0.0), Point::new(6.0, 0.0)));
    }

    #[test]
    fn path_loss_sums_all_crossed_walls() {
        let walls = vec![
            Wall::new(Point::new(1.0, -1.0), Point::new(1.0, 1.0), Material::Drywall),
            Wall::new(Point::new(2.0, -1.0), Point::new(2.0, 1.0), Material::Concrete),
            Wall::new(Point::new(9.0, -1.0), Point::new(9.0, 1.0), Material::Brick), // not crossed
        ];
        let loss = path_wall_loss_db(&walls, Point::new(0.0, 0.0), Point::new(3.0, 0.0));
        assert!((loss - (3.0 + 12.0)).abs() < 1e-12);
    }

    #[test]
    fn acoustic_loss_uses_acoustic_coefficients() {
        let walls = vec![Wall::new(
            Point::new(1.0, -1.0),
            Point::new(1.0, 1.0),
            Material::Drywall,
        )];
        let loss = path_acoustic_loss_db(&walls, Point::new(0.0, 0.0), Point::new(2.0, 0.0));
        assert!((loss - 15.0).abs() < 1e-12);
    }

    #[test]
    fn materials_order_by_rf_opacity() {
        assert!(Material::Glass.attenuation_db() < Material::Drywall.attenuation_db() + 2.0);
        assert!(Material::Drywall.attenuation_db() < Material::Brick.attenuation_db());
        assert!(Material::Brick.attenuation_db() < Material::Concrete.attenuation_db());
        assert!(Material::Concrete.attenuation_db() < Material::Metal.attenuation_db());
    }
}
