//! Named environment presets.
//!
//! The paper's running examples live in specific places: the NIST laboratory
//! and conference rooms (Smart Projector), "a quiet office" vs "riding the
//! subway with a headache" (mental-model formation), and "a cramped office
//! environment with cubicles" (voice UI appropriateness). These presets make
//! those places concrete and sweepable by the experiments.

use crate::acoustics::{AcousticField, NoiseSource, SocialContext};
use crate::climate::Climate;
use crate::radio::RadioEnvironment;
use crate::space::{Material, Point, Wall};
use crate::Environment;

/// The environments the experiments sweep over.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EnvironmentKind {
    /// A quiet private office — the developer's habitat the paper warns
    /// about designing from.
    QuietOffice,
    /// A cubicle farm: acoustically shared, RF-dense.
    CubicleFarm,
    /// A conference hall during a presentation (the Smart Projector's
    /// natural habitat).
    ConferenceHall,
    /// A moving subway car: loud, shaky, RF-hostile.
    SubwayCar,
    /// An outdoor courtyard: bright, open-air RF.
    OutdoorCourtyard,
}

impl EnvironmentKind {
    /// Every preset, in sweep order.
    pub const ALL: [EnvironmentKind; 5] = [
        EnvironmentKind::QuietOffice,
        EnvironmentKind::CubicleFarm,
        EnvironmentKind::ConferenceHall,
        EnvironmentKind::SubwayCar,
        EnvironmentKind::OutdoorCourtyard,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            EnvironmentKind::QuietOffice => "quiet office",
            EnvironmentKind::CubicleFarm => "cubicle farm",
            EnvironmentKind::ConferenceHall => "conference hall",
            EnvironmentKind::SubwayCar => "subway car",
            EnvironmentKind::OutdoorCourtyard => "outdoor courtyard",
        }
    }
}

/// A buildable description of an environment.
#[derive(Clone, Debug)]
pub struct EnvironmentProfile {
    /// Which preset this is.
    pub kind: EnvironmentKind,
    /// Diffuse ambient noise, dB SPL.
    pub ambient_noise_db: f64,
    /// Point noise sources.
    pub noise_sources: Vec<NoiseSource>,
    /// Social context for audible interaction.
    pub social: SocialContext,
    /// Path-loss exponent.
    pub path_loss_exponent: f64,
    /// Shadowing sigma, dB.
    pub shadowing_sigma_db: f64,
    /// Ambient RF noise rise above thermal, dB.
    pub rf_noise_rise_db: f64,
    /// Walls.
    pub walls: Vec<Wall>,
    /// Climate.
    pub climate: Climate,
}

impl EnvironmentProfile {
    /// The canonical preset for `kind`.
    pub fn preset(kind: EnvironmentKind) -> Self {
        match kind {
            EnvironmentKind::QuietOffice => EnvironmentProfile {
                kind,
                ambient_noise_db: 38.0,
                noise_sources: vec![],
                social: SocialContext::Private,
                path_loss_exponent: 2.8,
                shadowing_sigma_db: 3.0,
                rf_noise_rise_db: 0.0,
                walls: vec![
                    Wall::new(Point::new(5.0, -5.0), Point::new(5.0, 5.0), Material::Drywall),
                ],
                climate: Climate::default(),
            },
            EnvironmentKind::CubicleFarm => EnvironmentProfile {
                kind,
                ambient_noise_db: 52.0,
                noise_sources: vec![
                    // Neighbouring conversations.
                    NoiseSource::new(Point::new(3.0, 2.0), 62.0),
                    NoiseSource::new(Point::new(-2.0, 4.0), 60.0),
                ],
                social: SocialContext::QuietShared,
                path_loss_exponent: 3.3,
                shadowing_sigma_db: 5.0,
                rf_noise_rise_db: 3.0, // dense BT/microwave clutter
                walls: (0..4)
                    .map(|i| {
                        let x = 2.5 * (i + 1) as f64;
                        Wall::new(Point::new(x, -6.0), Point::new(x, 6.0), Material::Drywall)
                    })
                    .collect(),
                climate: Climate::default(),
            },
            EnvironmentKind::ConferenceHall => EnvironmentProfile {
                kind,
                ambient_noise_db: 48.0,
                noise_sources: vec![
                    // Projector fan near the podium.
                    NoiseSource::new(Point::new(1.0, 0.0), 50.0),
                    // Audience murmur.
                    NoiseSource::new(Point::new(8.0, 0.0), 55.0),
                ],
                social: SocialContext::Shared,
                path_loss_exponent: 2.5,
                shadowing_sigma_db: 3.5,
                rf_noise_rise_db: 2.0, // everyone's laptops
                walls: vec![],
                climate: Climate {
                    illuminance_lux: 150.0, // dimmed for projection
                    ..Climate::default()
                },
            },
            EnvironmentKind::SubwayCar => EnvironmentProfile {
                kind,
                ambient_noise_db: 78.0,
                noise_sources: vec![NoiseSource::new(Point::new(0.0, -2.0), 85.0)], // running gear
                social: SocialContext::PublicTransit,
                path_loss_exponent: 3.5,
                shadowing_sigma_db: 6.0,
                rf_noise_rise_db: 4.0,
                walls: vec![
                    // Car shell.
                    Wall::new(Point::new(-8.0, 1.5), Point::new(8.0, 1.5), Material::Metal),
                    Wall::new(Point::new(-8.0, -1.5), Point::new(8.0, -1.5), Material::Metal),
                ],
                climate: Climate {
                    temperature_c: 27.0,
                    humidity_pct: 60.0,
                    illuminance_lux: 300.0,
                    vibration_g: 0.4,
                },
            },
            EnvironmentKind::OutdoorCourtyard => EnvironmentProfile {
                kind,
                ambient_noise_db: 55.0,
                noise_sources: vec![],
                social: SocialContext::Shared,
                path_loss_exponent: 2.1,
                shadowing_sigma_db: 2.0,
                rf_noise_rise_db: 0.0,
                walls: vec![],
                climate: Climate {
                    temperature_c: 31.0,
                    humidity_pct: 55.0,
                    illuminance_lux: 25_000.0, // daylight
                    vibration_g: 0.0,
                },
            },
        }
    }

    /// Materialise the profile into an [`Environment`].
    pub fn build(&self) -> Environment {
        Environment {
            radio: RadioEnvironment {
                path_loss_exponent: self.path_loss_exponent,
                shadowing_sigma_db: self.shadowing_sigma_db,
                walls: self.walls.clone(),
                ambient_noise_rise_db: self.rf_noise_rise_db,
                shadowing_seed: 0x0A0A_0A0A ^ self.kind as u64,
            },
            acoustics: AcousticField {
                ambient_db: self.ambient_noise_db,
                sources: self.noise_sources.clone(),
                walls: self.walls.clone(),
                social: self.social,
            },
            climate: self.climate,
            name: self.kind.name().to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subway_is_louder_than_office() {
        let office = EnvironmentProfile::preset(EnvironmentKind::QuietOffice).build();
        let subway = EnvironmentProfile::preset(EnvironmentKind::SubwayCar).build();
        let p = Point::new(0.0, 0.0);
        assert!(subway.acoustics.noise_at(p) > office.acoustics.noise_at(p) + 20.0);
    }

    #[test]
    fn voice_is_inappropriate_in_cubicles_and_transit() {
        assert!(!EnvironmentProfile::preset(EnvironmentKind::CubicleFarm)
            .build()
            .acoustics
            .social
            .voice_appropriate());
        assert!(!EnvironmentProfile::preset(EnvironmentKind::SubwayCar)
            .build()
            .acoustics
            .social
            .voice_appropriate());
        assert!(EnvironmentProfile::preset(EnvironmentKind::ConferenceHall)
            .build()
            .acoustics
            .social
            .voice_appropriate());
    }

    #[test]
    fn outdoor_rf_is_kindest_subway_harshest() {
        let out = EnvironmentProfile::preset(EnvironmentKind::OutdoorCourtyard).build();
        let sub = EnvironmentProfile::preset(EnvironmentKind::SubwayCar).build();
        assert!(out.radio.path_loss_exponent < sub.radio.path_loss_exponent);
        assert!(out.radio.noise_floor_dbm() < sub.radio.noise_floor_dbm());
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = EnvironmentKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), EnvironmentKind::ALL.len());
    }

    #[test]
    fn conference_hall_is_dimmed() {
        let hall = EnvironmentProfile::preset(EnvironmentKind::ConferenceHall).build();
        assert!(hall.climate.illuminance_lux < 400.0);
    }
}
