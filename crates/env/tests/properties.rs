//! Property-based tests for the environment substrate.

use aroma_env::acoustics::{db_sum, recognition_accuracy, AcousticField, NoiseSource};
use aroma_env::radio::{dbm_to_mw, mw_to_dbm, Channel, RadioEnvironment};
use aroma_env::space::{Material, Point, Wall};
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = Point> {
    (-50.0f64..50.0, -50.0f64..50.0).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    /// Path loss is monotone non-decreasing in distance in an open (wall- and
    /// shadowing-free) environment.
    #[test]
    fn path_loss_monotone_in_distance(d1 in 1.0f64..100.0, d2 in 1.0f64..100.0) {
        let env = RadioEnvironment { shadowing_sigma_db: 0.0, ..Default::default() };
        let o = Point::new(0.0, 0.0);
        let l1 = env.path_loss_db(1, o, 2, Point::new(d1, 0.0));
        let l2 = env.path_loss_db(1, o, 2, Point::new(d2, 0.0));
        if d1 <= d2 {
            prop_assert!(l1 <= l2 + 1e-9);
        } else {
            prop_assert!(l2 <= l1 + 1e-9);
        }
    }

    /// Adding any wall never *decreases* path loss.
    #[test]
    fn walls_never_help(a in arb_point(), b in arb_point(), wa in arb_point(), wb in arb_point()) {
        let open = RadioEnvironment { shadowing_sigma_db: 0.0, ..Default::default() };
        let mut walled = open.clone();
        walled.walls.push(Wall::new(wa, wb, Material::Brick));
        let l_open = open.path_loss_db(1, a, 2, b);
        let l_walled = walled.path_loss_db(1, a, 2, b);
        prop_assert!(l_walled >= l_open - 1e-9);
    }

    /// Shadowing is symmetric and deterministic for any node pair.
    #[test]
    fn shadowing_symmetric(a in any::<u64>(), b in any::<u64>(), seed in any::<u64>()) {
        let env = RadioEnvironment { shadowing_seed: seed, ..Default::default() };
        prop_assert_eq!(env.shadowing_db(a, b), env.shadowing_db(b, a));
        prop_assert_eq!(env.shadowing_db(a, b), env.shadowing_db(a, b));
    }

    /// dBm ↔ mW round-trips across the realistic power range.
    #[test]
    fn dbm_mw_round_trip(dbm in -150.0f64..30.0) {
        prop_assert!((mw_to_dbm(dbm_to_mw(dbm)) - dbm).abs() < 1e-6);
    }

    /// Channel overlap is symmetric, in [0,1], total on co-channel, and zero
    /// at separation ≥ 5.
    #[test]
    fn channel_overlap_properties(i in 1u8..=11, j in 1u8..=11) {
        let a = Channel::new(i);
        let b = Channel::new(j);
        let o = a.overlap(b);
        prop_assert!((0.0..=1.0).contains(&o));
        prop_assert_eq!(o, b.overlap(a));
        if i == j { prop_assert_eq!(o, 1.0); }
        if i.abs_diff(j) >= 5 { prop_assert_eq!(o, 0.0); }
        if i.abs_diff(j) > 0 && i.abs_diff(j) < 5 { prop_assert!(o > 0.0 && o < 1.0); }
    }

    /// Adding an interferer never raises SINR; orthogonal interferers never
    /// change it.
    #[test]
    fn interference_only_hurts(sig in -90.0f64..-30.0, int_p in -90.0f64..-30.0, ov in 0.0f64..=1.0) {
        let env = RadioEnvironment::default();
        let clean = env.sinr_db(sig, &[]);
        let dirty = env.sinr_db(sig, &[(int_p, ov)]);
        prop_assert!(dirty <= clean + 1e-9);
        let orthogonal = env.sinr_db(sig, &[(int_p, 0.0)]);
        prop_assert!((orthogonal - clean).abs() < 1e-9);
    }

    /// dB summation is at least the max input and at most max + 10·log10(n).
    #[test]
    fn db_sum_bounds(levels in prop::collection::vec(0.0f64..120.0, 1..10)) {
        let max = levels.iter().cloned().fold(f64::MIN, f64::max);
        let total = db_sum(levels.iter().cloned());
        prop_assert!(total >= max - 1e-9);
        prop_assert!(total <= max + 10.0 * (levels.len() as f64).log10() + 1e-9);
    }

    /// Noise at a point never decreases when a source is added.
    #[test]
    fn noise_sources_add(p in arb_point(), src in arb_point(), lvl in 30.0f64..100.0) {
        let base = AcousticField::default();
        let mut with = base.clone();
        with.sources.push(NoiseSource::new(src, lvl));
        prop_assert!(with.noise_at(p) >= base.noise_at(p) - 1e-9);
    }

    /// Recognition accuracy is a monotone map from SNR into [0, 1].
    #[test]
    fn recognition_monotone(s1 in -40.0f64..40.0, s2 in -40.0f64..40.0) {
        let a1 = recognition_accuracy(s1);
        let a2 = recognition_accuracy(s2);
        prop_assert!((0.0..=1.0).contains(&a1));
        if s1 <= s2 { prop_assert!(a1 <= a2 + 1e-12); }
    }
}
