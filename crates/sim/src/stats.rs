//! Statistics collection for experiment harnesses.
//!
//! Three collectors cover everything the reproduction measures:
//!
//! * [`Summary`] — streaming mean/variance/min/max via Welford's algorithm
//!   (numerically stable, O(1) memory),
//! * [`Histogram`] — fixed-width bins with quantile estimation, used for
//!   latency distributions,
//! * [`RateMeter`] — event counts over simulated time windows, used for
//!   throughput series.
//!
//! All collectors are plain values (no interior mutability); parallel sweeps
//! give each run its own collectors and merge afterwards, which is both the
//! idiomatic structured-concurrency shape and the fastest one (no shared
//! cache lines on the hot path).

use crate::time::{SimDuration, SimTime};
use serde::Serialize;

/// Streaming summary statistics (Welford).
#[derive(Clone, Debug, Serialize)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

// A derived `Default` would zero `min`/`max`, whereas the sentinels must be
// ±INFINITY for `record` to work; structs that `#[derive(Default)]` around a
// `Summary` (NetStats, ExecReport) depend on this delegating to `new()`.
impl Default for Summary {
    fn default() -> Self {
        Summary::new()
    }
}

impl Summary {
    /// Empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Record a simulated duration in seconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_secs_f64());
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 for an empty summary).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (n−1 denominator; 0 for fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Half-width of a normal-approximation 95% confidence interval.
    pub fn ci95_half_width(&self) -> f64 {
        1.96 * self.std_err()
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }

    /// Merge another summary into this one (parallel-sweep reduction).
    ///
    /// Uses the Chan et al. pairwise update, so merging is equivalent to
    /// having recorded every observation into a single summary.
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Fixed-width-bin histogram over `[lo, hi)` with under/overflow bins.
#[derive(Clone, Debug, Serialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Histogram over `[lo, hi)` with `nbins` equal-width bins.
    ///
    /// Panics if `nbins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Self {
        assert!(nbins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            bins: vec![0; nbins],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let frac = (x - self.lo) / (self.hi - self.lo);
            let idx = ((frac * self.bins.len() as f64) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total observations including under/overflow.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the range's upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Raw bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Approximate `q`-quantile (`0 ≤ q ≤ 1`) by linear interpolation within
    /// the containing bin. Underflow counts toward `lo`, overflow toward
    /// `hi`. Returns `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.count as f64;
        let mut cum = self.underflow as f64;
        if target <= cum {
            return Some(self.lo);
        }
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        for (i, &b) in self.bins.iter().enumerate() {
            let next = cum + b as f64;
            if target <= next && b > 0 {
                let within = (target - cum) / b as f64;
                return Some(self.lo + width * (i as f64 + within));
            }
            cum = next;
        }
        Some(self.hi)
    }

    /// Merge another histogram with identical geometry.
    ///
    /// Panics if the ranges or bin counts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bins.len(), other.bins.len(), "bin count mismatch");
        // Exact comparison on purpose: merge partners share a constructor, so
        // their bounds are bit-identical, and an absolute-epsilon test would
        // false-accept distinct large ranges (1e9 vs 1e9 + 100).
        assert!(
            self.lo == other.lo && self.hi == other.hi,
            "range mismatch"
        );
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.count += other.count;
    }
}

/// Counts events against the simulated clock and reports rates.
#[derive(Clone, Debug, Default, Serialize)]
pub struct RateMeter {
    events: u64,
    units: f64,
    started: Option<SimTime>,
    last: Option<SimTime>,
}

impl RateMeter {
    /// Fresh meter; the window opens at the first recorded event (or at an
    /// explicit [`RateMeter::open_at`]).
    pub fn new() -> Self {
        RateMeter::default()
    }

    /// Open the measurement window at `t` without recording an event.
    pub fn open_at(&mut self, t: SimTime) {
        if self.started.is_none() {
            self.started = Some(t);
            self.last = Some(t);
        }
    }

    /// Record one event of `units` size (bytes, frames, …) at time `t`.
    pub fn record(&mut self, t: SimTime, units: f64) {
        self.open_at(t);
        self.events += 1;
        self.units += units;
        if Some(t) > self.last {
            self.last = Some(t);
        }
    }

    /// Number of events recorded.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Sum of recorded unit sizes.
    pub fn units(&self) -> f64 {
        self.units
    }

    /// Window length from open to the last event (zero if unopened).
    pub fn window(&self) -> SimDuration {
        match (self.started, self.last) {
            (Some(s), Some(l)) => l.saturating_since(s),
            _ => SimDuration::ZERO,
        }
    }

    /// Units per second over an explicit horizon.
    pub fn rate_over(&self, horizon: SimDuration) -> f64 {
        let secs = horizon.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.units / secs
        }
    }

    /// Units per second over the observed window.
    pub fn rate(&self) -> f64 {
        self.rate_over(self.window())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic_moments() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert!((s.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn summary_empty_is_sane() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.ci95_half_width(), 0.0);
    }

    #[test]
    fn summary_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Summary::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut left = Summary::new();
        let mut right = Summary::new();
        for &x in &xs[..37] {
            left.record(x);
        }
        for &x in &xs[37..] {
            right.record(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn summary_default_matches_new() {
        // Regression: a derived Default zeroed min/max, so the first sample
        // could never replace them and all-positive data reported min 0.0.
        let mut s = Summary::default();
        s.record(5.0);
        assert_eq!(s.min(), Some(5.0));
        assert_eq!(s.max(), Some(5.0));
        let empty = Summary::default();
        assert_eq!(empty.min(), None);
        assert_eq!(empty.max(), None);
    }

    #[test]
    fn summary_merge_with_empty_sides() {
        let mut a = Summary::new();
        let mut b = Summary::new();
        b.record(3.0);
        a.merge(&b);
        assert_eq!(a.count(), 1);
        let empty = Summary::new();
        a.merge(&empty);
        assert_eq!(a.count(), 1);
    }

    #[test]
    fn histogram_bins_and_edges() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(-1.0); // underflow
        h.record(0.0); // first bin
        h.record(9.999); // last bin
        h.record(10.0); // overflow (half-open range)
        h.record(5.0);
        assert_eq!(h.count(), 5);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.bins()[0], 1);
        assert_eq!(h.bins()[9], 1);
        assert_eq!(h.bins()[5], 1);
    }

    #[test]
    fn histogram_quantiles_bracket_median() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.record(i as f64 + 0.5);
        }
        let med = h.quantile(0.5).unwrap();
        assert!((med - 50.0).abs() < 2.0, "median {med}");
        assert_eq!(h.quantile(0.0), Some(0.0));
        assert!(h.quantile(1.0).unwrap() >= 99.0);
    }

    #[test]
    fn histogram_quantile_empty_none() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = Histogram::new(0.0, 10.0, 5);
        let mut b = Histogram::new(0.0, 10.0, 5);
        a.record(1.0);
        b.record(1.0);
        b.record(11.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.bins()[0], 2);
        assert_eq!(a.overflow(), 1);
    }

    #[test]
    #[should_panic(expected = "bin count mismatch")]
    fn histogram_merge_rejects_mismatched() {
        let mut a = Histogram::new(0.0, 10.0, 5);
        let b = Histogram::new(0.0, 10.0, 6);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "range mismatch")]
    fn histogram_merge_rejects_distinct_ranges_exactly() {
        // The bounds differ by less than f64::EPSILON in absolute terms, so
        // the old fuzzy comparison silently merged histograms with different
        // geometry; exact equality must reject them.
        let mut a = Histogram::new(0.0, 1.0, 5);
        let b = Histogram::new(1e-17, 1.0, 5);
        a.merge(&b);
    }

    #[test]
    fn rate_meter_measures_units_per_second() {
        let mut m = RateMeter::new();
        m.record(SimTime::from_nanos(0), 100.0);
        m.record(SimTime::ZERO + SimDuration::from_secs(2), 300.0);
        assert_eq!(m.events(), 2);
        assert!((m.rate() - 200.0).abs() < 1e-9); // 400 units / 2 s
    }

    #[test]
    fn rate_meter_explicit_horizon() {
        let mut m = RateMeter::new();
        m.open_at(SimTime::ZERO);
        m.record(SimTime::ZERO + SimDuration::from_millis(10), 50.0);
        assert!((m.rate_over(SimDuration::from_secs(10)) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn rate_meter_degenerate_window_is_zero() {
        let mut m = RateMeter::new();
        m.record(SimTime::from_nanos(5), 10.0);
        assert_eq!(m.rate(), 0.0); // zero-length window
        assert_eq!(RateMeter::new().rate(), 0.0); // never opened
    }
}
