//! Statistics collection for experiment harnesses.
//!
//! Three collectors cover everything the reproduction measures:
//!
//! * [`Summary`] — streaming mean/variance/min/max via Welford's algorithm
//!   (numerically stable, O(1) memory),
//! * [`Histogram`] — fixed-width bins with quantile estimation, used for
//!   latency distributions,
//! * [`RateMeter`] — event counts over simulated time windows, used for
//!   throughput series.
//!
//! All collectors are plain values (no interior mutability); parallel sweeps
//! give each run its own collectors and merge afterwards, which is both the
//! idiomatic structured-concurrency shape and the fastest one (no shared
//! cache lines on the hot path).

use crate::time::{SimDuration, SimTime};
use serde::Serialize;

/// Streaming summary statistics (Welford).
#[derive(Clone, Debug, Serialize)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

// A derived `Default` would zero `min`/`max`, whereas the sentinels must be
// ±INFINITY for `record` to work; structs that `#[derive(Default)]` around a
// `Summary` (NetStats, ExecReport) depend on this delegating to `new()`.
impl Default for Summary {
    fn default() -> Self {
        Summary::new()
    }
}

impl Summary {
    /// Empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Record a simulated duration in seconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_secs_f64());
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 for an empty summary).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (n−1 denominator; 0 for fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Half-width of a 95% confidence interval for the mean, using the
    /// Student-t critical value for `n−1` degrees of freedom.
    ///
    /// The normal z=1.96 understates the interval badly at the sample
    /// counts some experiment cells actually have (t is 12.7 at n=2,
    /// 2.78 at n=5); z is only the n→∞ asymptote. With fewer than two
    /// samples no spread is estimable at all, so this returns `None`
    /// rather than a spurious 0 — and never NaN.
    pub fn ci95_half_width(&self) -> Option<f64> {
        if self.count < 2 {
            return None;
        }
        Some(t_critical_95(self.count - 1) * self.std_err())
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }

    /// Merge another summary into this one (parallel-sweep reduction).
    ///
    /// Uses the Chan et al. pairwise update, so merging is equivalent to
    /// having recorded every observation into a single summary.
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Two-sided 95% Student-t critical value for `df` degrees of freedom.
///
/// Exact table for df ≤ 30, linear interpolation between the standard
/// anchors at 40/60/120, and the normal z beyond — the usual printed
/// t-table, which is accurate to the three digits anyone reads off a
/// confidence interval.
pub fn t_critical_95(df: u64) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179,
        2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
        2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
    ];
    const ANCHORS: [(u64, f64); 4] = [(30, 2.042), (40, 2.021), (60, 2.000), (120, 1.980)];
    match df {
        0 => f64::INFINITY, // no spread estimable from one sample
        1..=30 => TABLE[(df - 1) as usize],
        31..=120 => {
            let (mut lo, mut lo_t, mut hi, mut hi_t) = (30, 2.042, 120, 1.980);
            for w in ANCHORS.windows(2) {
                if df >= w[0].0 && df <= w[1].0 {
                    (lo, lo_t, hi, hi_t) = (w[0].0, w[0].1, w[1].0, w[1].1);
                }
            }
            lo_t + (hi_t - lo_t) * (df - lo) as f64 / (hi - lo) as f64
        }
        _ => 1.96,
    }
}

/// Fixed-width-bin histogram over `[lo, hi)` with under/overflow bins and
/// an explicit NaN counter (a NaN sample is a measurement bug upstream; it
/// must be visible, not silently filed in bin 0).
#[derive(Clone, Debug, Serialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    nan: u64,
    count: u64,
}

impl Histogram {
    /// Histogram over `[lo, hi)` with `nbins` equal-width bins.
    ///
    /// Panics if `nbins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Self {
        assert!(nbins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            bins: vec![0; nbins],
            underflow: 0,
            overflow: 0,
            nan: 0,
            count: 0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        if x.is_nan() {
            // NaN fails both range tests below and `as usize` saturates it
            // to 0 — which used to count it in bin 0 as a plausible small
            // sample. Track it separately instead.
            self.nan += 1;
        } else if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let frac = (x - self.lo) / (self.hi - self.lo);
            let idx = ((frac * self.bins.len() as f64) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total observations including under/overflow.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the range's upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// NaN observations (excluded from every quantile).
    pub fn nan(&self) -> u64 {
        self.nan
    }

    /// Raw bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Approximate `q`-quantile (`0 ≤ q ≤ 1`) by linear interpolation within
    /// the containing bin. Underflow counts toward `lo`, overflow toward
    /// `hi`. Returns `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let numeric = self.count - self.nan;
        if numeric == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * numeric as f64;
        let mut cum = self.underflow as f64;
        if target <= cum {
            return Some(self.lo);
        }
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        for (i, &b) in self.bins.iter().enumerate() {
            let next = cum + b as f64;
            if target <= next && b > 0 {
                let within = (target - cum) / b as f64;
                return Some(self.lo + width * (i as f64 + within));
            }
            cum = next;
        }
        Some(self.hi)
    }

    /// Merge another histogram with identical geometry.
    ///
    /// Panics if the ranges or bin counts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bins.len(), other.bins.len(), "bin count mismatch");
        // Exact comparison on purpose: merge partners share a constructor, so
        // their bounds are bit-identical, and an absolute-epsilon test would
        // false-accept distinct large ranges (1e9 vs 1e9 + 100).
        assert!(
            self.lo == other.lo && self.hi == other.hi,
            "range mismatch"
        );
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.nan += other.nan;
        self.count += other.count;
    }
}

/// Counts events against the simulated clock and reports rates.
#[derive(Clone, Debug, Default, Serialize)]
pub struct RateMeter {
    events: u64,
    units: f64,
    started: Option<SimTime>,
    last: Option<SimTime>,
}

impl RateMeter {
    /// Fresh meter; the window opens at the first recorded event (or at an
    /// explicit [`RateMeter::open_at`]).
    pub fn new() -> Self {
        RateMeter::default()
    }

    /// Open the measurement window at `t` without recording an event.
    pub fn open_at(&mut self, t: SimTime) {
        if self.started.is_none() {
            self.started = Some(t);
            self.last = Some(t);
        }
    }

    /// Record one event of `units` size (bytes, frames, …) at time `t`.
    pub fn record(&mut self, t: SimTime, units: f64) {
        self.open_at(t);
        self.events += 1;
        self.units += units;
        if Some(t) > self.last {
            self.last = Some(t);
        }
    }

    /// Number of events recorded.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Sum of recorded unit sizes.
    pub fn units(&self) -> f64 {
        self.units
    }

    /// Window length from open to the last event (zero if unopened).
    pub fn window(&self) -> SimDuration {
        match (self.started, self.last) {
            (Some(s), Some(l)) => l.saturating_since(s),
            _ => SimDuration::ZERO,
        }
    }

    /// Units per second over an explicit horizon.
    pub fn rate_over(&self, horizon: SimDuration) -> f64 {
        let secs = horizon.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.units / secs
        }
    }

    /// Units per second over the observed window.
    pub fn rate(&self) -> f64 {
        self.rate_over(self.window())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic_moments() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert!((s.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn summary_empty_is_sane() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.ci95_half_width(), None);
    }

    #[test]
    fn ci95_uses_student_t_not_z() {
        // n=2 (df=1): t = 12.706, more than six times the normal z.
        let mut s = Summary::new();
        s.record(0.0);
        s.record(2.0);
        // std_err = sqrt(2)/sqrt(2) = 1.0
        let hw = s.ci95_half_width().unwrap();
        assert!((hw - 12.706).abs() < 1e-9, "df=1 half-width {hw}");

        // n=5 (df=4): t = 2.776.
        let mut s5 = Summary::new();
        for x in [1.0, 2.0, 3.0, 4.0, 5.0] {
            s5.record(x);
        }
        let expect = 2.776 * s5.std_err();
        let hw5 = s5.ci95_half_width().unwrap();
        assert!((hw5 - expect).abs() < 1e-12, "df=4 half-width {hw5}");
    }

    #[test]
    fn ci95_is_none_below_two_samples_and_never_nan() {
        let mut s = Summary::new();
        assert_eq!(s.ci95_half_width(), None);
        s.record(7.0);
        // A single sample used to yield 1.96 * 0.0 = 0.0, a fake
        // zero-width interval; now it is honestly indeterminate.
        assert_eq!(s.ci95_half_width(), None);
        s.record(7.0);
        let hw = s.ci95_half_width().unwrap();
        assert!(!hw.is_nan());
        assert_eq!(hw, 0.0, "identical samples: zero spread, not NaN");
    }

    #[test]
    fn t_critical_table_and_asymptote() {
        assert_eq!(t_critical_95(1), 12.706);
        assert_eq!(t_critical_95(4), 2.776);
        assert_eq!(t_critical_95(30), 2.042);
        // Interpolated region is monotone decreasing toward z.
        let mut prev = t_critical_95(30);
        for df in 31..=120 {
            let t = t_critical_95(df);
            assert!(t <= prev && t >= 1.96, "df={df} t={t}");
            prev = t;
        }
        assert_eq!(t_critical_95(120), 1.980);
        assert_eq!(t_critical_95(10_000), 1.96);
    }

    #[test]
    fn summary_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Summary::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut left = Summary::new();
        let mut right = Summary::new();
        for &x in &xs[..37] {
            left.record(x);
        }
        for &x in &xs[37..] {
            right.record(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn summary_default_matches_new() {
        // Regression: a derived Default zeroed min/max, so the first sample
        // could never replace them and all-positive data reported min 0.0.
        let mut s = Summary::default();
        s.record(5.0);
        assert_eq!(s.min(), Some(5.0));
        assert_eq!(s.max(), Some(5.0));
        let empty = Summary::default();
        assert_eq!(empty.min(), None);
        assert_eq!(empty.max(), None);
    }

    #[test]
    fn summary_merge_with_empty_sides() {
        let mut a = Summary::new();
        let mut b = Summary::new();
        b.record(3.0);
        a.merge(&b);
        assert_eq!(a.count(), 1);
        let empty = Summary::new();
        a.merge(&empty);
        assert_eq!(a.count(), 1);
    }

    #[test]
    fn histogram_bins_and_edges() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(-1.0); // underflow
        h.record(0.0); // first bin
        h.record(9.999); // last bin
        h.record(10.0); // overflow (half-open range)
        h.record(5.0);
        assert_eq!(h.count(), 5);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.bins()[0], 1);
        assert_eq!(h.bins()[9], 1);
        assert_eq!(h.bins()[5], 1);
    }

    #[test]
    fn histogram_quantiles_bracket_median() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.record(i as f64 + 0.5);
        }
        let med = h.quantile(0.5).unwrap();
        assert!((med - 50.0).abs() < 2.0, "median {med}");
        assert_eq!(h.quantile(0.0), Some(0.0));
        assert!(h.quantile(1.0).unwrap() >= 99.0);
    }

    #[test]
    fn histogram_quantile_empty_none() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = Histogram::new(0.0, 10.0, 5);
        let mut b = Histogram::new(0.0, 10.0, 5);
        a.record(1.0);
        b.record(1.0);
        b.record(11.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.bins()[0], 2);
        assert_eq!(a.overflow(), 1);
    }

    #[test]
    fn histogram_nan_is_counted_not_binned() {
        // Regression: NaN fails both range tests, and `as usize` saturates
        // NaN to 0, so NaN samples used to masquerade as bin-0 entries.
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.record(f64::NAN);
        h.record(1.0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.nan(), 1);
        assert_eq!(h.bins()[0], 1, "only the real sample lands in bin 0");
        assert_eq!(h.underflow(), 0);
        // Quantiles are over numeric samples only: the median of {1.0}.
        let med = h.quantile(0.5).unwrap();
        assert!((0.0..2.0).contains(&med), "median {med}");

        let mut all_nan = Histogram::new(0.0, 10.0, 5);
        all_nan.record(f64::NAN);
        assert_eq!(all_nan.quantile(0.5), None);

        let mut other = Histogram::new(0.0, 10.0, 5);
        other.record(f64::NAN);
        h.merge(&other);
        assert_eq!(h.nan(), 2);
        assert_eq!(h.count(), 3);
    }

    #[test]
    #[should_panic(expected = "bin count mismatch")]
    fn histogram_merge_rejects_mismatched() {
        let mut a = Histogram::new(0.0, 10.0, 5);
        let b = Histogram::new(0.0, 10.0, 6);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "range mismatch")]
    fn histogram_merge_rejects_distinct_ranges_exactly() {
        // The bounds differ by less than f64::EPSILON in absolute terms, so
        // the old fuzzy comparison silently merged histograms with different
        // geometry; exact equality must reject them.
        let mut a = Histogram::new(0.0, 1.0, 5);
        let b = Histogram::new(1e-17, 1.0, 5);
        a.merge(&b);
    }

    #[test]
    fn rate_meter_measures_units_per_second() {
        let mut m = RateMeter::new();
        m.record(SimTime::from_nanos(0), 100.0);
        m.record(SimTime::ZERO + SimDuration::from_secs(2), 300.0);
        assert_eq!(m.events(), 2);
        assert!((m.rate() - 200.0).abs() < 1e-9); // 400 units / 2 s
    }

    #[test]
    fn rate_meter_explicit_horizon() {
        let mut m = RateMeter::new();
        m.open_at(SimTime::ZERO);
        m.record(SimTime::ZERO + SimDuration::from_millis(10), 50.0);
        assert!((m.rate_over(SimDuration::from_secs(10)) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn rate_meter_degenerate_window_is_zero() {
        let mut m = RateMeter::new();
        m.record(SimTime::from_nanos(5), 10.0);
        assert_eq!(m.rate(), 0.0); // zero-length window
        assert_eq!(RateMeter::new().rate(), 0.0); // never opened
    }
}
