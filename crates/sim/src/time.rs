//! Simulated time.
//!
//! Time is a monotonically non-decreasing `u64` count of nanoseconds since
//! the start of the simulation. Nanosecond resolution comfortably covers the
//! timescales the substrates need — from 802.11 slot times (20 µs) up to the
//! multi-minute presentation sessions of the Smart Projector scenario —
//! while keeping arithmetic exact (no floating-point drift in the event
//! queue).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time (nanoseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span of simulated time (nanoseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch, `t = 0`.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; useful as an "infinity" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since simulation start.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Millisecond count since simulation start (truncating).
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Duration elapsed since `earlier`, saturating to zero if `earlier` is
    /// in the future (never panics; simulators compare clocks defensively).
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked advance; `None` on overflow.
    #[inline]
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// Largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds (rounds to the nearest nanosecond;
    /// negative inputs clamp to zero).
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            SimDuration(0)
        } else {
            SimDuration((s * 1e9).round() as u64)
        }
    }

    /// Raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microsecond count (truncating).
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Millisecond count (truncating).
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional seconds (for reporting and rate computations).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True if this span is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiply by an integer factor, saturating on overflow.
    #[inline]
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// Transmission time of `bits` at `bits_per_sec` (ceiling to whole ns).
    ///
    /// This is the canonical PHY airtime computation used by `aroma-net`;
    /// centralising it keeps MAC timing consistent across call sites.
    #[inline]
    pub fn for_bits(bits: u64, bits_per_sec: u64) -> SimDuration {
        assert!(bits_per_sec > 0, "rate must be positive");
        // ceil(bits * 1e9 / rate) without intermediate overflow for any
        // realistic frame size (bits < 2^32, so bits * 1e9 < 2^62).
        let ns = (bits as u128 * 1_000_000_000u128).div_ceil(bits_per_sec as u128);
        SimDuration(ns.min(u64::MAX as u128) as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow: rhs is later than lhs"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration subtraction underflow"),
        )
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", format_ns(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&format_ns(self.0))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&format_ns(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&format_ns(self.0))
    }
}

/// Render a nanosecond count with a human-scale unit.
fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimDuration::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimDuration::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimTime::from_nanos(7).as_nanos(), 7);
    }

    #[test]
    fn time_plus_duration_advances() {
        let t = SimTime::from_nanos(100) + SimDuration::from_nanos(50);
        assert_eq!(t.as_nanos(), 150);
    }

    #[test]
    fn time_difference_is_duration() {
        let a = SimTime::from_nanos(100);
        let b = SimTime::from_nanos(250);
        assert_eq!(b - a, SimDuration::from_nanos(150));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn negative_time_difference_panics() {
        let a = SimTime::from_nanos(100);
        let b = SimTime::from_nanos(250);
        let _ = a - b;
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_nanos(100);
        let b = SimTime::from_nanos(250);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration::from_nanos(150));
    }

    #[test]
    fn airtime_for_bits_ceils() {
        // 1000 bits at 1 Mbps = exactly 1 ms.
        assert_eq!(
            SimDuration::for_bits(1000, 1_000_000),
            SimDuration::from_millis(1)
        );
        // 1 bit at 3 bps = ceil(1e9/3) ns.
        assert_eq!(SimDuration::for_bits(1, 3).as_nanos(), 333_333_334);
    }

    #[test]
    fn airtime_scales_inversely_with_rate() {
        let slow = SimDuration::for_bits(8 * 1500, 1_000_000);
        let fast = SimDuration::for_bits(8 * 1500, 11_000_000);
        assert!(slow > fast * 10);
        assert!(slow < fast * 12);
    }

    #[test]
    fn from_secs_f64_rounds_and_clamps() {
        assert_eq!(SimDuration::from_secs_f64(1.5).as_millis(), 1500);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration::from_nanos(5).to_string(), "5ns");
        assert_eq!(SimDuration::from_micros(5).to_string(), "5.000us");
        assert_eq!(SimDuration::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimDuration::from_secs(5).to_string(), "5.000s");
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert!(SimTime::MAX.checked_add(SimDuration::from_nanos(1)).is_none());
        assert_eq!(
            SimTime::ZERO.checked_add(SimDuration::from_secs(1)),
            Some(SimTime::from_nanos(1_000_000_000))
        );
    }

    #[test]
    fn ordering_is_chronological() {
        let mut ts = [
            SimTime::from_nanos(30),
            SimTime::from_nanos(10),
            SimTime::from_nanos(20),
        ];
        ts.sort();
        assert_eq!(
            ts.iter().map(|t| t.as_nanos()).collect::<Vec<_>>(),
            vec![10, 20, 30]
        );
    }
}
