//! Re-export of the `aroma-telemetry` recorder plus JSON rendering.
//!
//! `aroma-telemetry` is a dependency leaf (it cannot see [`crate::report`]),
//! so the substrate crates reach it through this module and the JSON glue
//! lives here: [`snapshot_json`] turns a [`Snapshot`] into the same
//! [`Json`](crate::report::Json) tree the experiment harnesses already emit.

pub use aroma_telemetry::*;

use crate::report::Json;

/// Render a snapshot as JSON. `include_trace` controls whether the (possibly
/// large) trace ring is embedded; metrics, the dropped-events counter and
/// the handler profile are always included.
pub fn snapshot_json(snap: &Snapshot, include_trace: bool) -> Json {
    let counters = Json::Obj(
        snap.counters
            .iter()
            .map(|&(n, v)| (n.to_string(), Json::from(v)))
            .collect(),
    );
    let gauges = Json::Obj(
        snap.gauges
            .iter()
            .map(|&(n, v)| (n.to_string(), Json::from(v)))
            .collect(),
    );
    let summaries = Json::Obj(
        snap.summaries
            .iter()
            .map(|s| {
                (
                    s.name.to_string(),
                    Json::obj(vec![
                        ("count", Json::from(s.count)),
                        ("mean", Json::from(s.mean)),
                        ("std_dev", Json::from(s.std_dev)),
                        ("min", opt_num(s.min)),
                        ("max", opt_num(s.max)),
                    ]),
                )
            })
            .collect(),
    );
    let histograms = Json::Obj(
        snap.histograms
            .iter()
            .map(|h| {
                (
                    h.name.to_string(),
                    Json::obj(vec![
                        ("lo", Json::from(h.lo)),
                        ("hi", Json::from(h.hi)),
                        (
                            "bins",
                            Json::Arr(h.bins.iter().map(|&b| Json::from(b)).collect()),
                        ),
                        ("underflow", Json::from(h.underflow)),
                        ("overflow", Json::from(h.overflow)),
                        ("nan", Json::from(h.nan)),
                        ("count", Json::from(h.count)),
                        ("p50", opt_num(h.p50)),
                        ("p99", opt_num(h.p99)),
                    ]),
                )
            })
            .collect(),
    );
    let profile = Json::Arr(
        snap.profile
            .iter()
            .map(|p| {
                Json::obj(vec![
                    ("handler", Json::from(p.name)),
                    ("calls", Json::from(p.calls)),
                    ("total_us", Json::from(p.total_nanos as f64 / 1e3)),
                    ("mean_ns", Json::from(p.mean_nanos)),
                ])
            })
            .collect(),
    );
    let mut fields = vec![
        ("counters", counters),
        ("gauges", gauges),
        ("summaries", summaries),
        ("histograms", histograms),
        ("profile", profile),
        ("trace_dropped", Json::from(snap.trace_dropped)),
    ];
    if include_trace {
        fields.push((
            "trace",
            Json::Arr(snap.trace.iter().map(trace_event_json).collect()),
        ));
    } else {
        fields.push(("trace_len", Json::from(snap.trace.len())));
    }
    Json::obj(fields)
}

fn trace_event_json(ev: &TraceEvent) -> Json {
    Json::obj(vec![
        ("t_ns", Json::from(ev.t_nanos)),
        ("layer", Json::from(ev.layer.label())),
        ("name", Json::from(ev.name)),
        ("node", Json::from(ev.node as u64)),
        ("a", Json::Num(ev.a as f64)),
        ("b", Json::Num(ev.b as f64)),
    ])
}

fn opt_num(v: Option<f64>) -> Json {
    v.map_or(Json::Null, Json::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_renders_to_json() {
        let mut t = Telemetry::enabled(TelemetryConfig::default());
        t.count("mac.retries", 3);
        t.observe("svc", 2.0);
        t.event(10, Layer::Resource, "mac.tx", 4, 1, 0);
        t.profile("MacTick", 500);
        let snap = t.snapshot().unwrap();

        let without = snapshot_json(&snap, false).render();
        assert!(without.contains("\"mac.retries\":3"));
        assert!(without.contains("\"trace_len\":1"));
        assert!(!without.contains("\"mac.tx\""));

        let with = snapshot_json(&snap, true).render();
        assert!(with.contains("\"mac.tx\""));
        assert!(with.contains("\"resource\""));
        assert!(with.contains("\"MacTick\""));
    }
}
