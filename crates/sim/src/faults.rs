//! Re-export of the `aroma-faults` fault-injection plane plus `SimTime` /
//! `SimRng` builder glue.
//!
//! `aroma-faults` is a dependency leaf (raw-nanosecond timestamps, raw
//! `u32` node indices), so the substrate crates reach it through this
//! module: [`TimedScheduleExt`] lets fault scripts be written in `SimTime`
//! terms, and [`random_storm`] derives a whole schedule from a [`SimRng`]
//! — the "built from `SimRng` *or* an explicit script" half of the fault
//! plane's API.

pub use aroma_faults::*;

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// `SimTime`-flavoured sugar over [`FaultScheduleBuilder`] (which speaks
/// raw nanoseconds so the leaf crate stays std-only).
pub trait TimedScheduleExt: Sized {
    /// Schedule a raw operation at `t`.
    fn op_at(self, t: SimTime, op: FaultOp) -> Self;
    /// Crash `node` at `down` dropping app state, restore it at `up`.
    fn crash_restart_at(self, down: SimTime, up: SimTime, node: u32) -> Self;
    /// Power-cycle `node` keeping its app state.
    fn power_cycle_at(self, down: SimTime, up: SimTime, node: u32) -> Self;
    /// Partition mask `a` from mask `b` over `[t0, t1)`.
    fn partition_at(self, t0: SimTime, t1: SimTime, a: u64, b: u64) -> Self;
    /// Burst frame loss with probability `loss` over `[t0, t1)`.
    fn burst_loss_at(self, t0: SimTime, t1: SimTime, loss: f64) -> Self;
    /// Skew `node`'s timer delays by `factor` from `t` on.
    fn clock_skew_at(self, t: SimTime, node: u32, factor: f64) -> Self;
    /// Kill the app process on `node` at `kill`, restart it at `up`.
    fn process_kill_restart_at(self, kill: SimTime, up: SimTime, node: u32) -> Self;
    /// Crash `node` at `down` and snapshot-restore it `downtime` later.
    fn crash_restore_after_at(self, down: SimTime, downtime: SimDuration, node: u32) -> Self;
}

impl TimedScheduleExt for FaultScheduleBuilder {
    fn op_at(self, t: SimTime, op: FaultOp) -> Self {
        self.op(t.as_nanos(), op)
    }
    fn crash_restart_at(self, down: SimTime, up: SimTime, node: u32) -> Self {
        self.crash_restart(down.as_nanos(), up.as_nanos(), node)
    }
    fn power_cycle_at(self, down: SimTime, up: SimTime, node: u32) -> Self {
        self.power_cycle(down.as_nanos(), up.as_nanos(), node)
    }
    fn partition_at(self, t0: SimTime, t1: SimTime, a: u64, b: u64) -> Self {
        self.partition(t0.as_nanos(), t1.as_nanos(), a, b)
    }
    fn burst_loss_at(self, t0: SimTime, t1: SimTime, loss: f64) -> Self {
        self.burst_loss(t0.as_nanos(), t1.as_nanos(), loss)
    }
    fn clock_skew_at(self, t: SimTime, node: u32, factor: f64) -> Self {
        self.clock_skew(t.as_nanos(), node, factor)
    }
    fn process_kill_restart_at(self, kill: SimTime, up: SimTime, node: u32) -> Self {
        self.process_kill_restart(kill.as_nanos(), up.as_nanos(), node)
    }
    fn crash_restore_after_at(self, down: SimTime, downtime: SimDuration, node: u32) -> Self {
        self.crash_restore_after(down.as_nanos(), downtime.as_nanos(), node)
    }
}

/// Tuning knobs for [`random_storm`].
#[derive(Clone, Copy, Debug)]
pub struct StormConfig {
    /// How many fault episodes to draw.
    pub episodes: usize,
    /// Shortest episode duration.
    pub min_len: SimDuration,
    /// Longest episode duration.
    pub max_len: SimDuration,
    /// Burst-loss probability range for loss episodes.
    pub loss: (f64, f64),
    /// Clock-skew factor range for skew episodes.
    pub skew: (f64, f64),
}

impl Default for StormConfig {
    fn default() -> Self {
        StormConfig {
            episodes: 6,
            min_len: SimDuration::from_millis(200),
            max_len: SimDuration::from_secs(2),
            loss: (0.2, 0.8),
            skew: (0.5, 2.0),
        }
    }
}

/// Derive a whole fault storm from `rng`: `cfg.episodes` random episodes
/// (crash/restart, power-cycle, blackout, burst loss, clock skew, process
/// kill) uniformly placed in `[0, horizon)` over `node_count` nodes. Same
/// rng state ⇒ same schedule; the schedule's own seed (for the injector's
/// burst-loss coin flips) is drawn from `rng` too.
pub fn random_storm(
    rng: &mut SimRng,
    horizon: SimTime,
    node_count: u32,
    cfg: &StormConfig,
) -> FaultSchedule {
    assert!((1..=64).contains(&node_count));
    let seed = rng.next_u64_raw();
    let mut b = FaultSchedule::builder(seed);
    for _ in 0..cfg.episodes {
        let len = SimDuration::from_nanos(
            cfg.min_len.as_nanos()
                + rng.below(cfg.max_len.as_nanos().saturating_sub(cfg.min_len.as_nanos()).max(1)),
        );
        let latest_start = horizon.as_nanos().saturating_sub(len.as_nanos()).max(1);
        let t0 = SimTime::from_nanos(rng.below(latest_start));
        let t1 = t0 + len;
        let node = rng.below(node_count as u64) as u32;
        match rng.below(6) {
            0 => b = b.crash_restart_at(t0, t1, node),
            1 => b = b.power_cycle_at(t0, t1, node),
            2 if node_count > 1 => b = b.op_at(t0, blackout_ops(node, node_count).0).op_at(t1, FaultOp::PartitionEnd),
            3 => b = b.burst_loss_at(t0, t1, rng.uniform_range(cfg.loss.0, cfg.loss.1)),
            4 => {
                b = b
                    .clock_skew_at(t0, node, rng.uniform_range(cfg.skew.0, cfg.skew.1))
                    .clock_skew_at(t1, node, 1.0)
            }
            _ => b = b.process_kill_restart_at(t0, t1, node),
        }
    }
    b.build()
}

/// The partition op (and its end marker) that blacks out `node` from the
/// rest of a `node_count`-node world.
fn blackout_ops(node: u32, node_count: u32) -> (FaultOp, FaultOp) {
    let a = 1u64 << node;
    let all = if node_count == 64 { u64::MAX } else { (1u64 << node_count) - 1 };
    (FaultOp::PartitionStart { a, b: all & !a }, FaultOp::PartitionEnd)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_builder_matches_raw() {
        let timed = FaultSchedule::builder(9)
            .crash_restart_at(SimTime::from_nanos(100), SimTime::from_nanos(200), 1)
            .burst_loss_at(SimTime::from_nanos(50), SimTime::from_nanos(60), 0.3)
            .build();
        let raw = FaultSchedule::builder(9)
            .crash_restart(100, 200, 1)
            .burst_loss(50, 60, 0.3)
            .build();
        assert_eq!(timed, raw);
    }

    #[test]
    fn random_storm_is_seed_stable() {
        let mk = || {
            let mut rng = SimRng::new(0xBAD);
            random_storm(&mut rng, SimTime::from_nanos(10_000_000_000), 4, &StormConfig::default())
        };
        let a = mk();
        let b = mk();
        assert_eq!(a, b);
        assert!(!a.is_empty());
        // Every op validates and is in time order.
        let mut last = 0;
        for &(t, _) in a.ops() {
            assert!(t >= last);
            last = t;
        }
    }
}
