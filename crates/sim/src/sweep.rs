//! Parallel parameter sweeps.
//!
//! The experiment harnesses run many *independent* simulations (one per
//! parameter point × seed). Following the data-parallel idiom of the
//! hpc-parallel guides, each run owns its entire world — there is no shared
//! mutable state — and results are collected per-thread and stitched back in
//! input order, so a parallel sweep is observationally identical to the
//! sequential loop (same outputs, same order), just faster.
//!
//! Built on `std::thread::scope`: structured concurrency with borrowing of
//! the parameter slice, no `'static` bounds, and panics propagated to the
//! caller instead of being silently swallowed.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Run `f` over every item of `params`, in parallel, preserving input order
/// in the result vector.
///
/// `f` must be `Sync` (it is shared by reference across worker threads) and
/// is handed `(index, &param)`. Worker count defaults to available
/// parallelism, capped by the number of items.
///
/// ```
/// let squares = aroma_sim::sweep::run(&[1u64, 2, 3, 4], |_, &x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn run<P, R, F>(params: &[P], f: F) -> Vec<R>
where
    P: Sync,
    R: Send,
    F: Fn(usize, &P) -> R + Sync,
{
    run_with_threads(params, available_workers(params.len()), f)
}

/// As [`run`], with an explicit worker count (`0` is treated as `1`).
pub fn run_with_threads<P, R, F>(params: &[P], workers: usize, f: F) -> Vec<R>
where
    P: Sync,
    R: Send,
    F: Fn(usize, &P) -> R + Sync,
{
    let n = params.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.max(1).min(n);
    if workers == 1 {
        return params.iter().enumerate().map(|(i, p)| f(i, p)).collect();
    }

    // Dynamic work-stealing over a shared index: cheap, balances uneven run
    // times (a dense-interference point costs far more than a sparse one).
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();

    std::thread::scope(|scope| {
        // Each worker collects (index, result) pairs locally; the parent
        // merges after join, so no output slot is ever shared.
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let f = &f;
                // lint:allow(sim-thread-spawn): workers only race for input indices; results are merged into `slots` by index after join, so the output is scheduling-independent (pinned by sweep tests and check's parallel_equivalence proptests)
                scope.spawn(move || {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i, &params[i])));
                    }
                    local
                })
            })
            .collect();

        for h in handles {
            for (i, r) in h.join().expect("sweep worker panicked") {
                slots[i] = Some(r);
            }
        }
    });

    slots
        .into_iter()
        .map(|s| s.expect("every sweep slot filled"))
        .collect()
}

/// Cartesian product of two parameter axes, row-major (`a` outer, `b`
/// inner) — the usual shape for "sweep X for each Y" experiment grids.
pub fn grid<A: Clone, B: Clone>(a: &[A], b: &[B]) -> Vec<(A, B)> {
    let mut out = Vec::with_capacity(a.len() * b.len());
    for x in a {
        for y in b {
            out.push((x.clone(), y.clone()));
        }
    }
    out
}

/// `n` evenly spaced points from `lo` to `hi` inclusive (`n ≥ 2`).
pub fn linspace(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2, "linspace needs at least two points");
    let step = (hi - lo) / (n - 1) as f64;
    (0..n).map(|i| lo + step * i as f64).collect()
}

fn available_workers(items: usize) -> usize {
    // lint:allow(sim-os-env): host parallelism only sizes the worker pool; run_with_threads output is worker-count-independent by construction
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(items.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn preserves_input_order() {
        let params: Vec<u64> = (0..257).collect();
        let out = run(&params, |i, &p| {
            assert_eq!(i as u64, p);
            p * 2
        });
        assert_eq!(out, params.iter().map(|p| p * 2).collect::<Vec<_>>());
    }

    #[test]
    fn runs_every_item_exactly_once() {
        let calls = AtomicU64::new(0);
        let params: Vec<u32> = (0..100).collect();
        let _ = run(&params, |_, _| {
            calls.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(calls.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = run(&[] as &[u32], |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_worker_matches_parallel() {
        let params: Vec<u64> = (0..64).collect();
        let seq = run_with_threads(&params, 1, |i, &p| p.wrapping_mul(i as u64 + 1));
        let par = run_with_threads(&params, 8, |i, &p| p.wrapping_mul(i as u64 + 1));
        assert_eq!(seq, par);
    }

    #[test]
    fn zero_workers_treated_as_one() {
        let out = run_with_threads(&[1u32, 2, 3], 0, |_, &x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    #[should_panic]
    fn worker_panic_propagates() {
        let _ = run_with_threads(&[1u32, 2, 3, 4], 2, |_, &x| {
            if x == 3 {
                panic!("boom");
            }
            x
        });
    }

    #[test]
    fn grid_is_row_major() {
        let g = grid(&[1, 2], &["a", "b", "c"]);
        assert_eq!(g.len(), 6);
        assert_eq!(g[0], (1, "a"));
        assert_eq!(g[2], (1, "c"));
        assert_eq!(g[3], (2, "a"));
    }

    #[test]
    fn linspace_endpoints_and_spacing() {
        let xs = linspace(0.0, 10.0, 5);
        assert_eq!(xs, vec![0.0, 2.5, 5.0, 7.5, 10.0]);
    }

    #[test]
    fn borrows_environment_without_static() {
        // The closure borrows `base` from the enclosing stack frame — this is
        // exactly what std::thread::scope buys us over spawn.
        let base = [10u64, 20, 30];
        let out = run(&[0usize, 1, 2], |_, &i| base[i] + 1);
        assert_eq!(out, vec![11, 21, 31]);
    }
}
