//! Parallel parameter sweeps and the persistent worker pool.
//!
//! The experiment harnesses run many *independent* simulations (one per
//! parameter point × seed). Following the data-parallel idiom of the
//! hpc-parallel guides, each run owns its entire world — there is no shared
//! mutable state — and results are collected per-thread and stitched back in
//! input order, so a parallel sweep is observationally identical to the
//! sequential loop (same outputs, same order), just faster.
//!
//! Built on `std::thread::scope`: structured concurrency with borrowing of
//! the parameter slice, no `'static` bounds, and panics propagated to the
//! caller instead of being silently swallowed.
//!
//! ## When parallelism pays
//!
//! Spawning a thread scope costs tens of microseconds per worker; handing a
//! dozen microsecond-scale items to four threads is strictly slower than a
//! loop. [`parallel_worthwhile`] is the shared cost model: callers pass an
//! estimated per-item cost and the dispatch overhead of the mechanism they
//! would use, and get back whether fanning out can pay for itself.
//! [`run_hinted`] applies it to one-shot sweeps; [`run_with_threads`]
//! assumes whole-simulation items (≥ ~1 ms) and therefore parallelises
//! essentially whenever it has more items than nothing.
//!
//! ## The persistent pool
//!
//! [`pool_scope`] keeps one set of workers alive across many dispatches —
//! for phase-structured engines (the model checker's sharded explorer) that
//! would otherwise spawn and join a fresh scope per frontier tile. Two
//! things distinguish it from [`run`]:
//!
//! * **One handler, many commands.** The worker closure is fixed when the
//!   pool is created; each [`PoolHandle::run`] broadcasts a plain-data
//!   command to it. This sidesteps the `'static`/type-erasure problem of
//!   safe Rust thread pools: the handler may borrow anything created
//!   *before* the pool, and commands carry only indices and bounds.
//! * **Stable worker↔item affinity.** [`Dispatch::Affine`] hands item `i`
//!   to worker `i`, every time. An engine that partitions its state by
//!   worker index therefore touches each partition from one OS thread
//!   only — which keeps every allocation's birth and death on the same
//!   thread, the property that makes sharded exploration scale (see
//!   DESIGN.md §12: cross-thread free churn was the old engine's 3x
//!   overhead).
//!
//! The calling thread participates as worker 0, so `workers == 1` runs
//! everything inline with zero threads spawned.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Run `f` over every item of `params`, in parallel, preserving input order
/// in the result vector.
///
/// `f` must be `Sync` (it is shared by reference across worker threads) and
/// is handed `(index, &param)`. Worker count defaults to available
/// parallelism, capped by the number of items.
///
/// ```
/// let squares = aroma_sim::sweep::run(&[1u64, 2, 3, 4], |_, &x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn run<P, R, F>(params: &[P], f: F) -> Vec<R>
where
    P: Sync,
    R: Send,
    F: Fn(usize, &P) -> R + Sync,
{
    run_with_threads(params, available_workers(params.len()), f)
}

/// Estimated cost of one sweep item when the caller gives no hint: a whole
/// simulation run, conservatively ≥ 1 ms. With this default the sequential
/// fallback in [`run_hinted`] only triggers when the items could not keep
/// the workers busy at all.
const SWEEP_ITEM_DEFAULT_NS: u64 = 1_000_000;

/// Per-worker cost of standing up and joining a `std::thread::scope`
/// (spawn + stack + join, Linux ballpark). The dispatch overhead to weigh
/// against when the mechanism is a fresh scope per call.
pub const SPAWN_DISPATCH_NS: u64 = 60_000;

/// Per-worker cost of one [`PoolHandle::run`] dispatch (condvar wake +
/// barrier). Much cheaper than a spawn, which is the pool's point — but
/// still worth skipping for sub-microsecond rounds.
pub const POOL_DISPATCH_NS: u64 = 8_000;

/// The shared cost model for "should this fan out?": true when the total
/// estimated work is at least 4x the dispatch overhead of putting all
/// `workers` on it. Callers pass the dispatch constant matching their
/// mechanism ([`SPAWN_DISPATCH_NS`] or [`POOL_DISPATCH_NS`]); the factor 4
/// demands a clear win before paying coordination cost, since the estimate
/// is rough and a wrong "sequential" costs only the unrealised speedup
/// while a wrong "parallel" costs wall-clock outright.
pub fn parallel_worthwhile(
    items: usize,
    workers: usize,
    est_ns_per_item: u64,
    dispatch_ns_per_worker: u64,
) -> bool {
    if workers <= 1 || items <= 1 {
        return false;
    }
    let total = (items as u64).saturating_mul(est_ns_per_item);
    total >= 4u64.saturating_mul(workers as u64).saturating_mul(dispatch_ns_per_worker)
}

/// As [`run`], with an explicit worker count (`0` is treated as `1`).
/// Items are assumed to be whole simulation runs (≥ ~1 ms each); for
/// fine-grained work pass an honest estimate to [`run_hinted`] instead.
pub fn run_with_threads<P, R, F>(params: &[P], workers: usize, f: F) -> Vec<R>
where
    P: Sync,
    R: Send,
    F: Fn(usize, &P) -> R + Sync,
{
    run_hinted(params, workers, SWEEP_ITEM_DEFAULT_NS, f)
}

/// As [`run_with_threads`], with a caller-supplied per-item cost estimate
/// in nanoseconds. Falls back to the plain sequential loop whenever
/// [`parallel_worthwhile`] says a fresh thread scope cannot pay for
/// itself — tiny rounds (a liveness frontier of a few hundred nodes, a
/// handful of cheap closures) must not spawn threads for microseconds of
/// work. The output is identical either way: results in input order.
pub fn run_hinted<P, R, F>(params: &[P], workers: usize, est_ns_per_item: u64, f: F) -> Vec<R>
where
    P: Sync,
    R: Send,
    F: Fn(usize, &P) -> R + Sync,
{
    let n = params.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.max(1).min(n);
    if workers == 1 || !parallel_worthwhile(n, workers, est_ns_per_item, SPAWN_DISPATCH_NS) {
        return params.iter().enumerate().map(|(i, p)| f(i, p)).collect();
    }

    // Dynamic work-stealing over a shared index: cheap, balances uneven run
    // times (a dense-interference point costs far more than a sparse one).
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();

    std::thread::scope(|scope| {
        // Each worker collects (index, result) pairs locally; the parent
        // merges after join, so no output slot is ever shared.
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let f = &f;
                // lint:allow(sim-thread-spawn): workers only race for input indices; results are merged into `slots` by index after join, so the output is scheduling-independent (pinned by sweep tests and check's parallel_equivalence proptests)
                scope.spawn(move || {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i, &params[i])));
                    }
                    local
                })
            })
            .collect();

        for h in handles {
            for (i, r) in h.join().expect("sweep worker panicked") {
                slots[i] = Some(r);
            }
        }
    });

    slots
        .into_iter()
        .map(|s| s.expect("every sweep slot filled"))
        .collect()
}

/// How a [`PoolHandle::run`] spreads its items over the workers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dispatch {
    /// Item `i` runs on worker `i` — requires `items <= workers`. The
    /// assignment is identical on every dispatch, so per-worker state
    /// (shards, arenas) is only ever touched from one OS thread.
    Affine,
    /// Workers race for items over a shared counter — best for chunked
    /// scans where item costs are uneven and no state is worker-owned.
    /// Results must be deposited per-*item* to stay order-deterministic.
    Steal,
}

/// One broadcast command: the shared `Arc` lets every worker (and the
/// caller) execute against the same command value without re-locking.
struct PoolJob<C> {
    cmd: Arc<C>,
    items: usize,
    dispatch: Dispatch,
}

impl<C> Clone for PoolJob<C> {
    fn clone(&self) -> Self {
        PoolJob {
            cmd: Arc::clone(&self.cmd),
            items: self.items,
            dispatch: self.dispatch,
        }
    }
}

struct PoolState<C> {
    /// Bumped per dispatch; workers run a job exactly once per epoch.
    epoch: u64,
    job: Option<PoolJob<C>>,
    /// Spawned workers (not the caller) that finished the current epoch.
    finished: usize,
    panicked: bool,
    shutdown: bool,
}

struct PoolCore<C> {
    state: Mutex<PoolState<C>>,
    start: Condvar,
    done: Condvar,
    next: AtomicUsize,
}

/// Handle to a live [`pool_scope`] pool: dispatch commands with
/// [`PoolHandle::run`].
pub struct PoolHandle<'a, C, H> {
    core: &'a PoolCore<C>,
    handler: &'a H,
    workers: usize,
}

impl<C, H> PoolHandle<'_, C, H>
where
    C: Send + Sync,
    H: Fn(usize, &C, usize) + Sync,
{
    /// Number of workers in the pool (including the calling thread).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Broadcast `cmd` and block until every worker has processed its
    /// share of `items`. The calling thread participates as worker 0.
    /// Panics (after the epoch fully drains, so shared state is quiescent)
    /// if any worker's handler panicked.
    pub fn run(&self, cmd: C, items: usize, dispatch: Dispatch) {
        if items == 0 {
            return;
        }
        if dispatch == Dispatch::Affine {
            assert!(
                items <= self.workers,
                "affine dispatch requires items <= workers"
            );
        }
        let job = PoolJob {
            cmd: Arc::new(cmd),
            items,
            dispatch,
        };
        if self.workers == 1 {
            run_job(self.handler, 0, &job, &self.core.next);
            return;
        }
        {
            let mut st = self.core.state.lock().expect("pool state lock");
            self.core.next.store(0, Ordering::Relaxed);
            st.epoch += 1;
            st.finished = 0;
            st.job = Some(job.clone());
            self.core.start.notify_all();
        }
        let mine = catch_unwind(AssertUnwindSafe(|| {
            run_job(self.handler, 0, &job, &self.core.next)
        }));
        let mut st = self.core.state.lock().expect("pool state lock");
        while st.finished < self.workers - 1 {
            st = self.core.done.wait(st).expect("pool done wait");
        }
        st.job = None;
        let worker_panicked = std::mem::take(&mut st.panicked);
        drop(st);
        if let Err(payload) = mine {
            resume_unwind(payload);
        }
        assert!(!worker_panicked, "pool worker panicked");
    }
}

fn run_job<C, H>(handler: &H, worker: usize, job: &PoolJob<C>, next: &AtomicUsize)
where
    H: Fn(usize, &C, usize),
{
    match job.dispatch {
        Dispatch::Affine => {
            if worker < job.items {
                handler(worker, &job.cmd, worker);
            }
        }
        Dispatch::Steal => loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= job.items {
                break;
            }
            handler(worker, &job.cmd, i);
        },
    }
}

fn worker_loop<C, H>(core: &PoolCore<C>, handler: &H, worker: usize, workers: usize)
where
    H: Fn(usize, &C, usize),
{
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = core.state.lock().expect("pool state lock");
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    seen_epoch = st.epoch;
                    break st.job.clone().expect("job set whenever epoch advances");
                }
                st = core.start.wait(st).expect("pool start wait");
            }
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            run_job(handler, worker, &job, &core.next)
        }));
        let mut st = core.state.lock().expect("pool state lock");
        if outcome.is_err() {
            st.panicked = true;
        }
        st.finished += 1;
        if st.finished >= workers - 1 {
            core.done.notify_one();
        }
    }
}

/// Wakes the workers out of their command wait when the body finishes —
/// including by panic, so the scope join below can never deadlock.
struct PoolShutdown<'a, C>(&'a PoolCore<C>);

impl<C> Drop for PoolShutdown<'_, C> {
    fn drop(&mut self) {
        let mut st = self.0.state.lock().expect("pool state lock");
        st.shutdown = true;
        self.0.start.notify_all();
    }
}

/// Keep `workers - 1` threads alive for the duration of `body`, all
/// running `handler` against whatever commands `body` dispatches through
/// the [`PoolHandle`]. The handler is fixed at pool creation and may
/// borrow anything outlived by this call; commands (`C`) are typically
/// plain enums of bounds and indices. See the module docs for why this
/// shape (rather than a closure-per-dispatch pool) and when the stable
/// [`Dispatch::Affine`] worker↔item mapping matters.
pub fn pool_scope<C, H, R>(
    workers: usize,
    handler: &H,
    body: impl FnOnce(&PoolHandle<'_, C, H>) -> R,
) -> R
where
    C: Send + Sync,
    H: Fn(usize, &C, usize) + Sync,
{
    let workers = workers.max(1);
    let core = PoolCore {
        state: Mutex::new(PoolState {
            epoch: 0,
            job: None,
            finished: 0,
            panicked: false,
            shutdown: false,
        }),
        start: Condvar::new(),
        done: Condvar::new(),
        next: AtomicUsize::new(0),
    };
    if workers == 1 {
        return body(&PoolHandle {
            core: &core,
            handler,
            workers,
        });
    }
    std::thread::scope(|scope| {
        for w in 1..workers {
            let core = &core;
            // lint:allow(sim-thread-spawn): pool workers execute the fixed handler on barrier-separated phases; affine dispatch pins item i to worker i and steal dispatch deposits per-item, so results are scheduling-independent (pinned by the pool tests and check's parallel_equivalence proptests)
            scope.spawn(move || worker_loop(core, handler, w, workers));
        }
        let _shutdown = PoolShutdown(&core);
        body(&PoolHandle {
            core: &core,
            handler,
            workers,
        })
    })
}

/// Cartesian product of two parameter axes, row-major (`a` outer, `b`
/// inner) — the usual shape for "sweep X for each Y" experiment grids.
pub fn grid<A: Clone, B: Clone>(a: &[A], b: &[B]) -> Vec<(A, B)> {
    let mut out = Vec::with_capacity(a.len() * b.len());
    for x in a {
        for y in b {
            out.push((x.clone(), y.clone()));
        }
    }
    out
}

/// `n` evenly spaced points from `lo` to `hi` inclusive (`n ≥ 2`).
pub fn linspace(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2, "linspace needs at least two points");
    let step = (hi - lo) / (n - 1) as f64;
    (0..n).map(|i| lo + step * i as f64).collect()
}

fn available_workers(items: usize) -> usize {
    // lint:allow(sim-os-env): host parallelism only sizes the worker pool; run_with_threads output is worker-count-independent by construction
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(items.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;

    #[test]
    fn preserves_input_order() {
        let params: Vec<u64> = (0..257).collect();
        let out = run(&params, |i, &p| {
            assert_eq!(i as u64, p);
            p * 2
        });
        assert_eq!(out, params.iter().map(|p| p * 2).collect::<Vec<_>>());
    }

    #[test]
    fn runs_every_item_exactly_once() {
        let calls = AtomicU64::new(0);
        let params: Vec<u32> = (0..100).collect();
        let _ = run(&params, |_, _| {
            calls.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(calls.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = run(&[] as &[u32], |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_worker_matches_parallel() {
        let params: Vec<u64> = (0..64).collect();
        let seq = run_with_threads(&params, 1, |i, &p| p.wrapping_mul(i as u64 + 1));
        let par = run_with_threads(&params, 8, |i, &p| p.wrapping_mul(i as u64 + 1));
        assert_eq!(seq, par);
    }

    #[test]
    fn zero_workers_treated_as_one() {
        let out = run_with_threads(&[1u32, 2, 3], 0, |_, &x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    #[should_panic]
    fn worker_panic_propagates() {
        let _ = run_with_threads(&[1u32, 2, 3, 4], 2, |_, &x| {
            if x == 3 {
                panic!("boom");
            }
            x
        });
    }

    // -- cost model / sequential fallback ---------------------------------

    #[test]
    fn worthwhile_threshold_is_pinned() {
        // One worker or one item can never pay off.
        assert!(!parallel_worthwhile(1_000_000, 1, 1_000_000, SPAWN_DISPATCH_NS));
        assert!(!parallel_worthwhile(1, 4, u64::MAX / 8, SPAWN_DISPATCH_NS));
        // The boundary: total work == 4 * workers * dispatch exactly pays.
        // 4 workers * 60µs * 4 = 960µs; 960 items at 1µs each is exactly it.
        assert!(parallel_worthwhile(960, 4, 1_000, SPAWN_DISPATCH_NS));
        assert!(!parallel_worthwhile(959, 4, 1_000, SPAWN_DISPATCH_NS));
        // A liveness-style round: a few hundred ~100ns items never justify
        // a spawn (the old engine's workers*64 threshold got this wrong).
        assert!(!parallel_worthwhile(300, 4, 100, SPAWN_DISPATCH_NS));
        // The same round through the persistent pool at 4 workers needs
        // 4 * 8µs * 4 = 128µs of work: 1280 nodes at 100ns pays, 1279 not.
        assert!(parallel_worthwhile(1280, 4, 100, POOL_DISPATCH_NS));
        assert!(!parallel_worthwhile(1279, 4, 100, POOL_DISPATCH_NS));
        // Saturation, not overflow, on absurd estimates.
        assert!(parallel_worthwhile(usize::MAX, 2, u64::MAX, POOL_DISPATCH_NS));
    }

    #[test]
    fn hinted_tiny_items_stay_on_the_calling_thread() {
        let params: Vec<u32> = (0..200).collect();
        let caller = std::thread::current().id();
        let threads = Mutex::new(HashSet::new());
        let out = run_hinted(&params, 4, 100, |_, &x| {
            threads.lock().unwrap().insert(std::thread::current().id());
            x + 1
        });
        assert_eq!(out.len(), 200);
        let seen = threads.into_inner().unwrap();
        assert_eq!(
            seen,
            HashSet::from([caller]),
            "200 x 100ns of work must not spawn a thread scope"
        );
    }

    #[test]
    fn hinted_heavy_items_fan_out_and_preserve_order() {
        let params: Vec<u64> = (0..64).collect();
        let out = run_hinted(&params, 4, SWEEP_ITEM_DEFAULT_NS, |i, &p| {
            assert_eq!(i as u64, p);
            p * 3
        });
        assert_eq!(out, params.iter().map(|p| p * 3).collect::<Vec<_>>());
    }

    // -- persistent pool ---------------------------------------------------

    #[test]
    fn pool_affine_runs_item_i_on_worker_i() {
        // Item i must always land on worker i — record the pairing.
        let pairs = Mutex::new(Vec::new());
        let handler = |worker: usize, cmd: &u32, item: usize| {
            pairs.lock().unwrap().push((*cmd, worker, item));
        };
        pool_scope(3, &handler, |pool| {
            for round in 0..50u32 {
                pool.run(round, 3, Dispatch::Affine);
            }
        });
        let pairs = pairs.into_inner().unwrap();
        assert_eq!(pairs.len(), 150);
        assert!(pairs.iter().all(|&(_, w, i)| w == i));
    }

    #[test]
    fn pool_steal_covers_every_item_exactly_once() {
        let hits: Vec<AtomicU64> = (0..500).map(|_| AtomicU64::new(0)).collect();
        let handler = |_w: usize, _cmd: &(), item: usize| {
            hits[item].fetch_add(1, Ordering::Relaxed);
        };
        pool_scope(4, &handler, |pool| {
            pool.run((), 500, Dispatch::Steal);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn pool_single_worker_runs_inline() {
        let caller = std::thread::current().id();
        let ok = AtomicU64::new(0);
        let handler = |_w: usize, _cmd: &(), _item: usize| {
            if std::thread::current().id() == caller {
                ok.fetch_add(1, Ordering::Relaxed);
            }
        };
        pool_scope(1, &handler, |pool| {
            pool.run((), 7, Dispatch::Steal);
        });
        assert_eq!(ok.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn pool_worker_affinity_is_stable_across_dispatches() {
        // The thread identity behind each affine item must never change:
        // this is the allocation-locality guarantee the sharded explorer
        // leans on (items own allocator-heavy state).
        let ids: Vec<Mutex<HashSet<std::thread::ThreadId>>> =
            (0..4).map(|_| Mutex::new(HashSet::new())).collect();
        let handler = |_w: usize, _cmd: &(), item: usize| {
            ids[item]
                .lock()
                .unwrap()
                .insert(std::thread::current().id());
        };
        pool_scope(4, &handler, |pool| {
            for _ in 0..100 {
                pool.run((), 4, Dispatch::Affine);
            }
        });
        for slot in &ids {
            assert_eq!(slot.lock().unwrap().len(), 1, "item migrated threads");
        }
    }

    #[test]
    #[should_panic(expected = "pool worker panicked")]
    fn pool_worker_panic_propagates_to_caller() {
        let handler = |worker: usize, _cmd: &(), _item: usize| {
            if worker != 0 {
                panic!("boom");
            }
        };
        pool_scope(2, &handler, |pool| {
            // Steal with many items so worker 1 is guaranteed a slice...
            // actually affine pins one item on worker 1 deterministically.
            pool.run((), 2, Dispatch::Affine);
        });
    }

    #[test]
    fn pool_commands_see_results_of_prior_dispatches() {
        // A dispatch is a full barrier: phase N+1 reads what N wrote.
        let cells: Vec<AtomicU64> = (0..4).map(|_| AtomicU64::new(0)).collect();
        let handler = |_w: usize, cmd: &u64, item: usize| match cmd {
            1 => {
                cells[item].store(item as u64 + 10, Ordering::Relaxed);
            }
            _ => {
                let prev = cells[item].load(Ordering::Relaxed);
                cells[item].store(prev * 2, Ordering::Relaxed);
            }
        };
        pool_scope(4, &handler, |pool| {
            pool.run(1u64, 4, Dispatch::Affine);
            pool.run(2u64, 4, Dispatch::Affine);
        });
        let vals: Vec<u64> = cells.iter().map(|c| c.load(Ordering::Relaxed)).collect();
        assert_eq!(vals, vec![20, 22, 24, 26]);
    }

    #[test]
    fn grid_is_row_major() {
        let g = grid(&[1, 2], &["a", "b", "c"]);
        assert_eq!(g.len(), 6);
        assert_eq!(g[0], (1, "a"));
        assert_eq!(g[2], (1, "c"));
        assert_eq!(g[3], (2, "a"));
    }

    #[test]
    fn linspace_endpoints_and_spacing() {
        let xs = linspace(0.0, 10.0, 5);
        assert_eq!(xs, vec![0.0, 2.5, 5.0, 7.5, 10.0]);
    }

    #[test]
    fn borrows_environment_without_static() {
        // The closure borrows `base` from the enclosing stack frame — this is
        // exactly what std::thread::scope buys us over spawn.
        let base = [10u64, 20, 30];
        let out = run(&[0usize, 1, 2], |_, &i| base[i] + 1);
        assert_eq!(out, vec![11, 21, 31]);
    }
}
