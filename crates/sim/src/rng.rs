//! Deterministic random streams.
//!
//! Every stochastic element of the reproduction (shadowing, backoff jitter,
//! user think time, workload content) draws from a [`SimRng`]. The generator
//! is a self-contained SplitMix64 core — chosen because its output is fully
//! specified by the algorithm, so runs are reproducible across `rand` crate
//! versions and platforms — wrapped with the handful of distributions the
//! substrates need.
//!
//! Streams are *forkable*: [`SimRng::fork`] derives an independent child
//! stream from a label, which lets a simulation hand uncorrelated randomness
//! to each node/user without threading a single generator through every
//! call site (and keeps results stable when components are added).

use rand::RngCore;

/// SplitMix64-based deterministic random stream.
#[derive(Clone, Debug)]
pub struct SimRng {
    state: u64,
    /// Cached second normal deviate from Box–Muller.
    spare_normal: Option<f64>,
}

const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Create a stream from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        SimRng {
            state: mix64(seed ^ GOLDEN_GAMMA),
            spare_normal: None,
        }
    }

    /// Derive an independent child stream from a label.
    ///
    /// Children with distinct labels are uncorrelated with each other and
    /// with the parent; forking does not perturb the parent's sequence.
    pub fn fork(&self, label: u64) -> SimRng {
        SimRng::new(mix64(self.state ^ label.wrapping_mul(GOLDEN_GAMMA)))
    }

    /// Derive a child stream from a string label (stable FNV-1a hash).
    pub fn fork_named(&self, label: &str) -> SimRng {
        self.fork(fnv1a(label.as_bytes()))
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64_raw(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        mix64(self.state)
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        // 53 high bits -> [0,1) with full double precision.
        (self.next_u64_raw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `[lo, hi)`. Panics if `lo > hi`.
    #[inline]
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "uniform_range: lo > hi");
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)` via Lemire's rejection method (unbiased).
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Lemire: multiply-shift with rejection of the biased low zone.
        let mut x = self.next_u64_raw();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64_raw();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    pub fn int_range(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "int_range: lo > hi");
        let span = (hi - lo) as u64 + 1;
        lo + self.below(span) as i64
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0,1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }

    /// Standard normal deviate (Box–Muller, with caching of the pair).
    pub fn normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Draw u1 in (0,1] to avoid ln(0).
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = std::f64::consts::TAU * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal deviate with the given mean and standard deviation.
    #[inline]
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.normal()
    }

    /// Exponential deviate with the given mean (`mean > 0`).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        let u = 1.0 - self.uniform(); // (0, 1]
        -mean * u.ln()
    }

    /// Log-normal deviate given the mean and std-dev of the underlying
    /// normal (the standard parameterisation for RF shadowing in dB).
    #[inline]
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal_with(mu, sigma).exp()
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Pick a uniformly random element (`None` for an empty slice).
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[self.below(xs.len() as u64) as usize])
        }
    }

    /// Pick an index according to non-negative weights (`None` if all zero
    /// or the slice is empty).
    pub fn choose_weighted(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().copied().filter(|w| *w > 0.0).sum();
        if total <= 0.0 {
            return None;
        }
        let mut x = self.uniform() * total;
        for (i, &w) in weights.iter().enumerate() {
            if w > 0.0 {
                if x < w {
                    return Some(i);
                }
                x -= w;
            }
        }
        // Floating-point slack: return the last positive-weight index.
        weights.iter().rposition(|&w| w > 0.0)
    }
}

/// Stable 64-bit FNV-1a hash (used for string-labelled forks and for tile
/// digests in `aroma-vnc`; kept here so the constant lives in one place).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    h
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64_raw() >> 32) as u32
    }
    fn next_u64(&mut self) -> u64 {
        self.next_u64_raw()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64_raw().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64_raw(), b.next_u64_raw());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64_raw() == b.next_u64_raw()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_is_independent_of_parent_consumption() {
        let parent = SimRng::new(7);
        let mut c1 = parent.fork(3);
        let mut parent2 = SimRng::new(7);
        parent2.next_u64_raw(); // consuming the parent...
        let mut c2 = SimRng::new(7).fork(3);
        assert_eq!(c1.next_u64_raw(), c2.next_u64_raw());
    }

    #[test]
    fn forks_with_distinct_labels_differ() {
        let parent = SimRng::new(7);
        let mut a = parent.fork(1);
        let mut b = parent.fork(2);
        assert_ne!(a.next_u64_raw(), b.next_u64_raw());
        let mut c = parent.fork_named("node-0");
        let mut d = parent.fork_named("node-1");
        assert_ne!(c.next_u64_raw(), d.next_u64_raw());
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = SimRng::new(9);
        for _ in 0..10_000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_near_half() {
        let mut r = SimRng::new(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.uniform()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = SimRng::new(13);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = r.below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn int_range_inclusive_bounds() {
        let mut r = SimRng::new(17);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..2000 {
            let v = r.int_range(-3, 3);
            assert!((-3..=3).contains(&v));
            lo_seen |= v == -3;
            hi_seen |= v == 3;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn normal_moments() {
        let mut r = SimRng::new(19);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut r = SimRng::new(23);
        let n = 100_000;
        let mean = (0..n).map(|_| r.exponential(2.5)).sum::<f64>() / n as f64;
        assert!((mean - 2.5).abs() < 0.05, "mean {mean}");
        // Exponential deviates are non-negative by construction.
        assert!((0..1000).all(|_| r.exponential(1.0) >= 0.0));
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(29);
        assert!((0..100).all(|_| !r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
        // Out-of-range probabilities clamp instead of misbehaving.
        assert!((0..100).all(|_| r.chance(2.0)));
        assert!((0..100).all(|_| !r.chance(-1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::new(31);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>(), "50 elements unshuffled");
    }

    #[test]
    fn choose_weighted_respects_zero_weights() {
        let mut r = SimRng::new(37);
        for _ in 0..500 {
            let i = r.choose_weighted(&[0.0, 1.0, 0.0]).unwrap();
            assert_eq!(i, 1);
        }
        assert_eq!(r.choose_weighted(&[0.0, 0.0]), None);
        assert_eq!(r.choose_weighted(&[]), None);
    }

    #[test]
    fn choose_weighted_tracks_ratios() {
        let mut r = SimRng::new(41);
        let mut counts = [0u32; 2];
        for _ in 0..30_000 {
            counts[r.choose_weighted(&[1.0, 3.0]).unwrap()] += 1;
        }
        let ratio = counts[1] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.25, "ratio {ratio}");
    }

    #[test]
    fn choose_handles_empty_and_singleton() {
        let mut r = SimRng::new(43);
        assert_eq!(r.choose::<u32>(&[]), None);
        assert_eq!(r.choose(&[5]), Some(&5));
    }

    #[test]
    fn fnv1a_is_stable() {
        // Pinned value: changing the hash silently would re-randomise every
        // named fork in the workspace.
        assert_eq!(fnv1a(b""), 0xCBF2_9CE4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }

    #[test]
    fn rngcore_fill_bytes_fills_every_byte_window() {
        let mut r = SimRng::new(47);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        // With 13 random bytes the chance all are zero is negligible.
        assert!(buf.iter().any(|&b| b != 0));
    }
}
