//! Deterministic future-event list.
//!
//! The queue is the heart of the discrete-event engine: substrates schedule
//! typed events at future instants and drain them in chronological order.
//! Two properties matter for reproducibility and are guaranteed here:
//!
//! 1. **Stable ordering** — events scheduled for the same instant pop in the
//!    order they were scheduled (FIFO tie-break by a monotone sequence
//!    number), so a run never depends on heap internals.
//! 2. **Monotonic time** — popping never moves time backwards; scheduling in
//!    the past is a programming error and panics in debug builds (clamped to
//!    `now` in release, with a counter so harnesses can assert on it).
//!
//! Cancellation uses lazy deletion: `cancel` marks the [`EventId`] and the
//! entry is dropped when it reaches the top, which keeps schedule/cancel at
//! O(log n) amortised without tombstone scans. A `pending` id set tracks
//! exactly which events are still in the heap, so cancelling an id that
//! already fired (or was already cancelled) is a true no-op: it returns
//! `false` and leaves no tombstone behind.

use crate::time::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// Handle to a scheduled event, usable to cancel it before it fires.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId(u64);

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

// Order by (time, seq); the heap stores `Reverse` so the earliest pops first.
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// A future-event list with a built-in simulation clock.
///
/// `E` is the substrate's event type. The queue owns the clock: `pop`
/// advances `now()` to the popped event's timestamp.
///
/// ```
/// use aroma_sim::{EventQueue, SimDuration, SimTime};
///
/// let mut q: EventQueue<&'static str> = EventQueue::new();
/// q.schedule_in(SimDuration::from_millis(5), "later");
/// q.schedule_in(SimDuration::from_millis(1), "sooner");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!(e, "sooner");
/// assert_eq!(t, SimTime::from_nanos(1_000_000));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    /// Ids cancelled while still buried in the heap (purged on surfacing).
    cancelled: HashSet<u64>,
    /// Ids currently live in the heap: scheduled, not yet fired or cancelled.
    pending: HashSet<u64>,
    now: SimTime,
    next_seq: u64,
    late_schedules: u64,
    scheduled_total: u64,
    popped_total: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Empty queue with the clock at `t = 0`.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            pending: HashSet::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            late_schedules: 0,
            scheduled_total: 0,
            popped_total: 0,
        }
    }

    /// Current simulated time (timestamp of the last popped event).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events: scheduled, not yet fired or cancelled.
    /// Exact — cancelled events buried in the heap are not counted.
    #[inline]
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True when no live events remain.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events scheduled over the queue's lifetime.
    #[inline]
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Total events delivered by `pop` over the queue's lifetime.
    #[inline]
    pub fn popped_total(&self) -> u64 {
        self.popped_total
    }

    /// How many schedule requests targeted the past and were clamped to
    /// `now` (always zero in a correct substrate; asserted by tests).
    #[inline]
    pub fn late_schedules(&self) -> u64 {
        self.late_schedules
    }

    /// Schedule `payload` at absolute time `at`.
    ///
    /// Scheduling in the past is a bug in the caller; debug builds panic,
    /// release builds clamp to `now` and count it in [`late_schedules`].
    ///
    /// [`late_schedules`]: EventQueue::late_schedules
    pub fn schedule_at(&mut self, at: SimTime, payload: E) -> EventId {
        let at = if at < self.now {
            debug_assert!(false, "scheduled event in the past: {at} < {}", self.now);
            self.late_schedules += 1;
            self.now
        } else {
            at
        };
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.pending.insert(seq);
        self.heap.push(Reverse(Entry {
            time: at,
            seq,
            payload,
        }));
        EventId(seq)
    }

    /// Schedule `payload` after a relative delay from `now`.
    #[inline]
    pub fn schedule_in(&mut self, delay: SimDuration, payload: E) -> EventId {
        self.schedule_at(self.now + delay, payload)
    }

    /// Schedule `payload` to fire immediately (at the current instant, after
    /// everything already queued for this instant).
    #[inline]
    pub fn schedule_now(&mut self, payload: E) -> EventId {
        self.schedule_at(self.now, payload)
    }

    /// Cancel a previously scheduled event.
    ///
    /// Returns `true` if the event was still pending (scheduled, not yet
    /// fired or cancelled) and is now guaranteed never to be delivered.
    /// Cancelling an id that already fired, was already cancelled, or was
    /// never issued is a harmless O(1) no-op returning `false` — it leaves
    /// no tombstone behind, so ids may be cancelled defensively after their
    /// event may have fired (the model checker's clock-advance does exactly
    /// that).
    pub fn cancel(&mut self, id: EventId) -> bool {
        if self.pending.remove(&id.0) {
            // Still buried in the heap: lazy-delete when it surfaces.
            self.cancelled.insert(id.0);
            true
        } else {
            false
        }
    }

    /// Timestamp of the next live event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skip_cancelled();
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Pop the next live event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.skip_cancelled();
        let Reverse(entry) = self.heap.pop()?;
        debug_assert!(entry.time >= self.now, "event queue time went backwards");
        self.pending.remove(&entry.seq);
        // `max` keeps the clock monotone even if a release-mode
        // `fast_forward` jumped over a still-pending earlier event.
        self.now = self.now.max(entry.time);
        self.popped_total += 1;
        Some((entry.time, entry.payload))
    }

    /// Advance the clock to `at` without delivering events.
    ///
    /// Events scheduled at *exactly* `at` are not skipped: they stay
    /// pending and fire (FIFO among themselves) when popped, with the clock
    /// already at their timestamp — `fast_forward(t)` followed by `pop()`
    /// of a `t`-event is well-defined and deterministic. Only events
    /// strictly earlier than `at` count as skipped work: their presence
    /// panics in debug builds (a substrate must never silently skip
    /// scheduled work) and is ignored in release builds, where `now` still
    /// advances and the late events deliver with their original (now past)
    /// timestamps.
    pub fn fast_forward(&mut self, at: SimTime) {
        debug_assert!(
            self.peek_time().is_none_or(|t| t >= at),
            "fast_forward would skip pending events"
        );
        if at > self.now {
            self.now = at;
        }
    }

    /// Drop all pending events and reset the cancellation set (the clock is
    /// left where it is; a simulation never rewinds).
    pub fn clear_pending(&mut self) {
        self.heap.clear();
        self.cancelled.clear();
        self.pending.clear();
    }

    fn skip_cancelled(&mut self) {
        while let Some(Reverse(e)) = self.heap.peek() {
            if self.cancelled.remove(&e.seq) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q() -> EventQueue<u32> {
        EventQueue::new()
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = q();
        q.schedule_at(SimTime::from_nanos(30), 3);
        q.schedule_at(SimTime::from_nanos(10), 1);
        q.schedule_at(SimTime::from_nanos(20), 2);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = q();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.schedule_at(t, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_advances_clock() {
        let mut q = q();
        q.schedule_in(SimDuration::from_millis(2), 1);
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop().unwrap();
        assert_eq!(q.now(), SimTime::from_nanos(2_000_000));
    }

    #[test]
    fn schedule_relative_to_current_time() {
        let mut q = q();
        q.schedule_in(SimDuration::from_nanos(10), 1);
        q.pop().unwrap();
        q.schedule_in(SimDuration::from_nanos(10), 2);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t.as_nanos(), 20);
    }

    #[test]
    fn cancel_prevents_delivery() {
        let mut q = q();
        let keep = q.schedule_at(SimTime::from_nanos(10), 1);
        let drop_ = q.schedule_at(SimTime::from_nanos(5), 2);
        assert!(q.cancel(drop_));
        let (_, e) = q.pop().unwrap();
        assert_eq!(e, 1);
        assert!(q.pop().is_none());
        let _ = keep;
    }

    #[test]
    fn cancel_unknown_id_is_noop() {
        let mut q = q();
        assert!(!q.cancel(EventId(999)));
    }

    #[test]
    fn double_cancel_returns_false() {
        let mut q = q();
        let id = q.schedule_at(SimTime::from_nanos(5), 1);
        assert!(q.cancel(id));
        assert!(!q.cancel(id));
    }

    #[test]
    fn len_accounts_for_cancellations() {
        let mut q = q();
        let a = q.schedule_at(SimTime::from_nanos(1), 1);
        q.schedule_at(SimTime::from_nanos(2), 2);
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        let mut q = q();
        let head = q.schedule_at(SimTime::from_nanos(1), 1);
        q.schedule_at(SimTime::from_nanos(9), 2);
        q.cancel(head);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(9)));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics_in_debug() {
        let mut q = q();
        q.schedule_at(SimTime::from_nanos(10), 1);
        q.pop().unwrap();
        q.schedule_at(SimTime::from_nanos(5), 2);
    }

    #[test]
    fn cancel_after_fire_is_a_clean_noop() {
        let mut q = q();
        let id = q.schedule_at(SimTime::from_nanos(5), 1);
        let later = q.schedule_at(SimTime::from_nanos(9), 2);
        assert_eq!(q.pop(), Some((SimTime::from_nanos(5), 1)));
        // The id already fired: cancellation must refuse, and must not
        // poison the id space (no tombstone that could swallow a later
        // event or distort `len`).
        assert!(!q.cancel(id));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((SimTime::from_nanos(9), 2)));
        let _ = later;
    }

    #[test]
    fn cancel_after_fire_then_reschedule_keeps_counts_exact() {
        let mut q = q();
        let id = q.schedule_at(SimTime::from_nanos(1), 1);
        q.pop().unwrap();
        assert!(!q.cancel(id));
        assert!(!q.cancel(id), "still false on repeat");
        q.schedule_at(SimTime::from_nanos(2), 2);
        assert_eq!(q.len(), 1, "fired-then-cancelled id must not be counted");
        assert_eq!(q.pop().map(|(_, e)| e), Some(2));
        assert!(q.is_empty());
    }

    #[test]
    fn fast_forward_to_exactly_pending_timestamp_is_allowed() {
        let mut q = q();
        q.schedule_at(SimTime::from_nanos(100), 1);
        q.schedule_at(SimTime::from_nanos(100), 2);
        // Equal timestamps are not "skipped work": the clock may land on
        // them, and they then fire FIFO at the (now current) instant.
        q.fast_forward(SimTime::from_nanos(100));
        assert_eq!(q.now(), SimTime::from_nanos(100));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(100), 1)));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(100), 2)));
        assert_eq!(q.now(), SimTime::from_nanos(100));
    }

    #[test]
    fn fast_forward_tie_events_keep_fifo_with_schedule_now() {
        let mut q = q();
        q.schedule_at(SimTime::from_nanos(50), 1);
        q.fast_forward(SimTime::from_nanos(50));
        // An event scheduled "now" at the fast-forwarded instant queues
        // behind everything already pending at that instant.
        q.schedule_now(2);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2]);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "skip pending events")]
    fn fast_forward_strictly_past_pending_panics_in_debug() {
        let mut q = q();
        q.schedule_at(SimTime::from_nanos(100), 1);
        q.fast_forward(SimTime::from_nanos(101));
    }

    #[test]
    fn fast_forward_over_cancelled_events_is_allowed() {
        let mut q = q();
        let id = q.schedule_at(SimTime::from_nanos(10), 1);
        q.cancel(id);
        // The only earlier event is cancelled: not skipped work.
        q.fast_forward(SimTime::from_nanos(20));
        assert_eq!(q.now(), SimTime::from_nanos(20));
        assert!(q.pop().is_none());
    }

    #[test]
    fn fast_forward_moves_clock() {
        let mut q = q();
        q.fast_forward(SimTime::from_nanos(500));
        assert_eq!(q.now().as_nanos(), 500);
        // moving backwards is ignored
        q.fast_forward(SimTime::from_nanos(100));
        assert_eq!(q.now().as_nanos(), 500);
    }

    #[test]
    fn lifetime_counters_track_activity() {
        let mut q = q();
        q.schedule_in(SimDuration::from_nanos(1), 1);
        q.schedule_in(SimDuration::from_nanos(2), 2);
        q.pop();
        assert_eq!(q.scheduled_total(), 2);
        assert_eq!(q.popped_total(), 1);
        assert_eq!(q.late_schedules(), 0);
    }

    #[test]
    fn clear_pending_empties_queue() {
        let mut q = q();
        q.schedule_in(SimDuration::from_nanos(1), 1);
        q.clear_pending();
        assert!(q.pop().is_none());
    }
}
