//! # aroma-sim — discrete-event simulation core
//!
//! Foundation substrate for the reproduction of *“A Conceptual Model for
//! Pervasive Computing”* (Ciarletta & Dima, 2000). Every simulated subsystem
//! in the workspace — the 2.4 GHz wireless LAN, the Jini-style lookup
//! service, the VNC-style remote framebuffer, the appliance runtime and the
//! behavioural user simulator — runs on the primitives defined here:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution simulated time,
//! * [`EventQueue`] — a deterministic future-event list with stable FIFO
//!   ordering for simultaneous events and O(log n) scheduling,
//! * [`SimRng`] — a seedable, forkable random stream (SplitMix64 core) with
//!   the distributions the substrates need (uniform, normal, exponential,
//!   log-normal shadowing),
//! * [`stats`] — Welford summaries, fixed-bin histograms and rate meters used
//!   by every experiment harness,
//! * [`report`] — aligned ASCII tables plus a minimal JSON emitter so
//!   experiment output can be archived without extra dependencies,
//! * [`telemetry`] — the `aroma-telemetry` recorder (structured trace ring,
//!   metrics registry, event-loop self-profiling) re-exported with JSON
//!   snapshot rendering, so every substrate instruments through one path,
//! * [`faults`] — the `aroma-faults` deterministic fault-injection plane
//!   (seed-stable schedules of crashes, partitions, burst loss, clock skew)
//!   re-exported with `SimTime`/`SimRng` builder glue,
//! * [`sweep`] — structured-concurrency parameter sweeps (each simulation run
//!   owns its world; results are collected without shared mutable state).
//!
//! Determinism is a hard requirement: a run is a pure function of its seed
//! and parameters, which is what makes the paper-shape experiments in
//! `lpc-bench` reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod faults;
pub mod report;
pub mod rng;
pub mod stats;
pub mod sweep;
pub mod telemetry;
pub mod time;

pub use event::{EventId, EventQueue};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
