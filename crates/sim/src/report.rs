//! Experiment output rendering.
//!
//! Every figure/experiment regenerator in `lpc-bench` emits its results
//! through this module: an aligned ASCII [`Table`] for terminal output and
//! EXPERIMENTS.md, and a minimal, dependency-free [`Json`] emitter for
//! archival. (We deliberately avoid pulling `serde_json`: the workspace
//! dependency policy allows only the approved offline set, and the subset of
//! JSON needed — objects, arrays, strings, numbers, bools — is small.)

use std::fmt::Write as _;

/// Column alignment for [`Table`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Align {
    /// Left-justified (labels).
    Left,
    /// Right-justified (numbers).
    Right,
}

/// An aligned monospace table.
///
/// ```
/// use aroma_sim::report::Table;
/// let mut t = Table::new(&["workload", "fps"]);
/// t.row(&["slides".into(), "24.0".into()]);
/// let s = t.render();
/// assert!(s.contains("workload"));
/// assert!(s.contains("slides"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers; the first column defaults to
    /// left alignment and the rest to right (label + numbers, the common
    /// shape for experiment tables).
    pub fn new(headers: &[&str]) -> Self {
        let aligns = headers
            .iter()
            .enumerate()
            .map(|(i, _)| if i == 0 { Align::Left } else { Align::Right })
            .collect();
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            aligns,
            rows: Vec::new(),
        }
    }

    /// Override column alignments (length must match the header count).
    pub fn with_aligns(mut self, aligns: &[Align]) -> Self {
        assert_eq!(aligns.len(), self.headers.len(), "alignment arity mismatch");
        self.aligns = aligns.to_vec();
        self
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Append a row from `Display` items.
    pub fn row_display<D: std::fmt::Display>(&mut self, cells: &[D]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// The table as a JSON array of header-keyed objects.
    pub fn to_json(&self) -> Json {
        Json::Arr(
            self.rows
                .iter()
                .map(|row| {
                    Json::Obj(
                        self.headers
                            .iter()
                            .zip(row)
                            .map(|(h, c)| (h.clone(), Json::Str(c.clone())))
                            .collect(),
                    )
                })
                .collect(),
        )
    }

    /// True when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with unicode-free box drawing (pipes and dashes), suitable for
    /// both terminals and Markdown code blocks.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let sep = |out: &mut String| {
            for w in &widths {
                out.push('+');
                out.extend(std::iter::repeat_n('-', w + 2));
            }
            out.push_str("+\n");
        };
        let emit_row = |out: &mut String, cells: &[String], aligns: &[Align]| {
            for i in 0..ncols {
                let cell = &cells[i];
                let pad = widths[i] - cell.chars().count();
                out.push_str("| ");
                match aligns[i] {
                    Align::Left => {
                        out.push_str(cell);
                        out.extend(std::iter::repeat_n(' ', pad));
                    }
                    Align::Right => {
                        out.extend(std::iter::repeat_n(' ', pad));
                        out.push_str(cell);
                    }
                }
                out.push(' ');
            }
            out.push_str("|\n");
        };
        sep(&mut out);
        emit_row(&mut out, &self.headers, &vec![Align::Left; ncols]);
        sep(&mut out);
        for row in &self.rows {
            emit_row(&mut out, row, &self.aligns);
        }
        sep(&mut out);
        out
    }
}

/// Minimal JSON value for archival output.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// Boolean.
    Bool(bool),
    /// Finite number (non-finite values emit as `null`, as JSON requires).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for objects.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Serialise to a compact JSON string.
    pub fn render(&self) -> String {
        let mut s = String::new();
        self.write(&mut s);
        s
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if x.is_finite() {
                    // Integral values print without a trailing ".0" for
                    // stable, diff-friendly output.
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        let _ = write!(out, "{}", *x as i64);
                    } else {
                        let _ = write!(out, "{x}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_json_string(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}
impl From<u64> for Json {
    fn from(x: u64) -> Json {
        Json::Num(x as f64)
    }
}
impl From<usize> for Json {
    fn from(x: usize) -> Json {
        Json::Num(x as f64)
    }
}
impl From<bool> for Json {
    fn from(x: bool) -> Json {
        Json::Bool(x)
    }
}
impl From<&str> for Json {
    fn from(x: &str) -> Json {
        Json::Str(x.to_string())
    }
}
impl From<String> for Json {
    fn from(x: String) -> Json {
        Json::Str(x)
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Format a float with `prec` decimals (helper for table cells).
pub fn fmt_f(x: f64, prec: usize) -> String {
    format!("{x:.prec$}")
}

/// Format a ratio as a percentage with one decimal.
pub fn fmt_pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["alpha".into(), "1".into()]);
        t.row(&["b".into(), "12345".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        // border, header, border, 2 rows, border
        assert_eq!(lines.len(), 6);
        // all lines equal width
        let w = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == w), "{s}");
        assert!(s.contains("| alpha |"));
        assert!(s.contains("|     1 |")); // right-aligned number
    }

    #[test]
    fn table_row_display_and_len() {
        let mut t = Table::new(&["a", "b"]);
        t.row_display(&[1, 2]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn table_rejects_wrong_arity() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn table_custom_alignment() {
        let mut t = Table::new(&["x", "y"]).with_aligns(&[Align::Right, Align::Left]);
        t.row(&["1".into(), "abc".into()]);
        let s = t.render();
        assert!(s.contains("| 1 | abc |"));
    }

    #[test]
    fn json_scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Num(3.0).render(), "3");
        assert_eq!(Json::Num(3.5).render(), "3.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::from("hi").render(), "\"hi\"");
    }

    #[test]
    fn json_escaping() {
        let s = Json::from("a\"b\\c\nd\te\u{1}").render();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn json_composite() {
        let j = Json::obj(vec![
            ("id", "e1".into()),
            ("series", Json::Arr(vec![1.0.into(), 2.5.into()])),
            ("ok", true.into()),
        ]);
        assert_eq!(j.render(), "{\"id\":\"e1\",\"series\":[1,2.5],\"ok\":true}");
    }

    #[test]
    fn format_helpers() {
        assert_eq!(fmt_f(1.23456, 2), "1.23");
        assert_eq!(fmt_pct(0.1234), "12.3%");
    }
}
