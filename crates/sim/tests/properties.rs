//! Property-based tests for the simulation core.

use aroma_sim::report::Json;
use aroma_sim::stats::{Histogram, Summary};
use aroma_sim::{EventQueue, SimDuration, SimRng, SimTime};
use proptest::prelude::*;

proptest! {
    /// Events always pop in non-decreasing time order, regardless of the
    /// scheduling order, and the clock never runs backwards.
    #[test]
    fn event_queue_pops_chronologically(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q: EventQueue<usize> = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(SimTime::from_nanos(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut popped = 0usize;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            prop_assert_eq!(q.now(), t);
            last = t;
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    /// Same-instant events preserve scheduling (FIFO) order.
    #[test]
    fn event_queue_stable_at_equal_times(groups in prop::collection::vec((0u64..100, 1usize..8), 1..40)) {
        let mut q: EventQueue<usize> = EventQueue::new();
        let mut expected: Vec<(u64, usize)> = Vec::new();
        let mut seq = 0usize;
        for &(t, k) in &groups {
            for _ in 0..k {
                q.schedule_at(SimTime::from_nanos(t), seq);
                expected.push((t, seq));
                seq += 1;
            }
        }
        expected.sort_by_key(|&(t, s)| (t, s));
        let mut got = Vec::new();
        while let Some((t, e)) = q.pop() {
            got.push((t.as_nanos(), e));
        }
        prop_assert_eq!(got, expected);
    }

    /// Cancelled events are never delivered; everything else is.
    #[test]
    fn event_queue_cancellation_exact(
        times in prop::collection::vec(0u64..10_000, 1..100),
        cancel_mask in prop::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut q: EventQueue<usize> = EventQueue::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| q.schedule_at(SimTime::from_nanos(t), i))
            .collect();
        let mut expect: Vec<usize> = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            if *cancel_mask.get(i).unwrap_or(&false) {
                prop_assert!(q.cancel(*id));
            } else {
                expect.push(i);
            }
        }
        let mut got: Vec<usize> = Vec::new();
        while let Some((_, e)) = q.pop() {
            got.push(e);
        }
        got.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    /// Summary::merge is equivalent to recording all observations into one
    /// collector, for any split point.
    #[test]
    fn summary_merge_associative(xs in prop::collection::vec(-1e6f64..1e6, 2..200), split_frac in 0.0f64..1.0) {
        let split = ((xs.len() as f64 * split_frac) as usize).min(xs.len());
        let mut whole = Summary::new();
        for &x in &xs { whole.record(x); }
        let mut a = Summary::new();
        let mut b = Summary::new();
        for &x in &xs[..split] { a.record(x); }
        for &x in &xs[split..] { b.record(x); }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() <= 1e-6 * (1.0 + whole.mean().abs()));
        prop_assert!((a.variance() - whole.variance()).abs() <= 1e-5 * (1.0 + whole.variance().abs()));
    }

    /// Merging *default*-constructed summaries matches sequential recording
    /// on every statistic including the extrema — either side may be empty
    /// (split 0 or len). Guards the manual `Default` impl: a derived one
    /// zeroed `min`/`max` and the merged extrema came out 0.0.
    #[test]
    fn summary_merge_from_defaults_matches_sequential(
        xs in prop::collection::vec(-1e6f64..1e6, 0..200),
        split_frac in 0.0f64..=1.0,
    ) {
        let split = ((xs.len() as f64 * split_frac) as usize).min(xs.len());
        let mut whole = Summary::default();
        for &x in &xs { whole.record(x); }
        let mut a = Summary::default();
        let mut b = Summary::default();
        for &x in &xs[..split] { a.record(x); }
        for &x in &xs[split..] { b.record(x); }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert_eq!(a.min(), whole.min());
        prop_assert_eq!(a.max(), whole.max());
        prop_assert!((a.mean() - whole.mean()).abs() <= 1e-6 * (1.0 + whole.mean().abs()));
        prop_assert!((a.variance() - whole.variance()).abs() <= 1e-5 * (1.0 + whole.variance().abs()));
    }

    /// Histogram quantiles are monotone in q and bounded by the range.
    #[test]
    fn histogram_quantiles_monotone(xs in prop::collection::vec(-10.0f64..110.0, 1..300)) {
        let mut h = Histogram::new(0.0, 100.0, 20);
        for &x in &xs { h.record(x); }
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0];
        let vals: Vec<f64> = qs.iter().map(|&q| h.quantile(q).unwrap()).collect();
        for w in vals.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-9, "quantiles not monotone: {vals:?}");
        }
        prop_assert!(vals[0] >= 0.0 - 1e-9);
        prop_assert!(*vals.last().unwrap() <= 100.0 + 1e-9);
    }

    /// The JSON emitter always produces syntactically balanced output with
    /// escaped control characters (checked with a tiny scanner).
    #[test]
    fn json_emitter_is_well_formed(s in "\\PC*", n in -1e9f64..1e9) {
        let j = Json::obj(vec![
            ("label", Json::Str(s.clone())),
            ("value", Json::Num(n)),
            ("list", Json::Arr(vec![Json::Str(s), Json::Null])),
        ]);
        let out = j.render();
        // No raw control characters may appear.
        prop_assert!(out.chars().all(|c| (c as u32) >= 0x20));
        // Quotes/braces balance when we strip escaped sequences.
        let mut depth = 0i32;
        let mut in_str = false;
        let mut chars = out.chars();
        while let Some(c) = chars.next() {
            if in_str {
                match c {
                    '\\' => { let _ = chars.next(); }
                    '"' => in_str = false,
                    _ => {}
                }
            } else {
                match c {
                    '"' => in_str = true,
                    '{' | '[' => depth += 1,
                    '}' | ']' => depth -= 1,
                    _ => {}
                }
                prop_assert!(depth >= 0);
            }
        }
        prop_assert_eq!(depth, 0);
        prop_assert!(!in_str);
    }

    /// Forked RNG streams with distinct labels do not collide on their first
    /// 8 outputs (uncorrelated streams).
    #[test]
    fn rng_forks_are_distinct(seed in any::<u64>(), a in any::<u64>(), b in any::<u64>()) {
        prop_assume!(a != b);
        let parent = SimRng::new(seed);
        let mut fa = parent.fork(a);
        let mut fb = parent.fork(b);
        let va: Vec<u64> = (0..8).map(|_| fa.next_u64_raw()).collect();
        let vb: Vec<u64> = (0..8).map(|_| fb.next_u64_raw()).collect();
        prop_assert_ne!(va, vb);
    }

    /// below(n) is always in range.
    #[test]
    fn rng_below_in_range(seed in any::<u64>(), n in 1u64..1_000_000) {
        let mut r = SimRng::new(seed);
        for _ in 0..64 {
            prop_assert!(r.below(n) < n);
        }
    }

    /// Airtime is monotone: more bits never takes less time; a faster rate
    /// never takes more time.
    #[test]
    fn airtime_monotone(bits in 1u64..1_000_000, rate in 1_000u64..100_000_000) {
        let t = SimDuration::for_bits(bits, rate);
        prop_assert!(SimDuration::for_bits(bits + 1, rate) >= t);
        prop_assert!(SimDuration::for_bits(bits, rate + 1) <= t);
    }
}
