//! Wire protocol for the projector's two guarded services.
//!
//! Clients acquire a session on a service (projection or control), then use
//! it: projection owners stream VNC updates, control owners send projector
//! commands. Replies carry explicit denial reasons so the laptop's workflow
//! (and the experiments) can distinguish "busy" from "bad token".

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Protocol discriminator for control messages.
pub const PROTO_CONTROL: u8 = 0xC7;

/// Which guarded service a request addresses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Service {
    /// Remote projection of the laptop display.
    Projection,
    /// Remote control of the projector.
    Control,
}

/// A projector command (the control service's verbs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProjectorCommand {
    /// Power the lamp on.
    PowerOn,
    /// Power the lamp off.
    PowerOff,
    /// Select the input source (0 = VNC, 1 = VGA, …).
    SelectInput(u8),
    /// Set brightness 0–100.
    Brightness(u8),
}

/// Control-plane messages.
#[derive(Clone, Debug, PartialEq)]
pub enum CtlMsg {
    /// Ask for a session on a service.
    Acquire {
        /// Which service.
        service: Service,
    },
    /// Session granted.
    Granted {
        /// Which service.
        service: Service,
        /// Proof of ownership for subsequent requests.
        token: u64,
    },
    /// Session refused.
    Denied {
        /// Which service.
        service: Service,
        /// Human-readable reason ("busy").
        reason: String,
    },
    /// Give the session back.
    Release {
        /// Which service.
        service: Service,
        /// The token being surrendered.
        token: u64,
    },
    /// A command under the control session.
    Command {
        /// Session proof.
        token: u64,
        /// The command.
        cmd: ProjectorCommand,
    },
    /// Command acknowledged.
    CommandOk,
    /// Command refused (bad/expired token).
    CommandDenied {
        /// Why.
        reason: String,
    },
}

const TAG_ACQUIRE: u8 = 1;
const TAG_GRANTED: u8 = 2;
const TAG_DENIED: u8 = 3;
const TAG_RELEASE: u8 = 4;
const TAG_COMMAND: u8 = 5;
const TAG_COMMAND_OK: u8 = 6;
const TAG_COMMAND_DENIED: u8 = 7;

fn put_service(b: &mut BytesMut, s: Service) {
    b.put_u8(match s {
        Service::Projection => 0,
        Service::Control => 1,
    });
}

fn get_service(b: &mut Bytes) -> Option<Service> {
    if b.remaining() < 1 {
        return None;
    }
    match b.get_u8() {
        0 => Some(Service::Projection),
        1 => Some(Service::Control),
        _ => None,
    }
}

fn put_str(b: &mut BytesMut, s: &str) {
    b.put_u16(s.len() as u16);
    b.put_slice(s.as_bytes());
}

fn get_str(b: &mut Bytes) -> Option<String> {
    if b.remaining() < 2 {
        return None;
    }
    let len = b.get_u16() as usize;
    if b.remaining() < len {
        return None;
    }
    String::from_utf8(b.split_to(len).to_vec()).ok()
}

impl CtlMsg {
    /// Encode to wire bytes (prefixed with [`PROTO_CONTROL`]).
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(PROTO_CONTROL);
        match self {
            CtlMsg::Acquire { service } => {
                b.put_u8(TAG_ACQUIRE);
                put_service(&mut b, *service);
            }
            CtlMsg::Granted { service, token } => {
                b.put_u8(TAG_GRANTED);
                put_service(&mut b, *service);
                b.put_u64(*token);
            }
            CtlMsg::Denied { service, reason } => {
                b.put_u8(TAG_DENIED);
                put_service(&mut b, *service);
                put_str(&mut b, reason);
            }
            CtlMsg::Release { service, token } => {
                b.put_u8(TAG_RELEASE);
                put_service(&mut b, *service);
                b.put_u64(*token);
            }
            CtlMsg::Command { token, cmd } => {
                b.put_u8(TAG_COMMAND);
                b.put_u64(*token);
                match cmd {
                    ProjectorCommand::PowerOn => b.put_slice(&[0, 0]),
                    ProjectorCommand::PowerOff => b.put_slice(&[1, 0]),
                    ProjectorCommand::SelectInput(i) => b.put_slice(&[2, *i]),
                    ProjectorCommand::Brightness(v) => b.put_slice(&[3, *v]),
                }
            }
            CtlMsg::CommandOk => {
                b.put_u8(TAG_COMMAND_OK);
            }
            CtlMsg::CommandDenied { reason } => {
                b.put_u8(TAG_COMMAND_DENIED);
                put_str(&mut b, reason);
            }
        }
        b.freeze()
    }

    /// Decode from wire bytes.
    pub fn decode(mut b: Bytes) -> Option<CtlMsg> {
        if b.remaining() < 2 || b.get_u8() != PROTO_CONTROL {
            return None;
        }
        match b.get_u8() {
            TAG_ACQUIRE => Some(CtlMsg::Acquire {
                service: get_service(&mut b)?,
            }),
            TAG_GRANTED => {
                let service = get_service(&mut b)?;
                if b.remaining() < 8 {
                    return None;
                }
                Some(CtlMsg::Granted {
                    service,
                    token: b.get_u64(),
                })
            }
            TAG_DENIED => Some(CtlMsg::Denied {
                service: get_service(&mut b)?,
                reason: get_str(&mut b)?,
            }),
            TAG_RELEASE => {
                let service = get_service(&mut b)?;
                if b.remaining() < 8 {
                    return None;
                }
                Some(CtlMsg::Release {
                    service,
                    token: b.get_u64(),
                })
            }
            TAG_COMMAND => {
                if b.remaining() < 10 {
                    return None;
                }
                let token = b.get_u64();
                let kind = b.get_u8();
                let arg = b.get_u8();
                let cmd = match kind {
                    0 => ProjectorCommand::PowerOn,
                    1 => ProjectorCommand::PowerOff,
                    2 => ProjectorCommand::SelectInput(arg),
                    3 => ProjectorCommand::Brightness(arg),
                    _ => return None,
                };
                Some(CtlMsg::Command { token, cmd })
            }
            TAG_COMMAND_OK => Some(CtlMsg::CommandOk),
            TAG_COMMAND_DENIED => Some(CtlMsg::CommandDenied {
                reason: get_str(&mut b)?,
            }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_round_trip() {
        let msgs = vec![
            CtlMsg::Acquire {
                service: Service::Projection,
            },
            CtlMsg::Granted {
                service: Service::Control,
                token: 42,
            },
            CtlMsg::Denied {
                service: Service::Projection,
                reason: "busy".into(),
            },
            CtlMsg::Release {
                service: Service::Control,
                token: 42,
            },
            CtlMsg::Command {
                token: 7,
                cmd: ProjectorCommand::Brightness(80),
            },
            CtlMsg::Command {
                token: 7,
                cmd: ProjectorCommand::SelectInput(1),
            },
            CtlMsg::Command {
                token: 7,
                cmd: ProjectorCommand::PowerOn,
            },
            CtlMsg::CommandOk,
            CtlMsg::CommandDenied {
                reason: "bad token".into(),
            },
        ];
        for m in msgs {
            assert_eq!(CtlMsg::decode(m.encode()), Some(m));
        }
    }

    #[test]
    fn wrong_protocol_byte_rejected() {
        let m = CtlMsg::CommandOk.encode();
        let mut wrong = m.to_vec();
        wrong[0] = 0xD1;
        assert_eq!(CtlMsg::decode(Bytes::from(wrong)), None);
    }

    #[test]
    fn truncation_rejected() {
        let m = CtlMsg::Granted {
            service: Service::Projection,
            token: 9,
        }
        .encode();
        for cut in 0..m.len() {
            assert!(CtlMsg::decode(m.slice(0..cut)).is_none(), "prefix {cut}");
        }
    }
}
