//! The presenter's laptop.
//!
//! Drives the paper's scenario end-to-end: discover the lookup service,
//! look up the projector's two services, acquire sessions on both (in a
//! configurable order — the paper's abstract-layer analysis worries about
//! "attempts by multiple users to access the services in different
//! orders"), serve the screen over the embedded VNC server, send control
//! commands, and either release properly or — as real presenters do —
//! forget.

use crate::control::{CtlMsg, ProjectorCommand, Service, PROTO_CONTROL};
use aroma_discovery::codec::{Msg as DiscMsg, ServiceItem, Template, PROTO_DISCOVERY};
use aroma_net::{Address, NetApp, NetCtx, NodeId};
use aroma_sim::{SimDuration, SimTime};
use aroma_vnc::protocol::PROTO_VNC;
use aroma_vnc::workloads::ScreenSource;
use aroma_vnc::VncServerApp;
use bytes::Bytes;

const T_DISCOVER: u64 = 201;
const T_LOOKUP: u64 = 202;
const T_ACQUIRE_RETRY: u64 = 203;
const T_COMMAND: u64 = 204;
const T_PRESENT_END: u64 = 205;

const DISCOVER_PERIOD: SimDuration = SimDuration::from_millis(500);
const LOOKUP_PERIOD: SimDuration = SimDuration::from_millis(400);
const ACQUIRE_RETRY: SimDuration = SimDuration::from_secs(2);
const COMMAND_PERIOD: SimDuration = SimDuration::from_secs(3);

/// Which service the presenter grabs first.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AcquireOrder {
    /// Projection, then control (the documented workflow).
    ProjectionFirst,
    /// Control, then projection (the "different order" the paper worries
    /// about).
    ControlFirst,
}

/// What this presenter intends to do.
#[derive(Clone, Debug)]
pub struct PresenterScript {
    /// When to start trying (staggered arrivals for contention scenarios).
    pub start_after: SimDuration,
    /// Acquire order.
    pub order: AcquireOrder,
    /// How long to present once both sessions are held.
    pub present_for: SimDuration,
    /// Release sessions when done? (The paper's forgetful user says no.)
    pub release_on_finish: bool,
    /// Commands to issue periodically while presenting.
    pub commands: Vec<ProjectorCommand>,
    /// Give up acquiring after this many refusals (None = keep trying).
    pub max_denials: Option<u32>,
}

impl Default for PresenterScript {
    fn default() -> Self {
        PresenterScript {
            start_after: SimDuration::ZERO,
            order: AcquireOrder::ProjectionFirst,
            present_for: SimDuration::from_secs(30),
            release_on_finish: true,
            commands: vec![ProjectorCommand::PowerOn, ProjectorCommand::Brightness(85)],
            max_denials: None,
        }
    }
}

/// Workflow phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Waiting for `start_after`.
    Waiting,
    /// Multicasting for the lookup service.
    Discovering,
    /// Querying for the projector services.
    LookingUp,
    /// Acquiring the first/second session.
    Acquiring,
    /// Both sessions held; presenting.
    Presenting,
    /// Done (released or walked away).
    Finished,
    /// Gave up (too many refusals).
    GaveUp,
}

/// The presenter's laptop application.
pub struct PresenterLaptopApp {
    /// The script this presenter follows.
    pub script: PresenterScript,
    /// Current phase.
    pub phase: Phase,
    /// When both sessions were first held (time-to-projecting, the E5
    /// latency metric).
    pub projecting_at: Option<SimTime>,
    /// Session refusals observed.
    pub denials: u32,
    /// Commands acknowledged.
    pub commands_ok: u32,
    /// Commands refused.
    pub commands_denied: u32,
    /// Times a refused command made the presenter drop its tokens and
    /// re-acquire both sessions (the projector restarted mid-talk).
    pub reacquisitions: u32,
    /// Brightness values translated through the downloaded mobile-code
    /// proxy before sending.
    pub proxy_translations: u32,
    /// The embedded VNC server (answers the projector's pulls).
    pub vnc: VncServerApp,
    registrar: Option<NodeId>,
    /// The projector node and its two services, once looked up.
    pub projector: Option<NodeId>,
    display_item: Option<ServiceItem>,
    control_item: Option<ServiceItem>,
    proj_token: Option<u64>,
    ctl_token: Option<u64>,
    nonce: u64,
    next_req: u64,
    next_cmd: usize,
    /// Command timers in flight. Resuming after a re-acquisition arms a
    /// fresh timer while a stale one may still be pending; only the newest
    /// acts, so the command cadence never doubles.
    pending_cmd_timers: u32,
}

impl PresenterLaptopApp {
    /// A presenter whose screen is rendered by `source`.
    pub fn new(
        script: PresenterScript,
        width: usize,
        height: usize,
        source: Box<dyn ScreenSource>,
    ) -> Self {
        PresenterLaptopApp {
            script,
            phase: Phase::Waiting,
            projecting_at: None,
            denials: 0,
            commands_ok: 0,
            commands_denied: 0,
            reacquisitions: 0,
            proxy_translations: 0,
            vnc: VncServerApp::new(width, height, source),
            registrar: None,
            projector: None,
            display_item: None,
            control_item: None,
            proj_token: None,
            ctl_token: None,
            nonce: 0,
            next_req: 1,
            next_cmd: 0,
            pending_cmd_timers: 0,
        }
    }

    /// Screen digest (tests compare with the projector's viewer).
    pub fn screen_digest(&self) -> u64 {
        self.vnc.screen_digest()
    }

    /// The wire values of the held (projection, control) tokens, for tests
    /// that compare pre- and post-restart sessions.
    pub fn tokens(&self) -> (Option<u64>, Option<u64>) {
        (self.proj_token, self.ctl_token)
    }

    fn discover(&mut self, ctx: &mut NetCtx<'_>) {
        self.phase = Phase::Discovering;
        self.nonce = ctx.rng().next_u64_raw();
        ctx.send(
            Address::Broadcast,
            DiscMsg::DiscoverReq { nonce: self.nonce }.encode(),
        );
        ctx.set_timer(DISCOVER_PERIOD, T_DISCOVER);
    }

    fn lookup(&mut self, ctx: &mut NetCtx<'_>) {
        let Some(reg) = self.registrar else { return };
        self.phase = Phase::LookingUp;
        let req = self.next_req;
        self.next_req += 1;
        ctx.send(
            Address::Node(reg),
            DiscMsg::Lookup {
                req,
                template: Template::of_kind("projector/display"),
            }
            .encode(),
        );
        let req2 = self.next_req;
        self.next_req += 1;
        ctx.send(
            Address::Node(reg),
            DiscMsg::Lookup {
                req: req2,
                template: Template::of_kind("projector/control"),
            }
            .encode(),
        );
        ctx.set_timer(LOOKUP_PERIOD, T_LOOKUP);
    }

    fn first_service(&self) -> Service {
        match self.script.order {
            AcquireOrder::ProjectionFirst => Service::Projection,
            AcquireOrder::ControlFirst => Service::Control,
        }
    }

    fn next_unheld(&self) -> Option<Service> {
        let first = self.first_service();
        let second = match first {
            Service::Projection => Service::Control,
            Service::Control => Service::Projection,
        };
        for s in [first, second] {
            let held = match s {
                Service::Projection => self.proj_token.is_some(),
                Service::Control => self.ctl_token.is_some(),
            };
            if !held {
                return Some(s);
            }
        }
        None
    }

    fn acquire_next(&mut self, ctx: &mut NetCtx<'_>) {
        let Some(projector) = self.projector else {
            return;
        };
        match self.next_unheld() {
            Some(service) => {
                self.phase = Phase::Acquiring;
                ctx.send(
                    Address::Node(projector),
                    CtlMsg::Acquire { service }.encode(),
                );
            }
            None => self.begin_presenting(ctx),
        }
    }

    fn arm_command_timer(&mut self, ctx: &mut NetCtx<'_>, delay: SimDuration) {
        self.pending_cmd_timers += 1;
        ctx.set_timer(delay, T_COMMAND);
    }

    fn begin_presenting(&mut self, ctx: &mut NetCtx<'_>) {
        if self.phase == Phase::Presenting {
            return;
        }
        self.phase = Phase::Presenting;
        // First entry starts the clock; a resume after re-acquisition
        // keeps the original time-to-projecting and end-of-talk schedule.
        if self.projecting_at.is_none() {
            self.projecting_at = Some(ctx.now());
            ctx.set_timer(self.script.present_for, T_PRESENT_END);
        }
        if !self.script.commands.is_empty() {
            self.arm_command_timer(ctx, SimDuration::from_millis(300));
        }
    }

    fn finish(&mut self, ctx: &mut NetCtx<'_>) {
        let Some(projector) = self.projector else {
            self.phase = Phase::Finished;
            return;
        };
        if self.script.release_on_finish {
            if let Some(tok) = self.proj_token.take() {
                ctx.send(
                    Address::Node(projector),
                    CtlMsg::Release {
                        service: Service::Projection,
                        token: tok,
                    }
                    .encode(),
                );
            }
            if let Some(tok) = self.ctl_token.take() {
                ctx.send(
                    Address::Node(projector),
                    CtlMsg::Release {
                        service: Service::Control,
                        token: tok,
                    }
                    .encode(),
                );
            }
        }
        // A forgetful presenter keeps the tokens and simply walks away.
        self.phase = Phase::Finished;
    }

    fn handle_discovery(&mut self, ctx: &mut NetCtx<'_>, from: NodeId, payload: &Bytes) {
        let Ok(msg) = DiscMsg::decode(payload.clone()) else {
            return;
        };
        match msg {
            DiscMsg::DiscoverResp { nonce } if nonce == self.nonce && self.registrar.is_none() => {
                self.registrar = Some(from);
                self.lookup(ctx);
            }
            DiscMsg::LookupReply { items, .. } => {
                for item in items {
                    match item.kind.as_str() {
                        "projector/display" => {
                            self.projector = Some(NodeId(item.provider));
                            self.display_item = Some(item);
                        }
                        "projector/control" => {
                            self.projector = Some(NodeId(item.provider));
                            self.control_item = Some(item);
                        }
                        _ => {}
                    }
                }
                if self.display_item.is_some()
                    && self.control_item.is_some()
                    && self.phase == Phase::LookingUp
                {
                    self.acquire_next(ctx);
                }
            }
            _ => {}
        }
    }

    fn handle_control(&mut self, ctx: &mut NetCtx<'_>, payload: &Bytes) {
        let Some(msg) = CtlMsg::decode(payload.clone()) else {
            return;
        };
        match msg {
            CtlMsg::Granted { service, token } => {
                match service {
                    Service::Projection => self.proj_token = Some(token),
                    Service::Control => self.ctl_token = Some(token),
                }
                self.acquire_next(ctx);
            }
            CtlMsg::Denied { .. } => {
                self.denials += 1;
                if let Some(max) = self.script.max_denials {
                    if self.denials >= max {
                        self.phase = Phase::GaveUp;
                        return;
                    }
                }
                ctx.set_timer(ACQUIRE_RETRY, T_ACQUIRE_RETRY);
            }
            CtlMsg::CommandOk => self.commands_ok += 1,
            CtlMsg::CommandDenied { .. } => {
                self.commands_denied += 1;
                // Mid-presentation the projector stopped honouring our
                // token — it restarted (tokens die with the device) or the
                // session lapsed. The old tokens are worthless: drop them
                // and acquire fresh sessions instead of failing every
                // remaining command of the talk.
                if self.phase == Phase::Presenting {
                    self.reacquisitions += 1;
                    self.proj_token = None;
                    self.ctl_token = None;
                    self.acquire_next(ctx);
                }
            }
            _ => {}
        }
    }

    fn send_next_command(&mut self, ctx: &mut NetCtx<'_>) {
        let (Some(projector), Some(token)) = (self.projector, self.ctl_token) else {
            return;
        };
        if self.script.commands.is_empty() {
            return;
        }
        let mut cmd = self.script.commands[self.next_cmd % self.script.commands.len()];
        self.next_cmd += 1;
        // Brightness goes through the device's downloaded proxy (mobile
        // code): the client need not know this lamp's supported ladder.
        if let ProjectorCommand::Brightness(requested) = cmd {
            if let Some(item) = &self.control_item {
                if let Some(supported) = crate::proxy::run_brightness_proxy(&item.proxy, requested)
                {
                    self.proxy_translations += 1;
                    cmd = ProjectorCommand::Brightness(supported);
                }
            }
        }
        ctx.send(
            Address::Node(projector),
            CtlMsg::Command { token, cmd }.encode(),
        );
        self.arm_command_timer(ctx, COMMAND_PERIOD);
    }
}

impl NetApp for PresenterLaptopApp {
    fn on_start(&mut self, ctx: &mut NetCtx<'_>) {
        if self.script.start_after.is_zero() {
            self.discover(ctx);
        } else {
            ctx.set_timer(self.script.start_after, T_DISCOVER);
        }
    }

    fn on_packet(&mut self, ctx: &mut NetCtx<'_>, from: NodeId, payload: &Bytes) {
        match payload.first() {
            Some(&PROTO_DISCOVERY) => self.handle_discovery(ctx, from, payload),
            Some(&PROTO_CONTROL) => self.handle_control(ctx, payload),
            Some(&PROTO_VNC) => self.vnc.on_packet(ctx, from, payload),
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut NetCtx<'_>, token: u64) {
        match token {
            T_DISCOVER if self.registrar.is_none() && self.phase != Phase::Finished => {
                self.discover(ctx);
            }
            T_LOOKUP
                if self.phase == Phase::LookingUp
                    && (self.display_item.is_none() || self.control_item.is_none()) =>
            {
                self.lookup(ctx);
            }
            T_ACQUIRE_RETRY if self.phase == Phase::Acquiring => {
                self.acquire_next(ctx);
            }
            T_COMMAND => {
                self.pending_cmd_timers = self.pending_cmd_timers.saturating_sub(1);
                if self.phase == Phase::Presenting && self.pending_cmd_timers == 0 {
                    self.send_next_command(ctx);
                }
            }
            T_PRESENT_END if self.phase == Phase::Presenting => {
                self.finish(ctx);
            }
            _ => {}
        }
    }

    fn on_sent(&mut self, ctx: &mut NetCtx<'_>, to: Address) {
        // Forward completions to the embedded VNC server's pump. Spurious
        // completions (control/discovery frames) only widen its window,
        // which the MAC queue cap absorbs.
        self.vnc.on_sent(ctx, to);
    }

    /// A laptop crash loses every binding and both tokens (sessions at the
    /// projector lapse or get admin-cleared; the restart starts over).
    fn on_crash(&mut self, ctx: &mut NetCtx<'_>) {
        self.phase = Phase::Waiting;
        self.registrar = None;
        self.projector = None;
        self.display_item = None;
        self.control_item = None;
        self.proj_token = None;
        self.ctl_token = None;
        self.pending_cmd_timers = 0;
        self.vnc.on_crash(ctx);
    }

    /// Reboot complete: rejoin the room from the top of the workflow.
    fn on_restart(&mut self, ctx: &mut NetCtx<'_>) {
        self.discover(ctx);
    }

    fn on_send_failed(&mut self, ctx: &mut NetCtx<'_>, to: NodeId, payload: &Bytes) {
        self.vnc.on_send_failed(ctx, to, payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aroma_vnc::SlideDeck;

    fn app(order: AcquireOrder) -> PresenterLaptopApp {
        PresenterLaptopApp::new(
            PresenterScript {
                order,
                ..Default::default()
            },
            320,
            240,
            Box::new(SlideDeck::new(10.0)),
        )
    }

    #[test]
    fn acquire_order_respected() {
        let a = app(AcquireOrder::ProjectionFirst);
        assert_eq!(a.next_unheld(), Some(Service::Projection));
        let b = app(AcquireOrder::ControlFirst);
        assert_eq!(b.next_unheld(), Some(Service::Control));
    }

    #[test]
    fn next_unheld_walks_both_services() {
        let mut a = app(AcquireOrder::ProjectionFirst);
        a.proj_token = Some(1);
        assert_eq!(a.next_unheld(), Some(Service::Control));
        a.ctl_token = Some(2);
        assert_eq!(a.next_unheld(), None);
    }

    #[test]
    fn default_script_is_polite() {
        let s = PresenterScript::default();
        assert!(s.release_on_finish);
        assert_eq!(s.order, AcquireOrder::ProjectionFirst);
        assert!(!s.commands.is_empty());
    }

    #[test]
    fn initial_phase_is_waiting() {
        let a = app(AcquireOrder::ProjectionFirst);
        assert_eq!(a.phase, Phase::Waiting);
        assert!(a.projecting_at.is_none());
    }
}
