//! The Smart Projector as an LPC system description.
//!
//! Everything experiment E8 needs to regenerate the paper's analysis
//! section: the application state machines of the research prototype and
//! the commercial-grade variant (F4/E5 use them too), the mental models
//! different users bring to them, and the composed
//! [`PervasiveSystem`] handed to the analysis engine.

use aroma_appliance::{DeviceClass, DeviceProfile};
use aroma_env::space::Point;
use aroma_env::{EnvironmentKind, EnvironmentProfile};
use lpc_core::analysis::{AppSpec, Binding, DeviceEntity, PervasiveSystem};
use lpc_core::intent::DesignPurpose;
use lpc_core::resources::DeviceResources;
use lpc_core::{StateMachine, UserGoals, UserProfile};

/// Which Smart Projector the system describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProjectorVariant {
    /// As built at NIST: two clients + VNC server, manual everything.
    Prototype,
    /// The commercial-grade product the paper's analysis points toward.
    Commercial,
}

/// The *actual* application state machine for a variant.
///
/// Prototype, from the paper: *"The user must understand that both clients
/// must be started in order to project and control the Smart Projector from
/// a single laptop … The VNC server must also be started on the laptop for
/// projection to succeed."* Starting the projection client without the VNC
/// server silently wedges — the conceptual trap that makes the prototype's
/// burden measurable.
pub fn application_machine(variant: ProjectorVariant) -> StateMachine {
    match variant {
        ProjectorVariant::Prototype => StateMachine::new()
            .with("idle", "start-vnc-server", "vnc-on")
            .with("idle", "start-projection-client", "proj-stuck")
            .with("idle", "start-control-client", "ctl-only")
            .with("proj-stuck", "start-vnc-server", "proj-stuck")
            .with("proj-stuck", "stop-projection-client", "idle")
            .with("ctl-only", "start-vnc-server", "vnc-ctl")
            .with("ctl-only", "start-projection-client", "proj-stuck")
            .with("vnc-on", "start-projection-client", "projecting")
            .with("vnc-on", "start-control-client", "vnc-ctl")
            .with("vnc-ctl", "start-projection-client", "presenting")
            .with("projecting", "start-control-client", "presenting")
            .with("presenting", "stop-projection-client", "vnc-ctl")
            .with("presenting", "stop-control-client", "projecting"),
        ProjectorVariant::Commercial => StateMachine::new()
            .with("idle", "present", "presenting")
            .with("presenting", "disconnect", "idle"),
    }
}

/// The canonical task: from power-up to projecting *and* controllable.
pub fn task(variant: ProjectorVariant) -> (&'static str, &'static str) {
    let _ = variant;
    ("idle", "presenting")
}

/// The mental model a user plausibly brings, by their domain knowledge.
///
/// * Researchers (the lab) know the machine exactly.
/// * Presenters know VNC must run but expect one client to do both jobs.
/// * Casual users expect an appliance: one action does everything.
pub fn belief_for(user: &UserProfile, variant: ProjectorVariant) -> StateMachine {
    match variant {
        ProjectorVariant::Commercial => {
            // Everyone's "point and it works" belief happens to be right.
            application_machine(variant)
        }
        ProjectorVariant::Prototype => {
            let k = user.faculties.domain_knowledge;
            if k >= 0.8 {
                application_machine(variant)
            } else if k >= 0.3 {
                StateMachine::new()
                    .with("idle", "start-vnc-server", "vnc-on")
                    .with("vnc-on", "start-projection-client", "presenting")
            } else {
                StateMachine::new().with("idle", "start-projection-client", "presenting")
            }
        }
    }
}

/// Goals matched to the preset user profiles.
pub fn goals_for(user: &UserProfile) -> UserGoals {
    if user.faculties.domain_knowledge >= 0.8 {
        UserGoals::researcher()
    } else if user.faculties.gui_experience >= 0.7 {
        UserGoals::presenter()
    } else {
        UserGoals::casual()
    }
}

/// The AppSpec for a variant, parameterised by whether the presentation
/// includes rapid animation (the E1/physical-layer stressor).
pub fn app_spec(variant: ProjectorVariant, rapid_animation: bool) -> AppSpec {
    let (start, goal) = task(variant);
    match variant {
        ProjectorVariant::Prototype => AppSpec {
            name: "Smart Projector (prototype)".into(),
            machine: application_machine(variant),
            start: start.into(),
            goal: goal.into(),
            uses_voice: false,
            proximity_constraint_m: Some(2.0), // controlled from the laptop
            needs_bandwidth_bps: if rapid_animation { Some(12e6) } else { Some(1.5e6) },
            external_dependencies: vec![
                "a Jini lookup service".into(),
                "the VNC server on the presenter's laptop".into(),
                "a manually configured wireless network".into(),
            ],
            purpose: DesignPurpose::research_prototype(),
        },
        ProjectorVariant::Commercial => AppSpec {
            name: "Smart Projector (commercial)".into(),
            machine: application_machine(variant),
            start: start.into(),
            goal: goal.into(),
            uses_voice: false,
            proximity_constraint_m: None, // handheld remote / any device
            needs_bandwidth_bps: if rapid_animation { Some(12e6) } else { Some(1.5e6) },
            external_dependencies: vec![],
            purpose: DesignPurpose::commercial_product(),
        },
    }
}

/// Compose the full Smart Projector system for analysis (experiment E8).
///
/// `users` are bound to the adapter's application; the bare projector and
/// the laptop participate as physical entities.
pub fn smart_projector_system(
    variant: ProjectorVariant,
    env: EnvironmentKind,
    users: Vec<UserProfile>,
    rapid_animation: bool,
) -> PervasiveSystem {
    let resources = match variant {
        ProjectorVariant::Prototype => DeviceResources::research_prototype(),
        ProjectorVariant::Commercial => DeviceResources::commercial_grade(),
    };
    let adapter = DeviceEntity {
        name: "Aroma Adapter".into(),
        profile: DeviceProfile::of(DeviceClass::AromaAdapter),
        resources: Some(resources),
        application: Some(app_spec(variant, rapid_animation)),
        // 2.4 GHz WLAN goodput ceiling (11 Mbit/s PHY, MAC efficiency).
        link_bandwidth_bps: Some(6.0e6),
        position: Point::new(1.0, 0.0),
    };
    let projector = DeviceEntity {
        name: "digital projector".into(),
        profile: DeviceProfile::of(DeviceClass::DigitalProjector),
        resources: None,
        application: None,
        link_bandwidth_bps: None,
        position: Point::new(1.5, 0.0),
    };
    let laptop = DeviceEntity {
        name: "presenter laptop".into(),
        profile: DeviceProfile::of(DeviceClass::Laptop),
        resources: None,
        application: None,
        link_bandwidth_bps: Some(6.0e6),
        position: Point::new(5.0, 2.0),
    };
    let bindings = users
        .iter()
        .enumerate()
        .map(|(i, u)| Binding {
            user: i,
            device: 0, // the adapter hosts the application
            goals: goals_for(u),
            belief: belief_for(u, variant),
        })
        .collect();
    PervasiveSystem {
        name: format!(
            "Smart Projector ({}) in {}",
            match variant {
                ProjectorVariant::Prototype => "research prototype",
                ProjectorVariant::Commercial => "commercial",
            },
            env.name()
        ),
        environment: EnvironmentProfile::preset(env).build(),
        users,
        devices: vec![adapter, projector, laptop],
        bindings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpc_core::layer::Layer;
    use lpc_core::mental::divergence;
    use lpc_core::Severity;

    #[test]
    fn prototype_machine_matches_the_papers_workflow() {
        let m = application_machine(ProjectorVariant::Prototype);
        // The documented happy path works.
        let plan = m.plan("idle", "presenting").unwrap();
        assert_eq!(plan.len(), 3, "vnc + both clients: {plan:?}");
        // Starting projection without VNC wedges.
        assert_eq!(m.step("idle", "start-projection-client"), Some("proj-stuck"));
        assert_eq!(m.step("proj-stuck", "start-vnc-server"), Some("proj-stuck"));
    }

    #[test]
    fn commercial_machine_is_one_action() {
        let m = application_machine(ProjectorVariant::Commercial);
        assert_eq!(m.plan("idle", "presenting").unwrap().len(), 1);
    }

    #[test]
    fn beliefs_grade_with_domain_knowledge() {
        let proto = ProjectorVariant::Prototype;
        let researcher = belief_for(&UserProfile::researcher(), proto);
        let casual = belief_for(&UserProfile::casual(), proto);
        let actual = application_machine(proto);
        assert_eq!(divergence(&researcher, &actual).gap(), 0.0);
        assert!(divergence(&casual, &actual).gap() > 0.5);
        // Commercial variant: everyone's belief is right.
        let casual_com = belief_for(&UserProfile::casual(), ProjectorVariant::Commercial);
        let actual_com = application_machine(ProjectorVariant::Commercial);
        assert_eq!(divergence(&casual_com, &actual_com).gap(), 0.0);
    }

    #[test]
    fn e8_prototype_analysis_reproduces_the_papers_findings() {
        let sys = smart_projector_system(
            ProjectorVariant::Prototype,
            EnvironmentKind::ConferenceHall,
            vec![UserProfile::casual()],
            true,
        );
        let r = sys.analyze(1);
        // Physical: bandwidth prevents rapid animation; proximity constraint.
        assert!(
            r.in_layer(Layer::Physical).any(|i| i.description.contains("animation")),
            "{}",
            r.render()
        );
        assert!(r
            .in_layer(Layer::Physical)
            .any(|i| i.description.contains("constrained")));
        // Resource: Jini dependency + frustrations.
        assert!(r
            .in_layer(Layer::Resource)
            .any(|i| i.description.contains("Jini")));
        // Intentional: not in harmony with casual users.
        assert!(r
            .in_layer(Layer::Intentional)
            .any(|i| i.severity >= Severity::Serious));
        // Abstract: conceptual burden shows up.
        assert!(r.in_layer(Layer::Abstract).count() >= 1, "{}", r.render());
    }

    #[test]
    fn e8_commercial_analysis_is_dramatically_cleaner() {
        let users = vec![UserProfile::casual()];
        let proto = smart_projector_system(
            ProjectorVariant::Prototype,
            EnvironmentKind::ConferenceHall,
            users.clone(),
            false,
        )
        .analyze(1);
        let com = smart_projector_system(
            ProjectorVariant::Commercial,
            EnvironmentKind::ConferenceHall,
            users,
            false,
        )
        .analyze(1);
        assert!(
            com.issues.len() * 2 < proto.issues.len(),
            "commercial {} vs prototype {}:\n{}",
            com.issues.len(),
            proto.issues.len(),
            proto.render()
        );
    }

    #[test]
    fn researchers_are_served_by_the_prototype() {
        let sys = smart_projector_system(
            ProjectorVariant::Prototype,
            EnvironmentKind::QuietOffice,
            vec![UserProfile::researcher()],
            false,
        );
        let r = sys.analyze(1);
        // The paper: "it does satisfy the needs of its intended users."
        assert!(
            !r.in_layer(Layer::Intentional)
                .any(|i| i.severity >= Severity::Serious),
            "{}",
            r.render()
        );
        assert!(
            !r.in_layer(Layer::Abstract)
                .any(|i| i.severity == Severity::Blocking),
            "{}",
            r.render()
        );
    }
}
