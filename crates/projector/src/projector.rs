//! The Smart Projector node: the Aroma Adapter plus the digital projector.
//!
//! One [`aroma_net::NetApp`] that (a) registers the two services with the
//! Jini-style lookup service and keeps their leases alive, (b) guards both
//! with [`SessionManager`]s, (c) embeds an [`aroma_vnc::VncViewerApp`] that
//! pulls the owning laptop's screen while a projection session is active,
//! and (d) applies control commands to the projector state. Incoming frames
//! are routed by protocol discriminator byte — discovery, VNC, and control
//! traffic share the node, as they shared the real adapter.

use crate::control::{CtlMsg, ProjectorCommand, Service, PROTO_CONTROL};
use crate::session::{SessionManager, SessionPolicy, SessionToken};
use aroma_discovery::codec::{Msg as DiscMsg, ServiceId, ServiceItem, PROTO_DISCOVERY};
use aroma_net::{Address, NetApp, NetCtx, NodeId};
use aroma_sim::{SimDuration, SimTime};
use aroma_vnc::protocol::PROTO_VNC;
use aroma_vnc::VncViewerApp;
use bytes::Bytes;

// Timer tokens ≥ 100 belong to the projector; anything below is forwarded
// to the embedded VNC viewer (it uses 1 and 2).
const T_DISCOVER: u64 = 101;
const T_RENEW_DISPLAY: u64 = 102;
const T_RENEW_CONTROL: u64 = 103;
const T_RENEW_TIMEOUT: u64 = 104;

const DISCOVER_PERIOD: SimDuration = SimDuration::from_millis(500);
const LEASE_REQUEST_MS: u64 = 10_000;
/// How long a renewal may go unanswered before the adapter decides its
/// registrar is gone and re-enters discovery.
const RENEW_TIMEOUT: SimDuration = SimDuration::from_millis(600);

/// Current state of the projector hardware.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProjectorState {
    /// Lamp on?
    pub powered: bool,
    /// Selected input (0 = network display).
    pub input: u8,
    /// Brightness 0–100.
    pub brightness: u8,
}

impl Default for ProjectorState {
    fn default() -> Self {
        ProjectorState {
            powered: false,
            input: 0,
            brightness: 70,
        }
    }
}

/// The Smart Projector application (runs on the Aroma Adapter node).
pub struct SmartProjectorApp {
    /// Screen width served.
    pub width: usize,
    /// Screen height served.
    pub height: usize,
    /// Session guard for the projection service.
    pub projection_sessions: SessionManager,
    /// Session guard for the control service.
    pub control_sessions: SessionManager,
    /// Projector hardware state.
    pub state: ProjectorState,
    /// The embedded VNC viewer while a projection session is live.
    pub viewer: Option<VncViewerApp>,
    /// Commands applied.
    pub commands_applied: u64,
    /// Commands refused (bad/expired token).
    pub commands_denied: u64,
    /// Acquisitions granted (both services).
    pub grants: u64,
    /// Acquisitions denied.
    pub denials: u64,
    /// Completed registrations with the lookup service.
    pub registrations: u64,
    /// The room attribute advertised.
    pub room: String,
    /// Times the adapter process has (re)started; keys the token streams so
    /// a restarted manager can never re-mint a pre-crash token.
    pub incarnation: u32,
    registrar: Option<NodeId>,
    /// A Renew is in flight with no answer yet.
    renew_outstanding: bool,
    nonce: u64,
    /// Maps wire node → user key for session accounting.
    display_service_id: ServiceId,
    control_service_id: ServiceId,
}

impl SmartProjectorApp {
    /// A projector guarding both services with `policy`, serving a
    /// `width`×`height` display.
    pub fn new(width: usize, height: usize, policy: SessionPolicy, room: &str) -> Self {
        // Per-service token streams, keyed by room so two adapters never
        // mint the same sequence: a projection token must not open the
        // control session (and vice versa) — aroma-check's cross-service
        // guess action proves this stays true.
        let (proj_tokens, ctl_tokens) = Self::token_streams(room, 0);
        SmartProjectorApp {
            width,
            height,
            projection_sessions: SessionManager::with_token_rng(policy, proj_tokens),
            control_sessions: SessionManager::with_token_rng(policy, ctl_tokens),
            state: ProjectorState::default(),
            viewer: None,
            commands_applied: 0,
            commands_denied: 0,
            grants: 0,
            denials: 0,
            registrations: 0,
            room: room.to_string(),
            incarnation: 0,
            registrar: None,
            renew_outstanding: false,
            nonce: 0,
            display_service_id: ServiceId(0),
            control_service_id: ServiceId(0),
        }
    }

    /// The digest of the screen currently projected (tests compare against
    /// the laptop's).
    pub fn projected_digest(&self) -> Option<u64> {
        self.viewer.as_ref().map(|v| v.screen_digest())
    }

    /// Per-service token streams for one incarnation of the adapter.
    ///
    /// Incarnation 0 forks by the original stream names, so pre-existing
    /// seeded runs are untouched; every restart forks by a name that mixes
    /// the incarnation counter in, giving the rebooted managers streams
    /// disjoint from anything minted before the crash.
    fn token_streams(room: &str, incarnation: u32) -> (aroma_sim::SimRng, aroma_sim::SimRng) {
        let base = aroma_sim::SimRng::new(aroma_sim::rng::fnv1a(room.as_bytes()));
        if incarnation == 0 {
            (
                base.fork_named("projection-tokens"),
                base.fork_named("control-tokens"),
            )
        } else {
            (
                base.fork_named(&format!("projection-tokens#{incarnation}")),
                base.fork_named(&format!("control-tokens#{incarnation}")),
            )
        }
    }

    fn service_items(&self, me: NodeId) -> (ServiceItem, ServiceItem) {
        let display = ServiceItem {
            id: ServiceId(me.key() * 10 + 1),
            kind: "projector/display".into(),
            attributes: vec![
                ("room".into(), self.room.clone()),
                (
                    "resolution".into(),
                    format!("{}x{}", self.width, self.height),
                ),
            ],
            provider: me.0,
            proxy: Bytes::from_static(b"display-proxy"),
        };
        let control = ServiceItem {
            id: ServiceId(me.key() * 10 + 2),
            kind: "projector/control".into(),
            attributes: vec![("room".into(), self.room.clone())],
            provider: me.0,
            // Real mobile code: clients run this to map a requested
            // brightness onto the lamp's supported ladder.
            proxy: crate::proxy::brightness_proxy_bytes(),
        };
        (display, control)
    }

    fn discover(&mut self, ctx: &mut NetCtx<'_>) {
        self.nonce = ctx.rng().next_u64_raw();
        ctx.send(
            Address::Broadcast,
            DiscMsg::DiscoverReq { nonce: self.nonce }.encode(),
        );
        ctx.set_timer(DISCOVER_PERIOD, T_DISCOVER);
    }

    fn register_both(&mut self, ctx: &mut NetCtx<'_>) {
        let Some(reg) = self.registrar else { return };
        let (display, control) = self.service_items(ctx.node());
        self.display_service_id = display.id;
        self.control_service_id = control.id;
        for item in [display, control] {
            ctx.send(
                Address::Node(reg),
                DiscMsg::Register {
                    item,
                    lease_ms: LEASE_REQUEST_MS,
                }
                .encode(),
            );
        }
    }

    fn handle_discovery(&mut self, ctx: &mut NetCtx<'_>, from: NodeId, payload: &Bytes) {
        let Ok(msg) = DiscMsg::decode(payload.clone()) else {
            return;
        };
        match msg {
            DiscMsg::DiscoverResp { nonce } if nonce == self.nonce && self.registrar.is_none() => {
                self.registrar = Some(from);
                self.register_both(ctx);
            }
            DiscMsg::RegisterAck { id, granted_ms } => {
                self.registrations += 1;
                let token = if id == self.display_service_id {
                    T_RENEW_DISPLAY
                } else {
                    T_RENEW_CONTROL
                };
                ctx.set_timer(SimDuration::from_millis(granted_ms / 2), token);
            }
            DiscMsg::RenewAck { id, ok, granted_ms } => {
                self.renew_outstanding = false;
                let token = if id == self.display_service_id {
                    T_RENEW_DISPLAY
                } else {
                    T_RENEW_CONTROL
                };
                if ok {
                    ctx.set_timer(SimDuration::from_millis(granted_ms / 2), token);
                } else {
                    self.register_both(ctx);
                }
            }
            _ => {}
        }
    }

    fn handle_control(&mut self, ctx: &mut NetCtx<'_>, from: NodeId, payload: &Bytes) {
        let Some(msg) = CtlMsg::decode(payload.clone()) else {
            return;
        };
        let now = ctx.now();
        match msg {
            CtlMsg::Acquire { service } => {
                let mgr = self.manager(service);
                match mgr.acquire(from.key(), now) {
                    Ok(token) => {
                        self.grants += 1;
                        if service == Service::Projection {
                            self.start_projection(ctx, from);
                        }
                        ctx.send(
                            Address::Node(from),
                            CtlMsg::Granted {
                                service,
                                token: token.value(),
                            }
                            .encode(),
                        );
                    }
                    Err(_) => {
                        self.denials += 1;
                        ctx.send(
                            Address::Node(from),
                            CtlMsg::Denied {
                                service,
                                reason: "busy".into(),
                            }
                            .encode(),
                        );
                    }
                }
            }
            CtlMsg::Release { service, token } => {
                let mgr = self.manager(service);
                if mgr.release(SessionToken::from_value(token), now).is_ok()
                    && service == Service::Projection
                {
                    self.stop_projection();
                }
            }
            CtlMsg::Command { token, cmd } => {
                let tok = SessionToken::from_value(token);
                if self.control_sessions.touch(tok, now).is_ok() {
                    self.apply(cmd);
                    self.commands_applied += 1;
                    ctx.send(Address::Node(from), CtlMsg::CommandOk.encode());
                } else {
                    self.commands_denied += 1;
                    ctx.send(
                        Address::Node(from),
                        CtlMsg::CommandDenied {
                            reason: "no control session".into(),
                        }
                        .encode(),
                    );
                }
            }
            _ => {}
        }
    }

    fn manager(&mut self, service: Service) -> &mut SessionManager {
        match service {
            Service::Projection => &mut self.projection_sessions,
            Service::Control => &mut self.control_sessions,
        }
    }

    fn start_projection(&mut self, ctx: &mut NetCtx<'_>, laptop: NodeId) {
        // (Re)point the embedded viewer at the session owner and start
        // pulling. A hijack under SessionPolicy::None lands here too — the
        // new owner's screen simply replaces the old one, which is exactly
        // the failure the paper's session objects exist to prevent.
        // A projector refreshes at display-panel cadence, not line rate.
        let mut viewer = VncViewerApp::new(laptop, self.width, self.height).with_target_fps(10.0);
        viewer.on_start(ctx);
        self.viewer = Some(viewer);
        if self.state.powered {
            self.state.input = 0;
        }
    }

    fn stop_projection(&mut self) {
        self.viewer = None;
    }

    fn apply(&mut self, cmd: ProjectorCommand) {
        match cmd {
            ProjectorCommand::PowerOn => self.state.powered = true,
            ProjectorCommand::PowerOff => self.state.powered = false,
            ProjectorCommand::SelectInput(i) => self.state.input = i,
            ProjectorCommand::Brightness(v) => self.state.brightness = v.min(100),
        }
    }

    /// Expire idle sessions (lazy, driven by traffic); stop projecting if
    /// the projection session lapsed.
    fn sweep_sessions(&mut self, now: SimTime) {
        if self.viewer.is_some() && self.projection_sessions.owner(now).is_none() {
            self.stop_projection();
        }
        let _ = self.control_sessions.owner(now);
    }
}

impl NetApp for SmartProjectorApp {
    fn on_start(&mut self, ctx: &mut NetCtx<'_>) {
        self.discover(ctx);
    }

    fn on_packet(&mut self, ctx: &mut NetCtx<'_>, from: NodeId, payload: &Bytes) {
        self.sweep_sessions(ctx.now());
        match payload.first() {
            Some(&PROTO_DISCOVERY) => self.handle_discovery(ctx, from, payload),
            Some(&PROTO_CONTROL) => self.handle_control(ctx, from, payload),
            Some(&PROTO_VNC) => {
                // Only the projection owner's frames reach the viewer; the
                // viewer itself also checks the sender.
                if let Some(viewer) = &mut self.viewer {
                    viewer.on_packet(ctx, from, payload);
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut NetCtx<'_>, token: u64) {
        self.sweep_sessions(ctx.now());
        match token {
            T_DISCOVER if self.registrar.is_none() => {
                self.discover(ctx);
            }
            T_RENEW_DISPLAY | T_RENEW_CONTROL => {
                if let Some(reg) = self.registrar {
                    let id = if token == T_RENEW_DISPLAY {
                        self.display_service_id
                    } else {
                        self.control_service_id
                    };
                    ctx.send(Address::Node(reg), DiscMsg::Renew { id }.encode());
                    self.renew_outstanding = true;
                    ctx.set_timer(RENEW_TIMEOUT, T_RENEW_TIMEOUT);
                }
            }
            T_RENEW_TIMEOUT if self.renew_outstanding => {
                // The registrar never answered: it is dead or out of reach.
                // Before this timeout existed, a registrar crash orphaned
                // the adapter for good — its leases lapsed and no client
                // could ever find it again. Re-enter discovery (a standby
                // registrar answers just as well) and re-register.
                self.renew_outstanding = false;
                self.registrar = None;
                self.discover(ctx);
            }
            t if t < 100 => {
                if let Some(viewer) = &mut self.viewer {
                    viewer.on_timer(ctx, t);
                }
            }
            _ => {}
        }
    }

    /// Adapter process crash: every session dies with the device, and the
    /// rebooted managers mint tokens from incarnation-fresh streams so
    /// nothing issued before the crash is ever honoured again (no-hijack
    /// survives restarts). Session statistics accumulate across the crash
    /// so post-run assertions see the whole history.
    fn on_crash(&mut self, _ctx: &mut NetCtx<'_>) {
        self.incarnation += 1;
        let (proj_tokens, ctl_tokens) = Self::token_streams(&self.room, self.incarnation);
        self.projection_sessions.reboot(proj_tokens);
        self.control_sessions.reboot(ctl_tokens);
        self.viewer = None;
        self.registrar = None;
        self.renew_outstanding = false;
        self.state = ProjectorState::default();
    }

    /// Reboot complete: rediscover the lookup service and re-register both
    /// services (fresh leases; the old ones lapse at the registrar).
    fn on_restart(&mut self, ctx: &mut NetCtx<'_>) {
        self.discover(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projector_state_defaults() {
        let s = ProjectorState::default();
        assert!(!s.powered);
        assert_eq!(s.input, 0);
        assert_eq!(s.brightness, 70);
    }

    #[test]
    fn apply_commands_mutates_state() {
        let mut app = SmartProjectorApp::new(320, 240, SessionPolicy::ManualRelease, "A-101");
        app.apply(ProjectorCommand::PowerOn);
        assert!(app.state.powered);
        app.apply(ProjectorCommand::Brightness(200));
        assert_eq!(app.state.brightness, 100, "brightness clamps");
        app.apply(ProjectorCommand::SelectInput(1));
        assert_eq!(app.state.input, 1);
        app.apply(ProjectorCommand::PowerOff);
        assert!(!app.state.powered);
    }

    #[test]
    fn service_items_describe_both_services() {
        let app = SmartProjectorApp::new(640, 480, SessionPolicy::ManualRelease, "B-202");
        let (d, c) = app.service_items(NodeId(3));
        assert_eq!(d.kind, "projector/display");
        assert_eq!(c.kind, "projector/control");
        assert_ne!(d.id, c.id);
        assert_eq!(d.attr("room"), Some("B-202"));
        assert_eq!(d.attr("resolution"), Some("640x480"));
        assert_eq!(d.provider, 3);
    }
}
