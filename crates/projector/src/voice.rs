//! Voice control — the paper's future-work feature, built.
//!
//! *"A future version of the Smart Projector could conceivably offer voice
//! control, in which case human physical characteristics will play a
//! greater role in the physical layer"* — and, at the environment layer,
//! background noise and social appropriateness become gating issues. This
//! module models the acoustic command channel end to end: an utterance is
//! heard at some SNR (from `aroma-env`), recognised correctly, confused
//! with another command, or missed entirely; a confirmation loop retries
//! until success or the speaker gives up.

use crate::control::ProjectorCommand;
use aroma_env::acoustics::recognition_accuracy;
use aroma_env::space::Point;
use aroma_env::Environment;
use aroma_sim::SimRng;

/// The command vocabulary the voice interface understands.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum VoiceCommand {
    /// "projector on"
    PowerOn,
    /// "projector off"
    PowerOff,
    /// "brighter"
    Brighter,
    /// "dimmer"
    Dimmer,
    /// "next input"
    NextInput,
}

impl VoiceCommand {
    /// The whole vocabulary.
    pub const ALL: [VoiceCommand; 5] = [
        VoiceCommand::PowerOn,
        VoiceCommand::PowerOff,
        VoiceCommand::Brighter,
        VoiceCommand::Dimmer,
        VoiceCommand::NextInput,
    ];

    /// Map to the wired control verb (given current brightness for the
    /// relative commands).
    pub fn to_command(self, brightness: u8, input: u8) -> ProjectorCommand {
        match self {
            VoiceCommand::PowerOn => ProjectorCommand::PowerOn,
            VoiceCommand::PowerOff => ProjectorCommand::PowerOff,
            VoiceCommand::Brighter => ProjectorCommand::Brightness(brightness.saturating_add(10)),
            VoiceCommand::Dimmer => ProjectorCommand::Brightness(brightness.saturating_sub(10)),
            VoiceCommand::NextInput => ProjectorCommand::SelectInput(input.wrapping_add(1) % 3),
        }
    }
}

/// What the recogniser made of one utterance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Heard {
    /// Correctly recognised.
    Correct(VoiceCommand),
    /// Confused with a different command (the dangerous outcome).
    Confused(VoiceCommand),
    /// Nothing intelligible.
    Missed,
}

/// The acoustic command channel between a talker and the device microphone.
#[derive(Clone, Debug)]
pub struct VoiceChannel {
    /// Where the talker stands.
    pub talker: Point,
    /// Where the microphone is.
    pub mic: Point,
    /// Word accuracy of the recogniser at the current SNR, `[0, 1)`.
    pub accuracy: f64,
    /// Whether speaking here is socially acceptable at all.
    pub socially_ok: bool,
}

impl VoiceChannel {
    /// Build the channel from an environment and geometry.
    pub fn in_environment(env: &Environment, talker: Point, mic: Point) -> Self {
        let snr = env.acoustics.speech_snr_db(talker, mic);
        VoiceChannel {
            talker,
            mic,
            accuracy: recognition_accuracy(snr),
            socially_ok: env.acoustics.social.voice_appropriate(),
        }
    }

    /// One utterance of `cmd`. Of the error mass, 30% is confusion with a
    /// random other command (substitution errors), the rest a miss
    /// (deletion) — the standard ASR error split at vocabulary size 5.
    pub fn utter(&self, cmd: VoiceCommand, rng: &mut SimRng) -> Heard {
        if rng.chance(self.accuracy) {
            return Heard::Correct(cmd);
        }
        if rng.chance(0.3) {
            let others: Vec<VoiceCommand> = VoiceCommand::ALL
                .iter()
                .copied()
                .filter(|c| *c != cmd)
                .collect();
            Heard::Confused(*rng.choose(&others).expect("non-empty vocabulary"))
        } else {
            Heard::Missed
        }
    }
}

/// Outcome of a confirm-and-retry command session.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct VoiceSession {
    /// The intended command was executed.
    pub succeeded: bool,
    /// Utterances spoken.
    pub attempts: u32,
    /// Wrong commands that *would have* executed without confirmation.
    pub would_misfire: u32,
}

/// Drive one command through the channel with up to `max_attempts`
/// utterances. With `confirm` the device echoes what it heard and wrong
/// commands are cancelled (costing another attempt); without it a
/// confusion executes the wrong command immediately.
pub fn run_command(
    channel: &VoiceChannel,
    cmd: VoiceCommand,
    confirm: bool,
    max_attempts: u32,
    rng: &mut SimRng,
) -> VoiceSession {
    let mut s = VoiceSession::default();
    while s.attempts < max_attempts {
        s.attempts += 1;
        match channel.utter(cmd, rng) {
            Heard::Correct(_) => {
                s.succeeded = true;
                return s;
            }
            Heard::Confused(_) => {
                s.would_misfire += 1;
                if !confirm {
                    // Executed the wrong thing; the session "ends" wrong.
                    return s;
                }
                // Confirmation catches it; retry.
            }
            Heard::Missed => {}
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use aroma_env::{EnvironmentKind, EnvironmentProfile};

    fn channel(kind: EnvironmentKind) -> VoiceChannel {
        let env = EnvironmentProfile::preset(kind).build();
        VoiceChannel::in_environment(&env, Point::new(0.0, 0.0), Point::new(0.5, 0.0))
    }

    #[test]
    fn quiet_office_is_accurate_and_allowed() {
        let c = channel(EnvironmentKind::QuietOffice);
        assert!(c.accuracy > 0.9);
        assert!(c.socially_ok);
    }

    #[test]
    fn subway_is_hopeless_and_rude() {
        let c = channel(EnvironmentKind::SubwayCar);
        assert!(c.accuracy < 0.1);
        assert!(!c.socially_ok);
    }

    #[test]
    fn utterance_outcomes_follow_accuracy() {
        let good = channel(EnvironmentKind::QuietOffice);
        let mut rng = SimRng::new(1);
        let correct = (0..1000)
            .filter(|_| matches!(good.utter(VoiceCommand::PowerOn, &mut rng), Heard::Correct(_)))
            .count();
        assert!(correct > 900, "{correct}");
        let bad = channel(EnvironmentKind::SubwayCar);
        let correct_bad = (0..1000)
            .filter(|_| matches!(bad.utter(VoiceCommand::PowerOn, &mut rng), Heard::Correct(_)))
            .count();
        assert!(correct_bad < 50, "{correct_bad}");
    }

    #[test]
    fn confusion_never_returns_the_intended_command() {
        let bad = channel(EnvironmentKind::SubwayCar);
        let mut rng = SimRng::new(2);
        for _ in 0..2000 {
            if let Heard::Confused(other) = bad.utter(VoiceCommand::Dimmer, &mut rng) {
                assert_ne!(other, VoiceCommand::Dimmer);
            }
        }
    }

    #[test]
    fn confirmation_prevents_misfires() {
        let noisy = channel(EnvironmentKind::OutdoorCourtyard);
        let mut rng = SimRng::new(3);
        let mut misfired_without = 0;
        let mut misfired_with = 0;
        for _ in 0..500 {
            let no_confirm = run_command(&noisy, VoiceCommand::PowerOff, false, 5, &mut rng);
            if !no_confirm.succeeded && no_confirm.would_misfire > 0 {
                misfired_without += 1;
            }
            let with_confirm = run_command(&noisy, VoiceCommand::PowerOff, true, 5, &mut rng);
            if with_confirm.would_misfire > 0 && !with_confirm.succeeded {
                misfired_with += 1;
            }
        }
        assert!(misfired_without > 0, "no-confirm sessions should misfire sometimes");
        // With confirmation, confusions cost retries but almost always end
        // in success within 5 attempts at ~83% accuracy.
        assert!(misfired_with * 5 < misfired_without, "{misfired_with} vs {misfired_without}");
    }

    #[test]
    fn retries_raise_success_in_marginal_noise() {
        let marginal = channel(EnvironmentKind::ConferenceHall);
        let mut rng = SimRng::new(4);
        let one_shot = (0..500)
            .filter(|_| run_command(&marginal, VoiceCommand::Brighter, true, 1, &mut rng).succeeded)
            .count();
        let five = (0..500)
            .filter(|_| run_command(&marginal, VoiceCommand::Brighter, true, 5, &mut rng).succeeded)
            .count();
        assert!(five > one_shot);
        assert!(five > 480, "five attempts at 91% accuracy ≈ certain: {five}");
    }

    #[test]
    fn voice_commands_map_to_control_verbs() {
        assert_eq!(
            VoiceCommand::Brighter.to_command(70, 0),
            ProjectorCommand::Brightness(80)
        );
        assert_eq!(
            VoiceCommand::Dimmer.to_command(5, 0),
            ProjectorCommand::Brightness(0)
        );
        assert_eq!(
            VoiceCommand::NextInput.to_command(70, 2),
            ProjectorCommand::SelectInput(0)
        );
        assert_eq!(VoiceCommand::PowerOn.to_command(0, 0), ProjectorCommand::PowerOn);
    }
}
