//! Downloadable service proxies — the "mobile code" of the Aroma project.
//!
//! Jini's distinctive move was shipping *behaviour* with the service
//! registration: the client downloads a proxy object and talks to the
//! device through it, without compiled-in knowledge of the device's quirks.
//! Here the control service's proxy is an `aroma-mcode` program that maps a
//! requested brightness percentage onto what this particular projector
//! actually supports (its lamp steps in 5s and cannot go below 10) — logic
//! that lives with the *device*, travels in the `ServiceItem::proxy` bytes,
//! and runs inside the client's fuel-metered VM.

use aroma_mcode::asm::assemble;
use aroma_mcode::{NullHost, Program, Vm, VmError};
use bytes::Bytes;

/// The control proxy: `f(requested_percent) → supported_percent`.
///
/// Clamps to `[10, 100]` and rounds to the nearest multiple of 5 — this
/// projector's lamp ladder.
pub fn brightness_proxy() -> Program {
    assemble(
        "; clamp(round5(x), 10, 100)
         arg 0
         push 2
         add        ; x + 2 for round-to-nearest-5
         push 5
         div
         push 5
         mul        ; 5 * ((x+2)/5)
         push 10
         max
         push 100
         min
         halt",
    )
    .expect("proxy source is well-formed")
}

/// Proxy bytes as placed in the service registration.
pub fn brightness_proxy_bytes() -> Bytes {
    brightness_proxy().encode()
}

/// Client-side execution of a downloaded control proxy. Returns the
/// device-supported brightness for `requested_percent`, or `None` when the
/// blob is not runnable mobile code (old registrations carried inert
/// bytes; callers fall back to sending the raw value).
pub fn run_brightness_proxy(proxy: &Bytes, requested_percent: u8) -> Option<u8> {
    let program = Program::decode(proxy.clone()).ok()?;
    match Vm.run_default(&program, &[requested_percent as i64], &mut NullHost) {
        Ok(v) => Some(v.clamp(0, 100) as u8),
        Err(VmError::OutOfFuel) | Err(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proxy_rounds_to_lamp_steps() {
        let p = brightness_proxy();
        let f = |x: i64| Vm.run_default(&p, &[x], &mut NullHost).unwrap();
        assert_eq!(f(83), 85);
        assert_eq!(f(82), 80);
        assert_eq!(f(50), 50);
        assert_eq!(f(52), 50);
        assert_eq!(f(53), 55);
    }

    #[test]
    fn proxy_clamps_to_supported_range() {
        let p = brightness_proxy();
        let f = |x: i64| Vm.run_default(&p, &[x], &mut NullHost).unwrap();
        assert_eq!(f(0), 10);
        assert_eq!(f(3), 10);
        assert_eq!(f(100), 100);
        assert_eq!(f(250), 100);
    }

    #[test]
    fn round_trip_through_registration_bytes() {
        let blob = brightness_proxy_bytes();
        assert_eq!(run_brightness_proxy(&blob, 83), Some(85));
        assert_eq!(run_brightness_proxy(&blob, 1), Some(10));
    }

    #[test]
    fn inert_blobs_fall_back_gracefully() {
        assert_eq!(run_brightness_proxy(&Bytes::from_static(b"control-proxy"), 50), None);
        assert_eq!(run_brightness_proxy(&Bytes::new(), 50), None);
    }
}
