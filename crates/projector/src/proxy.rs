//! Downloadable service proxies — the "mobile code" of the Aroma project.
//!
//! Jini's distinctive move was shipping *behaviour* with the service
//! registration: the client downloads a proxy object and talks to the
//! device through it, without compiled-in knowledge of the device's quirks.
//! Here the control service's proxy is an `aroma-mcode` program that maps a
//! requested brightness percentage onto what this particular projector
//! actually supports (its lamp steps in 5s and cannot go below 10) — logic
//! that lives with the *device*, travels in the `ServiceItem::proxy` bytes,
//! and runs inside the client's fuel-metered VM.

//! Since the static-verifier PR, the client side loads proxies **only**
//! through `aroma-discovery`'s vetting gate: bytes claiming to be mcode
//! must pass [`aroma_mcode::verify`] (no syscalls, bounded stack, definite
//! initialization, halting shape) before execution, and then run on the
//! VM's verified fast path. [`load_brightness_proxy`] exposes the typed
//! rejection; [`run_brightness_proxy`] keeps the old lenient signature for
//! callers that fall back to raw values.

use aroma_discovery::proxy::{vet_proxy, ProxyError, VettedProxy};
use aroma_mcode::asm::assemble;
use aroma_mcode::opt::optimize_verified;
use aroma_mcode::{NullHost, Program, Validated, VerifiedProgram, VerifyConfig, Vm};
use bytes::Bytes;

/// The control proxy: `f(requested_percent) → supported_percent`.
///
/// Clamps to `[10, 100]` and rounds to the nearest multiple of 5 — this
/// projector's lamp ladder.
pub fn brightness_proxy() -> Program {
    assemble(
        "; clamp(round5(x), 10, 100)
         arg 0
         push 2
         add        ; x + 2 for round-to-nearest-5
         push 5
         div
         push 5
         mul        ; 5 * ((x+2)/5)
         push 10
         max
         push 100
         min
         halt",
    )
    .expect("proxy source is well-formed")
}

/// Proxy bytes as placed in the service registration.
pub fn brightness_proxy_bytes() -> Bytes {
    brightness_proxy().encode()
}

/// Why downloaded proxy bytes cannot serve as a brightness mapper.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProxyLoadError {
    /// The blob is not mobile code at all (legacy inert registration).
    NotMobileCode,
    /// The blob claims to be mcode but was rejected by the decode or
    /// static-verification gate.
    Rejected(ProxyError),
}

/// Load a downloaded control proxy through the static verifier.
///
/// The brightness mapper is pure computation, so the verification policy
/// is the default deny-all-syscalls one; the returned certificate is what
/// [`run_brightness_proxy`] executes on the VM's fast path.
pub fn load_brightness_proxy(proxy: &Bytes) -> Result<VerifiedProgram, ProxyLoadError> {
    match vet_proxy(proxy, &VerifyConfig::default()) {
        Ok(VettedProxy::Mcode(vp)) => Ok(vp),
        Ok(VettedProxy::Inert(_)) => Err(ProxyLoadError::NotMobileCode),
        Err(e) => Err(ProxyLoadError::Rejected(e)),
    }
}

/// Load a downloaded control proxy and run it through the
/// translation-validated optimizer.
///
/// The returned [`Validated`] carries a fresh verification certificate for
/// the optimized program — the optimizer's output is only installed after
/// it re-verifies under the same policy and is differentially equal to the
/// original; on any validation failure the original certificate comes
/// back unchanged. A client that maps brightness on every dial movement
/// pays the optimization once at load time and runs the slimmer program
/// on the verified fast path thereafter.
pub fn load_optimized_brightness_proxy(proxy: &Bytes) -> Result<Validated, ProxyLoadError> {
    let config = VerifyConfig::default();
    let vp = match vet_proxy(proxy, &config) {
        Ok(VettedProxy::Mcode(vp)) => vp,
        Ok(VettedProxy::Inert(_)) => return Err(ProxyLoadError::NotMobileCode),
        Err(e) => return Err(ProxyLoadError::Rejected(e)),
    };
    Ok(optimize_verified(&vp, &config))
}

/// Client-side execution of a downloaded control proxy. Returns the
/// device-supported brightness for `requested_percent`, or `None` when the
/// blob is not statically verifiable mobile code (old registrations
/// carried inert bytes; callers fall back to sending the raw value).
///
/// Execution goes through [`load_optimized_brightness_proxy`] and the
/// verified fast path — an unverifiable program is never run, even under
/// the checked interpreter, and an optimized one only after translation
/// validation accepted it.
pub fn run_brightness_proxy(proxy: &Bytes, requested_percent: u8) -> Option<u8> {
    let program = load_optimized_brightness_proxy(proxy).ok()?.program;
    match Vm.run_verified_default(&program, &[requested_percent as i64], &mut NullHost) {
        Ok(v) => Some(v.clamp(0, 100) as u8),
        Err(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proxy_rounds_to_lamp_steps() {
        let p = brightness_proxy();
        let f = |x: i64| Vm.run_default(&p, &[x], &mut NullHost).unwrap();
        assert_eq!(f(83), 85);
        assert_eq!(f(82), 80);
        assert_eq!(f(50), 50);
        assert_eq!(f(52), 50);
        assert_eq!(f(53), 55);
    }

    #[test]
    fn proxy_clamps_to_supported_range() {
        let p = brightness_proxy();
        let f = |x: i64| Vm.run_default(&p, &[x], &mut NullHost).unwrap();
        assert_eq!(f(0), 10);
        assert_eq!(f(3), 10);
        assert_eq!(f(100), 100);
        assert_eq!(f(250), 100);
    }

    #[test]
    fn round_trip_through_registration_bytes() {
        let blob = brightness_proxy_bytes();
        assert_eq!(run_brightness_proxy(&blob, 83), Some(85));
        assert_eq!(run_brightness_proxy(&blob, 1), Some(10));
    }

    #[test]
    fn inert_blobs_fall_back_gracefully() {
        assert_eq!(
            load_brightness_proxy(&Bytes::from_static(b"control-proxy")),
            Err(ProxyLoadError::NotMobileCode)
        );
        assert_eq!(
            run_brightness_proxy(&Bytes::from_static(b"control-proxy"), 50),
            None
        );
        assert_eq!(run_brightness_proxy(&Bytes::new(), 50), None);
    }

    #[test]
    fn shipped_proxy_passes_static_verification() {
        // The registration blob must clear the same gate clients apply:
        // loop-free (static fuel bound), no syscalls, shallow stack.
        let vp = load_brightness_proxy(&brightness_proxy_bytes()).unwrap();
        assert!(vp.syscalls().is_empty());
        assert!(vp.fuel_bound().is_some());
        assert!(vp.max_stack_depth() <= 3);
    }

    #[test]
    fn optimized_proxy_is_validated_and_agrees_everywhere() {
        let validated = load_optimized_brightness_proxy(&brightness_proxy_bytes()).unwrap();
        // The shipped mapper has no constant-foldable arithmetic on the
        // argument path, so improvement is not guaranteed — but whatever
        // comes back must carry a certificate and agree with the original
        // on the whole input range.
        let original = brightness_proxy();
        for x in -300..=300 {
            let a = Vm.run_default(&original, &[x], &mut NullHost);
            let b = Vm.run_verified_default(&validated.program, &[x], &mut NullHost);
            assert_eq!(a, b, "divergence at input {x}");
        }
        assert!(validated.program.fuel_bound().is_some());
    }

    #[test]
    fn optimizer_shrinks_a_padded_registration() {
        // A provider shipping debug scaffolding: dead stores and a
        // constant pre-computation the optimizer should fold away.
        let padded = assemble(
            "push 3
             push 39
             add
             store 2      ; dead: local 2 never read
             arg 0
             push 0
             max
             push 100
             min
             halt",
        )
        .unwrap();
        let validated = load_optimized_brightness_proxy(&padded.encode()).unwrap();
        assert!(validated.improved);
        assert!(validated.program.program().len() < padded.len());
        for x in [-5, 0, 42, 100, 250] {
            assert_eq!(
                Vm.run_default(&padded, &[x], &mut NullHost),
                Vm.run_verified_default(&validated.program, &[x], &mut NullHost),
            );
        }
    }

    #[test]
    fn unverifiable_mobile_code_is_never_run() {
        use aroma_mcode::Op;
        // Decodes and validates (the pre-verifier gate would have run
        // it), but underflows the stack on its first instruction.
        let blob = Program::new(vec![Op::Add, Op::Halt]).unwrap().encode();
        assert!(matches!(
            load_brightness_proxy(&blob),
            Err(ProxyLoadError::Rejected(_))
        ));
        assert_eq!(run_brightness_proxy(&blob, 50), None);
    }
}
