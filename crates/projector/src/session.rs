//! Session objects.
//!
//! The paper: *"Session objects are used to ensure that another user cannot
//! inadvertently 'hijack' either the use or control of the projector"* —
//! and, in the abstract-layer discussion, *"other mechanisms should be
//! developed to deal with users who forget to relinquish control of the
//! projector without relying on a system administrator to intervene."*
//! Both mechanisms are policies here, so experiment E4 can sweep them:
//!
//! * [`SessionPolicy::None`] — no sessions: last writer wins (hijacks).
//! * [`SessionPolicy::ManualRelease`] — sessions, no expiry: safe from
//!   hijack, but a forgetful owner locks everyone out until an
//!   administrator intervenes.
//! * [`SessionPolicy::AutoExpire`] — sessions with an idle-expiry horizon:
//!   the paper's asked-for mechanism.

use aroma_sim::telemetry::{Layer, Recorder, Snapshot, Telemetry, TelemetryConfig};
use aroma_sim::{SimDuration, SimRng, SimTime};

/// Opaque proof of session ownership.
///
/// Tokens are drawn from a deterministic [`SimRng`] stream rather than a
/// counter: a sequential scheme is trivially guessable (observe your own
/// token, add one, hijack the next session), which `aroma-check`'s
/// token-guessing adversary demonstrates. The SplitMix64 core is a
/// bijection over its step counter, so a single stream never repeats a
/// value within 2^64 draws — stale tokens stay dead without bookkeeping.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SessionToken(u64);

impl SessionToken {
    /// Wire representation (the control protocol carries tokens as u64).
    pub fn value(self) -> u64 {
        self.0
    }

    /// Reconstruct from the wire representation.
    pub fn from_value(v: u64) -> SessionToken {
        SessionToken(v)
    }
}

/// Who may use the guarded service, and for how long.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionPolicy {
    /// No session protection: any request succeeds, displacing the
    /// previous user (counted as a hijack if one was active).
    None,
    /// Sessions must be explicitly released.
    ManualRelease,
    /// Sessions lapse after this much inactivity.
    AutoExpire {
        /// Idle horizon after which the session lapses.
        idle: SimDuration,
    },
}

/// Why an operation was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionError {
    /// Another user holds the session.
    Busy,
    /// The token does not match the current session.
    BadToken,
    /// No session is active.
    NoSession,
}

/// Counters the E4 experiment reads.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Successful acquisitions.
    pub acquisitions: u64,
    /// Acquisitions that displaced an active user (only possible under
    /// [`SessionPolicy::None`]).
    pub hijacks: u64,
    /// Requests refused because another user held the session.
    pub refusals: u64,
    /// Sessions that lapsed by inactivity.
    pub expirations: u64,
    /// Explicit releases.
    pub releases: u64,
}

/// Guards one service (projection or control).
#[derive(Clone, Debug)]
pub struct SessionManager {
    policy: SessionPolicy,
    owner: Option<(u64, SessionToken, SimTime)>, // (user, token, last activity)
    token_rng: SimRng,
    /// Counters.
    pub stats: SessionStats,
    /// Telemetry recorder (Off by default; every call inlines to a no-op).
    rec: Telemetry,
}

/// Seed for managers built without an explicit token stream.
const DEFAULT_TOKEN_SEED: u64 = 0x5E55_1047_70CE_A15E;

impl SessionManager {
    /// A manager with the given policy and the default token stream.
    ///
    /// Production callers guarding more than one service should prefer
    /// [`SessionManager::with_token_rng`] with distinct forks so no two
    /// managers mint the same token sequence (a projection token must
    /// never double as a control token).
    pub fn new(policy: SessionPolicy) -> Self {
        Self::with_token_rng(policy, SimRng::new(DEFAULT_TOKEN_SEED))
    }

    /// A manager minting tokens from the caller's [`SimRng`] stream —
    /// fork it per guarded service (see `aroma_sim::SimRng::fork_named`).
    pub fn with_token_rng(policy: SessionPolicy, token_rng: SimRng) -> Self {
        SessionManager {
            policy,
            owner: None,
            token_rng,
            stats: SessionStats::default(),
            rec: Telemetry::Off,
        }
    }

    /// Attach a live telemetry recorder: session acquire/deny/expire events
    /// are recorded at the Abstract layer from here on.
    pub fn attach_telemetry(&mut self, cfg: TelemetryConfig) {
        self.rec = Telemetry::enabled(cfg);
    }

    /// Snapshot the recorder; `None` when telemetry was never attached.
    pub fn telemetry_snapshot(&self) -> Option<Snapshot> {
        self.rec.snapshot()
    }

    /// The policy in force.
    pub fn policy(&self) -> SessionPolicy {
        self.policy
    }

    /// The current owner (after lapsing expired sessions as of `now`).
    pub fn owner(&mut self, now: SimTime) -> Option<u64> {
        self.expire_if_idle(now);
        self.owner.map(|(u, _, _)| u)
    }

    /// Is the service free as of `now`?
    pub fn is_free(&mut self, now: SimTime) -> bool {
        self.owner(now).is_none()
    }

    fn expire_if_idle(&mut self, now: SimTime) {
        if let (SessionPolicy::AutoExpire { idle }, Some((_, _, last))) = (self.policy, self.owner)
        {
            if now.saturating_since(last) >= idle {
                self.owner = None;
                self.stats.expirations += 1;
                self.rec.count("proj.session.expiries", 1);
                self.rec.event(
                    now.as_nanos(),
                    Layer::Abstract,
                    "session.expire",
                    0,
                    now.saturating_since(last).as_nanos() as i64,
                    0,
                );
            }
        }
    }

    /// Try to acquire the session for `user` at `now`.
    pub fn acquire(&mut self, user: u64, now: SimTime) -> Result<SessionToken, SessionError> {
        self.expire_if_idle(now);
        match (self.policy, self.owner) {
            (SessionPolicy::None, prev) => {
                if let Some((prev_user, _, _)) = prev {
                    if prev_user != user {
                        self.stats.hijacks += 1;
                        self.rec.count("proj.session.hijacks", 1);
                        self.rec.event(
                            now.as_nanos(),
                            Layer::Abstract,
                            "session.hijack",
                            user as u32,
                            prev_user as i64,
                            0,
                        );
                    }
                }
                Ok(self.install(user, now))
            }
            (_, None) => Ok(self.install(user, now)),
            (_, Some((owner, token, _))) if owner == user => {
                // Re-acquisition by the owner refreshes activity.
                self.owner = Some((user, token, now));
                Ok(token)
            }
            _ => {
                self.stats.refusals += 1;
                self.rec.count("proj.session.denials", 1);
                let holder = self.owner.map_or(0, |(u, _, _)| u as i64);
                self.rec.event(
                    now.as_nanos(),
                    Layer::Abstract,
                    "session.deny",
                    user as u32,
                    holder,
                    0,
                );
                Err(SessionError::Busy)
            }
        }
    }

    fn install(&mut self, user: u64, now: SimTime) -> SessionToken {
        // SplitMix64 output is a bijection of the stream position: every
        // draw is distinct from every other draw of this stream, so token
        // uniqueness needs no retry loop. Skip 0 so a zeroed wire field
        // can never masquerade as a token.
        let mut v = self.token_rng.next_u64_raw();
        if v == 0 {
            v = self.token_rng.next_u64_raw();
        }
        let token = SessionToken(v);
        self.owner = Some((user, token, now));
        self.stats.acquisitions += 1;
        self.rec.count("proj.session.acquires", 1);
        self.rec
            .event(now.as_nanos(), Layer::Abstract, "session.acquire", user as u32, 0, 0);
        token
    }

    /// Record activity by the owner (keeps auto-expiry at bay). Wrong
    /// tokens are rejected — that is the hijack protection.
    pub fn touch(&mut self, token: SessionToken, now: SimTime) -> Result<(), SessionError> {
        self.expire_if_idle(now);
        match self.owner {
            None => Err(SessionError::NoSession),
            Some((user, t, _)) if t == token => {
                self.owner = Some((user, t, now));
                Ok(())
            }
            Some(_) => Err(SessionError::BadToken),
        }
    }

    /// Release the session.
    pub fn release(&mut self, token: SessionToken, now: SimTime) -> Result<(), SessionError> {
        self.expire_if_idle(now);
        match self.owner {
            None => Err(SessionError::NoSession),
            Some((_, t, _)) if t == token => {
                self.owner = None;
                self.stats.releases += 1;
                self.rec.count("proj.session.releases", 1);
                Ok(())
            }
            Some(_) => Err(SessionError::BadToken),
        }
    }

    /// Simulate the guarded device rebooting: the active session (if any)
    /// is gone, and future tokens are minted from `token_rng` — a stream
    /// the caller must derive fresh per incarnation, so a token issued
    /// before the crash can never be re-minted and accepted afterwards.
    /// Policy, statistics, and telemetry survive the reboot.
    pub fn reboot(&mut self, token_rng: SimRng) {
        self.owner = None;
        self.token_rng = token_rng;
    }

    /// Administrator override: clear any session (the intervention the
    /// paper wants to make unnecessary).
    pub fn admin_clear(&mut self) -> bool {
        let had = self.owner.is_some();
        self.owner = None;
        had
    }

    /// Model-checker introspection (feature `model-check`): the raw owner
    /// triple `(user, token, last activity)` *without* lapsing expired
    /// sessions — `aroma-check` canonicalises expiry itself so that
    /// swept and unswept-but-lapsed states compare equal.
    #[cfg(feature = "model-check")]
    pub fn snapshot(&self) -> Option<(u64, SessionToken, SimTime)> {
        self.owner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    #[test]
    fn acquire_free_session() {
        let mut m = SessionManager::new(SessionPolicy::ManualRelease);
        let tok = m.acquire(1, t(0)).unwrap();
        assert_eq!(m.owner(t(0)), Some(1));
        assert_eq!(m.stats.acquisitions, 1);
        assert!(m.touch(tok, t(1)).is_ok());
    }

    #[test]
    fn sessions_prevent_hijack() {
        let mut m = SessionManager::new(SessionPolicy::ManualRelease);
        let _t1 = m.acquire(1, t(0)).unwrap();
        assert_eq!(m.acquire(2, t(1)), Err(SessionError::Busy));
        assert_eq!(m.owner(t(1)), Some(1));
        assert_eq!(m.stats.refusals, 1);
        assert_eq!(m.stats.hijacks, 0);
    }

    #[test]
    fn telemetry_tracks_session_lifecycle() {
        let mut m = SessionManager::new(SessionPolicy::AutoExpire {
            idle: SimDuration::from_secs(10),
        });
        m.attach_telemetry(TelemetryConfig::default());
        let tok = m.acquire(1, t(0)).unwrap();
        assert_eq!(m.acquire(2, t(1)), Err(SessionError::Busy));
        m.release(tok, t(2)).unwrap();
        m.acquire(2, t(3)).unwrap();
        assert!(m.is_free(t(20)), "session should auto-expire");

        let snap = m.telemetry_snapshot().unwrap();
        assert_eq!(snap.counter("proj.session.acquires"), 2);
        assert_eq!(snap.counter("proj.session.denials"), 1);
        assert_eq!(snap.counter("proj.session.releases"), 1);
        assert_eq!(snap.counter("proj.session.expiries"), 1);
        let names: Vec<&str> = snap.trace.iter().map(|e| e.name).collect();
        assert_eq!(
            names,
            [
                "session.acquire",
                "session.deny",
                "session.acquire",
                "session.expire"
            ]
        );
        assert!(snap.trace.iter().all(|e| e.layer == Layer::Abstract));
    }

    #[test]
    fn no_policy_allows_hijack_and_counts_it() {
        let mut m = SessionManager::new(SessionPolicy::None);
        m.acquire(1, t(0)).unwrap();
        m.acquire(2, t(1)).unwrap();
        assert_eq!(m.owner(t(1)), Some(2), "last writer wins");
        assert_eq!(m.stats.hijacks, 1);
        // Same user re-acquiring is not a hijack.
        m.acquire(2, t(2)).unwrap();
        assert_eq!(m.stats.hijacks, 1);
    }

    #[test]
    fn owner_reacquire_is_idempotent() {
        let mut m = SessionManager::new(SessionPolicy::ManualRelease);
        let t1 = m.acquire(1, t(0)).unwrap();
        let t2 = m.acquire(1, t(5)).unwrap();
        assert_eq!(t1, t2);
        assert_eq!(m.stats.acquisitions, 1);
    }

    #[test]
    fn release_requires_matching_token() {
        let mut m = SessionManager::new(SessionPolicy::ManualRelease);
        let tok = m.acquire(1, t(0)).unwrap();
        assert_eq!(m.release(SessionToken(999), t(1)), Err(SessionError::BadToken));
        assert!(m.release(tok, t(1)).is_ok());
        assert!(m.is_free(t(1)));
        assert_eq!(m.release(tok, t(2)), Err(SessionError::NoSession));
    }

    #[test]
    fn manual_release_locks_out_forever_without_admin() {
        let mut m = SessionManager::new(SessionPolicy::ManualRelease);
        m.acquire(1, t(0)).unwrap();
        // User 1 walks away; hours later user 2 still cannot get in.
        assert_eq!(m.acquire(2, t(10_000)), Err(SessionError::Busy));
        assert!(m.admin_clear());
        assert!(m.acquire(2, t(10_001)).is_ok());
    }

    #[test]
    fn auto_expire_frees_idle_sessions() {
        let mut m = SessionManager::new(SessionPolicy::AutoExpire {
            idle: SimDuration::from_secs(30),
        });
        let tok = m.acquire(1, t(0)).unwrap();
        // Activity keeps it alive.
        m.touch(tok, t(20)).unwrap();
        assert_eq!(m.acquire(2, t(40)), Err(SessionError::Busy)); // 20 s idle
        // Now let it lapse: last activity t(40)? No — touch was at 20; the
        // refused acquire does not refresh. 30 s after t(20):
        assert!(m.acquire(2, t(51)).is_ok());
        assert_eq!(m.stats.expirations, 1);
        assert_eq!(m.owner(t(51)), Some(2));
    }

    #[test]
    fn touch_after_expiry_reports_no_session() {
        let mut m = SessionManager::new(SessionPolicy::AutoExpire {
            idle: SimDuration::from_secs(5),
        });
        let tok = m.acquire(1, t(0)).unwrap();
        assert_eq!(m.touch(tok, t(10)), Err(SessionError::NoSession));
    }

    #[test]
    fn tokens_are_not_sequentially_predictable() {
        // The hijack scenario aroma-check closes end-to-end: an adversary
        // who saw token T must not be able to guess the next session's
        // token as T±1 (the old counter scheme made that trivial).
        let mut m = SessionManager::new(SessionPolicy::ManualRelease);
        let t1 = m.acquire(1, t(0)).unwrap();
        m.release(t1, t(1)).unwrap();
        let t2 = m.acquire(2, t(2)).unwrap();
        for guess in [
            t1.value().wrapping_add(1),
            t1.value().wrapping_sub(1),
            1,
            2,
        ] {
            assert_ne!(t2.value(), guess, "token predictable from {}", t1.value());
            if guess != t2.value() {
                assert_eq!(
                    m.touch(SessionToken::from_value(guess), t(3)),
                    Err(SessionError::BadToken)
                );
            }
        }
    }

    #[test]
    fn distinct_token_streams_never_cross_validate() {
        // Two services guarded by forked streams: a projection token must
        // not open the control session.
        let rng = SimRng::new(7);
        let mut proj =
            SessionManager::with_token_rng(SessionPolicy::ManualRelease, rng.fork_named("proj"));
        let mut ctl =
            SessionManager::with_token_rng(SessionPolicy::ManualRelease, rng.fork_named("ctl"));
        let tp = proj.acquire(1, t(0)).unwrap();
        let tc = ctl.acquire(2, t(0)).unwrap();
        assert_ne!(tp, tc);
        assert_eq!(ctl.touch(tp, t(1)), Err(SessionError::BadToken));
        assert_eq!(proj.touch(tc, t(1)), Err(SessionError::BadToken));
    }

    #[test]
    fn tokens_are_unique_across_sessions() {
        let mut m = SessionManager::new(SessionPolicy::ManualRelease);
        let t1 = m.acquire(1, t(0)).unwrap();
        m.release(t1, t(1)).unwrap();
        let t2 = m.acquire(2, t(2)).unwrap();
        assert_ne!(t1, t2, "stale tokens must not unlock new sessions");
        assert_eq!(m.touch(t1, t(3)), Err(SessionError::BadToken));
    }
}
