//! # smart-projector — the Aroma challenge application
//!
//! The paper's test bed: *"Our first application is the Smart Projector,
//! which consists of a commercially available digital projector, the Aroma
//! Adapter, and the Java/Jini-based services and clients that allow this
//! projector to export two services: projection of a remote laptop display;
//! and remote control of the projector."* This crate builds that system on
//! the substrates below it — discovery (`aroma-discovery`), remote display
//! (`aroma-vnc`), the WLAN (`aroma-net`) — and exposes the two variants the
//! paper's analysis contrasts: the **research prototype** as built, and the
//! **commercial-grade** product it would have to become.
//!
//! * [`session`] — the session objects that "ensure that another user
//!   cannot inadvertently 'hijack' either the use or control of the
//!   projector", with policies (disabled / manual-release / auto-expiry)
//!   that experiment E4 sweeps.
//! * [`control`] — the remote-control wire protocol (acquire / release /
//!   command) with its own protocol discriminator.
//! * [`projector`] — [`projector::SmartProjectorApp`]: the Aroma Adapter
//!   node. Registers both services with the lookup service, enforces
//!   sessions, and embeds the VNC viewer that drives the projector.
//! * [`laptop`] — [`laptop::PresenterLaptopApp`]: the presenter's laptop.
//!   Discovers the services, acquires sessions (in a configurable order),
//!   serves the screen via the embedded VNC server, sends control
//!   commands, and — faithfully to the paper — may forget to release.
//! * [`system`] — the Smart Projector as an [`lpc_core::PervasiveSystem`]
//!   description, the input to experiment E8's regenerated analysis, with
//!   the prototype and commercial application state machines (F4/E5).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod control;
pub mod laptop;
pub mod projector;
pub mod proxy;
pub mod session;
pub mod system;
pub mod voice;

pub use laptop::{AcquireOrder, PresenterLaptopApp, PresenterScript};
pub use projector::SmartProjectorApp;
pub use session::{SessionError, SessionManager, SessionPolicy, SessionToken};
pub use system::{smart_projector_system, ProjectorVariant};
