//! Property tests for `SessionManager` across every policy, focused on the
//! token scheme: round-trips, stale-token death, expiry races, and the
//! non-predictability the RNG-drawn tokens guarantee (the sampled
//! counterpart of the exhaustive proofs in `aroma-check`).

use aroma_sim::{SimDuration, SimRng, SimTime};
use proptest::prelude::*;
use smart_projector::session::{SessionManager, SessionPolicy, SessionToken};
use std::collections::HashSet;

/// Satellite regression for the fault plane: a projector node that crashes
/// and restarts mid-session must never honour a pre-crash token again —
/// the restarted managers mint from incarnation-fresh streams and the old
/// session died with the device. The presenter recovers by re-acquiring.
#[test]
fn crash_restart_cannot_resurrect_pre_crash_tokens() {
    use aroma_discovery::apps::RegistrarApp;
    use aroma_env::radio::RadioEnvironment;
    use aroma_env::space::Point;
    use aroma_net::{MacConfig, Network, NodeConfig};
    use aroma_sim::faults::FaultSchedule;
    use smart_projector::laptop::{PresenterLaptopApp, PresenterScript};
    use smart_projector::SmartProjectorApp;
    use aroma_vnc::SlideDeck;

    let quiet = RadioEnvironment {
        shadowing_sigma_db: 0.0,
        ..Default::default()
    };
    let mut net = Network::new(quiet, MacConfig::default(), 42);
    let _registrar = net.add_node(
        NodeConfig::at(Point::new(0.0, 0.0)),
        Box::new(RegistrarApp::new(SimDuration::from_secs(30))),
    );
    // ManualRelease: without the crash this session could never lapse, so
    // any post-restart refusal is the reboot talking, not an expiry.
    let projector = net.add_node(
        NodeConfig::at(Point::new(3.0, 0.0)),
        Box::new(SmartProjectorApp::new(
            320,
            240,
            SessionPolicy::ManualRelease,
            "A-101",
        )),
    );
    let laptop = net.add_node(
        NodeConfig::at(Point::new(1.0, 3.0)),
        Box::new(PresenterLaptopApp::new(
            PresenterScript {
                present_for: SimDuration::from_secs(40),
                ..Default::default()
            },
            320,
            240,
            Box::new(SlideDeck::new(8.0)),
        )),
    );
    // Adapter dies mid-presentation and reboots two seconds later.
    let schedule = FaultSchedule::builder(7)
        .crash_restart(
            SimDuration::from_secs(10).as_nanos(),
            SimDuration::from_secs(12).as_nanos(),
            projector.0,
        )
        .build();
    net.attach_faults(&schedule);

    net.run_for(SimDuration::from_secs(8));
    let (pre_proj, pre_ctl) = net
        .app_as::<PresenterLaptopApp>(laptop)
        .unwrap()
        .tokens();
    let (pre_proj, pre_ctl) = (
        pre_proj.expect("projection session not held before the crash"),
        pre_ctl.expect("control session not held before the crash"),
    );

    net.run_for(SimDuration::from_secs(17)); // through crash, reboot, recovery

    let lap = net.app_as::<PresenterLaptopApp>(laptop).unwrap();
    assert!(
        lap.reacquisitions >= 1,
        "presenter never re-acquired after the restart"
    );
    assert!(lap.commands_denied >= 1, "stale token was never refused");
    let (post_proj, post_ctl) = lap.tokens();
    let (post_proj, post_ctl) = (
        post_proj.expect("projection session not re-acquired"),
        post_ctl.expect("control session not re-acquired"),
    );
    assert_ne!(post_proj, pre_proj, "pre-crash projection token re-minted");
    assert_ne!(post_ctl, pre_ctl, "pre-crash control token re-minted");

    let now = net.now();
    let proj = net.app_as_mut::<SmartProjectorApp>(projector).unwrap();
    assert_eq!(proj.incarnation, 1, "crash should bump the incarnation");
    // The stale tokens are dead at both managers, and the recovery looked
    // like a clean re-acquisition, not a hijack.
    assert!(proj
        .projection_sessions
        .touch(SessionToken::from_value(pre_proj), now)
        .is_err());
    assert!(proj
        .control_sessions
        .touch(SessionToken::from_value(pre_ctl), now)
        .is_err());
    assert_eq!(proj.projection_sessions.stats.hijacks, 0);
    assert_eq!(proj.control_sessions.stats.hijacks, 0);
}

fn arb_policy() -> impl Strategy<Value = SessionPolicy> {
    prop_oneof![
        Just(SessionPolicy::None),
        Just(SessionPolicy::ManualRelease),
        (500u64..20_000).prop_map(|ms| SessionPolicy::AutoExpire {
            idle: SimDuration::from_millis(ms)
        }),
    ]
}

proptest! {
    /// Acquire → touch → release round-trips under every policy, from any
    /// starting instant, and frees the service.
    #[test]
    fn acquire_touch_release_round_trips(
        policy in arb_policy(),
        start_ms in 0u64..1_000_000,
        gap_ms in 0u64..400,
        user in 0u64..8,
    ) {
        let mut m = SessionManager::new(policy);
        let t0 = SimTime::ZERO + SimDuration::from_millis(start_ms);
        let t1 = t0 + SimDuration::from_millis(gap_ms);
        let t2 = t1 + SimDuration::from_millis(gap_ms);
        let tok = m.acquire(user, t0).unwrap();
        // gap < 500ms <= every AutoExpire horizon: the session is live.
        prop_assert!(m.touch(tok, t1).is_ok());
        prop_assert!(m.release(tok, t2).is_ok());
        prop_assert!(m.is_free(t2));
    }

    /// A released token is dead forever under every policy: no later touch
    /// or release with it can succeed, even by its original owner.
    #[test]
    fn released_tokens_stay_dead(
        policy in arb_policy(),
        users in prop::collection::vec(0u64..4, 1..12),
    ) {
        let mut m = SessionManager::new(policy);
        let mut now = SimTime::ZERO;
        let mut dead: Vec<SessionToken> = Vec::new();
        for user in users {
            now += SimDuration::from_millis(50);
            let tok = m.acquire(user, now).unwrap();
            for old in &dead {
                prop_assert!(m.touch(*old, now).is_err(), "stale token touched a live session");
                prop_assert!(m.release(*old, now).is_err(), "stale token released a session");
            }
            m.release(tok, now).unwrap();
            dead.push(tok);
        }
    }

    /// Tokens never repeat and are never the sequential neighbours of a
    /// previous token — the adversary moves `aroma-check` checks
    /// exhaustively, sampled here across seeds and session counts.
    #[test]
    fn token_stream_has_no_sequential_structure(
        seed in any::<u64>(),
        sessions in 2usize..40,
    ) {
        let mut m = SessionManager::with_token_rng(
            SessionPolicy::ManualRelease,
            SimRng::new(seed),
        );
        let mut now = SimTime::ZERO;
        let mut seen = HashSet::new();
        let mut prev: Option<u64> = None;
        for user in 0..sessions as u64 {
            now += SimDuration::from_millis(10);
            let tok = m.acquire(user, now).unwrap();
            prop_assert!(seen.insert(tok.value()), "token value repeated");
            prop_assert_ne!(tok.value(), 0, "zero is reserved for the wire");
            if let Some(p) = prev {
                prop_assert_ne!(tok.value(), p.wrapping_add(1), "sequential token");
                prop_assert_ne!(tok.value(), p.wrapping_sub(1), "sequential token");
            }
            prev = Some(tok.value());
            m.release(tok, now).unwrap();
        }
    }

    /// Expiry races: exactly at the idle horizon the session is gone (the
    /// boundary is inclusive-dead), one nanosecond earlier it is alive.
    #[test]
    fn expiry_boundary_is_exact(
        idle_ms in 1u64..10_000,
        start_ms in 0u64..100_000,
    ) {
        let idle = SimDuration::from_millis(idle_ms);
        let mut m = SessionManager::new(SessionPolicy::AutoExpire { idle });
        let t0 = SimTime::ZERO + SimDuration::from_millis(start_ms);
        let tok = m.acquire(1, t0).unwrap();
        let boundary = t0 + idle;
        let just_before = SimTime::from_nanos(boundary.as_nanos() - 1);
        prop_assert!(m.clone().touch(tok, just_before).is_ok(), "alive before the horizon");
        prop_assert_eq!(m.owner(boundary), None, "dead exactly at the horizon");
        prop_assert!(m.touch(tok, boundary).is_err());
        // The service is immediately reacquirable by someone else...
        let tok2 = m.acquire(2, boundary).unwrap();
        // ...and the lapsed token cannot steal the new session.
        prop_assert_ne!(tok.value(), tok2.value());
        prop_assert!(m.touch(tok, boundary).is_err());
    }

    /// Managers guarding different services (forked token streams) never
    /// accept each other's tokens, whatever the seed or interleaving.
    #[test]
    fn forked_streams_never_cross_validate(
        seed in any::<u64>(),
        rounds in 1usize..12,
    ) {
        let rng = SimRng::new(seed);
        let mut a = SessionManager::with_token_rng(
            SessionPolicy::ManualRelease, rng.fork_named("projection"));
        let mut b = SessionManager::with_token_rng(
            SessionPolicy::ManualRelease, rng.fork_named("control"));
        let mut now = SimTime::ZERO;
        for user in 0..rounds as u64 {
            now += SimDuration::from_millis(5);
            let ta = a.acquire(user, now).unwrap();
            let tb = b.acquire(user, now).unwrap();
            prop_assert_ne!(ta.value(), tb.value());
            prop_assert!(a.touch(tb, now).is_err(), "control token opened projection");
            prop_assert!(b.touch(ta, now).is_err(), "projection token opened control");
            a.release(ta, now).unwrap();
            b.release(tb, now).unwrap();
        }
    }
}
