//! End-to-end Smart Projector scenarios over the simulated WLAN:
//! lookup service + Aroma Adapter + presenter laptops, exactly the four
//! entities the paper enumerates.

use aroma_discovery::apps::RegistrarApp;
use aroma_env::radio::RadioEnvironment;
use aroma_env::space::Point;
use aroma_net::{MacConfig, Network, NodeConfig, NodeId};
use aroma_sim::{SimDuration, SimTime};
use aroma_vnc::SlideDeck;
use smart_projector::laptop::{Phase, PresenterLaptopApp, PresenterScript};
use smart_projector::session::SessionPolicy;
use smart_projector::{AcquireOrder, SmartProjectorApp};

fn quiet() -> RadioEnvironment {
    RadioEnvironment {
        shadowing_sigma_db: 0.0,
        ..Default::default()
    }
}

struct World {
    net: Network,
    projector: NodeId,
    laptops: Vec<NodeId>,
}

fn world(policy: SessionPolicy, scripts: Vec<PresenterScript>, seed: u64) -> World {
    let mut net = Network::new(quiet(), MacConfig::default(), seed);
    let _registrar = net.add_node(
        NodeConfig::at(Point::new(0.0, 0.0)),
        Box::new(RegistrarApp::new(SimDuration::from_secs(30))),
    );
    let projector = net.add_node(
        NodeConfig::at(Point::new(3.0, 0.0)),
        Box::new(SmartProjectorApp::new(320, 240, policy, "A-101")),
    );
    let laptops = scripts
        .into_iter()
        .enumerate()
        .map(|(i, script)| {
            net.add_node(
                NodeConfig::at(Point::new(1.0 + i as f64, 3.0)),
                Box::new(PresenterLaptopApp::new(
                    script,
                    320,
                    240,
                    Box::new(SlideDeck::new(8.0)),
                )),
            )
        })
        .collect();
    World {
        net,
        projector,
        laptops,
    }
}

#[test]
fn single_presenter_full_happy_path() {
    let mut w = world(
        SessionPolicy::ManualRelease,
        vec![PresenterScript {
            present_for: SimDuration::from_secs(10),
            ..Default::default()
        }],
        1,
    );
    w.net.run_for(SimDuration::from_secs(8));
    {
        let laptop = w.net.app_as::<PresenterLaptopApp>(w.laptops[0]).unwrap();
        assert_eq!(laptop.phase, Phase::Presenting, "denials={}", laptop.denials);
        let t = laptop.projecting_at.expect("never reached presenting");
        assert!(
            t < SimTime::ZERO + SimDuration::from_secs(4),
            "time-to-projecting {t}"
        );
        assert!(laptop.commands_ok >= 1, "control commands should succeed");
        assert_eq!(laptop.commands_denied, 0);
    }
    let proj = w.net.app_as::<SmartProjectorApp>(w.projector).unwrap();
    assert!(proj.state.powered, "PowerOn command should have landed");
    assert_eq!(proj.registrations, 2, "both services registered");
    // The projected screen converged to the laptop's screen.
    let laptop = w.net.app_as::<PresenterLaptopApp>(w.laptops[0]).unwrap();
    assert_eq!(
        proj.projected_digest().expect("viewer active"),
        laptop.screen_digest(),
        "projected image diverged"
    );
}

#[test]
fn mobile_code_proxy_translates_brightness_end_to_end() {
    // The laptop asks for 83% brightness; the projector's downloaded proxy
    // (real aroma-mcode, shipped in the service registration) rounds it to
    // the lamp's 5-step ladder before the command crosses the air.
    use smart_projector::control::ProjectorCommand;
    let mut w = world(
        SessionPolicy::ManualRelease,
        vec![PresenterScript {
            present_for: SimDuration::from_secs(10),
            commands: vec![ProjectorCommand::Brightness(83)],
            ..Default::default()
        }],
        42,
    );
    w.net.run_for(SimDuration::from_secs(5));
    let laptop = w.net.app_as::<PresenterLaptopApp>(w.laptops[0]).unwrap();
    assert!(laptop.proxy_translations >= 1, "proxy never ran");
    let proj = w.net.app_as::<SmartProjectorApp>(w.projector).unwrap();
    assert_eq!(
        proj.state.brightness, 85,
        "83% must arrive as the proxy-rounded 85"
    );
}

#[test]
fn release_frees_the_projector_for_the_next_presenter() {
    let mut w = world(
        SessionPolicy::ManualRelease,
        vec![
            PresenterScript {
                present_for: SimDuration::from_secs(5),
                release_on_finish: true,
                ..Default::default()
            },
            PresenterScript {
                start_after: SimDuration::from_secs(2),
                present_for: SimDuration::from_secs(5),
                ..Default::default()
            },
        ],
        2,
    );
    w.net.run_for(SimDuration::from_secs(30));
    let first = w.net.app_as::<PresenterLaptopApp>(w.laptops[0]).unwrap();
    let second = w.net.app_as::<PresenterLaptopApp>(w.laptops[1]).unwrap();
    assert_eq!(first.phase, Phase::Finished);
    assert!(
        second.projecting_at.is_some(),
        "second presenter must eventually get in (denials={})",
        second.denials
    );
    assert!(second.denials >= 1, "second presenter was refused while busy");
}

#[test]
fn forgetful_presenter_locks_everyone_out_without_auto_expiry() {
    // The paper: mechanisms are needed "to deal with users who forget to
    // relinquish control of the projector without relying on a system
    // administrator to intervene".
    let mut w = world(
        SessionPolicy::ManualRelease,
        vec![
            PresenterScript {
                present_for: SimDuration::from_secs(3),
                release_on_finish: false, // walks away with the session
                ..Default::default()
            },
            PresenterScript {
                start_after: SimDuration::from_secs(5),
                ..Default::default()
            },
        ],
        3,
    );
    w.net.run_for(SimDuration::from_secs(40));
    let second = w.net.app_as::<PresenterLaptopApp>(w.laptops[1]).unwrap();
    assert!(second.projecting_at.is_none(), "lockout expected");
    assert!(second.denials > 3, "kept retrying: {}", second.denials);
}

#[test]
fn auto_expiry_recovers_from_the_forgetful_presenter() {
    let mut w = world(
        SessionPolicy::AutoExpire {
            idle: SimDuration::from_secs(8),
        },
        vec![
            PresenterScript {
                present_for: SimDuration::from_secs(3),
                release_on_finish: false,
                ..Default::default()
            },
            PresenterScript {
                start_after: SimDuration::from_secs(5),
                ..Default::default()
            },
        ],
        4,
    );
    w.net.run_for(SimDuration::from_secs(60));
    let second = w.net.app_as::<PresenterLaptopApp>(w.laptops[1]).unwrap();
    assert!(
        second.projecting_at.is_some(),
        "auto-expiry should have freed the session (denials={})",
        second.denials
    );
}

#[test]
fn without_sessions_the_projector_is_hijacked() {
    let mut w = world(
        SessionPolicy::None,
        vec![
            PresenterScript {
                present_for: SimDuration::from_secs(20),
                ..Default::default()
            },
            PresenterScript {
                start_after: SimDuration::from_secs(4),
                present_for: SimDuration::from_secs(20),
                ..Default::default()
            },
        ],
        5,
    );
    w.net.run_for(SimDuration::from_secs(12));
    let proj = w.net.app_as::<SmartProjectorApp>(w.projector).unwrap();
    let hijacks =
        proj.projection_sessions.stats.hijacks + proj.control_sessions.stats.hijacks;
    assert!(hijacks >= 1, "second presenter should displace the first");
    // Both presenters think they are presenting — the hijacked state the
    // paper's session objects prevent.
    let first = w.net.app_as::<PresenterLaptopApp>(w.laptops[0]).unwrap();
    let second = w.net.app_as::<PresenterLaptopApp>(w.laptops[1]).unwrap();
    assert_eq!(first.phase, Phase::Presenting);
    assert_eq!(second.phase, Phase::Presenting);
}

#[test]
fn sessions_prevent_hijack_under_contention() {
    let mut w = world(
        SessionPolicy::ManualRelease,
        vec![
            PresenterScript {
                present_for: SimDuration::from_secs(20),
                ..Default::default()
            },
            PresenterScript {
                start_after: SimDuration::from_secs(4),
                order: AcquireOrder::ControlFirst, // the "different order"
                present_for: SimDuration::from_secs(20),
                ..Default::default()
            },
        ],
        6,
    );
    w.net.run_for(SimDuration::from_secs(12));
    let proj = w.net.app_as::<SmartProjectorApp>(w.projector).unwrap();
    assert_eq!(proj.projection_sessions.stats.hijacks, 0);
    assert_eq!(proj.control_sessions.stats.hijacks, 0);
    assert!(proj.denials >= 1, "the latecomer was refused");
    let second = w.net.app_as::<PresenterLaptopApp>(w.laptops[1]).unwrap();
    assert!(second.projecting_at.is_none());
}

#[test]
fn opposite_orders_cannot_deadlock_a_single_projector() {
    // Two presenters grabbing in opposite orders: one may hold projection
    // while the other holds control (the interrelated-services problem the
    // paper flags). With retries and auto-expiry the system must untangle.
    let mut w = world(
        SessionPolicy::AutoExpire {
            idle: SimDuration::from_secs(6),
        },
        vec![
            PresenterScript {
                order: AcquireOrder::ProjectionFirst,
                present_for: SimDuration::from_secs(8),
                ..Default::default()
            },
            PresenterScript {
                order: AcquireOrder::ControlFirst,
                present_for: SimDuration::from_secs(8),
                ..Default::default()
            },
        ],
        7,
    );
    w.net.run_for(SimDuration::from_secs(90));
    let a = w.net.app_as::<PresenterLaptopApp>(w.laptops[0]).unwrap();
    let b = w.net.app_as::<PresenterLaptopApp>(w.laptops[1]).unwrap();
    assert!(
        a.projecting_at.is_some() || b.projecting_at.is_some(),
        "at least one presenter must eventually present (a: {:?} {} denials, b: {:?} {} denials)",
        a.phase,
        a.denials,
        b.phase,
        b.denials
    );
}
