//! Property-based tests for session objects and the control codec.

use aroma_sim::{SimDuration, SimTime};
use bytes::Bytes;
use proptest::prelude::*;
use smart_projector::control::{CtlMsg, ProjectorCommand, Service};
use smart_projector::session::{SessionManager, SessionPolicy, SessionToken};

#[derive(Clone, Debug)]
enum Op {
    Acquire { user: u64 },
    Release { user: u64 },
    Touch { user: u64 },
    Advance { ms: u64 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..4).prop_map(|user| Op::Acquire { user }),
        (0u64..4).prop_map(|user| Op::Release { user }),
        (0u64..4).prop_map(|user| Op::Touch { user }),
        (1u64..5_000).prop_map(|ms| Op::Advance { ms }),
    ]
}

fn arb_policy() -> impl Strategy<Value = SessionPolicy> {
    prop_oneof![
        Just(SessionPolicy::None),
        Just(SessionPolicy::ManualRelease),
        (500u64..20_000).prop_map(|ms| SessionPolicy::AutoExpire {
            idle: SimDuration::from_millis(ms)
        }),
    ]
}

proptest! {
    /// Under any operation sequence: at most one owner at a time; tokens
    /// held by non-owners never work; with sessions enabled an active
    /// owner is never displaced except by expiry.
    #[test]
    fn session_manager_invariants(policy in arb_policy(), ops in prop::collection::vec(arb_op(), 1..60)) {
        let mut m = SessionManager::new(policy);
        let mut now = SimTime::ZERO;
        // user -> token they most recently got
        let mut tokens: std::collections::HashMap<u64, SessionToken> = Default::default();
        for op in ops {
            match op {
                Op::Advance { ms } => now += SimDuration::from_millis(ms),
                Op::Acquire { user } => {
                    let owner_before = m.owner(now);
                    match m.acquire(user, now) {
                        Ok(tok) => {
                            tokens.insert(user, tok);
                            prop_assert_eq!(m.owner(now), Some(user));
                            // With sessions enabled, a *different* active
                            // owner can never be displaced.
                            if policy != SessionPolicy::None {
                                if let Some(prev) = owner_before {
                                    prop_assert_eq!(prev, user, "hijack under session policy");
                                }
                            }
                        }
                        Err(_) => {
                            prop_assert!(policy != SessionPolicy::None, "None policy never refuses");
                            prop_assert_ne!(m.owner(now), Some(user));
                        }
                    }
                }
                Op::Release { user } => {
                    if let Some(tok) = tokens.get(&user) {
                        let was_owner = m.owner(now) == Some(user);
                        let ok = m.release(*tok, now).is_ok();
                        // A release with the owner's own live token succeeds.
                        prop_assert_eq!(ok, was_owner);
                        if ok {
                            prop_assert_eq!(m.owner(now), None);
                        }
                    }
                }
                Op::Touch { user } => {
                    if let Some(tok) = tokens.get(&user) {
                        let was_owner = m.owner(now) == Some(user);
                        let ok = m.touch(*tok, now).is_ok();
                        prop_assert_eq!(ok, was_owner, "touch must succeed iff live owner");
                    }
                }
            }
            // Global invariant: stats are consistent.
            let s = m.stats;
            prop_assert!(s.releases + s.expirations <= s.acquisitions);
            if policy != SessionPolicy::None {
                prop_assert_eq!(s.hijacks, 0);
            }
        }
    }

    /// Auto-expiry: after advancing past the idle horizon with no activity,
    /// the session is always gone.
    #[test]
    fn auto_expiry_always_frees(idle_ms in 100u64..10_000, extra_ms in 0u64..5_000) {
        let mut m = SessionManager::new(SessionPolicy::AutoExpire {
            idle: SimDuration::from_millis(idle_ms),
        });
        m.acquire(1, SimTime::ZERO).unwrap();
        let probe = SimTime::ZERO + SimDuration::from_millis(idle_ms + extra_ms);
        prop_assert_eq!(m.owner(probe), None);
        prop_assert!(m.acquire(2, probe).is_ok());
    }

    /// Control messages round-trip for arbitrary field values.
    #[test]
    fn control_codec_round_trip(token in any::<u64>(), level in any::<u8>(), reason in "[ -~]{0,40}") {
        let msgs = vec![
            CtlMsg::Granted { service: Service::Projection, token },
            CtlMsg::Denied { service: Service::Control, reason: reason.clone() },
            CtlMsg::Release { service: Service::Projection, token },
            CtlMsg::Command { token, cmd: ProjectorCommand::Brightness(level) },
            CtlMsg::Command { token, cmd: ProjectorCommand::SelectInput(level) },
            CtlMsg::CommandDenied { reason },
        ];
        for m in msgs {
            prop_assert_eq!(CtlMsg::decode(m.encode()), Some(m));
        }
    }

    /// Decoding arbitrary bytes never panics.
    #[test]
    fn control_decode_total(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let _ = CtlMsg::decode(Bytes::from(bytes));
    }
}
