//! Self-tests over the fixture corpus in `tests/fixtures/` — deliberately
//! planted violations for every rule, false-positive bait, waiver
//! parsing in every flavour, and an unparseable file.
//!
//! The fixtures live in a `fixtures/` directory precisely because the
//! workspace walker skips directories with that name: the corpus must be
//! visible to these tests and invisible to the real gate.

use aroma_lint::config::Config;
use aroma_lint::report::Severity;
use aroma_lint::{lint_source, lint_workspace};
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Lint a fixture as if it were library code of a crate with no config
/// allows, returning `(line, rule, waived)` triples.
fn lint_as_lib(name: &str) -> Vec<(u32, &'static str, bool)> {
    let src = fixture(name);
    lint_source(&format!("crates/fixture/src/{name}"), &src, &Config::default())
        .expect("fixture must lex")
        .into_iter()
        .map(|f| (f.line, f.rule, f.waived.is_some()))
        .collect()
}

#[test]
fn nondet_fixture_catches_every_planted_violation() {
    let got = lint_as_lib("nondet.rs");
    assert_eq!(
        got,
        vec![
            (11, "nondet-iter", false),
            (12, "nondet-iter", false),
            (16, "nondet-iter", false),
            (22, "nondet-drain", false),
            (23, "nondet-retain", false),
        ]
    );
}

#[test]
fn purity_fixture_catches_every_planted_violation() {
    let got = lint_as_lib("purity.rs");
    assert_eq!(
        got,
        vec![
            (7, "sim-wall-clock", false),
            (8, "sim-wall-clock", false),
            (14, "sim-os-env", false),
            (15, "sim-os-env", false),
            (16, "sim-os-entropy", false),
            (17, "sim-os-entropy", false),
            (22, "sim-thread-spawn", false),
            (24, "sim-thread-spawn", false),
            (30, "print-stdout", false),
            (31, "print-stdout", false),
            (32, "print-stdout", false),
            // Line 39's println! is inside #[cfg(test)] — no finding; the
            // wall clock on line 40 is a flake hazard even in tests.
            (40, "sim-wall-clock", false),
        ]
    );
}

#[test]
fn purity_fixture_is_exempt_in_harness_targets() {
    let src = fixture("purity.rs");
    for path in [
        "crates/fixture/src/bin/tool.rs",
        "crates/fixture/benches/bench.rs",
        "examples/demo.rs",
    ] {
        let findings = lint_source(path, &src, &Config::default()).unwrap();
        assert!(
            findings.is_empty(),
            "{path}: harness targets own their clock/env/threads/stdout, got {findings:?}"
        );
    }
    // Integration tests keep the reproducibility rules but may print.
    let findings = lint_source("crates/fixture/tests/it.rs", &src, &Config::default()).unwrap();
    assert!(findings.iter().all(|f| f.rule != "print-stdout"));
    assert!(findings.iter().any(|f| f.rule == "sim-wall-clock"));
}

#[test]
fn clean_fixture_produces_zero_findings() {
    let got = lint_as_lib("clean.rs");
    assert!(got.is_empty(), "false positives: {got:?}");
}

#[test]
fn waiver_fixture_covers_every_waiver_path() {
    let got = lint_as_lib("waivers.rs");
    assert_eq!(
        got,
        vec![
            (7, "sim-wall-clock", true),     // waived by the line above
            (8, "sim-wall-clock", true),     // waived by same-line trailing comment
            (13, "waiver-no-reason", false), // reasonless waiver is itself a finding…
            (14, "sim-wall-clock", false),   // …and silences nothing
            (15, "waiver-unknown-rule", false), // typo'd rule id is a finding…
            (16, "sim-wall-clock", false),   // …and silences nothing
            (20, "waiver-unused", false),    // stale waiver surfaces as a warning
        ]
    );
    // Severity split: the stale waiver warns, everything else denies.
    let src = fixture("waivers.rs");
    let full = lint_source("crates/fixture/src/waivers.rs", &src, &Config::default()).unwrap();
    for f in &full {
        let expect = if f.rule == "waiver-unused" {
            Severity::Warn
        } else {
            Severity::Deny
        };
        assert_eq!(f.severity, expect, "{}:{}", f.rule, f.line);
    }
}

#[test]
fn unparseable_fixture_is_a_hard_error() {
    let src = fixture("unparseable.rs");
    let err = lint_source("crates/fixture/src/unparseable.rs", &src, &Config::default())
        .expect_err("unterminated string must not lint");
    assert!(err.msg.contains("unterminated string"));
}

#[test]
fn workspace_scan_reports_unparseable_files_never_skips_silently() {
    // Build a tiny workspace in the test tempdir: one clean file, one
    // violation, one unparseable — the report must show 2 scanned, 1
    // finding, 1 skipped.
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join("lint-selftest-ws");
    let src_dir = root.join("crates/demo/src");
    std::fs::create_dir_all(&src_dir).unwrap();
    std::fs::write(src_dir.join("ok.rs"), "fn f() -> u32 { 1 }\n").unwrap();
    std::fs::write(
        src_dir.join("bad.rs"),
        "fn f() { let t = Instant::now(); let _ = t; }\n",
    )
    .unwrap();
    std::fs::write(src_dir.join("broken.rs"), "fn f() { let s = \"open\n").unwrap();
    let report = lint_workspace(&root, &Config::default()).unwrap();
    assert_eq!(report.files_scanned, 2);
    assert_eq!(report.blocking().count(), 1);
    assert_eq!(report.skipped.len(), 1);
    assert!(report.skipped[0].file.ends_with("broken.rs"));
    let json = report.render_json();
    assert!(json.contains("\"unparseable\":1"));
    assert!(json.contains("sim-wall-clock"));
}

#[test]
fn the_real_workspace_gate_is_green() {
    // The acceptance criterion, as a test: zero unwaived findings over the
    // actual workspace, every waiver reasoned, zero unparseable files.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint has a workspace root");
    let cfg_text = std::fs::read_to_string(root.join("aroma-lint.toml")).unwrap();
    let cfg = Config::parse(&cfg_text).unwrap();
    let report = lint_workspace(root, &cfg).unwrap();
    assert!(report.files_scanned > 100, "walked a real workspace");
    assert_eq!(report.skipped.len(), 0, "unparseable: {:?}", report.skipped);
    let blocking: Vec<_> = report.blocking().collect();
    assert!(blocking.is_empty(), "unwaived findings: {blocking:#?}");
    for f in &report.findings {
        if let Some(reason) = &f.waived {
            assert!(!reason.trim().is_empty(), "empty waiver reason at {}:{}", f.file, f.line);
        }
    }
}
