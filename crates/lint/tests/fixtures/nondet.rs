//! Fixture: every nondet-order rule fires. Lines are asserted by number in
//! selftest.rs — renumber there if this file changes.

use std::collections::{HashMap, HashSet};

struct Table {
    regs: HashMap<u64, String>,
}

fn violations(t: &Table, pending: &mut HashSet<u64>) -> Vec<String> {
    let mut out: Vec<String> = t.regs.values().cloned().collect(); // line 11: nondet-iter
    for id in pending.iter() {
        // line 12: nondet-iter
        out.push(id.to_string());
    }
    for (k, v) in &t.regs {
        // line 16: nondet-iter
        out.push(format!("{k}{v}"));
    }
    let mut scratch = HashMap::new();
    scratch.insert(1u32, 2u32);
    let drained: Vec<_> = scratch.drain().collect(); // line 22: nondet-drain
    pending.retain(|id| *id > 0); // line 23: nondet-retain
    let _ = drained;
    out
}

fn membership_is_fine(t: &Table, pending: &HashSet<u64>) -> bool {
    t.regs.contains_key(&1) && pending.contains(&2) && t.regs.len() > pending.len()
}
