//! Fixture: the lexer must refuse this file, and the gate must report it
//! as a coverage gap rather than silently skipping it.

fn oops() {
    let s = "this string literal never closes…
}
