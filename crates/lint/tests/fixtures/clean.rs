//! Fixture: zero findings expected. Every line here is bait — the words
//! HashMap, Instant::now, println! etc. appear only where a *correct*
//! lexer knows they are not code, or in shapes the rules must not flag.

use std::collections::{BTreeMap, HashMap};

/// Doc comment mentioning `HashMap.iter()` and Instant::now() — not code.
fn strings_and_comments() -> String {
    // A comment saying map.values().collect() must not fire.
    /* Nor a block comment with thread_rng() — /* even nested: drain() */ */
    let a = "HashMap::new().iter() println!(\"x\") Instant::now()";
    let b = r#"SystemTime::now() "quoted" std::env::var"#;
    let c = r##"raw with guard: pending.retain(|_| true) "#" done"##;
    let d = b"thread::spawn bytes";
    format!("{a}{b}{c}{}", d.len())
}

/// Chars vs lifetimes: a lexer that trips here would desync and misread
/// the rest of the file.
fn lifetimes<'a>(s: &'a str) -> (&'a str, char, char) {
    (s, 'x', '\'')
}

/// Membership-only hash use is the sanctioned idiom: O(1) lookups where
/// iteration order can never be observed.
fn membership(seen: &mut HashMap<u64, u32>) -> Option<u32> {
    seen.insert(7, 1);
    let hit = seen.get(&7).copied();
    seen.remove(&9);
    seen.entry(8).or_insert(0);
    hit
}

/// Ordered containers iterate freely.
fn ordered(m: &BTreeMap<u64, u32>, v: &[u32]) -> u32 {
    let mut total = 0;
    for (_, x) in m.iter() {
        total += x;
    }
    for x in v {
        total += x;
    }
    total + m.values().sum::<u32>()
}

/// An identifier that merely *contains* a rule trigger is not a trigger.
fn near_misses() {
    let instant_like = 1;
    let spawned = instant_like + 1; // `spawned` ≠ `.spawn(`
    let printing = spawned; // `printing` ≠ `print!`
    let _ = printing;
}
