//! Fixture: every sim-purity rule fires (when classified as lib code).
//! Lines are asserted by number in selftest.rs.

use std::time::{Instant, SystemTime};

fn clocks() -> u64 {
    let a = Instant::now(); // line 7: sim-wall-clock
    let b = SystemTime::now(); // line 8: sim-wall-clock
    let _ = (a, b);
    0
}

fn ambient() {
    let home = std::env::var("HOME"); // line 14: sim-os-env
    let cores = std::thread::available_parallelism(); // line 15: sim-os-env
    let rng = thread_rng(); // line 16: sim-os-entropy
    let state = RandomState::new(); // line 17: sim-os-entropy
    let _ = (home, cores, rng, state);
}

fn threads() {
    let h = std::thread::spawn(|| 1); // line 22: sim-thread-spawn
    std::thread::scope(|scope| {
        scope.spawn(|| 2); // line 24: sim-thread-spawn
    });
    let _ = h;
}

fn chatty() {
    println!("to stdout"); // line 30: print-stdout
    eprintln!("to stderr"); // line 31: print-stdout
    dbg!(42); // line 32: print-stdout
}

#[cfg(test)]
mod tests {
    #[test]
    fn prints_in_tests_are_fine() {
        println!("captured by the harness"); // no finding: test region
        let _t = std::time::Instant::now(); // line 40: sim-wall-clock (applies in tests too)
    }
}
