//! Fixture: waiver parsing in every flavour. Lines asserted in selftest.rs.

use std::time::Instant;

fn properly_waived() {
    // lint:allow(sim-wall-clock): fixture — reason present, waiver valid
    let a = Instant::now(); // line 7: waived via the line above
    let b = Instant::now(); // lint:allow(sim-wall-clock): same-line trailing waiver also works
    let _ = (a, b);
}

fn bad_waivers() {
    // lint:allow(sim-wall-clock)
    let a = Instant::now(); // line 14: NOT waived — line 13 has no reason
    // lint:allow(sim-wall-clok): typo'd rule never matches anything
    let b = Instant::now(); // line 16: NOT waived — line 15 names unknown rule
    let _ = (a, b);
}

// lint:allow(nondet-iter): stale waiver — nothing on this or the next line
fn stale() {}
