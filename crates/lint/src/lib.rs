//! # aroma-lint — the determinism & sim-purity gate
//!
//! Every pillar of this reproduction rests on one convention: *simulation
//! code never observes wall clocks, OS entropy, process environment, or
//! hash-map iteration order.* The byte-identical parallel model checker
//! (DESIGN.md §12), the seed-stable fault plane (§11), and every
//! `Snapshot::deterministic_eq` comparison are sound only while that holds.
//! This crate makes the convention *checked*: a std-only static analyser
//! that lexes every `.rs` file in the workspace with a hand-rolled Rust
//! lexer ([`lexer`]) and runs a token-stream rule engine ([`rules`]) with
//! two rule families — **nondet-order** (order-observing operations on hash
//! containers) and **sim-purity** (ambient-world reads from library code).
//!
//! Findings are silenced only by an *audited* waiver with a mandatory
//! reason ([`waiver`]) or a per-crate config allow ([`config`]); the
//! `aroma-lint --deny` binary exits non-zero on any unwaived finding and on
//! any file it could not parse, and is wired into `scripts/check.sh` so the
//! determinism contract is enforced on every PR. See DESIGN.md §14.

pub mod config;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod waiver;
pub mod walk;

use config::Config;
use report::{Finding, Report, SkippedFile};
use rules::TargetKind;
use std::path::Path;

/// Lint one file's source text. `rel_path` is workspace-relative and
/// determines both the target kind (bin/test/bench exemptions) and the
/// owning crate (config allows). Returns findings with waivers already
/// applied, or the lex error for an unauditable file.
pub fn lint_source(rel_path: &str, src: &str, cfg: &Config) -> Result<Vec<Finding>, lexer::LexError> {
    let lexed = lexer::lex(src)?;
    let kind = TargetKind::classify(rel_path);
    let mut findings = rules::scan(rel_path, kind, &lexed);

    // Per-crate config allows: waived with a pointer at the config file,
    // where the rationale lives as comments.
    for f in findings.iter_mut() {
        if cfg.allows(rel_path, f.rule) {
            f.waived = Some(format!(
                "crate-wide allow for `{}` in aroma-lint.toml",
                Config::crate_of(rel_path)
            ));
        }
    }

    let (mut waivers, mut meta) = waiver::parse(rel_path, &lexed.comments);
    let unused = waiver::apply(rel_path, &mut findings, &mut waivers);
    findings.append(&mut meta);
    findings.extend(unused);
    findings.sort_by(|a, b| a.line.cmp(&b.line).then(a.rule.cmp(b.rule)));
    Ok(findings)
}

/// Lint a whole workspace rooted at `root`. I/O and lex failures land in
/// [`Report::skipped`] — they are counted, reported, and fatal, never
/// silently dropped.
pub fn lint_workspace(root: &Path, cfg: &Config) -> std::io::Result<Report> {
    let mut report = Report::default();
    for rel in walk::rust_files(root)? {
        let rel_str = rel
            .to_str()
            .map(|s| s.replace('\\', "/"))
            .unwrap_or_else(|| rel.to_string_lossy().into_owned());
        let src = match std::fs::read_to_string(root.join(&rel)) {
            Ok(src) => src,
            Err(e) => {
                report.skipped.push(SkippedFile {
                    file: rel_str,
                    error: format!("read failed: {e}"),
                });
                continue;
            }
        };
        match lint_source(&rel_str, &src, cfg) {
            Ok(findings) => {
                report.files_scanned += 1;
                report.findings.extend(findings);
            }
            Err(e) => report.skipped.push(SkippedFile {
                file: rel_str,
                error: e.to_string(),
            }),
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waiver_silences_finding_end_to_end() {
        let src = "
            fn f() {
                // lint:allow(sim-wall-clock): profile-only, excluded from deterministic_eq
                let t = Instant::now();
            }";
        let fs = lint_source("crates/x/src/lib.rs", src, &Config::default()).unwrap();
        assert_eq!(fs.len(), 1);
        assert!(fs[0].waived.is_some());
    }

    #[test]
    fn config_allow_waives_crate_wide() {
        let cfg = Config::parse("[crate \"bench\"]\nallow = [\"sim-wall-clock\"]\n").unwrap();
        let src = "fn f() { let t = Instant::now(); }";
        let fs = lint_source("crates/bench/src/x.rs", src, &cfg).unwrap();
        assert_eq!(fs.len(), 1);
        assert!(fs[0].waived.as_deref().unwrap().contains("aroma-lint.toml"));
        let fs = lint_source("crates/net/src/x.rs", src, &cfg).unwrap();
        assert!(fs[0].waived.is_none(), "allow is scoped to its crate");
    }

    #[test]
    fn unparseable_source_is_an_error() {
        assert!(lint_source("crates/x/src/lib.rs", "let s = \"open", &Config::default()).is_err());
    }
}
