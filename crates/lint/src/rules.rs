//! The rule engine: two rule families over the token stream.
//!
//! **nondet-order** — hash-order dependence. A first pass collects every
//! identifier the file binds to a `HashMap`/`HashSet` (field declarations,
//! `let` ascriptions, fn params, `= HashMap::new()`-style initialisers); a
//! second pass flags order-observing operations on those bindings:
//! iteration (`iter`, `keys`, `values`, `into_iter`, … and `for … in map`),
//! `drain`/`extract_if`, and `retain` (whose closure runs side effects in
//! hash order). Membership-only use — `get`/`insert`/`contains`/`entry`/
//! `len`/`clear` — is exactly what hash containers are *for* and is never
//! flagged.
//!
//! **sim-purity** — ambient-world leaks into simulation code: wall clocks
//! (`Instant::`/`SystemTime::`), process environment and OS queries
//! (`std::env::*`, `available_parallelism`), OS entropy (`thread_rng`,
//! `OsRng`, `from_entropy`, `getrandom`, `RandomState`), raw thread spawns,
//! and stdout prints from library code.
//!
//! Rules are scoped by target kind (bin/example/bench/test files get the
//! exemptions a CLI or benchmark legitimately needs) and by `#[cfg(test)]` /
//! `#[test]` regions inside library files, which are treated as test code.
//! Remaining true positives are silenced per site with
//! `// lint:allow(<rule>): <reason>` (reason mandatory — see
//! [`crate::waiver`]) or per crate in `aroma-lint.toml` (see
//! [`crate::config`]).

use crate::lexer::{LexOut, Tok, TokKind};
use crate::report::{Finding, Severity};
use std::collections::BTreeSet;

/// What kind of compilation target a file belongs to, by path convention.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TargetKind {
    /// Library code — the simulation itself. Every rule applies.
    Lib,
    /// `src/bin/` or `src/main.rs`: a CLI owns its stdout, args, and threads.
    Bin,
    /// `examples/`: runnable demos, same liberties as a bin.
    Example,
    /// `tests/`: integration tests. Order rules still apply (hash-order
    /// tests are flaky tests); prints and timing are fine.
    Test,
    /// `benches/`: wall-clock timing is the whole point.
    Bench,
}

impl TargetKind {
    /// Classify by path convention, from a `/`-separated relative path.
    pub fn classify(rel_path: &str) -> TargetKind {
        let segs: Vec<&str> = rel_path.split('/').collect();
        if segs.contains(&"benches") {
            TargetKind::Bench
        } else if segs.contains(&"tests") {
            TargetKind::Test
        } else if segs.contains(&"examples") {
            TargetKind::Example
        } else if segs.contains(&"bin") || segs.last() == Some(&"main.rs") {
            TargetKind::Bin
        } else {
            TargetKind::Lib
        }
    }

    /// Label for reports.
    pub fn label(self) -> &'static str {
        match self {
            TargetKind::Lib => "lib",
            TargetKind::Bin => "bin",
            TargetKind::Example => "example",
            TargetKind::Test => "test",
            TargetKind::Bench => "bench",
        }
    }
}

/// The rule catalog. Adding a rule means adding it here *and* to
/// [`applies`], and covering it with a fixture in `tests/selftest.rs`.
pub const RULES: [&str; 8] = [
    "nondet-iter",
    "nondet-drain",
    "nondet-retain",
    "sim-wall-clock",
    "sim-os-env",
    "sim-os-entropy",
    "sim-thread-spawn",
    "print-stdout",
];

/// Is `rule` a known rule id?
pub fn known_rule(rule: &str) -> bool {
    RULES.contains(&rule)
}

/// Does `rule` apply to code of this target kind? (In-file test regions of
/// a Lib file are re-classified as `Test` before this is consulted.)
pub fn applies(rule: &str, kind: TargetKind) -> bool {
    use TargetKind::*;
    match rule {
        // Hash-order dependence makes flaky tests and nondeterministic CLI
        // output alike; no target kind is exempt.
        "nondet-iter" | "nondet-drain" | "nondet-retain" => true,
        // Wall clocks, OS queries, entropy, threads: forbidden in the
        // simulation (lib) and in tests (reproducibility), fine in the
        // harness targets that exist to touch the real world.
        "sim-wall-clock" | "sim-os-env" | "sim-os-entropy" | "sim-thread-spawn" => {
            matches!(kind, Lib | Test)
        }
        // Library code reports through return values and telemetry, never
        // stdout; bins/examples/tests/benches own their terminal.
        "print-stdout" => matches!(kind, Lib),
        _ => false,
    }
}

/// Methods that observe iteration order of a hash container.
const ITER_METHODS: [&str; 8] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "into_keys",
    "into_values",
];

/// `std::env` members that read or mutate the process environment.
const ENV_MEMBERS: [&str; 11] = [
    "args",
    "args_os",
    "var",
    "vars",
    "var_os",
    "vars_os",
    "set_var",
    "remove_var",
    "current_dir",
    "set_current_dir",
    "temp_dir",
];

/// Identifiers that reach OS entropy.
const ENTROPY_IDENTS: [&str; 5] = [
    "thread_rng",
    "OsRng",
    "from_entropy",
    "getrandom",
    "RandomState",
];

/// Print-to-terminal macros.
const PRINT_MACROS: [&str; 5] = ["println", "print", "eprintln", "eprint", "dbg"];

fn is(t: Option<&Tok>, kind: TokKind, text: &str) -> bool {
    t.is_some_and(|t| t.kind == kind && t.text == text)
}

fn punct(t: Option<&Tok>, c: &str) -> bool {
    is(t, TokKind::Punct, c)
}

fn ident(t: Option<&Tok>) -> Option<&str> {
    t.and_then(|t| (t.kind == TokKind::Ident).then_some(t.text.as_str()))
}

/// Token-index ranges that belong to `#[test]` / `#[cfg(test)]` items.
/// Findings inside them are judged as [`TargetKind::Test`].
fn test_regions(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if punct(toks.get(i), "#") && punct(toks.get(i + 1), "[") {
            // Collect the attribute body up to the matching `]`.
            let mut j = i + 2;
            let mut depth = 1usize;
            let mut body: Vec<&str> = Vec::new();
            while j < toks.len() && depth > 0 {
                match toks[j].text.as_str() {
                    "[" => depth += 1,
                    "]" => depth -= 1,
                    _ => {}
                }
                if depth > 0 && toks[j].kind == TokKind::Ident {
                    body.push(&toks[j].text);
                }
                j += 1;
            }
            let is_test_attr = body.as_slice() == ["test"]
                || (body.first() == Some(&"cfg")
                    && body.contains(&"test")
                    && !body.contains(&"not"));
            if is_test_attr {
                // The attached item runs to its matching `}` (or `;` for
                // brace-less items). Skip over any further attributes.
                let mut k = j;
                while punct(toks.get(k), "#") && punct(toks.get(k + 1), "[") {
                    let mut d = 1usize;
                    k += 2;
                    while k < toks.len() && d > 0 {
                        match toks[k].text.as_str() {
                            "[" => d += 1,
                            "]" => d -= 1,
                            _ => {}
                        }
                        k += 1;
                    }
                }
                // Find the item's opening brace at paren depth 0.
                let mut paren = 0i32;
                let mut open = None;
                while k < toks.len() {
                    match toks[k].text.as_str() {
                        "(" => paren += 1,
                        ")" => paren -= 1,
                        "{" if paren == 0 => {
                            open = Some(k);
                            break;
                        }
                        ";" if paren == 0 => break,
                        _ => {}
                    }
                    k += 1;
                }
                if let Some(open) = open {
                    let mut d = 1usize;
                    let mut end = open + 1;
                    while end < toks.len() && d > 0 {
                        match toks[end].text.as_str() {
                            "{" => d += 1,
                            "}" => d -= 1,
                            _ => {}
                        }
                        end += 1;
                    }
                    regions.push((i, end));
                    i = end;
                    continue;
                }
            }
            i = j;
            continue;
        }
        i += 1;
    }
    regions
}

/// Pass 1 of the nondet family: every identifier this file binds to a hash
/// container. Purely lexical, so it sees field declarations (`regs:
/// HashMap<…>`), parameters (`seen: &mut HashMap<…>`), `let` ascriptions,
/// and `= HashMap::new()`-style initialisers — the idioms this workspace
/// actually uses.
fn unordered_bindings(toks: &[Tok]) -> BTreeSet<String> {
    let mut found = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || (t.text != "HashMap" && t.text != "HashSet") {
            continue;
        }
        // Walk left over path qualifiers and reference sigils to the
        // declaration shape.
        let mut j = i;
        loop {
            if j >= 2
                && punct(toks.get(j - 1), ":")
                && punct(toks.get(j - 2), ":")
                && toks.get(j.wrapping_sub(3)).is_some_and(|t| t.kind == TokKind::Ident)
            {
                j -= 3; // `std::collections::` path segment
            } else if j >= 1
                && (punct(toks.get(j - 1), "&")
                    || is(toks.get(j - 1), TokKind::Ident, "mut")
                    || toks.get(j - 1).is_some_and(|t| t.kind == TokKind::Lifetime))
            {
                j -= 1;
            } else {
                break;
            }
        }
        // `name : HashMap<…>` — but not `name :: HashMap` (path).
        if j >= 2 && punct(toks.get(j - 1), ":") && !punct(toks.get(j - 2), ":") {
            if let Some(name) = ident(toks.get(j - 2)) {
                found.insert(name.to_string());
            }
        }
        // `let [mut] name = HashMap::…` (no ascription; the `==` guard
        // keeps comparison expressions out).
        if j >= 2 && punct(toks.get(j - 1), "=") && !punct(toks.get(j - 2), "=") {
            if let Some(name) = ident(toks.get(j - 2)) {
                found.insert(name.to_string());
            }
        }
    }
    found
}

/// One raw (pre-waiver) finding.
fn finding(file: &str, line: u32, rule: &'static str, message: String) -> Finding {
    Finding {
        file: file.to_string(),
        line,
        rule,
        severity: Severity::Deny,
        message,
        waived: None,
    }
}

/// Run every rule over a lexed file. Returned findings are raw: waivers and
/// per-crate config are applied by [`crate::lint_source`].
pub fn scan(file: &str, kind: TargetKind, lexed: &LexOut) -> Vec<Finding> {
    let toks = &lexed.toks;
    let regions = test_regions(toks);
    let kind_at = |idx: usize| -> TargetKind {
        if kind == TargetKind::Lib && regions.iter().any(|&(a, b)| idx >= a && idx < b) {
            TargetKind::Test
        } else {
            kind
        }
    };
    let unordered = unordered_bindings(toks);
    let mut out = Vec::new();
    let mut emit = |idx: usize, rule: &'static str, line: u32, msg: String| {
        if applies(rule, kind_at(idx)) {
            out.push(finding(file, line, rule, msg));
        }
    };

    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let name = t.text.as_str();

        // nondet family: `binding.method(` where binding is hash-backed.
        if unordered.contains(name)
            && punct(toks.get(i + 1), ".")
            && punct(toks.get(i + 3), "(")
        {
            if let Some(m) = ident(toks.get(i + 2)) {
                let line = t.line;
                if ITER_METHODS.contains(&m) {
                    emit(
                        i,
                        "nondet-iter",
                        line,
                        format!("`{name}.{m}()` iterates a hash container in nondeterministic order"),
                    );
                } else if m == "drain" || m == "extract_if" {
                    emit(
                        i,
                        "nondet-drain",
                        line,
                        format!("`{name}.{m}()` yields hash-container entries in nondeterministic order"),
                    );
                } else if m == "retain" {
                    emit(
                        i,
                        "nondet-retain",
                        line,
                        format!("`{name}.retain()` visits hash-container entries in nondeterministic order"),
                    );
                }
            }
        }

        // `for pat in [& [mut]] binding {` — bare iteration of the binding.
        if name == "for" && t.kind == TokKind::Ident {
            // Find `in`, then the body `{` at paren depth 0; the token just
            // before that brace is the iterated expression's tail.
            let mut j = i + 1;
            while j < toks.len() && !is(toks.get(j), TokKind::Ident, "in") {
                if punct(toks.get(j), "{") {
                    break; // not a for-loop shape we understand
                }
                j += 1;
            }
            if is(toks.get(j), TokKind::Ident, "in") {
                let mut paren = 0i32;
                let mut k = j + 1;
                while k < toks.len() {
                    match toks[k].text.as_str() {
                        "(" | "[" => paren += 1,
                        ")" | "]" => paren -= 1,
                        "{" if paren == 0 => break,
                        ";" if paren == 0 => break,
                        _ => {}
                    }
                    k += 1;
                }
                if punct(toks.get(k), "{") && k > 0 {
                    if let Some(tail) = ident(toks.get(k - 1)) {
                        if unordered.contains(tail) {
                            emit(
                                k - 1,
                                "nondet-iter",
                                toks[k - 1].line,
                                format!("`for … in {tail}` iterates a hash container in nondeterministic order"),
                            );
                        }
                    }
                }
            }
        }

        // sim-wall-clock: `Instant::…` / `SystemTime::…`.
        if (name == "Instant" || name == "SystemTime")
            && punct(toks.get(i + 1), ":")
            && punct(toks.get(i + 2), ":")
        {
            emit(
                i,
                "sim-wall-clock",
                t.line,
                format!("`{name}::` reads the wall clock; simulation time must come from SimTime"),
            );
        }

        // sim-os-env: `env::member(…)` and `available_parallelism`.
        if name == "env" && punct(toks.get(i + 1), ":") && punct(toks.get(i + 2), ":") {
            if let Some(m) = ident(toks.get(i + 3)) {
                if ENV_MEMBERS.contains(&m) {
                    emit(
                        i,
                        "sim-os-env",
                        t.line,
                        format!("`env::{m}` reads the process environment, which differs across runs/hosts"),
                    );
                }
            }
        }
        if name == "available_parallelism" {
            emit(
                i,
                "sim-os-env",
                t.line,
                "`available_parallelism` queries the host; results differ across machines".to_string(),
            );
        }

        // sim-os-entropy.
        if ENTROPY_IDENTS.contains(&name) {
            emit(
                i,
                "sim-os-entropy",
                t.line,
                format!("`{name}` draws OS entropy; all randomness must come from the seeded SimRng"),
            );
        }

        // sim-thread-spawn: `thread::spawn` or any `.spawn(`.
        let spawns = name == "spawn"
            && punct(toks.get(i + 1), "(")
            && (punct(toks.get(i.wrapping_sub(1)), ".")
                || (punct(toks.get(i.wrapping_sub(1)), ":")
                    && punct(toks.get(i.wrapping_sub(2)), ":")
                    && ident(toks.get(i.wrapping_sub(3))) == Some("thread")));
        if spawns {
            emit(
                i,
                "sim-thread-spawn",
                t.line,
                "thread spawn: scheduling order is OS-dependent; prove determinism or simulate concurrency in the DES".to_string(),
            );
        }

        // print-stdout: `println!` and friends.
        if PRINT_MACROS.contains(&name) && punct(toks.get(i + 1), "!") {
            emit(
                i,
                "print-stdout",
                t.line,
                format!("`{name}!` in library code; report via return values or telemetry"),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn rules_hit(src: &str, kind: TargetKind) -> Vec<&'static str> {
        scan("t.rs", kind, &lex(src).unwrap())
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn membership_only_hashmap_use_is_clean() {
        let src = "
            struct S { dedup: HashMap<u32, u16> }
            fn f(s: &mut S) {
                s.dedup.insert(1, 2);
                let _ = s.dedup.get(&1);
                s.dedup.clear();
                let n = s.dedup.len();
            }";
        assert!(rules_hit(src, TargetKind::Lib).is_empty());
    }

    #[test]
    fn iteration_over_bound_hashmap_is_flagged() {
        let src = "
            struct S { regs: HashMap<u64, u64> }
            fn f(s: &S) -> Vec<u64> { s.regs.values().copied().collect() }";
        assert_eq!(rules_hit(src, TargetKind::Lib), vec!["nondet-iter"]);
    }

    #[test]
    fn for_loop_over_hashset_is_flagged() {
        let src = "fn f(pending: &HashSet<u64>) { for x in pending { let _ = x; } }";
        assert_eq!(rules_hit(src, TargetKind::Lib), vec!["nondet-iter"]);
        let by_ref = "fn f() { let mut s = HashSet::new(); for x in &s { let _ = x; } }";
        assert_eq!(rules_hit(by_ref, TargetKind::Lib), vec!["nondet-iter"]);
    }

    #[test]
    fn vec_iteration_is_not_flagged() {
        let src = "fn f(v: &Vec<u64>) { for x in v { let _ = x; } v.iter().count(); }";
        assert!(rules_hit(src, TargetKind::Lib).is_empty());
    }

    #[test]
    fn target_kind_scopes_purity_rules() {
        let src = "fn f() { let t = Instant::now(); println!(\"{t:?}\"); }";
        assert_eq!(
            rules_hit(src, TargetKind::Lib),
            vec!["sim-wall-clock", "print-stdout"]
        );
        assert!(rules_hit(src, TargetKind::Bench).is_empty());
        assert!(rules_hit(src, TargetKind::Bin).is_empty());
        // Tests: timing is still a flake hazard, prints are fine.
        assert_eq!(rules_hit(src, TargetKind::Test), vec!["sim-wall-clock"]);
    }

    #[test]
    fn cfg_test_regions_in_lib_files_are_test_kind() {
        let src = "
            fn lib_code() {}
            #[cfg(test)]
            mod tests {
                fn helper() { println!(\"debugging\"); }
            }";
        assert!(rules_hit(src, TargetKind::Lib).is_empty());
        // …but cfg(not(test)) is NOT a test region.
        let src2 = "
            #[cfg(not(test))]
            mod real { fn f() { println!(\"x\"); } }";
        assert_eq!(rules_hit(src2, TargetKind::Lib), vec!["print-stdout"]);
    }

    #[test]
    fn classify_paths() {
        assert_eq!(TargetKind::classify("crates/net/src/network.rs"), TargetKind::Lib);
        assert_eq!(TargetKind::classify("crates/net/tests/faults.rs"), TargetKind::Test);
        assert_eq!(TargetKind::classify("benches/fanout.rs"), TargetKind::Bench);
        assert_eq!(TargetKind::classify("examples/chaos.rs"), TargetKind::Example);
        assert_eq!(TargetKind::classify("crates/bench/src/bin/repro.rs"), TargetKind::Bin);
        assert_eq!(TargetKind::classify("crates/lint/src/main.rs"), TargetKind::Bin);
    }

    #[test]
    fn spawn_and_entropy_and_env_rules_fire() {
        let src = "
            fn f() {
                let h = std::thread::spawn(|| 1);
                let r = thread_rng();
                let p = std::thread::available_parallelism();
                let a = std::env::var(\"HOME\");
            }";
        let hits = rules_hit(src, TargetKind::Lib);
        assert!(hits.contains(&"sim-thread-spawn"));
        assert!(hits.contains(&"sim-os-entropy"));
        assert!(hits.contains(&"sim-os-env"));
        assert_eq!(hits.iter().filter(|r| **r == "sim-os-env").count(), 2);
    }

    #[test]
    fn drain_and_retain_fire() {
        let src = "
            fn f() {
                let mut m = HashMap::new();
                m.drain();
                m.retain(|_, v| *v > 0);
            }";
        assert_eq!(
            rules_hit(src, TargetKind::Lib),
            vec!["nondet-drain", "nondet-retain"]
        );
    }
}
