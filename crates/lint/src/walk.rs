//! Workspace file discovery.
//!
//! Walks the workspace root collecting every `.rs` file, in sorted order so
//! the gate's own output is deterministic (`read_dir` order is
//! filesystem-dependent — a determinism linter with nondeterministic output
//! would be an embarrassment). Skipped subtrees:
//!
//! - `target/` — build products;
//! - `vendor/` — offline stand-ins for external crates: not simulation
//!   code, and intentionally full of entropy/thread APIs;
//! - `fixtures/` — the lint self-test corpus, which *deliberately*
//!   violates every rule;
//! - dot-directories (`.git`, …).

use std::path::{Path, PathBuf};

const SKIP_DIRS: [&str; 3] = ["target", "vendor", "fixtures"];

/// Every `.rs` file under `root`, workspace-relative, sorted.
pub fn rust_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        entries.sort();
        for path in entries {
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default();
            if path.is_dir() {
                if name.starts_with('.') || SKIP_DIRS.contains(&name) {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(
                    path.strip_prefix(root)
                        .expect("walked path is under root")
                        .to_path_buf(),
                );
            }
        }
    }
    out.sort();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walk_finds_this_crate_and_skips_fixtures() {
        // The crate's own directory is a handy real tree: src/*.rs must be
        // found, tests/fixtures/*.rs must not.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"));
        let files = rust_files(root).unwrap();
        assert!(files.iter().any(|p| p.ends_with("src/lexer.rs")));
        assert!(files.iter().all(|p| !p.to_string_lossy().contains("fixtures")));
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted, "output is sorted");
    }
}
