//! `aroma-lint` — CLI for the determinism & sim-purity gate.
//!
//! ```text
//! aroma-lint [--root DIR] [--config FILE] [--json] [--deny] [--verbose]
//! ```
//!
//! Exit codes:
//! - `0` — every file audited; no blocking findings (or `--deny` absent);
//! - `1` — `--deny` and at least one unwaived deny-severity finding;
//! - `2` — at least one file could not be read or lexed (always fatal: an
//!   unparseable file is an unaudited file, and silent coverage gaps are
//!   the one failure mode a gate must not have), or bad usage/config.

use aroma_lint::config::Config;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: aroma-lint [--root DIR] [--config FILE] [--json] [--deny] [--verbose]";

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut config_path: Option<PathBuf> = None;
    let mut json = false;
    let mut deny = false;
    let mut verbose = false;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage_error("--root needs a value"),
            },
            "--config" => match args.next() {
                Some(v) => config_path = Some(PathBuf::from(v)),
                None => return usage_error("--config needs a value"),
            },
            "--json" => json = true,
            "--deny" => deny = true,
            "--verbose" => verbose = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown flag {other:?}")),
        }
    }

    // Default config: <root>/aroma-lint.toml when present; an explicitly
    // passed path must exist.
    let cfg = match &config_path {
        Some(p) => match std::fs::read_to_string(p) {
            Ok(text) => match Config::parse(&text) {
                Ok(cfg) => cfg,
                Err(e) => return fatal(&format!("{e}")),
            },
            Err(e) => return fatal(&format!("cannot read {}: {e}", p.display())),
        },
        None => {
            let default = root.join("aroma-lint.toml");
            match std::fs::read_to_string(&default) {
                Ok(text) => match Config::parse(&text) {
                    Ok(cfg) => cfg,
                    Err(e) => return fatal(&format!("{e}")),
                },
                Err(_) => Config::default(),
            }
        }
    };

    let report = match aroma_lint::lint_workspace(&root, &cfg) {
        Ok(r) => r,
        Err(e) => return fatal(&format!("walk failed under {}: {e}", root.display())),
    };

    if json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_text(verbose));
    }

    if !report.skipped.is_empty() {
        eprintln!(
            "aroma-lint: FAIL — {} file(s) could not be parsed; coverage is incomplete",
            report.skipped.len()
        );
        return ExitCode::from(2);
    }
    let blocking = report.blocking().count();
    if deny && blocking > 0 {
        eprintln!("aroma-lint: FAIL — {blocking} unwaived finding(s) under --deny");
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("aroma-lint: {msg}\n{USAGE}");
    ExitCode::from(2)
}

fn fatal(msg: &str) -> ExitCode {
    eprintln!("aroma-lint: {msg}");
    ExitCode::from(2)
}
