//! Findings, the run summary, and the text / JSON renderings.
//!
//! JSON is emitted by a tiny hand-rolled writer (the gate is std-only and
//! must not depend on the crates it audits — in particular not on
//! `aroma-sim`'s `report::Json`, so a lint bug can never be caused by the
//! code it is linting).

/// How a finding affects the exit code.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    /// Fails the gate under `--deny` unless waived.
    Deny,
    /// Reported, never fatal (stale-waiver hygiene).
    Warn,
}

impl Severity {
    /// Lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Deny => "deny",
            Severity::Warn => "warn",
        }
    }
}

/// One finding: a rule hit at a source location.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id (from [`crate::rules::RULES`] or a `waiver-*` meta rule).
    pub rule: &'static str,
    /// Gate impact.
    pub severity: Severity,
    /// Human-readable description.
    pub message: String,
    /// `Some(reason)` when silenced by a line waiver or per-crate config.
    pub waived: Option<String>,
}

/// A file the gate could not audit (I/O or lex failure). Always fatal.
#[derive(Clone, Debug)]
pub struct SkippedFile {
    /// Workspace-relative path.
    pub file: String,
    /// Why it was skipped.
    pub error: String,
}

/// Whole-run result.
#[derive(Debug, Default)]
pub struct Report {
    /// Files successfully lexed and scanned.
    pub files_scanned: usize,
    /// Every finding, waived or not, in (file, line) order.
    pub findings: Vec<Finding>,
    /// Unauditable files — non-empty means the run fails regardless of
    /// flags (silent coverage gaps are the one thing a gate must not have).
    pub skipped: Vec<SkippedFile>,
}

impl Report {
    /// Unwaived deny-severity findings: what `--deny` gates on.
    pub fn blocking(&self) -> impl Iterator<Item = &Finding> {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Deny && f.waived.is_none())
    }

    /// Count of waived findings.
    pub fn waived_count(&self) -> usize {
        self.findings.iter().filter(|f| f.waived.is_some()).count()
    }

    /// Human-readable rendering: one line per finding, then a summary.
    pub fn render_text(&self, verbose: bool) -> String {
        let mut out = String::new();
        for f in &self.findings {
            match &f.waived {
                None => out.push_str(&format!(
                    "{}:{}: [{}] {} ({})\n",
                    f.file,
                    f.line,
                    f.rule,
                    f.message,
                    f.severity.label()
                )),
                Some(reason) if verbose => out.push_str(&format!(
                    "{}:{}: [{}] waived: {}\n",
                    f.file, f.line, f.rule, reason
                )),
                Some(_) => {}
            }
        }
        for s in &self.skipped {
            out.push_str(&format!("{}: UNPARSEABLE: {}\n", s.file, s.error));
        }
        let blocking = self.blocking().count();
        out.push_str(&format!(
            "aroma-lint: {} files scanned, {} blocking finding(s), {} waived, {} warning(s), {} unparseable\n",
            self.files_scanned,
            blocking,
            self.waived_count(),
            self.findings
                .iter()
                .filter(|f| f.severity == Severity::Warn && f.waived.is_none())
                .count(),
            self.skipped.len(),
        ));
        out
    }

    /// Machine-readable rendering.
    pub fn render_json(&self) -> String {
        let mut s = String::from("{");
        s.push_str(&format!("\"files_scanned\":{},", self.files_scanned));
        s.push_str("\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('{');
            s.push_str(&format!("\"file\":{},", json_str(&f.file)));
            s.push_str(&format!("\"line\":{},", f.line));
            s.push_str(&format!("\"rule\":{},", json_str(f.rule)));
            s.push_str(&format!("\"severity\":{},", json_str(f.severity.label())));
            s.push_str(&format!("\"message\":{},", json_str(&f.message)));
            match &f.waived {
                Some(r) => s.push_str(&format!("\"waived\":{}", json_str(r))),
                None => s.push_str("\"waived\":null"),
            }
            s.push('}');
        }
        s.push_str("],\"skipped\":[");
        for (i, sk) in self.skipped.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"file\":{},\"error\":{}}}",
                json_str(&sk.file),
                json_str(&sk.error)
            ));
        }
        s.push_str(&format!(
            "],\"summary\":{{\"blocking\":{},\"waived\":{},\"unparseable\":{}}}}}",
            self.blocking().count(),
            self.waived_count(),
            self.skipped.len()
        ));
        s
    }
}

/// Minimal JSON string escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(rule: &'static str, sev: Severity, waived: Option<&str>) -> Finding {
        Finding {
            file: "a.rs".into(),
            line: 3,
            rule,
            severity: sev,
            message: "msg with \"quotes\"".into(),
            waived: waived.map(String::from),
        }
    }

    #[test]
    fn blocking_excludes_waived_and_warn() {
        let r = Report {
            files_scanned: 2,
            findings: vec![
                f("nondet-iter", Severity::Deny, None),
                f("nondet-iter", Severity::Deny, Some("audited")),
                f("waiver-unused", Severity::Warn, None),
            ],
            skipped: vec![],
        };
        assert_eq!(r.blocking().count(), 1);
        assert_eq!(r.waived_count(), 1);
    }

    #[test]
    fn json_is_escaped_and_well_shaped() {
        let r = Report {
            files_scanned: 1,
            findings: vec![f("nondet-iter", Severity::Deny, None)],
            skipped: vec![SkippedFile {
                file: "bad.rs".into(),
                error: "line 1: unterminated string literal".into(),
            }],
        };
        let j = r.render_json();
        assert!(j.contains("\"msg with \\\"quotes\\\"\""));
        assert!(j.contains("\"files_scanned\":1"));
        assert!(j.contains("\"unparseable\":1"));
        assert!(j.starts_with('{') && j.ends_with('}'));
    }
}
