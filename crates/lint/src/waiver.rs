//! Comment waivers: `// lint:allow(<rule>[, <rule>…]): <reason>`.
//!
//! A waiver silences matching findings on its own line and on the line
//! directly below it (so it works both as a trailing comment and as the
//! conventional line-above annotation). The reason is **mandatory and
//! non-empty**: a waiver is a claim that a human audited the site and can
//! say *why* the flagged construct is safe — `lint:allow(nondet-iter)`
//! with nothing after it is itself a deny-severity finding, as is a waiver
//! naming a rule that does not exist (typos must not silently waive
//! nothing). Waivers that match no finding are reported at warn severity so
//! stale annotations surface without failing the gate.

use crate::lexer::Comment;
use crate::report::{Finding, Severity};

/// One parsed waiver.
#[derive(Clone, Debug)]
pub struct Waiver {
    /// Line the waiver comment starts on.
    pub line: u32,
    /// Rule ids it silences.
    pub rules: Vec<String>,
    /// The mandatory human-written justification.
    pub reason: String,
    /// Set when a finding was silenced by this waiver.
    pub used: bool,
}

/// Parse every waiver in a file's comments. Malformed waivers become
/// findings; well-formed ones are returned for matching.
pub fn parse(file: &str, comments: &[Comment]) -> (Vec<Waiver>, Vec<Finding>) {
    let mut waivers = Vec::new();
    let mut findings = Vec::new();
    for c in comments {
        let text = c.text.trim();
        let Some(rest) = text.strip_prefix("lint:allow") else {
            continue;
        };
        let mut fail = |msg: String| {
            findings.push(Finding {
                file: file.to_string(),
                line: c.line,
                rule: "waiver-syntax",
                severity: Severity::Deny,
                message: msg,
                waived: None,
            });
        };
        let Some(rest) = rest.trim_start().strip_prefix('(') else {
            fail("malformed waiver: expected `lint:allow(<rule>): <reason>`".to_string());
            continue;
        };
        let Some(close) = rest.find(')') else {
            fail("malformed waiver: missing `)`".to_string());
            continue;
        };
        let rules: Vec<String> = rest[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        if rules.is_empty() {
            fail("malformed waiver: empty rule list".to_string());
            continue;
        }
        let mut bad = false;
        for r in &rules {
            if !crate::rules::known_rule(r) {
                findings.push(Finding {
                    file: file.to_string(),
                    line: c.line,
                    rule: "waiver-unknown-rule",
                    severity: Severity::Deny,
                    message: format!("waiver names unknown rule `{r}` (typo? see RULES in rules.rs)"),
                    waived: None,
                });
                bad = true;
            }
        }
        if bad {
            continue;
        }
        let after = rest[close + 1..].trim_start();
        let reason = after.strip_prefix(':').map(str::trim).unwrap_or("");
        if reason.is_empty() {
            findings.push(Finding {
                file: file.to_string(),
                line: c.line,
                rule: "waiver-no-reason",
                severity: Severity::Deny,
                message: "waiver has no reason; every lint:allow must say WHY the site is safe"
                    .to_string(),
                waived: None,
            });
            continue;
        }
        waivers.push(Waiver {
            line: c.line,
            rules,
            reason: reason.to_string(),
            used: false,
        });
    }
    (waivers, findings)
}

/// Apply waivers to raw findings: a matching waiver on the finding's line
/// or the line above marks the finding waived (with the waiver's reason)
/// and the waiver used. Unused waivers then become warn-severity findings.
pub fn apply(file: &str, findings: &mut [Finding], waivers: &mut [Waiver]) -> Vec<Finding> {
    for f in findings.iter_mut() {
        if f.waived.is_some() {
            continue;
        }
        for w in waivers.iter_mut() {
            let covers_line = w.line == f.line || w.line + 1 == f.line;
            if covers_line && w.rules.iter().any(|r| r == f.rule) {
                f.waived = Some(w.reason.clone());
                w.used = true;
                break;
            }
        }
    }
    waivers
        .iter()
        .filter(|w| !w.used)
        .map(|w| Finding {
            file: file.to_string(),
            line: w.line,
            rule: "waiver-unused",
            severity: Severity::Warn,
            message: format!(
                "waiver for {} matches no finding; delete it or move it to the offending line",
                w.rules.join(", ")
            ),
            waived: None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn comments(src: &str) -> Vec<Comment> {
        lex(src).unwrap().comments
    }

    #[test]
    fn well_formed_waiver_parses() {
        let (ws, fs) = parse(
            "t.rs",
            &comments("// lint:allow(sim-wall-clock): profile-only, excluded from deterministic_eq\n"),
        );
        assert!(fs.is_empty());
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].rules, vec!["sim-wall-clock"]);
        assert!(ws[0].reason.starts_with("profile-only"));
    }

    #[test]
    fn multi_rule_waiver_parses() {
        let (ws, fs) = parse(
            "t.rs",
            &comments("// lint:allow(sim-os-env, sim-thread-spawn): worker count only sizes the pool\n"),
        );
        assert!(fs.is_empty());
        assert_eq!(ws[0].rules.len(), 2);
    }

    #[test]
    fn missing_reason_is_a_deny_finding() {
        let (ws, fs) = parse("t.rs", &comments("// lint:allow(sim-wall-clock)\n"));
        assert!(ws.is_empty());
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].rule, "waiver-no-reason");
        // A colon with only whitespace after it is still no reason.
        let (ws, fs) = parse("t.rs", &comments("// lint:allow(sim-wall-clock):   \n"));
        assert!(ws.is_empty());
        assert_eq!(fs[0].rule, "waiver-no-reason");
    }

    #[test]
    fn unknown_rule_is_a_deny_finding() {
        let (ws, fs) = parse("t.rs", &comments("// lint:allow(nondet-itr): oops typo\n"));
        assert!(ws.is_empty());
        assert_eq!(fs[0].rule, "waiver-unknown-rule");
    }

    #[test]
    fn malformed_waiver_is_a_deny_finding() {
        let (_, fs) = parse("t.rs", &comments("// lint:allow sim-wall-clock: no parens\n"));
        assert_eq!(fs[0].rule, "waiver-syntax");
        let (_, fs) = parse("t.rs", &comments("// lint:allow(): empty\n"));
        assert_eq!(fs[0].rule, "waiver-syntax");
    }

    #[test]
    fn waiver_covers_same_line_and_line_below() {
        let mk = |line| Finding {
            file: "t.rs".into(),
            line,
            rule: "sim-wall-clock",
            severity: Severity::Deny,
            message: String::new(),
            waived: None,
        };
        let (mut ws, _) =
            parse("t.rs", &comments("//\n// lint:allow(sim-wall-clock): reason here\n"));
        assert_eq!(ws[0].line, 2);
        let mut fs = vec![mk(2), mk(3), mk(4)];
        let unused = apply("t.rs", &mut fs, &mut ws);
        assert!(fs[0].waived.is_some(), "same line");
        assert!(fs[1].waived.is_some(), "line below");
        assert!(fs[2].waived.is_none(), "two lines below is out of range");
        assert!(unused.is_empty());
    }

    #[test]
    fn unused_waiver_warns() {
        let (mut ws, _) = parse("t.rs", &comments("// lint:allow(nondet-iter): stale\n"));
        let unused = apply("t.rs", &mut [], &mut ws);
        assert_eq!(unused.len(), 1);
        assert_eq!(unused[0].rule, "waiver-unused");
        assert_eq!(unused[0].severity, Severity::Warn);
    }
}
