//! A hand-rolled Rust lexer: just enough of the real token grammar that the
//! rule engine never mistakes prose for code.
//!
//! The vendored dependency set has no `syn`, and the rules in
//! [`crate::rules`] only need identifier/punctuation streams with line
//! numbers — so this lexer handles exactly the places where a naive
//! substring scan would lie:
//!
//! - line comments, *nested* block comments (collected as trivia so the
//!   waiver parser can see them);
//! - string literals with escapes, byte strings, C strings, and raw strings
//!   with any number of `#` guards (`r"…"`, `br##"…"##`, …) — a string
//!   containing `"HashMap.iter()"` must produce zero findings;
//! - raw identifiers (`r#type`);
//! - the `'a` lifetime vs `'a'` char-literal ambiguity, including escaped
//!   chars (`'\''`, `'\u{1F600}'`).
//!
//! Literal *content* is deliberately discarded: rules operate on identifiers
//! and punctuation only, so keeping string bodies around would just invite
//! someone to match against them.
//!
//! Unterminated constructs are hard errors ([`LexError`]), not warnings:
//! a file the lexer cannot finish is a file the gate has not audited, and
//! the binary exits non-zero for it (see `main.rs`).

/// What a token is; rules dispatch on this.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (text preserved).
    Ident,
    /// `'a`-style lifetime (text preserved, without the quote).
    Lifetime,
    /// Single punctuation character (text preserved).
    Punct,
    /// Numeric literal (content discarded).
    Num,
    /// String / byte-string / raw-string literal (content discarded).
    Str,
    /// Char or byte-char literal (content discarded).
    Char,
}

/// One token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Tok {
    /// Kind tag.
    pub kind: TokKind,
    /// Identifier/lifetime/punct text; empty for literals.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

/// A comment, kept out of the token stream but preserved for the waiver
/// parser.
#[derive(Clone, Debug)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (same as `line` for `//`).
    pub end_line: u32,
    /// Body without the `//` / `/*` framing, untrimmed.
    pub text: String,
}

/// Lexer output: code tokens plus comment trivia.
#[derive(Debug, Default)]
pub struct LexOut {
    /// Code tokens in source order.
    pub toks: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// A construct the lexer could not finish — the file is *unaudited*.
#[derive(Clone, Debug)]
pub struct LexError {
    /// 1-based line where the offending construct starts.
    pub line: u32,
    /// Human-readable description.
    pub msg: String,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

fn ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn ident_cont(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: u32,
    out: LexOut,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    /// Advance one char, tracking newlines.
    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied();
        if let Some(c) = c {
            self.i += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.toks.push(Tok { kind, text, line });
    }

    fn err(&self, line: u32, msg: &str) -> LexError {
        LexError {
            line,
            msg: msg.to_string(),
        }
    }

    fn line_comment(&mut self) {
        let line = self.line;
        self.i += 2; // `//`
        let start = self.i;
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.i += 1;
        }
        let text: String = self.chars[start..self.i].iter().collect();
        self.out.comments.push(Comment {
            line,
            end_line: line,
            text,
        });
    }

    fn block_comment(&mut self) -> Result<(), LexError> {
        let line = self.line;
        self.i += 2; // `/*`
        let start = self.i;
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.i += 2;
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    if depth == 0 {
                        let text: String = self.chars[start..self.i].iter().collect();
                        let end_line = self.line;
                        self.i += 2;
                        self.out.comments.push(Comment {
                            line,
                            end_line,
                            text,
                        });
                        return Ok(());
                    }
                    self.i += 2;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
        Err(self.err(line, "unterminated block comment"))
    }

    /// A `"…"` body, opening quote already consumed. Handles `\`-escapes
    /// (including multi-char ones — after a backslash the next char is
    /// always skipped blindly, which is sound for every escape Rust has).
    fn string_body(&mut self, start_line: u32) -> Result<(), LexError> {
        while let Some(c) = self.bump() {
            match c {
                '"' => return Ok(()),
                '\\' => {
                    self.bump(); // whatever is escaped, even a quote or \n
                }
                _ => {}
            }
        }
        Err(self.err(start_line, "unterminated string literal"))
    }

    /// `r"…"` / `r#"…"#` body with `hashes` guards; `r` and the guards and
    /// the opening quote are already consumed.
    fn raw_string_body(&mut self, hashes: usize, start_line: u32) -> Result<(), LexError> {
        while let Some(c) = self.bump() {
            if c == '"' {
                let mut matched = 0;
                while matched < hashes && self.peek(0) == Some('#') {
                    self.i += 1;
                    matched += 1;
                }
                if matched == hashes {
                    return Ok(());
                }
                // Not the closing guard; the consumed `#`s were body chars.
            }
        }
        Err(self.err(start_line, "unterminated raw string literal"))
    }

    /// At a `'`: decide lifetime vs char literal.
    fn quote(&mut self) -> Result<(), LexError> {
        let line = self.line;
        self.i += 1; // `'`
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal: `'\n'`, `'\''`, `'\u{…}'`.
                self.i += 1;
                let esc = self.bump();
                if esc == Some('u') && self.peek(0) == Some('{') {
                    while let Some(c) = self.bump() {
                        if c == '}' {
                            break;
                        }
                    }
                }
                if self.bump() != Some('\'') {
                    return Err(self.err(line, "unterminated char literal"));
                }
                self.push(TokKind::Char, String::new(), line);
                Ok(())
            }
            Some(c) if ident_start(c) => {
                // `'a'` is a char literal; `'a` / `'static` are lifetimes.
                let start = self.i;
                while self.peek(0).is_some_and(ident_cont) {
                    self.i += 1;
                }
                if self.peek(0) == Some('\'') {
                    self.i += 1;
                    self.push(TokKind::Char, String::new(), line);
                } else {
                    let name: String = self.chars[start..self.i].iter().collect();
                    self.push(TokKind::Lifetime, name, line);
                }
                Ok(())
            }
            Some('\'') => Err(self.err(line, "empty char literal")),
            Some(_) => {
                // `'('`-style literal: one arbitrary char then the close.
                self.bump();
                if self.bump() != Some('\'') {
                    return Err(self.err(line, "unterminated char literal"));
                }
                self.push(TokKind::Char, String::new(), line);
                Ok(())
            }
            None => Err(self.err(line, "dangling quote at end of file")),
        }
    }

    fn number(&mut self) {
        let line = self.line;
        // Digits, underscores, and any suffix/hex letters.
        while self.peek(0).is_some_and(ident_cont) {
            self.i += 1;
        }
        // Fraction — but `0..10` must leave the range operator alone.
        if self.peek(0) == Some('.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            self.i += 1;
            while self.peek(0).is_some_and(ident_cont) {
                self.i += 1;
            }
        }
        // Signed exponents (`1e-9`); unsigned ones were eaten by ident_cont.
        if self.peek(0).is_some_and(|c| c == '-' || c == '+')
            && self
                .chars
                .get(self.i.wrapping_sub(1))
                .is_some_and(|&c| c == 'e' || c == 'E')
        {
            self.i += 1;
            while self.peek(0).is_some_and(ident_cont) {
                self.i += 1;
            }
        }
        self.push(TokKind::Num, String::new(), line);
    }

    /// Identifier — or the string-literal prefixes `r` / `b` / `c` / `br` /
    /// `cr`, or a raw identifier `r#name`.
    fn word(&mut self) -> Result<(), LexError> {
        let line = self.line;
        let start = self.i;
        while self.peek(0).is_some_and(ident_cont) {
            self.i += 1;
        }
        let name: String = self.chars[start..self.i].iter().collect();
        match (name.as_str(), self.peek(0)) {
            ("r" | "br" | "cr" | "b" | "c", Some('"')) => {
                self.i += 1;
                if name == "b" || name == "c" {
                    self.string_body(line)?;
                } else {
                    self.raw_string_body(0, line)?;
                }
                self.push(TokKind::Str, String::new(), line);
                Ok(())
            }
            ("r" | "br" | "cr", Some('#')) => {
                let mut hashes = 0;
                while self.peek(hashes) == Some('#') {
                    hashes += 1;
                }
                if self.peek(hashes) == Some('"') {
                    self.i += hashes + 1;
                    self.raw_string_body(hashes, line)?;
                    self.push(TokKind::Str, String::new(), line);
                    Ok(())
                } else if name == "r" && hashes == 1 && self.peek(1).is_some_and(ident_start) {
                    // Raw identifier `r#type`: emit the bare name so rules
                    // treat it like any other identifier.
                    self.i += 1;
                    let istart = self.i;
                    while self.peek(0).is_some_and(ident_cont) {
                        self.i += 1;
                    }
                    let raw: String = self.chars[istart..self.i].iter().collect();
                    self.push(TokKind::Ident, raw, line);
                    Ok(())
                } else {
                    self.push(TokKind::Ident, name, line);
                    Ok(())
                }
            }
            ("b", Some('\'')) => {
                // Byte-char literal `b'x'`.
                self.quote()
            }
            _ => {
                self.push(TokKind::Ident, name, line);
                Ok(())
            }
        }
    }

    fn run(mut self) -> Result<LexOut, LexError> {
        while let Some(c) = self.peek(0) {
            match c {
                '\n' | ' ' | '\t' | '\r' => {
                    self.bump();
                }
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment()?,
                '"' => {
                    let line = self.line;
                    self.i += 1;
                    self.string_body(line)?;
                    self.push(TokKind::Str, String::new(), line);
                }
                '\'' => self.quote()?,
                c if c.is_ascii_digit() => self.number(),
                c if ident_start(c) => self.word()?,
                c => {
                    let line = self.line;
                    self.i += 1;
                    self.push(TokKind::Punct, c.to_string(), line);
                }
            }
        }
        Ok(self.out)
    }
}

/// Lex a whole source file.
pub fn lex(src: &str) -> Result<LexOut, LexError> {
    Lexer {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        out: LexOut::default(),
    }
    .run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .unwrap()
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_identifiers() {
        let src = r##"
            // HashMap in a comment
            /* HashMap /* nested HashMap */ still comment */
            let s = "HashMap.iter()";
            let r = r#"HashSet::new() "quoted" body"#;
            let b = b"HashMap";
            let real = 1;
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(!ids.contains(&"HashSet".to_string()));
        assert!(ids.contains(&"real".to_string()));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let out = lex("fn f<'a>(x: &'a str) -> char { 'x' } let q = '\\''; let l: &'static str;")
            .unwrap();
        let lifetimes: Vec<_> = out
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lifetimes, vec!["a", "a", "static"]);
        let chars = out.toks.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(chars, 2);
    }

    #[test]
    fn raw_identifiers_surface_their_name() {
        assert!(idents("let r#type = 1;").contains(&"type".to_string()));
    }

    #[test]
    fn raw_strings_with_guards_swallow_quotes() {
        let src = r####"let x = r##"a "#" b"## ; let y = 2;"####;
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "x", "let", "y"]);
    }

    #[test]
    fn comments_are_collected_with_lines() {
        let out = lex("let a = 1; // lint:allow(x): because\nlet b = 2;").unwrap();
        assert_eq!(out.comments.len(), 1);
        assert_eq!(out.comments[0].line, 1);
        assert!(out.comments[0].text.contains("lint:allow"));
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let src = "let a = \"multi\nline\nstring\";\nlet b = 1;";
        let out = lex(src).unwrap();
        let b = out.toks.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(b.line, 4);
    }

    #[test]
    fn unterminated_constructs_are_errors() {
        assert!(lex("let s = \"oops").is_err());
        assert!(lex("/* never closed").is_err());
        assert!(lex("let r = r#\"open").is_err());
    }

    #[test]
    fn numbers_do_not_eat_range_operators() {
        let out = lex("for i in 0..10 {}").unwrap();
        let puncts: Vec<_> = out
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Punct)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(puncts, vec![".", ".", "{", "}"]);
    }

    #[test]
    fn float_exponents_lex_as_one_number() {
        let out = lex("let x = 1.5e-9 - 2;").unwrap();
        let nums = out.toks.iter().filter(|t| t.kind == TokKind::Num).count();
        assert_eq!(nums, 2);
        // Exactly one `-`: the binary minus, not the exponent's.
        let minuses = out.toks.iter().filter(|t| t.text == "-").count();
        assert_eq!(minuses, 1);
    }
}
