//! Per-crate rule scoping: `aroma-lint.toml` at the workspace root.
//!
//! Some crates' *purpose* conflicts with a rule — `lpc-bench` exists to
//! measure wall time, so flagging every `Instant::now` there would bury the
//! signal in boilerplate waivers. The config allows a rule for a whole
//! crate, with the rationale kept as comments in the config file itself
//! (one audited place, instead of dozens of identical line waivers).
//!
//! The format is a hand-parsed TOML subset (the dependency set has no toml
//! crate, and the gate must stay std-only):
//!
//! ```toml
//! # why this crate gets the exemption …
//! [crate "bench"]
//! allow = ["sim-wall-clock"]
//! ```
//!
//! Crate names are the directory names under `crates/`; files outside
//! `crates/` (the root package's `src/`, `examples/`, `tests/`) belong to
//! the pseudo-crate `"root"`. Unknown rule ids in the config are hard
//! errors — a typo must not silently allow nothing.

use std::collections::BTreeMap;

/// Parsed configuration: crate name → rules allowed crate-wide.
#[derive(Clone, Debug, Default)]
pub struct Config {
    allows: BTreeMap<String, Vec<String>>,
}

/// A config-file problem (reported with a line number, fatal to the run).
#[derive(Clone, Debug)]
pub struct ConfigError {
    /// 1-based line in the config file.
    pub line: u32,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "aroma-lint.toml:{}: {}", self.line, self.msg)
    }
}

impl Config {
    /// Parse the config text.
    pub fn parse(text: &str) -> Result<Config, ConfigError> {
        let mut cfg = Config::default();
        let mut current: Option<String> = None;
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx as u32 + 1;
            let line = raw.trim();
            let err = |msg: String| ConfigError { line: lineno, msg };
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(rest) = line.strip_prefix('[') {
                let rest = rest
                    .strip_suffix(']')
                    .ok_or_else(|| err("section header missing `]`".to_string()))?;
                let name = rest
                    .trim()
                    .strip_prefix("crate")
                    .map(str::trim)
                    .and_then(|s| s.strip_prefix('"'))
                    .and_then(|s| s.strip_suffix('"'))
                    .ok_or_else(|| err(format!("expected `[crate \"<name>\"]`, got `{line}`")))?;
                if name.is_empty() {
                    return Err(err("empty crate name".to_string()));
                }
                cfg.allows.entry(name.to_string()).or_default();
                current = Some(name.to_string());
            } else if let Some(rest) = line.strip_prefix("allow") {
                let Some(section) = &current else {
                    return Err(err("`allow` outside a [crate …] section".to_string()));
                };
                let rest = rest
                    .trim()
                    .strip_prefix('=')
                    .map(str::trim)
                    .ok_or_else(|| err("expected `allow = [\"rule\", …]`".to_string()))?;
                let inner = rest
                    .strip_prefix('[')
                    .and_then(|s| s.strip_suffix(']'))
                    .ok_or_else(|| err("expected a `[\"…\"]` list".to_string()))?;
                for item in inner.split(',') {
                    let item = item.trim();
                    if item.is_empty() {
                        continue;
                    }
                    let rule = item
                        .strip_prefix('"')
                        .and_then(|s| s.strip_suffix('"'))
                        .ok_or_else(|| err(format!("rule id must be quoted: `{item}`")))?;
                    if !crate::rules::known_rule(rule) {
                        return Err(err(format!(
                            "unknown rule `{rule}` (typos must not silently allow nothing)"
                        )));
                    }
                    cfg.allows
                        .get_mut(section)
                        .expect("section was just inserted")
                        .push(rule.to_string());
                }
            } else {
                return Err(err(format!("unrecognised line: `{line}`")));
            }
        }
        Ok(cfg)
    }

    /// The crate a workspace-relative path belongs to.
    pub fn crate_of(rel_path: &str) -> &str {
        let mut segs = rel_path.split('/');
        match (segs.next(), segs.next()) {
            (Some("crates"), Some(name)) => name,
            _ => "root",
        }
    }

    /// Is `rule` allowed crate-wide for the crate owning `rel_path`?
    pub fn allows(&self, rel_path: &str, rule: &str) -> bool {
        self.allows
            .get(Config::crate_of(rel_path))
            .is_some_and(|rules| rules.iter().any(|r| r == rule))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_and_allows() {
        let cfg = Config::parse(
            "# benches measure wall time by design\n\
             [crate \"bench\"]\n\
             allow = [\"sim-wall-clock\", \"sim-os-env\"]\n\
             \n\
             [crate \"root\"]\n\
             allow = []\n",
        )
        .unwrap();
        assert!(cfg.allows("crates/bench/src/checkbench.rs", "sim-wall-clock"));
        assert!(cfg.allows("crates/bench/src/checkbench.rs", "sim-os-env"));
        assert!(!cfg.allows("crates/bench/src/checkbench.rs", "nondet-iter"));
        assert!(!cfg.allows("crates/net/src/network.rs", "sim-wall-clock"));
        assert!(!cfg.allows("src/lib.rs", "sim-wall-clock"));
    }

    #[test]
    fn crate_of_maps_paths() {
        assert_eq!(Config::crate_of("crates/net/src/network.rs"), "net");
        assert_eq!(Config::crate_of("src/lib.rs"), "root");
        assert_eq!(Config::crate_of("examples/chaos.rs"), "root");
    }

    #[test]
    fn unknown_rule_in_config_is_fatal() {
        let e = Config::parse("[crate \"net\"]\nallow = [\"nondet-itr\"]\n").unwrap_err();
        assert!(e.msg.contains("unknown rule"));
        assert_eq!(e.line, 2);
    }

    #[test]
    fn malformed_lines_are_fatal() {
        assert!(Config::parse("[crate net]\n").is_err());
        assert!(Config::parse("allow = [\"nondet-iter\"]\n").is_err());
        assert!(Config::parse("[crate \"x\"]\nallow \"nondet-iter\"\n").is_err());
        assert!(Config::parse("wat\n").is_err());
    }

    #[test]
    fn empty_config_allows_nothing() {
        let cfg = Config::parse("").unwrap();
        assert!(!cfg.allows("crates/net/src/network.rs", "nondet-iter"));
    }
}
