//! Parallel-vs-sequential equivalence: for random small models and any
//! worker count, `check()` must produce the *identical* report — distinct
//! state counts, transition counts, truncation flags, undetermined
//! counts, and byte-identical counterexample traces. This is the
//! executable form of the determinism argument in DESIGN.md §12: the
//! hash-sharded engine only reorders successor *generation* across its
//! shards, never admission — the coordinator assigns node indices in
//! global `(parent, action)` order regardless of worker count, pool
//! policy, or tile boundaries.
//!
//! Random digraphs with randomized state/depth budgets deliberately land
//! on the truncation boundaries, where an engine that merged
//! out-of-order would diverge first.

use aroma_check::{check, CheckReport, CheckerConfig, PoolPolicy};
use aroma_check::{Model, Property, PropertyKind};
use proptest::prelude::*;

/// All parallel configs force the pool: on a 1-core CI host the default
/// `PoolPolicy::Auto` would keep everything inline, and this suite exists
/// to pin the *pooled* engine's determinism.
fn forced() -> CheckerConfig {
    CheckerConfig::default().with_pool_policy(PoolPolicy::Forced)
}

/// An arbitrary finite transition system: `n` states, explicit edge list
/// (the action *is* the edge index, so action order is deterministic),
/// a forbidden-state bitmask (safety) and a goal bitmask (AG EF).
#[derive(Debug, Clone)]
struct Digraph {
    n: u8,
    edges: Vec<(u8, u8)>,
    inits: Vec<u8>,
    forbidden: u16,
    goal: u16,
}

impl Model for Digraph {
    type State = u8;
    type Action = usize;
    type Key = u8;

    fn initial_states(&self) -> Vec<u8> {
        self.inits.iter().map(|i| i % self.n).collect()
    }

    fn actions(&self, state: &u8, out: &mut Vec<usize>) {
        for (i, &(from, _)) in self.edges.iter().enumerate() {
            if from % self.n == *state {
                out.push(i);
            }
        }
    }

    fn step(&self, _state: &u8, action: &usize) -> Option<u8> {
        Some(self.edges[*action].1 % self.n)
    }

    fn key(&self, state: &u8) -> u8 {
        *state
    }

    fn properties(&self) -> Vec<Property<Self>> {
        vec![
            Property {
                name: "no-forbidden-state",
                kind: PropertyKind::Always,
                check: |m, s| m.forbidden & (1u16 << (s % 16)) == 0,
            },
            Property {
                name: "goal-always-reachable",
                kind: PropertyKind::AlwaysEventually,
                check: |m, s| m.goal & (1u16 << (s % 16)) != 0,
            },
        ]
    }
}

fn assert_equivalent(seq: &CheckReport<Digraph>, par: &CheckReport<Digraph>, workers: usize) {
    prop_assert_eq!(
        seq.distinct_states,
        par.distinct_states,
        "distinct states diverge at {} workers",
        workers
    );
    prop_assert_eq!(seq.transitions, par.transitions, "transitions @ {}", workers);
    prop_assert_eq!(
        seq.max_depth_reached,
        par.max_depth_reached,
        "max depth @ {}",
        workers
    );
    prop_assert_eq!(seq.complete, par.complete, "complete flag @ {}", workers);
    prop_assert_eq!(
        seq.undetermined,
        par.undetermined,
        "undetermined @ {}",
        workers
    );
    prop_assert_eq!(
        seq.violations.len(),
        par.violations.len(),
        "violation count @ {}",
        workers
    );
    for (a, b) in seq.violations.iter().zip(&par.violations) {
        prop_assert_eq!(a.property, b.property);
        prop_assert_eq!(a.kind, b.kind);
        prop_assert_eq!(&a.trace, &b.trace, "counterexample trace @ {}", workers);
        prop_assert_eq!(a.end_state, b.end_state);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Unbounded (relative to model size) exploration: every worker count
    /// reports the same fixpoint, verdicts, and traces.
    #[test]
    fn parallel_matches_sequential_at_fixpoint(
        n in 1u8..12,
        edges in prop::collection::vec((0u8..12, 0u8..12), 0..40),
        inits in prop::collection::vec(0u8..12, 1..4),
        forbidden in any::<u16>(),
        goal in any::<u16>(),
    ) {
        let m = Digraph { n, edges, inits, forbidden, goal };
        let seq = check(&m, &CheckerConfig::default().with_workers(1));
        for workers in [2usize, 3, 5, 8] {
            let par = check(&m, &forced().with_workers(workers));
            assert_equivalent(&seq, &par, workers);
        }
    }

    /// Tight random state budgets and depth bounds: the truncation
    /// boundary (admitted-iff-seen at the bound, frontier truncation at
    /// the depth cap) is where an out-of-order merge would diverge first.
    #[test]
    fn parallel_matches_sequential_under_bounds(
        n in 1u8..12,
        edges in prop::collection::vec((0u8..12, 0u8..12), 0..40),
        inits in prop::collection::vec(0u8..12, 1..4),
        forbidden in any::<u16>(),
        goal in any::<u16>(),
        max_states in 1usize..40,
        max_depth in 0u32..12,
    ) {
        let m = Digraph { n, edges, inits, forbidden, goal };
        let cfg = CheckerConfig::default()
            .with_max_states(max_states)
            .with_max_depth(max_depth);
        let seq = check(&m, &cfg.with_workers(1));
        prop_assert!(seq.distinct_states <= max_states.max(m.initial_states().len()));
        for workers in [2usize, 3, 5, 8] {
            let par = check(
                &m,
                &cfg.with_pool_policy(PoolPolicy::Forced).with_workers(workers),
            );
            assert_equivalent(&seq, &par, workers);
        }
    }

    /// Guaranteed violation stops: force a safety failure on a reachable
    /// state, then require the identical stop point — same distinct-state
    /// prefix, same transition count, same shortest trace — at every
    /// worker count. This is where the sharded engine's
    /// admission-order/stop-point bookkeeping is most intricate.
    #[test]
    fn parallel_matches_sequential_on_violation_stop(
        n in 1u8..12,
        edges in prop::collection::vec((0u8..12, 0u8..12), 1..40),
        inits in prop::collection::vec(0u8..12, 1..4),
        forbidden in any::<u16>(),
        goal in any::<u16>(),
    ) {
        let m = Digraph { n, edges, inits, forbidden, goal };
        let seq = check(&m, &CheckerConfig::default().with_workers(1));
        prop_assume!(seq
            .violations
            .iter()
            .any(|v| v.kind == PropertyKind::Always));
        for workers in [2usize, 3, 5, 8] {
            let par = check(&m, &forced().with_workers(workers));
            assert_equivalent(&seq, &par, workers);
        }
    }

    /// The engine choice itself is not observable: on whatever host this
    /// runs, `Auto` must report exactly what `Forced` and sequential do.
    #[test]
    fn pool_policy_is_not_observable(
        n in 1u8..12,
        edges in prop::collection::vec((0u8..12, 0u8..12), 0..40),
        inits in prop::collection::vec(0u8..12, 1..4),
        forbidden in any::<u16>(),
        goal in any::<u16>(),
        max_states in 1usize..40,
    ) {
        let m = Digraph { n, edges, inits, forbidden, goal };
        let cfg = CheckerConfig::default().with_max_states(max_states);
        let seq = check(&m, &cfg.with_workers(1));
        for workers in [2usize, 4] {
            let auto = check(
                &m,
                &cfg.with_pool_policy(PoolPolicy::Auto).with_workers(workers),
            );
            assert_equivalent(&seq, &auto, workers);
        }
    }
}
