//! End-to-end regressions through `aroma-check`'s public API: the two
//! production hardenings this crate motivated must stay proven.
//!
//! 1. `SessionManager` tokens are RNG-drawn (not a counter): the
//!    token-guessing adversary must never acquire control.
//! 2. `RegistrarApp` replies via `lookup_live`: a lookup landing between a
//!    lease's expiry instant and the next sweep must not see the entry.

use aroma_check::{check, CheckerConfig, LeaseConfig, LeaseModel, SessionConfig, SessionModel};
use aroma_sim::SimDuration;
use smart_projector::session::SessionPolicy;

/// The adversary (stale replay, sequential guessing, low-constant guessing,
/// cross-service application) cannot hijack either service under either
/// session-protected policy. This is the regression gate for the token
/// scheme: revert tokens to a counter and `GuessAdjacent` breaks it.
#[test]
fn token_guessing_adversary_never_acquires() {
    for policy in [
        SessionPolicy::ManualRelease,
        SessionPolicy::AutoExpire {
            idle: SimDuration::from_secs(2),
        },
    ] {
        let model = SessionModel::new(SessionConfig {
            policy,
            users: 2,
            services: 2,
            adversary: true,
            ..SessionConfig::default()
        });
        let report = check(&model, &CheckerConfig::default().with_max_states(300_000));
        assert!(
            report.passed(),
            "adversary broke {policy:?}:\n{}",
            report.violations[0].pretty(&model)
        );
        assert!(report.complete, "adversary model must be fully explored");
    }
}

/// No interleaving of registration, renewal, duplicated/reordered/lost
/// messages, crashes, clock ticks and delayed expiry sweeps makes the
/// production lookup path serve a lapsed lease — or hide a live one.
#[test]
fn stale_lookup_window_is_closed() {
    let model = LeaseModel::new(LeaseConfig::default());
    let report = check(&model, &CheckerConfig::default().with_max_states(300_000));
    assert!(
        report.passed(),
        "lease protocol violation:\n{}",
        report.violations[0].pretty(&model)
    );
    assert!(report.complete);
    assert!(
        report.distinct_states > 10_000,
        "coverage floor: {} distinct states",
        report.distinct_states
    );
}

/// The checker's counterexample machinery itself: the policy-free
/// projector yields the canonical two-action hijack with a readable trace.
#[test]
fn counterexample_traces_render_for_humans() {
    let model = SessionModel::new(SessionConfig {
        policy: SessionPolicy::None,
        users: 2,
        services: 1,
        ..SessionConfig::default()
    });
    let report = check(&model, &CheckerConfig::smoke());
    assert!(!report.passed());
    let text = report.violations[0].pretty(&model);
    assert!(text.contains("no-hijack"), "names the property: {text}");
    assert!(text.contains("acquires projection"), "names the actions: {text}");
    assert!(text.contains("HIJACK"), "shows the bad state: {text}");
}
