//! The `Model` trait: what a protocol must expose to be checked.
//!
//! A model is a *bounded nondeterministic state machine*: a set of initial
//! states, an enabled-action relation, and a deterministic `step`. The
//! checker owns the exploration order; the model owns the semantics. Two
//! design points matter:
//!
//! * **Canonical keys, not canonical states.** Deduplication happens on
//!   [`Model::key`], a digest the model derives from a state after applying
//!   its symmetry reductions (time shifting, token renaming, actor-id
//!   permutation). The stored state stays faithful — the real production
//!   structs drive every transition — so a reduction can only *merge* states
//!   it has proven equivalent, never distort behaviour.
//! * **Properties are checked by the engine.** [`PropertyKind::Always`] is a
//!   plain invariant over reachable states. [`PropertyKind::AlwaysEventually`]
//!   is the bounded AG EF check ("from every reachable state the system can
//!   still reach a good state"), which catches lockout/wedge states without
//!   needing fairness assumptions.

use std::fmt::Debug;
use std::hash::Hash;

/// A bounded-exploration model over a protocol state machine.
pub trait Model {
    /// Full (faithful) state: holds the real production structs.
    type State: Clone + Debug;
    /// One atomic protocol step.
    type Action: Clone + Debug;
    /// Canonical dedup key derived from a state (post symmetry reduction).
    type Key: Eq + Hash + Clone;

    /// The initial state(s).
    fn initial_states(&self) -> Vec<Self::State>;

    /// Push every action enabled in `state` onto `out` (cleared by caller).
    fn actions(&self, state: &Self::State, out: &mut Vec<Self::Action>);

    /// Apply `action` to `state`. `None` means the action turned out to be
    /// a no-op the model wants pruned (self-loops are also fine to return).
    fn step(&self, state: &Self::State, action: &Self::Action) -> Option<Self::State>;

    /// Canonical key for deduplication. Two states mapping to the same key
    /// must be behaviourally equivalent for every checked property.
    fn key(&self, state: &Self::State) -> Self::Key;

    /// The properties the checker verifies.
    fn properties(&self) -> Vec<Property<Self>>;

    /// Human-readable action rendering for counterexample traces.
    fn format_action(&self, action: &Self::Action) -> String {
        format!("{action:?}")
    }

    /// Human-readable state rendering for counterexample traces.
    fn format_state(&self, state: &Self::State) -> String {
        format!("{state:?}")
    }
}

/// Flavour of a checked property.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PropertyKind {
    /// AG p — `check` must hold in every reachable state.
    Always,
    /// AG EF p — from every reachable (fully explored) state there must
    /// exist a path to a state where `check` holds. Violations are states
    /// from which the goal is unreachable: wedges, lockouts, leaks.
    AlwaysEventually,
}

/// A named property over model states.
pub struct Property<M: Model + ?Sized> {
    /// Name used in reports and counterexamples.
    pub name: &'static str,
    /// Always (safety) or AlwaysEventually (reachability liveness).
    pub kind: PropertyKind,
    /// The predicate.
    pub check: fn(&M, &M::State) -> bool,
}

/// Canonical ordering of symmetric actors: sort actor indices by an
/// actor-local signature so any permutation of equivalent actors maps to
/// the same order. Ties between identical signatures are genuinely
/// interchangeable. Returns `order` with `order[new_index] = old_index`.
pub fn canonical_actor_order(signatures: &[Vec<u64>]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..signatures.len()).collect();
    order.sort_by(|&a, &b| signatures[a].cmp(&signatures[b]));
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_order_sorts_by_signature() {
        let sigs = vec![vec![2, 0], vec![1, 9], vec![1, 3]];
        assert_eq!(canonical_actor_order(&sigs), vec![2, 1, 0]);
        // A permutation of the same multiset of signatures yields the same
        // canonical sequence of signatures.
        let perm = vec![vec![1, 3], vec![2, 0], vec![1, 9]];
        let a: Vec<&Vec<u64>> = canonical_actor_order(&sigs).iter().map(|&i| &sigs[i]).collect();
        let b: Vec<&Vec<u64>> = canonical_actor_order(&perm).iter().map(|&i| &perm[i]).collect();
        assert_eq!(a, b);
    }
}
