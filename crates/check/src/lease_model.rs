//! Model of the lookup service's lease protocol, driving the *real*
//! [`aroma_discovery::registry::ServiceRegistry`].
//!
//! ## Actors and actions
//!
//! Two providers each offer one service. Their register/renew/unregister
//! requests travel a **lossy, duplicating, reordering channel**: a `Send*`
//! action enqueues a message, `Deliver` applies any queued message (in any
//! order), `Duplicate` copies one, `Drop` loses one, and `Crash` silences
//! a provider forever (its in-flight messages may still arrive — the
//! classic stale-registration hazard). `Tick` advances the clock one
//! quantum; `Sweep` runs the registry's expiry pass, deliberately modelled
//! as a *separate* action so the window between a lease lapsing and the
//! timer sweep firing is explored — exactly the window in which the old
//! `lookup` path served stale entries.
//!
//! ## Properties
//!
//! * **no-stale-lookup** (safety): the production
//!   [`ServiceRegistry::lookup_live`] reply equals, in every reachable
//!   state, the set of services whose *ghost* lease (computed by this
//!   model, independently, from the delivered messages) is still live —
//!   no stale entries served, no live entries hidden.
//! * **spec-refinement** (safety): the registry's stored table always
//!   equals the ghost table — every `(id, lease_expires)` pair.
//! * **lease-monotonicity** (safety, transition-local): a successful renew
//!   never moves a lease's expiry backwards.
//! * **event-consistency** (safety, transition-local): subscriber events
//!   alternate legally per service (`Registered` only when not currently
//!   registered; `Expired`/`Unregistered` only when registered), and an
//!   expiry sweep emits `Expired` for exactly the lapsed services.
//! * **quiescence-reachable** (bounded AG EF): from every reachable state
//!   the system can drain — channel empty, registry empty.
//!
//! ## Reductions
//!
//! The channel is kept as a sorted multiset (delivery order is chosen by
//! the scheduler anyway), absolute time never enters the canonical key —
//! only each lease's remaining quanta, with all lapsed-but-unswept
//! amounts collapsed into one bucket (a lapsed lease behaves identically
//! however long ago it lapsed) — and providers may optionally be sorted
//! by behavioural signature (sound because the model is symmetric in
//! provider identity when their configured lease requests match).

use crate::model::{canonical_actor_order, Model, Property, PropertyKind};
use aroma_discovery::codec::{EventKind, ServiceId, ServiceItem, Template};
use aroma_discovery::registry::{RegistryEvent, ServiceRegistry};
use aroma_sim::{SimDuration, SimTime};
use bytes::Bytes;
use std::collections::BTreeMap;

/// The one subscriber (template `any`) whose event stream is checked.
const SUBSCRIBER: u32 = 7;

/// Model parameters.
#[derive(Clone, Debug)]
pub struct LeaseConfig {
    /// Number of providers (one service each).
    pub providers: usize,
    /// Lease each provider requests, in quanta (index = provider).
    pub requested_quanta: Vec<u64>,
    /// Longest lease the registrar grants, in quanta.
    pub max_lease_quanta: u64,
    /// Clock-advance step (and lease-granularity unit).
    pub quantum: SimDuration,
    /// In-flight message budget (bounds duplication and send floods).
    pub channel_cap: usize,
    /// Collapse permutations of indistinguishable providers.
    pub symmetry: bool,
}

impl Default for LeaseConfig {
    fn default() -> Self {
        LeaseConfig {
            providers: 2,
            requested_quanta: vec![2, 4],
            max_lease_quanta: 3,
            quantum: SimDuration::from_secs(1),
            channel_cap: 3,
            symmetry: true,
        }
    }
}

/// What a provider asks of the registrar.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum MsgKind {
    /// Register (or refresh) the provider's service.
    Register,
    /// Renew the provider's lease.
    Renew,
    /// Withdraw the provider's service.
    Unregister,
}

/// One protocol step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LeaseAction {
    /// Provider enqueues a request onto the channel.
    Send {
        /// Sending provider.
        provider: usize,
        /// Request kind.
        kind: MsgKind,
    },
    /// The registrar receives and applies the queued message at `idx`.
    Deliver {
        /// Index into the channel.
        idx: usize,
    },
    /// The network duplicates the queued message at `idx`.
    Duplicate {
        /// Index into the channel.
        idx: usize,
    },
    /// The network loses the queued message at `idx`.
    Drop {
        /// Index into the channel.
        idx: usize,
    },
    /// Provider crashes: it sends nothing further (in-flight survives).
    Crash {
        /// Crashing provider.
        provider: usize,
    },
    /// The clock advances by one quantum.
    Tick,
    /// The registrar's expiry timer fires ([`ServiceRegistry::expire`]).
    Sweep,
}

/// Full model state: the real registry plus the channel and ghost spec.
#[derive(Clone, Debug)]
pub struct LeaseState {
    /// The production registration table.
    registry: ServiceRegistry,
    now: SimTime,
    /// In-flight messages, kept sorted (the channel reorders anyway).
    channel: Vec<(usize, MsgKind)>,
    crashed: Vec<bool>,
    /// Ghost spec: what the lease table must contain, computed
    /// independently from the delivered messages.
    ghost: BTreeMap<ServiceId, SimTime>,
    /// Ghost: last subscriber event per service (None = never/cleared).
    last_event: BTreeMap<ServiceId, EventKind>,
    /// Ghost: set when a transition broke a transition-local invariant.
    poison: Option<&'static str>,
}

/// The lease-protocol model. See module docs.
pub struct LeaseModel {
    /// Parameters.
    pub cfg: LeaseConfig,
}

impl LeaseModel {
    /// A model over `cfg`.
    pub fn new(cfg: LeaseConfig) -> Self {
        assert_eq!(
            cfg.requested_quanta.len(),
            cfg.providers,
            "one requested lease per provider"
        );
        LeaseModel { cfg }
    }

    fn service_id(provider: usize) -> ServiceId {
        ServiceId(provider as u64 + 1)
    }

    fn item(provider: usize) -> ServiceItem {
        ServiceItem {
            id: Self::service_id(provider),
            kind: "projector/display".into(),
            attributes: vec![("room".into(), "A".into())],
            provider: provider as u32,
            proxy: Bytes::new(),
        }
    }

    /// Fold a batch of subscriber events into the alternation ghost,
    /// poisoning the state on any illegal sequence.
    fn absorb_events(state: &mut LeaseState, events: &[RegistryEvent]) {
        for ev in events {
            if ev.subscriber != SUBSCRIBER {
                state.poison = Some("event addressed to an unknown subscriber");
                continue;
            }
            let registered = matches!(
                state.last_event.get(&ev.item.id),
                Some(EventKind::Registered) | Some(EventKind::Updated)
            );
            let legal = match ev.kind {
                EventKind::Registered => !registered,
                // An update announces changed content of a *live* entry.
                EventKind::Updated => registered,
                EventKind::Expired | EventKind::Unregistered => registered,
            };
            if !legal {
                state.poison = Some("subscriber events out of order for a service");
            }
            state.last_event.insert(ev.item.id, ev.kind);
        }
    }

    fn deliver(&self, state: &mut LeaseState, provider: usize, kind: MsgKind) {
        let now = state.now;
        let id = Self::service_id(provider);
        match kind {
            MsgKind::Register => {
                let requested = self.cfg.quantum * self.cfg.requested_quanta[provider];
                let was_fresh = !state.ghost.contains_key(&id);
                let (granted, events) = state.registry.register(now, Self::item(provider), requested);
                // Ghost spec, computed independently: the granted lease is
                // the request capped by the registrar's maximum.
                let expect = requested.min(self.cfg.quantum * self.cfg.max_lease_quanta);
                if granted != expect {
                    state.poison = Some("granted lease differs from requested-capped-by-max");
                }
                state.ghost.insert(id, now + expect);
                let fresh_events = !events.is_empty();
                if fresh_events != was_fresh {
                    state.poison = Some("Registered event iff the id was previously unknown");
                }
                Self::absorb_events(state, &events);
            }
            MsgKind::Renew => {
                let pre = state.ghost.get(&id).copied();
                let granted = state.registry.renew(now, id);
                match (pre, granted) {
                    // Live lease: renew must succeed and never shorten it.
                    (Some(expires), Some(g)) if expires > now => {
                        let renewed = now + g;
                        if renewed < expires {
                            state.poison = Some("renewal moved a lease expiry backwards");
                        }
                        state.ghost.insert(id, renewed);
                    }
                    // Lapsed or unknown: renew must refuse.
                    (Some(expires), None) if expires <= now => {}
                    (None, None) => {}
                    _ => state.poison = Some("renew outcome contradicts the ghost lease table"),
                }
            }
            MsgKind::Unregister => {
                let known = state.ghost.remove(&id).is_some();
                let events = state.registry.unregister(id);
                if events.is_empty() == known {
                    state.poison = Some("Unregistered event iff the id was stored");
                }
                Self::absorb_events(state, &events);
            }
        }
    }

    fn sweep(state: &mut LeaseState) {
        let now = state.now;
        let lapsed: Vec<ServiceId> = state
            .ghost
            .iter()
            .filter(|(_, &exp)| exp <= now)
            .map(|(&id, _)| id)
            .collect();
        let events = state.registry.expire(now);
        let mut expired_ids: Vec<ServiceId> = events.iter().map(|e| e.item.id).collect();
        expired_ids.sort();
        if expired_ids != lapsed {
            state.poison = Some("expiry sweep did not emit Expired for exactly the lapsed leases");
        }
        for id in &lapsed {
            state.ghost.remove(id);
        }
        Self::absorb_events(state, &events);
    }

    /// Remaining-lease bucket: `0` = lapsed-but-unswept (all such states
    /// behave identically), `k > 0` = k quanta of life left.
    fn lease_bucket(&self, now: SimTime, expires: SimTime) -> u64 {
        let q = self.cfg.quantum.as_nanos().max(1);
        expires.as_nanos().saturating_sub(now.as_nanos()).div_ceil(q)
    }
}

impl Model for LeaseModel {
    type State = LeaseState;
    type Action = LeaseAction;
    type Key = Vec<u64>;

    fn initial_states(&self) -> Vec<LeaseState> {
        let mut registry = ServiceRegistry::new(self.cfg.quantum * self.cfg.max_lease_quanta);
        registry.subscribe(SUBSCRIBER, Template::any());
        vec![LeaseState {
            registry,
            now: SimTime::ZERO,
            channel: Vec::new(),
            crashed: vec![false; self.cfg.providers],
            ghost: BTreeMap::new(),
            last_event: BTreeMap::new(),
            poison: None,
        }]
    }

    fn actions(&self, state: &LeaseState, out: &mut Vec<LeaseAction>) {
        for provider in 0..self.cfg.providers {
            if !state.crashed[provider] {
                if state.channel.len() < self.cfg.channel_cap {
                    for kind in [MsgKind::Register, MsgKind::Renew, MsgKind::Unregister] {
                        out.push(LeaseAction::Send { provider, kind });
                    }
                }
                out.push(LeaseAction::Crash { provider });
            }
        }
        for idx in 0..state.channel.len() {
            out.push(LeaseAction::Deliver { idx });
            out.push(LeaseAction::Drop { idx });
            if state.channel.len() < self.cfg.channel_cap {
                out.push(LeaseAction::Duplicate { idx });
            }
        }
        out.push(LeaseAction::Tick);
        out.push(LeaseAction::Sweep);
    }

    fn step(&self, state: &LeaseState, action: &LeaseAction) -> Option<LeaseState> {
        let mut st = state.clone();
        match *action {
            LeaseAction::Send { provider, kind } => {
                st.channel.push((provider, kind));
                st.channel.sort();
            }
            LeaseAction::Deliver { idx } => {
                let (provider, kind) = *st.channel.get(idx)?;
                st.channel.remove(idx);
                self.deliver(&mut st, provider, kind);
            }
            LeaseAction::Duplicate { idx } => {
                let msg = *st.channel.get(idx)?;
                st.channel.push(msg);
                st.channel.sort();
            }
            LeaseAction::Drop { idx } => {
                if idx >= st.channel.len() {
                    return None;
                }
                st.channel.remove(idx);
            }
            LeaseAction::Crash { provider } => {
                st.crashed[provider] = true;
            }
            LeaseAction::Tick => {
                st.now += self.cfg.quantum;
            }
            LeaseAction::Sweep => {
                Self::sweep(&mut st);
            }
        }
        Some(st)
    }

    fn key(&self, state: &LeaseState) -> Vec<u64> {
        let event_code = |id: &ServiceId| match state.last_event.get(id) {
            None => 0u64,
            Some(EventKind::Registered) => 1,
            Some(EventKind::Expired) => 2,
            Some(EventKind::Unregistered) => 3,
            Some(EventKind::Updated) => 4,
        };
        // Registry-as-stored, via the model-check snapshot hook.
        let stored: BTreeMap<ServiceId, SimTime> =
            state.registry.snapshot().into_iter().collect();
        let sigs: Vec<Vec<u64>> = (0..self.cfg.providers)
            .map(|p| {
                let id = Self::service_id(p);
                let mut sig = vec![
                    self.cfg.requested_quanta[p], // distinguishes asymmetric cfgs
                    state.crashed[p] as u64,
                    match stored.get(&id) {
                        None => u64::MAX,
                        Some(&exp) => self.lease_bucket(state.now, exp),
                    },
                    match state.ghost.get(&id) {
                        None => u64::MAX,
                        Some(&exp) => self.lease_bucket(state.now, exp),
                    },
                    event_code(&id),
                ];
                let mut msgs: Vec<u64> = state
                    .channel
                    .iter()
                    .filter(|(mp, _)| *mp == p)
                    .map(|(_, k)| *k as u64)
                    .collect();
                msgs.sort_unstable();
                sig.push(msgs.iter().fold(1u64, |acc, k| (acc << 2) | (k + 1)));
                sig
            })
            .collect();
        let order: Vec<usize> = if self.cfg.symmetry {
            canonical_actor_order(&sigs)
        } else {
            (0..self.cfg.providers).collect()
        };
        let mut key = Vec::new();
        for &p in &order {
            key.extend_from_slice(&sigs[p]);
        }
        key.push(state.poison.is_some() as u64);
        key
    }

    fn properties(&self) -> Vec<Property<Self>> {
        vec![
            Property {
                name: "no-stale-lookup",
                kind: PropertyKind::Always,
                check: |_, s| {
                    let served: Vec<ServiceId> = s
                        .registry
                        .lookup_live(s.now, &Template::any())
                        .iter()
                        .map(|i| i.id)
                        .collect();
                    let live: Vec<ServiceId> = s
                        .ghost
                        .iter()
                        .filter(|(_, &exp)| exp > s.now)
                        .map(|(&id, _)| id)
                        .collect();
                    served == live // no stale entries, no hidden live ones
                },
            },
            Property {
                name: "spec-refinement",
                kind: PropertyKind::Always,
                check: |_, s| {
                    let stored: BTreeMap<ServiceId, SimTime> =
                        s.registry.snapshot().into_iter().collect();
                    stored == s.ghost
                },
            },
            Property {
                name: "lease-monotonicity-and-events",
                kind: PropertyKind::Always,
                check: |_, s| s.poison.is_none(),
            },
            Property {
                name: "quiescence-reachable",
                kind: PropertyKind::AlwaysEventually,
                check: |_, s| s.channel.is_empty() && s.registry.is_empty(),
            },
        ]
    }

    fn format_action(&self, a: &LeaseAction) -> String {
        match *a {
            LeaseAction::Send { provider, kind } => format!("provider {provider} sends {kind:?}"),
            LeaseAction::Deliver { idx } => format!("network delivers message #{idx}"),
            LeaseAction::Duplicate { idx } => format!("network duplicates message #{idx}"),
            LeaseAction::Drop { idx } => format!("network drops message #{idx}"),
            LeaseAction::Crash { provider } => format!("provider {provider} crashes"),
            LeaseAction::Tick => "clock +1 quantum".to_string(),
            LeaseAction::Sweep => "registrar expiry sweep".to_string(),
        }
    }

    fn format_state(&self, s: &LeaseState) -> String {
        let regs: Vec<String> = s
            .ghost
            .iter()
            .map(|(id, exp)| {
                let b = self.lease_bucket(s.now, *exp);
                if b == 0 {
                    format!("svc{}: lapsed-unswept", id.0)
                } else {
                    format!("svc{}: {b} quanta left", id.0)
                }
            })
            .collect();
        format!(
            "[{} | {} in flight | t={}ms{}]",
            if regs.is_empty() {
                "empty".to_string()
            } else {
                regs.join(", ")
            },
            s.channel.len(),
            s.now.as_millis(),
            s.poison.map(|p| format!(" | POISON: {p}")).unwrap_or_default()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{check, CheckerConfig};

    #[test]
    fn one_provider_model_reaches_fixpoint_and_passes() {
        let m = LeaseModel::new(LeaseConfig {
            providers: 1,
            requested_quanta: vec![2],
            channel_cap: 2,
            ..LeaseConfig::default()
        });
        let r = check(&m, &CheckerConfig::default().with_max_states(200_000));
        assert!(r.passed(), "{}", r.violations[0].pretty(&m));
        assert!(r.complete, "bounded lease model must reach fixpoint");
        assert_eq!(r.undetermined, 0);
    }

    #[test]
    fn two_provider_model_passes_all_invariants() {
        let m = LeaseModel::new(LeaseConfig::default());
        let r = check(&m, &CheckerConfig::default().with_max_states(400_000));
        assert!(r.passed(), "{}", r.violations[0].pretty(&m));
        assert!(r.complete);
    }

    #[test]
    fn stale_lookup_path_is_caught_when_boundary_is_wrong() {
        // Adversarial harness for the checker itself: a model whose lookup
        // uses the raw (unfiltered) table must produce a no-stale-lookup
        // counterexample — this is the production bug `lookup_live` fixed,
        // resurrected in miniature.
        struct RawLookup(LeaseModel);
        impl Model for RawLookup {
            type State = LeaseState;
            type Action = LeaseAction;
            type Key = Vec<u64>;
            fn initial_states(&self) -> Vec<LeaseState> {
                self.0.initial_states()
            }
            fn actions(&self, s: &LeaseState, out: &mut Vec<LeaseAction>) {
                self.0.actions(s, out)
            }
            fn step(&self, s: &LeaseState, a: &LeaseAction) -> Option<LeaseState> {
                self.0.step(s, a)
            }
            fn key(&self, s: &LeaseState) -> Vec<u64> {
                self.0.key(s)
            }
            fn properties(&self) -> Vec<Property<Self>> {
                vec![Property {
                    name: "no-stale-lookup-raw",
                    kind: PropertyKind::Always,
                    check: |_, s| {
                        let served = s.registry.lookup(&Template::any()).len();
                        let live = s.ghost.values().filter(|&&e| e > s.now).count();
                        served == live
                    },
                }]
            }
        }
        let m = RawLookup(LeaseModel::new(LeaseConfig {
            providers: 1,
            requested_quanta: vec![1],
            channel_cap: 1,
            ..LeaseConfig::default()
        }));
        let r = check(&m, &CheckerConfig::default().with_max_states(100_000));
        assert!(!r.passed(), "raw lookup must expose the stale window");
        let v = &r.violations[0];
        // register, deliver, tick: the lease lapses, no sweep has run.
        assert!(v.trace.len() <= 4, "stale window within 4 steps, got {}", v.trace.len());
    }

    #[test]
    fn duplicated_and_reordered_messages_cannot_break_invariants() {
        let m = LeaseModel::new(LeaseConfig {
            providers: 2,
            requested_quanta: vec![3, 3],
            channel_cap: 4,
            max_lease_quanta: 2,
            ..LeaseConfig::default()
        });
        let r = check(&m, &CheckerConfig::default().with_max_states(400_000));
        assert!(r.passed(), "{}", r.violations[0].pretty(&m));
    }

    #[test]
    fn symmetry_reduction_shrinks_identical_providers() {
        let mk = |symmetry| {
            LeaseModel::new(LeaseConfig {
                providers: 2,
                requested_quanta: vec![2, 2],
                symmetry,
                ..LeaseConfig::default()
            })
        };
        let rs = check(&mk(true), &CheckerConfig::default().with_max_states(500_000));
        let rr = check(&mk(false), &CheckerConfig::default().with_max_states(500_000));
        assert!(rs.passed() && rr.passed());
        assert!(rs.complete && rr.complete);
        assert!(
            rs.distinct_states < rr.distinct_states,
            "identical providers must collapse ({} vs {})",
            rs.distinct_states,
            rr.distinct_states
        );
    }
}
