//! # aroma-check — explicit-state model checking for the Aroma protocols
//!
//! The paper's headline safety claim at the Abstract layer is behavioural:
//! *session objects prevent hijack* of the projector's services, and *Jini
//! leases keep the lookup service consistent* when providers vanish. Unit
//! and property tests sample those claims; this crate **proves them over
//! every interleaving** within explicit bounds, in the style of
//! `stateright`/`loom`: a [`model::Model`] trait (initial states, enabled
//! actions, deterministic step, properties), BFS/DFS exploration with
//! canonical-key deduplication and symmetry reduction
//! ([`explore::check`]), and shortest-path counterexample traces when a
//! property breaks.
//!
//! Two production models ship with the engine — they *drive the real
//! implementations*, not re-writes of them:
//!
//! * [`session_model::SessionModel`] steps two real
//!   `smart_projector::session::SessionManager`s (projection + control,
//!   exactly as the Aroma Adapter guards them) under N users issuing
//!   acquire/touch/release/depart, clock advances, and an adversary that
//!   replays stale tokens, guesses sequential neighbours of observed
//!   tokens, and cross-applies tokens between services. Proved: no-hijack,
//!   at-most-one-owner, and (as a bounded AG EF property) that the
//!   services can always be recovered — the paper's "forgetful presenter"
//!   lockout appears as a counterexample the moment manual-release policy
//!   meets an owner who leaves the room.
//! * [`lease_model::LeaseModel`] steps a real
//!   `aroma_discovery::registry::ServiceRegistry` under two providers
//!   whose register/renew/unregister requests travel a duplicating,
//!   reordering channel, plus crash and expiry-tick actions. Proved:
//!   no-stale-lookup (the production `lookup_live` path never serves a
//!   lapsed lease), renewal monotonicity, registry/spec refinement (the
//!   table always equals an independently-computed ghost spec), and
//!   subscriber event consistency (register/expire/unregister events
//!   alternate legally per service).
//! * [`replication_model::ReplModel`] steps a cluster of real
//!   `aroma_discovery::ReplicaNode`s (the PR 9 replicated-registrar core)
//!   under client churn, message reordering and loss, process
//!   crash/restore from the durable blob, and epoch elections. Proved:
//!   at-most-one-active-primary (per epoch and per instant — the serving
//!   lease), no-committed-lease-lost (every committed entry survives
//!   crash, failover, and snapshot-install rejoin), and no-stale-lookup
//!   (a serving node's table refines the ghost committed log exactly).
//!
//! Run `cargo run --release --example model_check` for the exhaustive
//! sweep and a demonstration counterexample, or `--smoke` for the CI
//! gate; see DESIGN.md §"Model checking the Abstract layer" for how each
//! invariant maps to the paper's cross-layer relations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod explore;
pub mod lease_model;
pub mod model;
pub mod replication_model;
pub mod session_model;

pub use explore::{check, CheckReport, CheckerConfig, PoolPolicy, Strategy, Violation};
pub use lease_model::{LeaseConfig, LeaseModel};
pub use model::{Model, Property, PropertyKind};
pub use replication_model::{AnyNodeServes, ReplConfig, ReplModel};
pub use session_model::{SessionConfig, SessionModel};
