//! Replicated-registrar model: drives the **real** [`ReplicaNode`]
//! replication core (the struct `aroma-discovery` ships to production)
//! through bounded nondeterminism — client churn, message reordering and
//! loss, process crash/restore from the durable blob, epoch elections —
//! and checks the three failover-safety properties of PR 9:
//!
//! * **at-most-one-active-primary** — no reachable state has two nodes
//!   simultaneously passing [`ReplicaNode::is_active`]; per-epoch
//!   uniqueness is additionally enforced across *time* through the ghost
//!   record of every epoch ever served.
//! * **no-committed-lease-lost** — every entry any node ever observed
//!   committing is stitched into a single ghost log; divergence between
//!   nodes' committed prefixes, a gap after a snapshot install, or an
//!   active primary whose commit index trails the ghost all poison the
//!   state.
//! * **no-stale-lookup** — a refinement check in the `LeaseModel` style:
//!   replaying the ghost log into a fresh [`ShardedRegistry`] must
//!   reproduce, row for row and live-lookup for live-lookup, the table of
//!   every node currently serving clients. A replica (or a deposed primary
//!   whose serving lease lapsed) is *silent*, so only active primaries are
//!   held to this — and the `replica_serving_would_be_stale` test proves
//!   the checker would catch the bug if silence were not enforced.
//!
//! The ghost is write-once: nodes publish their committed entries through
//! the `model-check`-gated [`ReplicaNode::committed_journal`], anchored at
//! [`ReplicaNode::journal_base`] so crash/restore and snapshot installs
//! stitch into one global prefix. The model never re-implements the
//! protocol; it only budgets the nondeterminism (ops, crashes, ticks,
//! epochs, channel capacity) so the sweep is finite.

use crate::model::{Model, Property, PropertyKind};
use aroma_discovery::{
    ClusterConfig, DurableState, Effect, FlapConfig, LogEntry, RepMsg, ReplicaNode, Role,
    ServiceId, ServiceItem, ShardedRegistry, Template,
};
use aroma_sim::{SimDuration, SimTime};
use bytes::Bytes;
use std::collections::BTreeMap;

/// The model's time quantum; also the cluster's election-quiet period, so
/// one `Tick` is exactly "long enough for an election to become legal".
const QUANTUM: SimDuration = SimDuration::from_secs(1);

/// Client node id used for every client-edge op (acks are discarded, so
/// one id suffices).
const CLIENT: u32 = 90;

/// Exploration bounds. Every field is a budget: the state space is finite
/// because each nondeterministic choice draws one down.
#[derive(Clone, Debug)]
pub struct ReplConfig {
    /// Cluster size (member ids `0..members`).
    pub members: u32,
    /// Distinct service ids clients may touch (`1..=services`).
    pub services: u64,
    /// Client-edge operations (register/renew/unregister) in a run.
    pub ops: u32,
    /// Process crashes in a run (restarts are free: a down node may always
    /// come back from its durable blob).
    pub crashes: u32,
    /// Time-advance steps (each moves `now` one [`QUANTUM`]).
    pub ticks: u32,
    /// Highest epoch a node may campaign for.
    pub epoch_cap: u64,
    /// In-flight federation messages; sends past this are dropped (loss).
    pub channel_cap: usize,
    /// Heartbeat-timer firings in a run. Commit propagation does not need
    /// them (append paths broadcast eagerly), but lease refresh and
    /// snapshot-install retries do; an unbudgeted heartbeat would multiply
    /// the channel alphabet without reaching new protocol territory.
    pub heartbeats: u32,
}

impl Default for ReplConfig {
    fn default() -> Self {
        ReplConfig {
            members: 3,
            services: 1,
            ops: 2,
            crashes: 1,
            ticks: 2,
            epoch_cap: 1,
            channel_cap: 2,
            heartbeats: 2,
        }
    }
}

/// Full model state: the real nodes plus the budgets and the ghost spec.
#[derive(Clone, Debug)]
pub struct ReplState {
    /// Per-member replica core; `None` while crashed.
    nodes: Vec<Option<ReplicaNode>>,
    /// Per-member durable blob, mirrored after every mutation (the
    /// synchronous fsync the I/O layer performs); crash keeps it.
    durable: Vec<DurableState>,
    /// Model time.
    now: SimTime,
    /// In-flight messages `(from, to, msg)`, kept sorted by canonical
    /// bytes so `key` and action enumeration are order-independent.
    channel: Vec<(u32, u32, RepMsg)>,
    ops_left: u32,
    crashes_left: u32,
    ticks_left: u32,
    hb_left: u32,
    /// Ghost spec: the one true committed log. `ghost[i]` is the entry at
    /// global log index `i + 1`.
    ghost: Vec<LogEntry>,
    /// Every epoch ever actively served, and by whom.
    primaries: BTreeMap<u64, u32>,
    /// First protocol violation observed while absorbing journals; checked
    /// by `no-committed-lease-lost`.
    poison: Option<&'static str>,
}

/// One atomic model step.
#[derive(Clone, Debug)]
pub enum ReplAction {
    /// A client registers service `svc` at the active primary `node`.
    Register {
        /// Serving node index.
        node: usize,
        /// Service id.
        svc: u64,
    },
    /// A client renews `svc`'s lease at the active primary `node`.
    Renew {
        /// Serving node index.
        node: usize,
        /// Service id.
        svc: u64,
    },
    /// A client withdraws `svc` at the active primary `node`.
    Unregister {
        /// Serving node index.
        node: usize,
        /// Service id.
        svc: u64,
    },
    /// Deliver the channel message in (sorted) slot `slot`.
    Deliver {
        /// Channel slot.
        slot: usize,
    },
    /// Lose the channel message in slot `slot`.
    Drop {
        /// Channel slot.
        slot: usize,
    },
    /// `node`'s election timer fires (guarded by the quiet period).
    ElectionTimer {
        /// Node index.
        node: usize,
    },
    /// `node`'s heartbeat timer fires (primary only).
    HeartbeatTimer {
        /// Node index.
        node: usize,
    },
    /// `node`'s expiry-sweep timer fires (primary only).
    SweepTimer {
        /// Node index.
        node: usize,
    },
    /// Kill `node`; volatile state gone, durable blob survives.
    Crash {
        /// Node index.
        node: usize,
    },
    /// Restart `node` from its durable blob (grants the incumbent a full
    /// quiet period before it may campaign, like the I/O layer does).
    Restart {
        /// Node index.
        node: usize,
    },
    /// Advance time by one [`QUANTUM`].
    Tick,
}

/// The model itself; see the module docs.
pub struct ReplModel {
    /// Exploration bounds.
    pub cfg: ReplConfig,
}

impl ReplModel {
    /// A model over the given bounds.
    pub fn new(cfg: ReplConfig) -> Self {
        ReplModel { cfg }
    }

    /// The cluster configuration under test: quiet period = one quantum,
    /// leases of two quanta (so sweeps are reachable), aggressive
    /// snapshotting (so snapshot installs are reachable), and an inert
    /// flap damper (damping is deliberately *not* modelled — the damper is
    /// primary-local policy, proven separately by its unit tests, and an
    /// active damper would make absorbed ops invisible to the ghost).
    pub fn cluster_config(&self) -> ClusterConfig {
        ClusterConfig {
            members: (0..self.cfg.members).collect(),
            max_lease: SimDuration::from_secs(2),
            shards: 2,
            snapshot_every: 2,
            election_quiet: QUANTUM,
            flap: FlapConfig {
                suppress_at: 1e9,
                reuse_below: 1.0,
                ceiling: 1e9,
                ..FlapConfig::default()
            },
        }
    }

    fn item(&self, svc: u64) -> ServiceItem {
        ServiceItem {
            id: ServiceId(svc),
            kind: "projector/display".to_string(),
            attributes: Vec::new(),
            provider: CLIENT,
            proxy: Bytes::new(),
        }
    }

    fn quiet(&self) -> SimDuration {
        self.cluster_config().election_quiet
    }

    /// Route a node's effects: `Send`s enter the channel (or are lost at
    /// capacity), acks and notifies leave the model; then mirror the
    /// acting node's durable fraction, as the I/O layer's synchronous
    /// persist does after every event.
    fn route(&self, s: &mut ReplState, acting: usize, effects: Vec<Effect>) {
        for fx in effects {
            if let Effect::Send { to, msg } = fx {
                if s.channel.len() < self.cfg.channel_cap {
                    s.channel.push((s.nodes[acting].as_ref().map_or(acting as u32, |n| n.me), to, msg));
                }
            }
        }
        if let Some(n) = s.nodes[acting].as_ref() {
            s.durable[acting] = n.durable();
        }
        s.channel.sort_by_cached_key(|(f, t, m)| (*f, *t, m.encode()[..].to_vec()));
    }

    /// Stitch every node's committed journal into the ghost and record
    /// serving observations; protocol violations poison the state.
    fn absorb(&self, s: &mut ReplState) {
        for slot in s.nodes.iter() {
            let Some(n) = slot else { continue };
            let base = n.journal_base() as usize;
            if base > s.ghost.len() {
                // A journal anchored past the ghost would mean entries
                // committed that no incarnation ever published.
                s.poison.get_or_insert("journal re-anchored past the committed prefix");
                continue;
            }
            for (k, e) in n.committed_journal().iter().enumerate() {
                let g = base + k;
                if g < s.ghost.len() {
                    if s.ghost[g] != *e {
                        s.poison.get_or_insert("committed entries diverged across nodes");
                    }
                } else {
                    s.ghost.push(e.clone());
                }
            }
        }
        for (i, slot) in s.nodes.iter().enumerate() {
            let Some(n) = slot else { continue };
            if n.is_active(s.now) {
                match s.primaries.get(&n.epoch) {
                    Some(&p) if p != i as u32 => {
                        s.poison.get_or_insert("two nodes served the same epoch");
                    }
                    _ => {
                        s.primaries.insert(n.epoch, i as u32);
                    }
                }
                if n.commit_index() < s.ghost.len() as u64 {
                    // The serve barrier (`commit >= serve_from`) plus
                    // leader completeness must make this unreachable.
                    s.poison.get_or_insert("active primary behind the committed prefix");
                }
            }
        }
    }

    /// Replay the ghost log into a fresh sharded table — the specification
    /// every serving node's table must refine.
    fn replay(&self, ghost: &[LogEntry]) -> ShardedRegistry {
        let ccfg = self.cluster_config();
        let mut table = ShardedRegistry::new(ccfg.shards, ccfg.max_lease);
        for e in ghost {
            let at = SimTime::from_nanos(e.at_nanos);
            match &e.op {
                aroma_discovery::RepOp::Register { item, lease_ms } => {
                    table.register(at, item.clone(), SimDuration::from_millis(*lease_ms));
                }
                aroma_discovery::RepOp::Renew { id } => {
                    table.renew(at, *id);
                }
                aroma_discovery::RepOp::Unregister { id } => {
                    table.unregister(*id);
                }
                aroma_discovery::RepOp::Sweep => {
                    table.expire(at);
                }
            }
        }
        table
    }

    /// Does `n`'s table — and the actual `lookup_live` client path over it
    /// — agree with the ghost replay?
    fn lookup_is_fresh(&self, s: &ReplState, n: &ReplicaNode) -> bool {
        let spec = self.replay(&s.ghost);
        let mut want: Vec<(ServiceId, SimTime)> =
            spec.entries().into_iter().map(|(i, e)| (i.id, e)).collect();
        want.sort();
        let mut got = n.table_rows();
        got.sort();
        if want != got {
            return false;
        }
        let ids = |items: Vec<&ServiceItem>| {
            let mut v: Vec<u64> = items.into_iter().map(|i| i.id.0).collect();
            v.sort_unstable();
            v
        };
        ids(spec.lookup_live(s.now, &Template::any())) == ids(n.lookup_live(s.now, &Template::any()))
    }

    fn pack_bytes(key: &mut Vec<u64>, bytes: &[u8]) {
        key.push(bytes.len() as u64);
        let mut chunk = [0u8; 8];
        for c in bytes.chunks(8) {
            chunk.fill(0);
            chunk[..c.len()].copy_from_slice(c);
            key.push(u64::from_be_bytes(chunk));
        }
    }
}

impl Model for ReplModel {
    type State = ReplState;
    type Action = ReplAction;
    type Key = Vec<u64>;

    fn initial_states(&self) -> Vec<ReplState> {
        let ccfg = self.cluster_config();
        let nodes: Vec<Option<ReplicaNode>> =
            (0..self.cfg.members).map(|i| Some(ReplicaNode::new(i, ccfg.clone()))).collect();
        let durable = nodes.iter().map(|n| n.as_ref().unwrap().durable()).collect();
        let mut s = ReplState {
            nodes,
            durable,
            now: SimTime::ZERO,
            channel: Vec::new(),
            ops_left: self.cfg.ops,
            crashes_left: self.cfg.crashes,
            ticks_left: self.cfg.ticks,
            hb_left: self.cfg.heartbeats,
            ghost: Vec::new(),
            primaries: BTreeMap::new(),
            poison: None,
        };
        self.absorb(&mut s);
        vec![s]
    }

    fn actions(&self, s: &ReplState, out: &mut Vec<ReplAction>) {
        if s.poison.is_some() {
            return; // poisoned states are terminal: the violation is flagged
        }
        for (i, slot) in s.nodes.iter().enumerate() {
            let Some(n) = slot else {
                out.push(ReplAction::Restart { node: i });
                continue;
            };
            if n.is_active(s.now) && s.ops_left > 0 {
                for svc in 1..=self.cfg.services {
                    out.push(ReplAction::Register { node: i, svc });
                    // Renew/unregister only where the id is live: a nack
                    // (or a no-op log entry) spends the op budget on
                    // transitions that cannot move any property.
                    if n.table().expiry_of(ServiceId(svc)).is_some_and(|e| e > s.now) {
                        out.push(ReplAction::Renew { node: i, svc });
                        out.push(ReplAction::Unregister { node: i, svc });
                    }
                }
            }
            if n.role == Role::Primary {
                if s.hb_left > 0 {
                    out.push(ReplAction::HeartbeatTimer { node: i });
                }
                out.push(ReplAction::SweepTimer { node: i });
            } else if s.now >= n.last_heard() + self.quiet() {
                // The campaign the core would actually run: next owned
                // epoch above the node's current one, budget permitting.
                let mut e = n.epoch + 1;
                while self.cluster_config().owner_of(e) != n.me {
                    e += 1;
                }
                if e <= self.cfg.epoch_cap {
                    out.push(ReplAction::ElectionTimer { node: i });
                }
            }
            if s.crashes_left > 0 {
                out.push(ReplAction::Crash { node: i });
            }
        }
        for slot in 0..s.channel.len() {
            out.push(ReplAction::Deliver { slot });
            out.push(ReplAction::Drop { slot });
        }
        if s.ticks_left > 0 {
            out.push(ReplAction::Tick);
        }
    }

    fn step(&self, st: &ReplState, a: &ReplAction) -> Option<ReplState> {
        let mut s = st.clone();
        match a {
            ReplAction::Register { node, svc } => {
                s.ops_left -= 1;
                let item = self.item(*svc);
                let lease = self.cluster_config().max_lease;
                let fx = s.nodes[*node].as_mut()?.client_register(s.now, CLIENT, item, lease);
                self.route(&mut s, *node, fx);
            }
            ReplAction::Renew { node, svc } => {
                s.ops_left -= 1;
                let fx = s.nodes[*node].as_mut()?.client_renew(s.now, CLIENT, ServiceId(*svc));
                self.route(&mut s, *node, fx);
            }
            ReplAction::Unregister { node, svc } => {
                s.ops_left -= 1;
                let fx = s.nodes[*node].as_mut()?.client_unregister(s.now, CLIENT, ServiceId(*svc));
                self.route(&mut s, *node, fx);
            }
            ReplAction::Deliver { slot } => {
                let (from, to, msg) = s.channel.remove(*slot);
                // Delivery to a crashed node is the same as a drop; prune
                // the duplicate transition.
                let n = s.nodes[to as usize].as_mut()?;
                let fx = n.on_message(s.now, from, msg);
                self.route(&mut s, to as usize, fx);
            }
            ReplAction::Drop { slot } => {
                s.channel.remove(*slot);
            }
            ReplAction::ElectionTimer { node } => {
                let fx = s.nodes[*node].as_mut()?.election_timeout(s.now);
                self.route(&mut s, *node, fx);
            }
            ReplAction::HeartbeatTimer { node } => {
                s.hb_left -= 1;
                let fx = s.nodes[*node].as_mut()?.heartbeat(s.now);
                self.route(&mut s, *node, fx);
            }
            ReplAction::SweepTimer { node } => {
                let fx = s.nodes[*node].as_mut()?.sweep(s.now);
                self.route(&mut s, *node, fx);
            }
            ReplAction::Crash { node } => {
                s.crashes_left -= 1;
                s.nodes[*node] = None;
            }
            ReplAction::Restart { node } => {
                let mut n = ReplicaNode::restore(
                    *node as u32,
                    self.cluster_config(),
                    s.durable[*node].clone(),
                );
                n.note_heard(s.now);
                s.nodes[*node] = Some(n);
            }
            ReplAction::Tick => {
                s.ticks_left -= 1;
                s.now += QUANTUM;
            }
        }
        self.absorb(&mut s);
        Some(s)
    }

    fn key(&self, s: &ReplState) -> Vec<u64> {
        let mut k = vec![
            s.now.as_nanos(),
            s.ops_left as u64,
            s.crashes_left as u64,
            s.ticks_left as u64,
            s.hb_left as u64,
            s.poison.is_some() as u64,
        ];
        for (i, slot) in s.nodes.iter().enumerate() {
            match slot {
                None => {
                    // Crashed: only the durable blob is behaviourally
                    // relevant (it is what a restart resurrects).
                    k.push(0);
                    Self::pack_bytes(&mut k, &s.durable[i].encode()[..]);
                }
                Some(n) => {
                    let words = n.canonical_words();
                    k.push(1 + words.len() as u64);
                    k.extend(words);
                }
            }
        }
        k.push(s.channel.len() as u64);
        for (f, t, m) in &s.channel {
            k.push(*f as u64);
            k.push(*t as u64);
            Self::pack_bytes(&mut k, &m.encode()[..]);
        }
        // The ghost and the served-epoch record are part of the property
        // semantics, so states may not merge across different histories.
        let ghost_bytes = RepMsg::Append {
            epoch: 0,
            prev_index: 0,
            prev_epoch: 0,
            commit: 0,
            sent_nanos: 0,
            entries: s.ghost.clone(),
        }
        .encode();
        Self::pack_bytes(&mut k, &ghost_bytes[..]);
        k.push(s.primaries.len() as u64);
        for (e, p) in &s.primaries {
            k.push(*e);
            k.push(*p as u64);
        }
        k
    }

    fn properties(&self) -> Vec<Property<Self>> {
        vec![
            Property {
                name: "at-most-one-active-primary",
                kind: PropertyKind::Always,
                check: |_, s| {
                    s.nodes.iter().flatten().filter(|n| n.is_active(s.now)).count() <= 1
                },
            },
            Property {
                name: "no-committed-lease-lost",
                kind: PropertyKind::Always,
                check: |_, s| s.poison.is_none(),
            },
            Property {
                name: "no-stale-lookup",
                kind: PropertyKind::Always,
                check: |m, s| {
                    s.nodes
                        .iter()
                        .flatten()
                        .filter(|n| n.is_active(s.now))
                        .all(|n| m.lookup_is_fresh(s, n))
                },
            },
        ]
    }

    fn format_action(&self, a: &ReplAction) -> String {
        match a {
            ReplAction::Register { node, svc } => format!("client registers svc{svc} at node{node}"),
            ReplAction::Renew { node, svc } => format!("client renews svc{svc} at node{node}"),
            ReplAction::Unregister { node, svc } => {
                format!("client unregisters svc{svc} at node{node}")
            }
            ReplAction::Deliver { slot } => format!("deliver channel[{slot}]"),
            ReplAction::Drop { slot } => format!("lose channel[{slot}]"),
            ReplAction::ElectionTimer { node } => format!("election timer fires at node{node}"),
            ReplAction::HeartbeatTimer { node } => format!("heartbeat timer fires at node{node}"),
            ReplAction::SweepTimer { node } => format!("sweep timer fires at node{node}"),
            ReplAction::Crash { node } => format!("node{node} crashes (durable blob kept)"),
            ReplAction::Restart { node } => format!("node{node} restarts from durable blob"),
            ReplAction::Tick => "time advances one quantum".to_string(),
        }
    }

    fn format_state(&self, s: &ReplState) -> String {
        let roles: Vec<String> = s
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| match n {
                None => format!("n{i}:down"),
                Some(n) => format!(
                    "n{i}:{:?}@e{}{} c{}",
                    n.role,
                    n.epoch,
                    if n.is_active(s.now) { "*" } else { "" },
                    n.commit_index()
                ),
            })
            .collect();
        format!(
            "t={}ms [{}] channel={} ghost={} ops={} poison={:?}",
            s.now.as_nanos() / 1_000_000,
            roles.join(" "),
            s.channel.len(),
            s.ghost.len(),
            s.ops_left,
            s.poison
        )
    }
}

/// Seeded-fault wrapper: the same transitions, but the freshness property
/// is asserted over **every** alive node, as if replicas (and deposed
/// primaries with lapsed serving leases) answered lookups. The checker
/// must find a counterexample — a committed unregister not yet shipped to
/// a lagging replica — which is exactly the staleness the primary-only
/// serving discipline prevents.
pub struct AnyNodeServes(pub ReplModel);

impl Model for AnyNodeServes {
    type State = ReplState;
    type Action = ReplAction;
    type Key = Vec<u64>;

    fn initial_states(&self) -> Vec<ReplState> {
        self.0.initial_states()
    }
    fn actions(&self, s: &ReplState, out: &mut Vec<ReplAction>) {
        self.0.actions(s, out)
    }
    fn step(&self, s: &ReplState, a: &ReplAction) -> Option<ReplState> {
        self.0.step(s, a)
    }
    fn key(&self, s: &ReplState) -> Vec<u64> {
        self.0.key(s)
    }
    fn properties(&self) -> Vec<Property<Self>> {
        vec![Property {
            name: "every-node-lookup-fresh",
            kind: PropertyKind::Always,
            check: |m, s| s.nodes.iter().flatten().all(|n| m.0.lookup_is_fresh(s, n)),
        }]
    }
    fn format_action(&self, a: &ReplAction) -> String {
        self.0.format_action(a)
    }
    fn format_state(&self, s: &ReplState) -> String {
        self.0.format_state(s)
    }
}

impl AnyNodeServes {
    /// The two-member, no-failure configuration in which the shortest
    /// counterexample lives: register, commit, unregister, and look at the
    /// replica before the commit-carrying append lands.
    pub fn demo() -> Self {
        AnyNodeServes(ReplModel::new(ReplConfig {
            members: 2,
            services: 1,
            ops: 2,
            crashes: 0,
            ticks: 0,
            epoch_cap: 0,
            channel_cap: 4,
            heartbeats: 0,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{check, CheckerConfig};

    /// The largest configuration whose full interleaving space still
    /// reaches a fixpoint quickly enough for the debug test suite: one
    /// client op, one crash/restore, one clock tick, one election — a
    /// 38.5k-state complete sweep (measured in release; the unbounded
    /// default config is swept by `examples/model_check.rs`).
    fn tiny() -> ReplConfig {
        ReplConfig {
            members: 3,
            services: 1,
            ops: 1,
            crashes: 1,
            ticks: 1,
            epoch_cap: 1,
            channel_cap: 2,
            heartbeats: 0,
        }
    }

    #[test]
    fn tiny_sweep_reaches_fixpoint_and_passes() {
        let m = ReplModel::new(tiny());
        let r = check(&m, &CheckerConfig::default().with_max_states(100_000));
        assert!(r.passed(), "{}", r.violations[0].pretty(&m));
        assert!(r.complete, "bounded replication model must reach fixpoint");
        assert!(r.distinct_states > 30_000, "sweep too small to mean anything: {}", r.distinct_states);
    }

    #[test]
    fn worker_count_is_invisible() {
        let m = ReplModel::new(ReplConfig { ticks: 1, crashes: 0, ..tiny() });
        let a = check(&m, &CheckerConfig::default().with_max_states(200_000).with_workers(1));
        let b = check(&m, &CheckerConfig::default().with_max_states(200_000).with_workers(4));
        assert_eq!(a.distinct_states, b.distinct_states);
        assert_eq!(a.transitions, b.transitions);
        assert_eq!(a.passed(), b.passed());
    }

    #[test]
    fn failover_path_stitches_the_ghost() {
        // A scripted trace through the model's own step/absorb machinery:
        // commit under epoch 0, crash the primary, elect node1 for epoch
        // 1, and watch the serve barrier hold until the barrier commits.
        let m = ReplModel::new(ReplConfig { ticks: 2, ..ReplConfig::default() });
        let mut s = m.initial_states().remove(0);
        let step = |m: &ReplModel, s: &ReplState, a: ReplAction| -> ReplState {
            m.step(s, &a).expect("scripted action must be enabled")
        };
        s = step(&m, &s, ReplAction::Register { node: 0, svc: 1 });
        // Ship the entry to both replicas and ack from node1 → commit.
        while let Some(slot) = s.channel.iter().position(|(_, to, _)| *to == 1) {
            s = step(&m, &s, ReplAction::Deliver { slot });
            if let Some(back) = s.channel.iter().position(|(_, to, _)| *to == 0) {
                s = step(&m, &s, ReplAction::Deliver { slot: back });
            }
            if s.ghost.len() == 1 && s.nodes[1].as_ref().unwrap().commit_index() == 1 {
                break;
            }
        }
        assert_eq!(s.ghost.len(), 1, "register must commit into the ghost");
        // Lose everything still in flight (node2 never hears epoch 0 —
        // the election must bring it up to date through the log check).
        while !s.channel.is_empty() {
            s = step(&m, &s, ReplAction::Drop { slot: 0 });
        }
        // Primary dies; time passes; node1 (owner of epoch 1) campaigns.
        s = step(&m, &s, ReplAction::Crash { node: 0 });
        s = step(&m, &s, ReplAction::Tick);
        s = step(&m, &s, ReplAction::ElectionTimer { node: 1 });
        // Candidate is not active: its election barrier has not committed.
        assert!(!s.nodes[1].as_ref().unwrap().is_active(s.now));
        // Vote round trip with node2, then barrier append (which back-fills
        // node2's missing entry) and its ack. Traffic to the dead node 0
        // is dropped as it appears — at channel_cap 2 it would otherwise
        // squeeze out the barrier append (the model treats a full channel
        // as loss, so this is an interleaving the sweep covers too).
        for _ in 0..16 {
            if s.nodes[1].as_ref().unwrap().is_active(s.now) {
                break;
            }
            if let Some(slot) = s.channel.iter().position(|(_, to, _)| *to == 0) {
                s = step(&m, &s, ReplAction::Drop { slot });
            } else if let Some(slot) = s.channel.iter().position(|(_, to, _)| *to != 0) {
                s = step(&m, &s, ReplAction::Deliver { slot });
            } else {
                break;
            }
        }
        let n1 = s.nodes[1].as_ref().unwrap();
        assert_eq!(n1.role, Role::Primary);
        assert_eq!(n1.epoch, 1);
        assert!(n1.is_active(s.now), "barrier committed + fresh majority contact must serve");
        assert!(s.primaries.contains_key(&0) && s.primaries.contains_key(&1));
        assert_eq!(s.ghost.len(), 2, "the election barrier itself is a committed entry");
        assert!(s.poison.is_none(), "{:?}", s.poison);
        // The old incumbent restarts from disk and stitches its journal
        // back into the same ghost (no divergence, no gap).
        s = step(&m, &s, ReplAction::Restart { node: 0 });
        assert!(!s.nodes[0].as_ref().unwrap().is_active(s.now));
        assert!(s.poison.is_none(), "{:?}", s.poison);
    }

    #[test]
    fn replica_serving_would_be_stale() {
        let m = AnyNodeServes::demo();
        let r = check(&m, &CheckerConfig::default().with_max_states(300_000));
        assert!(!r.passed(), "a lagging replica must fail the all-nodes property");
        let v = &r.violations[0];
        assert_eq!(v.property, "every-node-lookup-fresh");
        assert!(v.trace.len() <= 12, "counterexample should be short, got {}", v.trace.len());
    }
}
