//! Bounded exhaustive exploration: BFS/DFS over canonical keys.
//!
//! The explorer visits every state reachable within the configured bounds,
//! deduplicating on [`Model::key`]. BFS order guarantees that the first
//! violation found for a safety property has a *shortest* counterexample
//! trace, which keeps printed traces readable (the acceptance bar for the
//! session hijack demo is ≤ 12 actions; BFS finds it in 2).
//!
//! ## Parallel exploration
//!
//! With [`CheckerConfig::workers`] > 1, BFS runs on a hash-sharded engine
//! over a persistent worker pool ([`aroma_sim::sweep::pool_scope`] — one
//! thread-spawn set per `check` call, not one per frontier tile). The
//! canonical-key space is partitioned into `W` shards by a fixed-seed
//! routing hash; shard `i` and successor-origin `i` are both owned by pool
//! worker `i` ([`aroma_sim::sweep::Dispatch::Affine`] pins item `i` to
//! worker `i` on every dispatch), so every `seen`-map shard, inbox, and
//! state arena is only ever touched from one OS thread. Each frontier tile
//! runs barrier-separated phases: **Expand** (each worker generates
//! successors for a contiguous parent range and routes each canonical key
//! to its shard in one batched send), **Dedup** (each shard merges its
//! inbound runs in global `(parent, action)` order against its `seen`
//! shard), a sequential **admission** step on the coordinator that assigns
//! global node indices in that same order under the `max_states` budget,
//! **Apply** (shards record verdicts and insert admitted keys), and
//! **Deliver** (origins place admitted states into their arenas and check
//! safety). Admission order is exactly the sequential engine's pop-loop
//! order, so the resulting [`CheckReport`] (distinct states, transition
//! counts, truncation flags, shortest counterexample traces) is
//! byte-identical at any worker count — pinned by the equivalence
//! proptests in `tests/parallel_equivalence.rs` and the `scripts/check.sh`
//! 1/2/4-worker diff gate. [`Strategy::Dfs`] always takes the sequential
//! path: its frontier is a stack, which has no layer structure to split.
//!
//! Allocation locality is the point of the shape: a successor state is
//! born on its origin worker, stored in that worker's arena, and dropped
//! there if it proves a duplicate — duplicate and budget-rejected keys
//! ride back to their origin on the verdict message and are freed where
//! they were allocated. Only admitted keys migrate (once, into the owning
//! shard's `seen` map, freed there by a final teardown phase). The old
//! fan-out/sequential-merge engine freed every worker-allocated state and
//! key on the merge thread, and that cross-thread allocator churn made 4
//! workers ~3x *slower* than 1 on the production models (BENCH_check.json
//! pre-sharding entries).
//!
//! Sharding only buys wall-clock time when workers genuinely run in
//! parallel; the routing, merging, and barrier machinery itself costs real
//! per-transition work. [`PoolPolicy::Auto`] (the default) therefore keeps
//! the whole exploration inline on the coordinator when the host reports a
//! single hardware thread — same shards, same admission order, same report
//! — while [`PoolPolicy::Forced`] always runs the pooled phases so tests
//! and benchmarks can pin their behaviour on any host.
//!
//! AG EF ("always eventually possible") properties are resolved after the
//! forward pass by a reverse reachability sweep over the explored graph on
//! a second pool: goal seeding and large frontier rounds fan out in fixed
//! chunks (results concatenate in chunk order, so steal scheduling cannot
//! reorder them); tiny rounds stay on the coordinator via
//! [`aroma_sim::sweep::parallel_worthwhile`]. States whose forward closure
//! was truncated by a bound are reported as *undetermined* rather than
//! violating — a bounded checker must never claim a liveness violation it
//! cannot exhibit.

use crate::model::{Model, Property, PropertyKind};
use aroma_sim::sweep::{self, Dispatch};
use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};
use std::sync::{Mutex, RwLock};

/// Exploration order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Breadth-first: shortest counterexamples, the default.
    Bfs,
    /// Depth-first: lower frontier memory, longer traces.
    Dfs,
}

/// When the parallel BFS engine actually dispatches work to its pool.
///
/// Routing successors through shards, merging verdict runs, and crossing
/// pool barriers costs real per-transition work. On a host that can run
/// the workers in parallel that cost buys wall-clock speedup; on an
/// oversubscribed host (`workers > available_parallelism()`, the extreme
/// being a 1-core runner) it is pure additive overhead — the pre-sharding
/// engine paid ~3.2x for it (BENCH_check.json). The [`CheckReport`] is
/// byte-identical on every path, so the policy is free to pick the cheap
/// one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PoolPolicy {
    /// Dispatch to the pool only when the host has more than one hardware
    /// thread; otherwise run every tile inline on the coordinator (same
    /// shards, same admission order, no messaging or barriers).
    Auto,
    /// Always run the pooled phases, even oversubscribed. For tests and
    /// benchmarks that pin the pooled path's determinism or measure its
    /// coordination cost.
    Forced,
}

/// Exploration bounds, order, and parallelism.
#[derive(Clone, Copy, Debug)]
pub struct CheckerConfig {
    /// Stop discovering new states past this many distinct states.
    pub max_states: usize,
    /// Do not expand states deeper than this many actions from an init.
    pub max_depth: u32,
    /// BFS or DFS.
    pub strategy: Strategy,
    /// Worker threads for BFS successor generation and the liveness pass.
    /// `1` is the sequential engine; every count yields the same report.
    pub workers: usize,
    /// Whether `workers > 1` may actually fan out (see [`PoolPolicy`]).
    pub pool: PoolPolicy,
}

impl Default for CheckerConfig {
    fn default() -> Self {
        CheckerConfig {
            max_states: 1_000_000,
            max_depth: 10_000,
            strategy: Strategy::Bfs,
            // lint:allow(sim-os-env): host parallelism only picks the default worker count; CheckReports are byte-identical at ANY worker count (DESIGN.md §12, parallel_equivalence proptests)
            workers: std::thread::available_parallelism().map_or(1, |p| p.get()),
            pool: PoolPolicy::Auto,
        }
    }
}

impl CheckerConfig {
    /// The CI smoke configuration: bounded enough for every PR gate.
    pub fn smoke() -> Self {
        CheckerConfig {
            max_states: 50_000,
            ..Self::default()
        }
    }

    /// Builder-style bound override.
    pub fn with_max_states(mut self, n: usize) -> Self {
        self.max_states = n;
        self
    }

    /// Builder-style depth override.
    pub fn with_max_depth(mut self, d: u32) -> Self {
        self.max_depth = d;
        self
    }

    /// Builder-style worker-count override (`0` is treated as `1`).
    pub fn with_workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    /// Builder-style pool-policy override.
    pub fn with_pool_policy(mut self, p: PoolPolicy) -> Self {
        self.pool = p;
        self
    }

    /// Does this config actually fan work out to pool threads?
    fn pool_enabled(&self) -> bool {
        match self.pool {
            PoolPolicy::Forced => true,
            // lint:allow(sim-os-env): host parallelism only selects the execution engine; the report is byte-identical either way (pool_policy_auto_matches_forced_and_sequential)
            PoolPolicy::Auto => std::thread::available_parallelism().map_or(1, |p| p.get()) > 1,
        }
    }
}

struct Node<M: Model> {
    state: M::State,
    /// `(parent node index, action that produced this node)`; `None` for
    /// initial states.
    parent: Option<(usize, M::Action)>,
    depth: u32,
}

/// A property violation with its reconstructed action trace.
pub struct Violation<M: Model> {
    /// Name of the violated property.
    pub property: &'static str,
    /// Was this a safety (`Always`) or reachability (`AlwaysEventually`) failure?
    pub kind: PropertyKind,
    /// Shortest-known action sequence from an initial state to the bad state.
    pub trace: Vec<M::Action>,
    /// The bad state itself.
    pub end_state: M::State,
}

impl<M: Model> Violation<M> {
    /// Pretty-print the counterexample through the model's formatters.
    pub fn pretty(&self, model: &M) -> String {
        let mut out = String::new();
        let what = match self.kind {
            PropertyKind::Always => "invariant violated",
            PropertyKind::AlwaysEventually => "goal unreachable from state",
        };
        out.push_str(&format!(
            "counterexample: {} `{}` after {} action(s)\n",
            what,
            self.property,
            self.trace.len()
        ));
        for (i, action) in self.trace.iter().enumerate() {
            out.push_str(&format!("  {:>3}. {}\n", i + 1, model.format_action(action)));
        }
        out.push_str(&format!("  => {}\n", model.format_state(&self.end_state)));
        out
    }
}

/// What an exploration established.
pub struct CheckReport<M: Model> {
    /// Distinct canonical states discovered.
    pub distinct_states: usize,
    /// Transitions taken (successor evaluations that produced a state).
    pub transitions: u64,
    /// Deepest node expanded.
    pub max_depth_reached: u32,
    /// True when the frontier drained before hitting any bound: the state
    /// space was covered exhaustively and the verdicts are unconditional
    /// (within the model's own bounds).
    pub complete: bool,
    /// Violations found (exploration stops at the first safety violation).
    pub violations: Vec<Violation<M>>,
    /// States whose AG EF verdict was left open by a bound truncation.
    pub undetermined: usize,
}

impl<M: Model> CheckReport<M> {
    /// No violation of any kind was found.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// One-line summary for logs and the example binary.
    pub fn summary(&self) -> String {
        format!(
            "{} distinct states, {} transitions, depth {}, {}{}{}",
            self.distinct_states,
            self.transitions,
            self.max_depth_reached,
            if self.complete { "complete" } else { "bounded" },
            if self.violations.is_empty() {
                ", all properties hold".to_string()
            } else {
                format!(", {} VIOLATION(S)", self.violations.len())
            },
            if self.undetermined > 0 {
                format!(", {} undetermined", self.undetermined)
            } else {
                String::new()
            }
        )
    }
}

/// The forward pass's full output: the report plus the explored graph the
/// liveness pass walks backwards over.
struct Exploration<M: Model> {
    report: CheckReport<M>,
    nodes: Vec<Node<M>>,
    /// Successor adjacency, only populated when a liveness property needs it.
    edges: Vec<Vec<u32>>,
    /// Nodes whose successors were *all* generated (frontier nodes are not).
    expanded: Vec<bool>,
}

impl<M: Model> Exploration<M> {
    fn new() -> Self {
        Exploration {
            report: CheckReport {
                distinct_states: 0,
                transitions: 0,
                max_depth_reached: 0,
                complete: true,
                violations: Vec::new(),
                undetermined: 0,
            },
            nodes: Vec::new(),
            edges: Vec::new(),
            expanded: Vec::new(),
        }
    }
}

fn trace_to<M: Model>(nodes: &[Node<M>], mut idx: usize) -> Vec<M::Action> {
    let mut rev = Vec::new();
    while let Some((parent, action)) = &nodes[idx].parent {
        rev.push(action.clone());
        idx = *parent;
    }
    rev.reverse();
    rev
}

enum Admitted {
    /// Novel state, stored at this node index.
    New(usize),
    /// Duplicate of this already-known node.
    Existing(usize),
    /// Novel state dropped by the state budget.
    Rejected,
}

/// Admit a state whose canonical key is already computed (exactly once per
/// generated successor — the old engine recomputed `model.key` on the
/// budget path). Boundary semantics, pinned by `exact_state_budget_*`
/// tests: once `nodes.len() == max_states`, a successor is admitted iff
/// its key was already seen; novel states are rejected. Initial states
/// pass `usize::MAX` and bypass the budget.
#[allow(clippy::too_many_arguments)] // one call site shape, two engines
fn admit<M: Model>(
    seen: &mut HashMap<M::Key, usize>,
    ex: &mut Exploration<M>,
    track_edges: bool,
    max_states: usize,
    key: M::Key,
    state: M::State,
    parent: Option<(usize, M::Action)>,
    depth: u32,
) -> Admitted {
    match seen.entry(key) {
        Entry::Occupied(e) => Admitted::Existing(*e.get()),
        Entry::Vacant(e) => {
            // `seen` holds exactly one entry per node, so `nodes.len()` is
            // the live distinct-state count.
            if ex.nodes.len() >= max_states {
                return Admitted::Rejected;
            }
            let idx = ex.nodes.len();
            e.insert(idx);
            ex.nodes.push(Node {
                state,
                parent,
                depth,
            });
            if track_edges {
                ex.edges.push(Vec::new());
            }
            ex.expanded.push(false);
            Admitted::New(idx)
        }
    }
}

/// Check safety on every node admitted since the last sweep, in admission
/// order; on the first violating node, record the violation and return
/// `true` (stop exploring). Both engines sweep at the same moments — the
/// sequential pop points — so the stopping state count and the reported
/// trace coincide.
fn sweep_safety<M: Model>(
    model: &M,
    safety: &[&Property<M>],
    ex: &mut Exploration<M>,
    checked_upto: &mut usize,
) -> bool {
    while *checked_upto < ex.nodes.len() {
        for p in safety {
            if !(p.check)(model, &ex.nodes[*checked_upto].state) {
                let trace = trace_to(&ex.nodes, *checked_upto);
                ex.report.violations.push(Violation {
                    property: p.name,
                    kind: PropertyKind::Always,
                    trace,
                    end_state: ex.nodes[*checked_upto].state.clone(),
                });
                ex.report.complete = false;
                return true;
            }
        }
        *checked_upto += 1;
    }
    false
}

/// Exhaustively explore `model` within `cfg`'s bounds and check every
/// property. Stops at the first safety violation (its trace is shortest
/// under BFS); AG EF properties are resolved after the forward sweep.
///
/// With `cfg.workers > 1` and [`Strategy::Bfs`], exploration runs on the
/// hash-sharded parallel engine; the report is byte-identical to the
/// sequential engine (`workers == 1`) at any worker count.
pub fn check<M>(model: &M, cfg: &CheckerConfig) -> CheckReport<M>
where
    M: Model + Sync,
    M::State: Send + Sync,
    M::Action: Send + Sync,
    M::Key: Send,
{
    let props = model.properties();
    let safety: Vec<&Property<M>> = props
        .iter()
        .filter(|p| p.kind == PropertyKind::Always)
        .collect();
    let liveness: Vec<&Property<M>> = props
        .iter()
        .filter(|p| p.kind == PropertyKind::AlwaysEventually)
        .collect();
    let track_edges = !liveness.is_empty();

    let workers = cfg.workers.max(1);
    let mut ex = if workers > 1 && cfg.strategy == Strategy::Bfs {
        explore_sharded(model, cfg, workers, &safety, track_edges)
    } else {
        explore_sequential(model, cfg, &safety, track_edges)
    };

    // Resolve AG EF properties by reverse reachability over the explored
    // graph (skipped entirely if a safety violation already stopped us).
    if ex.report.violations.is_empty() && !liveness.is_empty() {
        let live_workers = if cfg.pool_enabled() { workers } else { 1 };
        resolve_liveness(model, &mut ex, &liveness, live_workers);
    }
    ex.report
}

/// The sequential engine: one pop-expand loop, BFS or DFS.
fn explore_sequential<M: Model>(
    model: &M,
    cfg: &CheckerConfig,
    safety: &[&Property<M>],
    track_edges: bool,
) -> Exploration<M> {
    let mut ex = Exploration::new();
    let mut seen: HashMap<M::Key, usize> = HashMap::new();
    let mut frontier: VecDeque<usize> = VecDeque::new();

    for init in model.initial_states() {
        let key = model.key(&init);
        if let Admitted::New(idx) = admit(
            &mut seen,
            &mut ex,
            track_edges,
            usize::MAX,
            key,
            init,
            None,
            0,
        ) {
            frontier.push_back(idx);
        }
    }

    // Safety is checked on admission order; violations on initial states
    // must be caught too, so sweep the queue as part of the main loop.
    let mut actions: Vec<M::Action> = Vec::new();
    let mut checked_upto = 0usize;
    'explore: while let Some(idx) = match cfg.strategy {
        Strategy::Bfs => frontier.pop_front(),
        Strategy::Dfs => frontier.pop_back(),
    } {
        // Covers the popped node and, under DFS, nodes that may linger.
        if sweep_safety(model, safety, &mut ex, &mut checked_upto) {
            break 'explore;
        }

        let node_depth = ex.nodes[idx].depth;
        ex.report.max_depth_reached = ex.report.max_depth_reached.max(node_depth);
        if node_depth >= cfg.max_depth {
            ex.report.complete = false;
            continue; // left unexpanded: a frontier truncation
        }

        actions.clear();
        model.actions(&ex.nodes[idx].state, &mut actions);
        let mut truncated = false;
        for action in actions.drain(..) {
            let Some(next) = model.step(&ex.nodes[idx].state, &action) else {
                continue;
            };
            ex.report.transitions += 1;
            let key = model.key(&next);
            match admit(
                &mut seen,
                &mut ex,
                track_edges,
                cfg.max_states,
                key,
                next,
                Some((idx, action)),
                node_depth + 1,
            ) {
                Admitted::New(succ) => {
                    frontier.push_back(succ);
                    if track_edges {
                        ex.edges[idx].push(succ as u32);
                    }
                }
                Admitted::Existing(succ) => {
                    if track_edges {
                        ex.edges[idx].push(succ as u32);
                    }
                }
                Admitted::Rejected => {
                    // Out of state budget: drop this successor, mark the
                    // node as incompletely expanded.
                    truncated = true;
                    ex.report.complete = false;
                }
            }
        }
        ex.expanded[idx] = !truncated;
    }
    ex.report.distinct_states = ex.nodes.len();
    ex
}

// ---------------------------------------------------------------------------
// The hash-sharded parallel engine (see the module docs for the phase walk)
// ---------------------------------------------------------------------------

/// Sentinel reply for a candidate rejected by the state budget.
const REJECTED: u32 = u32::MAX;

/// Estimated nanoseconds per liveness predicate evaluation (they clone
/// production structs); feeds [`sweep::parallel_worthwhile`].
const LIVE_PRED_NS: u64 = 300;
/// Estimated nanoseconds per frontier node of one backward round.
const LIVE_BACK_NS: u64 = 150;
/// Steal-dispatch chunking: at most this many chunks per worker, so the
/// per-chunk deposit slots can be sized once at pool creation.
const CHUNKS_PER_WORKER: usize = 8;

/// Fixed seed for the routing hash (odd splitmix-style constant).
const ROUTE_SEED: u64 = 0x517c_c1b7_2722_0a95;

/// A tiny fixed-seed multiply-rotate hasher used ONLY to route canonical
/// keys to shards (and to pre-bucket within-tile duplicates). Dedup
/// equality still goes through the std `HashMap`, so a routing collision
/// costs one extra key comparison, never a wrong merge. Every integer
/// write funnels through the same 64-bit mix, keeping the digest
/// independent of platform byte order.
struct RouteHasher(u64);

impl RouteHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(ROUTE_SEED);
    }
}

impl std::hash::Hasher for RouteHasher {
    fn finish(&self) -> u64 {
        let mut h = self.0;
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^ (h >> 29)
    }
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(buf));
        }
    }
    fn write_u8(&mut self, v: u8) {
        self.mix(v as u64);
    }
    fn write_u16(&mut self, v: u16) {
        self.mix(v as u64);
    }
    fn write_u32(&mut self, v: u32) {
        self.mix(v as u64);
    }
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }
    fn write_u128(&mut self, v: u128) {
        self.mix(v as u64);
        self.mix((v >> 64) as u64);
    }
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
    fn write_i8(&mut self, v: i8) {
        self.mix(v as u8 as u64);
    }
    fn write_i16(&mut self, v: i16) {
        self.mix(v as u16 as u64);
    }
    fn write_i32(&mut self, v: i32) {
        self.mix(v as u32 as u64);
    }
    fn write_i64(&mut self, v: i64) {
        self.mix(v as u64);
    }
    fn write_i128(&mut self, v: i128) {
        self.write_u128(v as u128);
    }
    fn write_isize(&mut self, v: isize) {
        self.mix(v as u64);
    }
}

fn route_hash<K: std::hash::Hash>(key: &K) -> u64 {
    let mut h = RouteHasher(ROUTE_SEED);
    key.hash(&mut h);
    std::hash::Hasher::finish(&h)
}

/// Map a routing hash to a shard by fixed-point multiply — uniform for any
/// shard count, no modulo bias against power-of-two hash structure.
fn shard_of(khash: u64, shards: usize) -> usize {
    ((khash as u128 * shards as u128) >> 64) as usize
}

/// A generated successor, parked on its origin worker until its verdict
/// arrives. The state never leaves this worker.
struct Cand<M: Model> {
    pgidx: u32,
    action: M::Action,
    state: M::State,
}

/// The routed half of a candidate: what a shard needs to dedup it.
struct CandMsg<M: Model> {
    pgidx: u32,
    aidx: u32,
    origin: u32,
    /// Index into the origin's `cands` for verdict delivery.
    oidx: u32,
    khash: u64,
    key: M::Key,
}

/// Verdict payload kinds (global node index of the canonical node).
#[derive(Clone, Copy)]
enum VerdictKind {
    Admitted(u32),
    Existing(u32),
    Rejected,
}

/// A shard's answer for one candidate. `_key_back` (never read, intentionally) boomerangs duplicate and
/// rejected keys to the origin so they are freed on their allocating
/// thread (see the module docs).
struct Verdict<M: Model> {
    oidx: u32,
    what: VerdictKind,
    _key_back: Option<M::Key>,
}

/// A within-tile novel key awaiting a global index: the first candidate to
/// present the key wins; later same-key candidates ride as followers.
struct Pending<M: Model> {
    pgidx: u32,
    aidx: u32,
    origin: u32,
    oidx: u32,
    key: M::Key,
    /// `(origin, oidx, key)` of each duplicate-in-tile candidate.
    followers: Vec<(u32, u32, M::Key)>,
}

/// One shard: a partition of the `seen` map plus its tile-scoped inboxes,
/// only ever locked uncontended (worker `i` in its affine phases, or the
/// coordinator while the pool is idle at a barrier).
struct Shard<M: Model> {
    seen: HashMap<M::Key, u32>,
    /// Per-tile inbound candidate runs, each sorted by `(pgidx, aidx)`.
    inbox: Vec<Vec<CandMsg<M>>>,
    /// Tile-novel keys in global `(pgidx, aidx)` order.
    pending: Vec<Pending<M>>,
    /// Routing-hash buckets over `pending` for within-tile dedup.
    buckets: HashMap<u64, Vec<u32>>,
    /// Coordinator's reply per `pending` entry: a global index or REJECTED.
    replies: Vec<u32>,
    /// Outbound verdict runs, one per origin.
    out_verdicts: Vec<Vec<Verdict<M>>>,
}

impl<M: Model> Shard<M> {
    fn new(workers: usize) -> Self {
        Shard {
            seen: HashMap::new(),
            inbox: Vec::new(),
            pending: Vec::new(),
            buckets: HashMap::new(),
            replies: Vec::new(),
            out_verdicts: (0..workers).map(|_| Vec::new()).collect(),
        }
    }
}

/// One origin: the successor-generation side of a worker. States wait in
/// `cands`; bookkeeping drained by the coordinator at each tile harvest.
struct Origin<M: Model> {
    cands: Vec<Cand<M>>,
    /// Outbound candidate runs, one per shard.
    outbox: Vec<Vec<CandMsg<M>>>,
    /// Inbound verdict runs.
    verdict_inbox: Vec<Vec<Verdict<M>>>,
    /// `(parent, produced-successor count)` per expanded parent.
    per_parent: Vec<(u32, u32)>,
    /// `(from, to)` edge pairs in generation order (liveness runs only).
    edge_pairs: Vec<(u32, u32)>,
    /// Parents with a budget-rejected successor (incompletely expanded).
    trunc: Vec<u32>,
    /// `(gidx, property index)` of admitted nodes that failed safety.
    viols: Vec<(u32, u32)>,
    /// Per-candidate verdict slots, rebuilt each Deliver phase.
    slots: Vec<Option<VerdictKind>>,
}

impl<M: Model> Origin<M> {
    fn new(workers: usize) -> Self {
        Origin {
            cands: Vec::new(),
            outbox: (0..workers).map(|_| Vec::new()).collect(),
            verdict_inbox: Vec::new(),
            per_parent: Vec::new(),
            edge_pairs: Vec::new(),
            trunc: Vec::new(),
            viols: Vec::new(),
            slots: Vec::new(),
        }
    }
}

/// Everything the pool handler can see. Created before the pool so the
/// fixed handler can borrow it; all interior mutability is phase-disjoint
/// (every lock below is uncontended by construction — affine ownership
/// during worker phases, pool-idle barriers during coordinator phases).
struct Engine<'e, M: Model> {
    model: &'e M,
    w: usize,
    track_edges: bool,
    safety: &'e [&'e Property<M>],
    shards: Vec<Mutex<Shard<M>>>,
    origins: Vec<Mutex<Origin<M>>>,
    /// Per-worker node storage; nodes stay where they were born.
    arenas: Vec<RwLock<Vec<Node<M>>>>,
    /// Global index -> `(arena, slot)`; BFS layers are contiguous ranges.
    dir: RwLock<Vec<(u32, u32)>>,
}

/// Coordinator-only running totals (never shared with the pool).
struct Coord {
    nodes: usize,
    budget: usize,
    transitions: u64,
    max_depth_reached: u32,
    complete: bool,
    expanded: Vec<bool>,
    arena_len: Vec<u32>,
    stop: Option<Stop>,
}

/// A safety violation freeze-frame, resolved to a report in `finish`.
struct Stop {
    gidx: u32,
    prop: u32,
    /// Admission count at the sequential engine's stop point.
    distinct: usize,
}

/// Pool commands: plain bounds — all real data lives in [`Engine`].
#[derive(Clone, Copy)]
enum Phase {
    Expand { lo: u32, hi: u32 },
    Dedup,
    Apply,
    Deliver { child_depth: u32 },
    Teardown,
}

/// Per-phase worker body. `item` is the worker's own index: every phase
/// dispatches [`Dispatch::Affine`], so shard `i` and origin `i` are only
/// ever touched from pool worker `i`'s OS thread.
fn engine_worker<M: Model>(eng: &Engine<'_, M>, phase: Phase, item: usize) {
    match phase {
        Phase::Expand { lo, hi } => expand_chunk(eng, lo, hi, item),
        Phase::Dedup => dedup_shard(eng, item),
        Phase::Apply => apply_shard(eng, item),
        Phase::Deliver { child_depth } => deliver_origin(eng, child_depth, item),
        Phase::Teardown => teardown_shard(eng, item),
    }
}

/// Expand this worker's contiguous sub-range of the tile's parents:
/// generate successors, park the states locally, route the keys.
fn expand_chunk<M: Model>(eng: &Engine<'_, M>, lo: u32, hi: u32, item: usize) {
    let w = eng.w as u32;
    let per = (hi - lo).div_ceil(w);
    let clo = lo + item as u32 * per;
    let chi = (clo + per).min(hi);
    if clo >= chi {
        return;
    }
    let mut org = eng.origins[item].lock().expect("origin lock");
    {
        let dir = eng.dir.read().expect("dir lock");
        let arenas: Vec<_> = eng
            .arenas
            .iter()
            .map(|a| a.read().expect("arena lock"))
            .collect();
        let mut actions: Vec<M::Action> = Vec::new();
        for p in clo..chi {
            let (o, slot) = dir[p as usize];
            let state = &arenas[o as usize][slot as usize].state;
            actions.clear();
            eng.model.actions(state, &mut actions);
            let mut aidx = 0u32;
            for action in actions.drain(..) {
                let Some(next) = eng.model.step(state, &action) else {
                    continue;
                };
                let key = eng.model.key(&next);
                let khash = route_hash(&key);
                let si = shard_of(khash, eng.w);
                let oidx = org.cands.len() as u32;
                org.cands.push(Cand {
                    pgidx: p,
                    action,
                    state: next,
                });
                org.outbox[si].push(CandMsg {
                    pgidx: p,
                    aidx,
                    origin: item as u32,
                    oidx,
                    khash,
                    key,
                });
                aidx += 1;
            }
            org.per_parent.push((p, aidx));
        }
    }
    // Batched sends: one run per non-empty shard, sorted by construction.
    for si in 0..eng.w {
        if !org.outbox[si].is_empty() {
            let run = std::mem::take(&mut org.outbox[si]);
            eng.shards[si].lock().expect("shard lock").inbox.push(run);
        }
    }
}

/// Merge this shard's inbound runs in global `(pgidx, aidx)` order and
/// split them into already-seen verdicts and ordered novel pendings.
fn dedup_shard<M: Model>(eng: &Engine<'_, M>, item: usize) {
    let mut sh = eng.shards[item].lock().expect("shard lock");
    let runs = std::mem::take(&mut sh.inbox);
    let Shard {
        seen,
        pending,
        buckets,
        out_verdicts,
        ..
    } = &mut *sh;
    let mut iters: Vec<_> = runs
        .into_iter()
        .map(|r| r.into_iter().peekable())
        .collect();
    loop {
        // K-way merge over at most `workers` runs; (pgidx, aidx) pairs are
        // globally unique, so the merge order is scheduling-independent.
        let mut best: Option<(usize, (u32, u32))> = None;
        for (b, it) in iters.iter_mut().enumerate() {
            if let Some(m) = it.peek() {
                let k = (m.pgidx, m.aidx);
                let better = match best {
                    None => true,
                    Some((_, bk)) => k < bk,
                };
                if better {
                    best = Some((b, k));
                }
            }
        }
        let Some((b, _)) = best else { break };
        let msg = iters[b].next().expect("peeked run is non-empty");
        if let Some(&g) = seen.get(&msg.key) {
            out_verdicts[msg.origin as usize].push(Verdict {
                oidx: msg.oidx,
                what: VerdictKind::Existing(g),
                _key_back: Some(msg.key),
            });
            continue;
        }
        let bucket = buckets.entry(msg.khash).or_default();
        let mut winner: Option<u32> = None;
        for &pi in bucket.iter() {
            if pending[pi as usize].key == msg.key {
                winner = Some(pi);
                break;
            }
        }
        match winner {
            Some(pi) => {
                pending[pi as usize]
                    .followers
                    .push((msg.origin, msg.oidx, msg.key));
            }
            None => {
                let pi = pending.len() as u32;
                bucket.push(pi);
                pending.push(Pending {
                    pgidx: msg.pgidx,
                    aidx: msg.aidx,
                    origin: msg.origin,
                    oidx: msg.oidx,
                    key: msg.key,
                    followers: Vec::new(),
                });
            }
        }
    }
}

/// Coordinator: assign global node indices to every shard's pendings in
/// global `(pgidx, aidx)` order — exactly the sequential admission order —
/// applying the `max_states` budget. Runs while the pool idles, so the
/// shard locks are uncontended.
fn assign_tile<M: Model>(eng: &Engine<'_, M>, coord: &mut Coord) -> (u32, Vec<u32>) {
    let tile_base = coord.nodes as u32;
    let mut admitted: Vec<u32> = Vec::new();
    let mut guards: Vec<_> = eng
        .shards
        .iter()
        .map(|s| s.lock().expect("shard lock"))
        .collect();
    let mut heads = vec![0usize; eng.w];
    let mut dir = eng.dir.write().expect("dir lock");
    loop {
        let mut best: Option<(usize, (u32, u32))> = None;
        for (si, sg) in guards.iter().enumerate() {
            if let Some(p) = sg.pending.get(heads[si]) {
                let k = (p.pgidx, p.aidx);
                let better = match best {
                    None => true,
                    Some((_, bk)) => k < bk,
                };
                if better {
                    best = Some((si, k));
                }
            }
        }
        let Some((si, _)) = best else { break };
        let sh = &mut *guards[si];
        let pend = &sh.pending[heads[si]];
        heads[si] += 1;
        if coord.nodes < coord.budget {
            let gidx = coord.nodes as u32;
            coord.nodes += 1;
            dir.push((pend.origin, coord.arena_len[pend.origin as usize]));
            coord.arena_len[pend.origin as usize] += 1;
            coord.expanded.push(false);
            admitted.push(pend.pgidx);
            sh.replies.push(gidx);
        } else {
            coord.complete = false;
            sh.replies.push(REJECTED);
        }
    }
    (tile_base, admitted)
}

/// Turn the coordinator's replies into per-origin verdicts; admitted keys
/// enter this shard's `seen` map, everything else boomerangs home.
fn apply_shard<M: Model>(eng: &Engine<'_, M>, item: usize) {
    let mut sh = eng.shards[item].lock().expect("shard lock");
    let pending = std::mem::take(&mut sh.pending);
    let replies = std::mem::take(&mut sh.replies);
    sh.buckets.clear();
    debug_assert_eq!(pending.len(), replies.len());
    for (pend, &g) in pending.into_iter().zip(replies.iter()) {
        if g == REJECTED {
            sh.out_verdicts[pend.origin as usize].push(Verdict {
                oidx: pend.oidx,
                what: VerdictKind::Rejected,
                _key_back: Some(pend.key),
            });
            // The budget rejected the winner, so within-tile duplicates of
            // it would also have found nothing in `seen`: reject them too.
            for (o, oidx, key) in pend.followers {
                sh.out_verdicts[o as usize].push(Verdict {
                    oidx,
                    what: VerdictKind::Rejected,
                    _key_back: Some(key),
                });
            }
        } else {
            sh.out_verdicts[pend.origin as usize].push(Verdict {
                oidx: pend.oidx,
                what: VerdictKind::Admitted(g),
                _key_back: None,
            });
            for (o, oidx, key) in pend.followers {
                sh.out_verdicts[o as usize].push(Verdict {
                    oidx,
                    what: VerdictKind::Existing(g),
                    _key_back: Some(key),
                });
            }
            sh.seen.insert(pend.key, g);
        }
    }
    for o in 0..eng.w {
        if !sh.out_verdicts[o].is_empty() {
            let run = std::mem::take(&mut sh.out_verdicts[o]);
            eng.origins[o]
                .lock()
                .expect("origin lock")
                .verdict_inbox
                .push(run);
        }
    }
}

/// Consume this origin's verdicts: admitted states move into the local
/// arena (checked against safety), duplicates and their boomeranged keys
/// drop here — on the thread that allocated them.
fn deliver_origin<M: Model>(eng: &Engine<'_, M>, child_depth: u32, item: usize) {
    let mut org = eng.origins[item].lock().expect("origin lock");
    let runs = std::mem::take(&mut org.verdict_inbox);
    let ncands = org.cands.len();
    org.slots.clear();
    org.slots.resize(ncands, None);
    for run in runs {
        for v in run {
            org.slots[v.oidx as usize] = Some(v.what);
        }
    }
    let mut arena = eng.arenas[item].write().expect("arena lock");
    let Origin {
        cands,
        slots,
        edge_pairs,
        trunc,
        viols,
        ..
    } = &mut *org;
    for (oidx, cand) in cands.drain(..).enumerate() {
        match slots[oidx].expect("every candidate receives a verdict") {
            VerdictKind::Admitted(g) => {
                for (pi, prop) in eng.safety.iter().enumerate() {
                    if !(prop.check)(eng.model, &cand.state) {
                        viols.push((g, pi as u32));
                        break;
                    }
                }
                if eng.track_edges {
                    edge_pairs.push((cand.pgidx, g));
                }
                // Arena slot order == assignment order: both are global
                // (pgidx, aidx) order restricted to this origin.
                arena.push(Node {
                    state: cand.state,
                    parent: Some((cand.pgidx as usize, cand.action)),
                    depth: child_depth,
                });
            }
            VerdictKind::Existing(g) => {
                if eng.track_edges {
                    edge_pairs.push((cand.pgidx, g));
                }
            }
            VerdictKind::Rejected => trunc.push(cand.pgidx),
        }
    }
}

/// Free each shard's maps on the worker thread that owns them, not on
/// whatever thread happens to drop the engine.
fn teardown_shard<M: Model>(eng: &Engine<'_, M>, item: usize) {
    let mut sh = eng.shards[item].lock().expect("shard lock");
    sh.seen = HashMap::new();
    sh.buckets = HashMap::new();
}

/// Coordinator: drain per-origin bookkeeping after a pooled tile. On a
/// safety violation, trim the totals to the sequential stop point.
fn harvest_tile<M: Model>(
    eng: &Engine<'_, M>,
    coord: &mut Coord,
    lo: u32,
    hi: u32,
    tile_base: u32,
    admitted: &[u32],
) {
    let mut viol: Option<(u32, u32)> = None;
    let mut per_parent: Vec<(u32, u32)> = Vec::new();
    let mut truncs: Vec<u32> = Vec::new();
    for origin in &eng.origins {
        let mut org = origin.lock().expect("origin lock");
        for v in org.viols.drain(..) {
            let better = match viol {
                None => true,
                Some(b) => v < b,
            };
            if better {
                viol = Some(v);
            }
        }
        per_parent.append(&mut org.per_parent);
        truncs.append(&mut org.trunc);
    }
    if let Some((g, pi)) = viol {
        // The sequential engine detects a violation at the first pop after
        // the violator's parent finished expanding, so only admissions and
        // transitions from parents up to and including that parent count
        // (`admitted` is sorted by parent, so the admissions are a prefix).
        let parent = admitted[(g - tile_base) as usize];
        let prefix = admitted.iter().take_while(|&&pg| pg <= parent).count();
        for &(pg, cnt) in &per_parent {
            if pg <= parent {
                coord.transitions += cnt as u64;
            }
        }
        coord.complete = false;
        coord.stop = Some(Stop {
            gidx: g,
            prop: pi,
            distinct: tile_base as usize + prefix,
        });
    } else {
        for &(_, cnt) in &per_parent {
            coord.transitions += cnt as u64;
        }
        for e in &mut coord.expanded[lo as usize..hi as usize] {
            *e = true;
        }
        for &p in &truncs {
            coord.expanded[p as usize] = false;
        }
    }
}

/// Admit the initial states on the coordinator (they bypass the budget,
/// exactly like the sequential engine's `usize::MAX` admission).
fn inline_inits<M: Model>(eng: &Engine<'_, M>, coord: &mut Coord, sharded: bool) {
    let mut viol: Option<(u32, u32)> = None;
    for init in eng.model.initial_states() {
        let key = eng.model.key(&init);
        // Unsharded runs keep every key in shard 0 (see `inline_tile_direct`).
        let si = if sharded {
            shard_of(route_hash(&key), eng.w)
        } else {
            0
        };
        let mut sh = eng.shards[si].lock().expect("shard lock");
        if let Entry::Vacant(e) = sh.seen.entry(key) {
            let g = coord.nodes as u32;
            coord.nodes += 1;
            e.insert(g);
            eng.dir
                .write()
                .expect("dir lock")
                .push((0, coord.arena_len[0]));
            coord.arena_len[0] += 1;
            coord.expanded.push(false);
            if viol.is_none() {
                for (pi, prop) in eng.safety.iter().enumerate() {
                    if !(prop.check)(eng.model, &init) {
                        viol = Some((g, pi as u32));
                        break;
                    }
                }
            }
            eng.arenas[0].write().expect("arena lock").push(Node {
                state: init,
                parent: None,
                depth: 0,
            });
        }
    }
    if let Some((g, pi)) = viol {
        coord.complete = false;
        coord.stop = Some(Stop {
            gidx: g,
            prop: pi,
            distinct: coord.nodes,
        });
    }
}

/// One parent's routed successors: `(action, state, key, route hash)`.
type RoutedSuccs<M> = Vec<(
    <M as Model>::Action,
    <M as Model>::State,
    <M as Model>::Key,
    u64,
)>;

/// Expand a tile too small to amortise the pool barriers inline on the
/// coordinator, with immediate admission. Successors are processed in
/// strict `(parent, action)` order against the shared shard maps, so the
/// verdicts — and therefore the report — match the pooled path exactly.
fn inline_tile<M: Model>(eng: &Engine<'_, M>, coord: &mut Coord, lo: u32, hi: u32, depth: u32) {
    // Every lock in the engine is free here (the pool is parked between
    // phases), so take them all once per tile rather than per successor:
    // the inline path must cost the same as the sequential engine, not the
    // sequential engine plus W lock round-trips per transition.
    let mut dir = eng.dir.write().expect("dir lock");
    let mut shard_guards: Vec<_> = eng
        .shards
        .iter()
        .map(|s| s.lock().expect("shard lock"))
        .collect();
    let mut a0 = eng.arenas[0].write().expect("arena lock");
    let rest: Vec<_> = eng.arenas[1..]
        .iter()
        .map(|a| a.read().expect("arena lock"))
        .collect();
    let mut actions: Vec<M::Action> = Vec::new();
    let mut succs: RoutedSuccs<M> = Vec::new();
    let mut edge_buf: Vec<(u32, u32)> = Vec::new();
    let mut viol: Option<(u32, u32)> = None;
    for p in lo..hi {
        let (o, slot) = dir[p as usize];
        {
            // Parents admitted by pooled tiles live in the workers' arenas;
            // everything this inline path admits goes into arena 0, so the
            // immutable parent borrow must end before the pushes below.
            let state = if o == 0 {
                &a0[slot as usize].state
            } else {
                &rest[o as usize - 1][slot as usize].state
            };
            actions.clear();
            eng.model.actions(state, &mut actions);
            for action in actions.drain(..) {
                if let Some(next) = eng.model.step(state, &action) {
                    let key = eng.model.key(&next);
                    let khash = route_hash(&key);
                    succs.push((action, next, key, khash));
                }
            }
        }
        let mut truncated = false;
        for (action, next, key, khash) in succs.drain(..) {
            coord.transitions += 1;
            let si = shard_of(khash, eng.w);
            match shard_guards[si].seen.entry(key) {
                Entry::Occupied(e) => {
                    if eng.track_edges {
                        edge_buf.push((p, *e.get()));
                    }
                }
                Entry::Vacant(e) => {
                    if coord.nodes >= coord.budget {
                        truncated = true;
                        coord.complete = false;
                        continue;
                    }
                    let g = coord.nodes as u32;
                    coord.nodes += 1;
                    e.insert(g);
                    dir.push((0, coord.arena_len[0]));
                    coord.arena_len[0] += 1;
                    coord.expanded.push(false);
                    if eng.track_edges {
                        edge_buf.push((p, g));
                    }
                    if viol.is_none() {
                        for (pi, prop) in eng.safety.iter().enumerate() {
                            if !(prop.check)(eng.model, &next) {
                                viol = Some((g, pi as u32));
                                break;
                            }
                        }
                    }
                    a0.push(Node {
                        state: next,
                        parent: Some((p as usize, action)),
                        depth: depth + 1,
                    });
                }
            }
        }
        coord.expanded[p as usize] = !truncated;
        if viol.is_some() {
            // Stop expanding further parents: the sequential engine breaks
            // at its next pop, before their admissions.
            break;
        }
    }
    drop(rest);
    drop(a0);
    drop(shard_guards);
    drop(dir);
    if !edge_buf.is_empty() {
        eng.origins[0]
            .lock()
            .expect("origin lock")
            .edge_pairs
            .append(&mut edge_buf);
    }
    if let Some((g, pi)) = viol {
        coord.complete = false;
        coord.stop = Some(Stop {
            gidx: g,
            prop: pi,
            distinct: coord.nodes,
        });
    }
}

/// The whole-run inline loop for pool-disabled runs ([`PoolPolicy::Auto`]
/// on a host without real parallelism). Nothing is ever routed: every node
/// lives in arena 0 and every key deduplicates through shard 0's map, so
/// per successor this does exactly the sequential engine's work — one
/// hash, one map probe — with none of the sharding machinery's cost.
/// Admission order is the same strict `(parent, action)` order, so the
/// report still matches the pooled engine byte for byte.
fn inline_tile_direct<M: Model>(
    eng: &Engine<'_, M>,
    coord: &mut Coord,
    lo: u32,
    hi: u32,
    depth: u32,
) {
    let mut dir = eng.dir.write().expect("dir lock");
    let mut sh0 = eng.shards[0].lock().expect("shard lock");
    let mut a0 = eng.arenas[0].write().expect("arena lock");
    let mut actions: Vec<M::Action> = Vec::new();
    let mut edge_buf: Vec<(u32, u32)> = Vec::new();
    let mut viol: Option<(u32, u32)> = None;
    for p in lo..hi {
        let (o, slot) = dir[p as usize];
        debug_assert_eq!(o, 0, "pool-disabled runs admit only into arena 0");
        actions.clear();
        eng.model.actions(&a0[slot as usize].state, &mut actions);
        let mut truncated = false;
        for action in actions.drain(..) {
            // Re-borrow the parent per step so the arena stays pushable.
            let Some(next) = eng.model.step(&a0[slot as usize].state, &action) else {
                continue;
            };
            coord.transitions += 1;
            let key = eng.model.key(&next);
            match sh0.seen.entry(key) {
                Entry::Occupied(e) => {
                    if eng.track_edges {
                        edge_buf.push((p, *e.get()));
                    }
                }
                Entry::Vacant(e) => {
                    if coord.nodes >= coord.budget {
                        truncated = true;
                        coord.complete = false;
                        continue;
                    }
                    let g = coord.nodes as u32;
                    coord.nodes += 1;
                    e.insert(g);
                    dir.push((0, coord.arena_len[0]));
                    coord.arena_len[0] += 1;
                    coord.expanded.push(false);
                    if eng.track_edges {
                        edge_buf.push((p, g));
                    }
                    if viol.is_none() {
                        for (pi, prop) in eng.safety.iter().enumerate() {
                            if !(prop.check)(eng.model, &next) {
                                viol = Some((g, pi as u32));
                                break;
                            }
                        }
                    }
                    a0.push(Node {
                        state: next,
                        parent: Some((p as usize, action)),
                        depth: depth + 1,
                    });
                }
            }
        }
        coord.expanded[p as usize] = !truncated;
        if viol.is_some() {
            // Same stop point as the sequential engine's next pop.
            break;
        }
    }
    drop(a0);
    drop(sh0);
    drop(dir);
    if !edge_buf.is_empty() {
        eng.origins[0]
            .lock()
            .expect("origin lock")
            .edge_pairs
            .append(&mut edge_buf);
    }
    if let Some((g, pi)) = viol {
        coord.complete = false;
        coord.stop = Some(Stop {
            gidx: g,
            prop: pi,
            distinct: coord.nodes,
        });
    }
}

/// Gather the engine's arenas into admission-order `nodes` and build the
/// final [`Exploration`]; on a violation stop, trim to the sequential
/// engine's stop point.
fn finish<M: Model>(eng: Engine<'_, M>, coord: Coord) -> Exploration<M> {
    let Engine {
        safety,
        track_edges,
        origins,
        arenas,
        dir,
        ..
    } = eng;
    let dir = dir.into_inner().expect("dir lock");
    let distinct = coord.stop.as_ref().map_or(coord.nodes, |s| s.distinct);
    let mut its: Vec<_> = arenas
        .into_iter()
        .map(|a| a.into_inner().expect("arena lock").into_iter())
        .collect();
    let mut nodes: Vec<Node<M>> = Vec::with_capacity(distinct);
    // Global order interleaves the arenas; each arena is already in global
    // order restricted to itself, so a per-arena cursor suffices.
    for &(o, _) in dir.iter().take(distinct) {
        nodes.push(its[o as usize].next().expect("arena directory consistent"));
    }
    drop(its);
    let mut ex = Exploration::new();
    ex.report.distinct_states = distinct;
    ex.report.transitions = coord.transitions;
    ex.report.max_depth_reached = coord.max_depth_reached;
    ex.report.complete = coord.complete;
    if let Some(s) = &coord.stop {
        ex.report.violations.push(Violation {
            property: safety[s.prop as usize].name,
            kind: PropertyKind::Always,
            trace: trace_to(&nodes, s.gidx as usize),
            end_state: nodes[s.gidx as usize].state.clone(),
        });
    }
    if track_edges && coord.stop.is_none() {
        ex.edges = vec![Vec::new(); distinct];
        for origin in origins {
            let org = origin.into_inner().expect("origin lock");
            // One origin expanded any given parent, so each adjacency row
            // fills from a single list segment, preserving action order.
            for (from, to) in org.edge_pairs {
                ex.edges[from as usize].push(to);
            }
        }
    }
    ex.nodes = nodes;
    ex.expanded = coord.expanded;
    ex.expanded.truncate(distinct);
    ex
}

/// The hash-sharded parallel BFS engine (see the module docs). Layer by
/// layer, tile by tile: Expand / Dedup / assign / Apply / Deliver, with
/// small tiles running inline on the coordinator.
fn explore_sharded<M>(
    model: &M,
    cfg: &CheckerConfig,
    workers: usize,
    safety: &[&Property<M>],
    track_edges: bool,
) -> Exploration<M>
where
    M: Model + Sync,
    M::State: Send + Sync,
    M::Action: Send + Sync,
    M::Key: Send,
{
    let w = workers;
    let eng = Engine {
        model,
        w,
        track_edges,
        safety,
        shards: (0..w).map(|_| Mutex::new(Shard::new(w))).collect(),
        origins: (0..w).map(|_| Mutex::new(Origin::new(w))).collect(),
        arenas: (0..w).map(|_| RwLock::new(Vec::new())).collect(),
        dir: RwLock::new(Vec::new()),
    };
    let mut coord = Coord {
        nodes: 0,
        // Global indices are u32; the directory could not address more.
        budget: cfg.max_states.min(u32::MAX as usize - 1),
        transitions: 0,
        max_depth_reached: 0,
        complete: true,
        expanded: Vec::new(),
        arena_len: vec![0; w],
        stop: None,
    };
    // Under `PoolPolicy::Auto` on a host without real parallelism, keep the
    // whole exploration on the coordinator: same shards, same admission
    // order, same report — minus the routing/merge/barrier machinery that
    // only pays for itself when workers genuinely run concurrently.
    let pooled_ok = cfg.pool_enabled();
    let pw = if pooled_ok { w } else { 1 };
    let handler = |_worker: usize, phase: &Phase, item: usize| engine_worker(&eng, *phase, item);
    sweep::pool_scope(pw, &handler, |pool| {
        inline_inits(&eng, &mut coord, pooled_ok);
        // Tiles bound how many parked successors exist before a merge: a
        // multi-million-node layer at branching factor ~20 would otherwise
        // materialise the whole next layer twice over.
        let tile_len = ((w * 512).max(1024)) as u32;
        let inline_below = (w * 4) as u32;
        let mut lo = 0u32;
        let mut hi = coord.nodes as u32;
        let mut depth = 0u32;
        'rounds: while lo < hi && coord.stop.is_none() {
            coord.max_depth_reached = coord.max_depth_reached.max(depth);
            if depth >= cfg.max_depth {
                coord.complete = false;
                break 'rounds;
            }
            let mut tlo = lo;
            while tlo < hi {
                let thi = (tlo + tile_len).min(hi);
                if !pooled_ok {
                    inline_tile_direct(&eng, &mut coord, tlo, thi, depth);
                } else if thi - tlo < inline_below {
                    inline_tile(&eng, &mut coord, tlo, thi, depth);
                } else {
                    pool.run(Phase::Expand { lo: tlo, hi: thi }, w, Dispatch::Affine);
                    pool.run(Phase::Dedup, w, Dispatch::Affine);
                    let (tile_base, admitted) = assign_tile(&eng, &mut coord);
                    pool.run(Phase::Apply, w, Dispatch::Affine);
                    pool.run(
                        Phase::Deliver {
                            child_depth: depth + 1,
                        },
                        w,
                        Dispatch::Affine,
                    );
                    harvest_tile(&eng, &mut coord, tlo, thi, tile_base, &admitted);
                }
                if coord.stop.is_some() {
                    break 'rounds;
                }
                tlo = thi;
            }
            lo = hi;
            hi = coord.nodes as u32;
            depth += 1;
        }
        if pooled_ok {
            pool.run(Phase::Teardown, w, Dispatch::Affine);
        } else {
            // Inline exploration allocated everything on this thread; free
            // the shard maps here too.
            for si in 0..w {
                teardown_shard(&eng, si);
            }
        }
    });
    finish(eng, coord)
}

// ---------------------------------------------------------------------------
// Liveness: pooled reverse reachability
// ---------------------------------------------------------------------------

/// Plain-data commands for the liveness pool; per-round data is swapped
/// through [`LiveShared`]'s owned slots rather than carried here.
enum LiveCmd<M: Model> {
    /// Scan node chunk `item` (chunk length `chunk`, `n` nodes total) for
    /// states satisfying `pred`; deposit the hits in slot `item`.
    Seeds {
        pred: fn(&M, &M::State) -> bool,
        n: u32,
        chunk: u32,
    },
    /// Expand frontier chunk `item` over the reversed edges, collecting
    /// unmarked predecessors into slot `item`.
    Backward { chunk: u32 },
}

/// Shared read-mostly state for the liveness pool handler.
struct LiveShared<'a, M: Model> {
    model: &'a M,
    nodes: &'a [Node<M>],
    rev: &'a [Vec<u32>],
    /// Swapped in by the coordinator for the duration of a pooled round.
    marked: RwLock<Vec<bool>>,
    /// Ditto: the current backward frontier.
    frontier: RwLock<Vec<u32>>,
    /// Per-chunk deposit slots — results concatenate in chunk order, so
    /// steal scheduling cannot reorder them.
    hits: Vec<Mutex<Vec<u32>>>,
}

fn live_worker<M: Model>(shared: &LiveShared<'_, M>, cmd: &LiveCmd<M>, item: usize) {
    match *cmd {
        LiveCmd::Seeds { pred, n, chunk } => {
            let lo = item as u32 * chunk;
            let hi = (lo + chunk).min(n);
            let mut out = Vec::new();
            for i in lo..hi {
                if pred(shared.model, &shared.nodes[i as usize].state) {
                    out.push(i);
                }
            }
            *shared.hits[item].lock().expect("hits lock") = out;
        }
        LiveCmd::Backward { chunk } => {
            let marked = shared.marked.read().expect("marked lock");
            let frontier = shared.frontier.read().expect("frontier lock");
            let lo = item * chunk as usize;
            let hi = (lo + chunk as usize).min(frontier.len());
            let mut out = Vec::new();
            for &i in &frontier[lo..hi] {
                for &p in &shared.rev[i as usize] {
                    if !marked[p as usize] {
                        out.push(p);
                    }
                }
            }
            *shared.hits[item].lock().expect("hits lock") = out;
        }
    }
}

/// Resolve every AG EF property over the explored graph by reverse
/// reachability; bound-truncated regions are filed as undetermined. Goal
/// seeding and large frontier rounds fan out over a persistent pool;
/// rounds below [`sweep::parallel_worthwhile`] stay on the coordinator.
fn resolve_liveness<M>(
    model: &M,
    ex: &mut Exploration<M>,
    liveness: &[&Property<M>],
    workers: usize,
) where
    M: Model + Sync,
    M::State: Send + Sync,
    M::Action: Sync,
{
    let Exploration {
        report,
        nodes,
        edges,
        expanded,
    } = ex;
    let nodes: &[Node<M>] = nodes;
    let n = nodes.len();
    let mut rev: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (from, succs) in edges.iter().enumerate() {
        for &to in succs {
            rev[to as usize].push(from as u32);
        }
    }
    // "Unknown" region: states that can reach an unexpanded state may have
    // had their path to the goal truncated.
    let truncated_seeds: Vec<u32> = (0..n)
        .filter(|&i| !expanded[i])
        .map(|i| i as u32)
        .collect();

    let w = workers.max(1);
    let nslots = w * CHUNKS_PER_WORKER;
    let shared = LiveShared {
        model,
        nodes,
        rev: &rev,
        marked: RwLock::new(Vec::new()),
        frontier: RwLock::new(Vec::new()),
        hits: (0..nslots).map(|_| Mutex::new(Vec::new())).collect(),
    };
    let handler = |_worker: usize, cmd: &LiveCmd<M>, item: usize| live_worker(&shared, cmd, item);
    sweep::pool_scope(w, &handler, |pool| {
        let collect_hits = |nchunks: usize| -> Vec<u32> {
            let mut out = Vec::new();
            for slot in shared.hits.iter().take(nchunks) {
                out.append(&mut slot.lock().expect("hits lock"));
            }
            out
        };
        // Indices of nodes satisfying `pred`, in index order.
        let seed_hits = |pred: fn(&M, &M::State) -> bool| -> Vec<u32> {
            if !sweep::parallel_worthwhile(n, w, LIVE_PRED_NS, sweep::POOL_DISPATCH_NS) {
                return (0..n)
                    .filter(|&i| pred(model, &nodes[i].state))
                    .map(|i| i as u32)
                    .collect();
            }
            let chunk = n.div_ceil(nslots).max(1);
            let nchunks = n.div_ceil(chunk);
            pool.run(
                LiveCmd::Seeds {
                    pred,
                    n: n as u32,
                    chunk: chunk as u32,
                },
                nchunks,
                Dispatch::Steal,
            );
            collect_hits(nchunks)
        };
        // Mark the backward closure of `seeds` over the reversed edges.
        // The final marked set is frontier-order independent, so every
        // worker count (and the inline fallback) agrees.
        let mark_backward = |seeds: Vec<u32>| -> Vec<bool> {
            let mut marked = vec![false; n];
            for &s in &seeds {
                marked[s as usize] = true;
            }
            let mut frontier = seeds;
            while !frontier.is_empty() {
                let pooled = sweep::parallel_worthwhile(
                    frontier.len(),
                    w,
                    LIVE_BACK_NS,
                    sweep::POOL_DISPATCH_NS,
                );
                let candidates: Vec<u32> = if pooled {
                    let len = frontier.len();
                    let chunk = len.div_ceil(nslots).max(1);
                    let nchunks = len.div_ceil(chunk);
                    *shared.marked.write().expect("marked lock") = std::mem::take(&mut marked);
                    *shared.frontier.write().expect("frontier lock") =
                        std::mem::take(&mut frontier);
                    pool.run(
                        LiveCmd::Backward {
                            chunk: chunk as u32,
                        },
                        nchunks,
                        Dispatch::Steal,
                    );
                    marked = std::mem::take(&mut *shared.marked.write().expect("marked lock"));
                    frontier =
                        std::mem::take(&mut *shared.frontier.write().expect("frontier lock"));
                    frontier.clear();
                    collect_hits(nchunks)
                } else {
                    let out: Vec<u32> = frontier
                        .iter()
                        .flat_map(|&i| {
                            shared.rev[i as usize]
                                .iter()
                                .copied()
                                .filter(|&p| !marked[p as usize])
                        })
                        .collect();
                    frontier.clear();
                    out
                };
                for p in candidates {
                    if !marked[p as usize] {
                        marked[p as usize] = true;
                        frontier.push(p);
                    }
                }
            }
            marked
        };

        let unknown = mark_backward(truncated_seeds);
        for prop in liveness {
            let good = mark_backward(seed_hits(prop.check));
            let mut worst: Option<usize> = None;
            for i in 0..n {
                if good[i] {
                    continue;
                }
                if unknown[i] {
                    report.undetermined += 1;
                } else {
                    // Definite violation: fully explored closure, no goal.
                    worst = match worst {
                        Some(wi) if nodes[wi].depth <= nodes[i].depth => Some(wi),
                        _ => Some(i),
                    };
                }
            }
            if let Some(i) = worst {
                report.violations.push(Violation {
                    property: prop.name,
                    kind: PropertyKind::AlwaysEventually,
                    trace: trace_to(nodes, i),
                    end_state: nodes[i].state.clone(),
                });
            }
        }
    });
}


#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Property, PropertyKind};

    /// A counter that may increment, decrement (not below zero, and only
    /// when `down` is set), or jump into a sink at 7. Safety: value != 5
    /// (violated). AG EF: value can return to 0 (violated by the sink).
    struct Counter {
        bound: u32,
        forbidden: Option<u32>,
        sink_at: Option<u32>,
        down: bool,
    }

    impl Model for Counter {
        type State = (u32, bool); // (value, sunk)
        type Action = i8;
        type Key = (u32, bool);

        fn initial_states(&self) -> Vec<Self::State> {
            vec![(0, false)]
        }

        fn actions(&self, state: &Self::State, out: &mut Vec<i8>) {
            if state.1 {
                return; // sunk: no actions
            }
            if state.0 < self.bound {
                out.push(1);
            }
            if self.down && state.0 > 0 {
                out.push(-1);
            }
            if Some(state.0) == self.sink_at {
                out.push(0);
            }
        }

        fn step(&self, state: &Self::State, action: &i8) -> Option<Self::State> {
            Some(match action {
                0 => (state.0, true),
                d => ((state.0 as i64 + *d as i64) as u32, false),
            })
        }

        fn key(&self, state: &Self::State) -> Self::Key {
            *state
        }

        fn properties(&self) -> Vec<Property<Self>> {
            let mut props: Vec<Property<Self>> = vec![];
            if self.forbidden.is_some() {
                props.push(Property {
                    name: "never-forbidden",
                    kind: PropertyKind::Always,
                    check: |m, s| Some(s.0) != m.forbidden,
                });
            }
            props.push(Property {
                name: "can-return-to-zero",
                kind: PropertyKind::AlwaysEventually,
                check: |_, s| s.0 == 0 && !s.1,
            });
            props
        }
    }

    /// A wide model: states are bitsets of `bits` bits, actions set any
    /// unset bit, so layer `d` holds `C(bits, d)` states — enough breadth
    /// to push the parallel engine through its threaded generation path.
    /// Safety: the `forbidden` mask is never an exact state. AG EF: a
    /// designated `goal` bit can always still be set (fails for states
    /// where `goal` cannot be reached because the mask is full — never
    /// happens — so the property holds; with `forbidden` on a mid-layer
    /// state the safety side trips mid-exploration).
    struct BitSpread {
        bits: u32,
        forbidden: Option<u32>,
    }

    impl Model for BitSpread {
        type State = u32;
        type Action = u32;
        type Key = u32;

        fn initial_states(&self) -> Vec<u32> {
            vec![0]
        }

        fn actions(&self, state: &u32, out: &mut Vec<u32>) {
            for b in 0..self.bits {
                if state & (1 << b) == 0 {
                    out.push(b);
                }
            }
        }

        fn step(&self, state: &u32, action: &u32) -> Option<u32> {
            Some(state | (1 << action))
        }

        fn key(&self, state: &u32) -> u32 {
            *state
        }

        fn properties(&self) -> Vec<Property<Self>> {
            let mut props: Vec<Property<Self>> = vec![Property {
                name: "full-set-reachable",
                kind: PropertyKind::AlwaysEventually,
                check: |m, s| *s == (1u32 << m.bits) - 1,
            }];
            if self.forbidden.is_some() {
                props.push(Property {
                    name: "never-forbidden-mask",
                    kind: PropertyKind::Always,
                    check: |m, s| Some(*s) != m.forbidden,
                });
            }
            props
        }
    }

    fn assert_reports_equal<M: Model>(a: &CheckReport<M>, b: &CheckReport<M>)
    where
        M::Action: PartialEq + std::fmt::Debug,
    {
        assert_eq!(a.distinct_states, b.distinct_states, "distinct states");
        assert_eq!(a.transitions, b.transitions, "transitions");
        assert_eq!(a.max_depth_reached, b.max_depth_reached, "max depth");
        assert_eq!(a.complete, b.complete, "complete flag");
        assert_eq!(a.undetermined, b.undetermined, "undetermined count");
        assert_eq!(a.violations.len(), b.violations.len(), "violation count");
        for (va, vb) in a.violations.iter().zip(&b.violations) {
            assert_eq!(va.property, vb.property);
            assert_eq!(va.kind, vb.kind);
            assert_eq!(va.trace, vb.trace, "counterexample trace");
        }
    }

    #[test]
    fn bfs_finds_shortest_safety_counterexample() {
        let m = Counter {
            bound: 10,
            forbidden: Some(5),
            sink_at: None,
            down: true,
        };
        let r = check(&m, &CheckerConfig::default());
        assert!(!r.passed());
        let v = &r.violations[0];
        assert_eq!(v.property, "never-forbidden");
        assert_eq!(v.trace.len(), 5, "shortest path is five increments");
        assert!(v.pretty(&m).contains("never-forbidden"));
    }

    #[test]
    fn clean_model_reaches_fixpoint() {
        let m = Counter {
            bound: 10,
            forbidden: None,
            sink_at: None,
            down: true,
        };
        let r = check(&m, &CheckerConfig::default());
        assert!(r.passed());
        assert!(r.complete);
        assert_eq!(r.distinct_states, 11);
        assert_eq!(r.undetermined, 0);
    }

    #[test]
    fn sink_violates_ag_ef() {
        let m = Counter {
            bound: 10,
            forbidden: None,
            sink_at: Some(7),
            down: true,
        };
        let r = check(&m, &CheckerConfig::default());
        assert!(!r.passed());
        let v = &r.violations[0];
        assert_eq!(v.property, "can-return-to-zero");
        assert_eq!(v.kind, PropertyKind::AlwaysEventually);
        assert!(v.end_state.1, "the wedge is the sunk state");
        assert_eq!(v.trace.len(), 8, "seven increments plus the sink jump");
    }

    #[test]
    fn state_budget_truncates_and_reports_incomplete() {
        // Monotone counter: no explored state (except 0) can return to 0,
        // but every one can reach the truncated frontier — so the checker
        // must file them as undetermined, never as violations.
        let m = Counter {
            bound: 1_000,
            forbidden: None,
            sink_at: None,
            down: false,
        };
        let r = check(&m, &CheckerConfig::default().with_max_states(100));
        assert!(!r.complete);
        assert_eq!(r.distinct_states, 100);
        // Liveness must not claim violations beyond the truncation.
        assert!(r.passed());
        assert!(r.undetermined > 0);
    }

    #[test]
    fn exact_state_budget_boundary_is_pinned() {
        // The down-counter over 0..=10 has exactly 11 distinct states.
        // With the budget set exactly to the space size, every successor
        // at the boundary is already seen, so the sweep still completes:
        // admitted-iff-seen once `nodes.len() == max_states`.
        let m = Counter {
            bound: 10,
            forbidden: None,
            sink_at: None,
            down: true,
        };
        let at = check(&m, &CheckerConfig::default().with_max_states(11));
        assert!(at.complete, "budget == space size must still complete");
        assert_eq!(at.distinct_states, 11);
        assert!(at.passed());

        // One below: the final novel state is rejected, the sweep reports
        // bounded, and the count pins to the budget exactly.
        let below = check(&m, &CheckerConfig::default().with_max_states(10));
        assert!(!below.complete);
        assert_eq!(below.distinct_states, 10, "never exceeds the budget");
    }

    #[test]
    fn depth_bound_limits_exploration() {
        let m = Counter {
            bound: 1_000,
            forbidden: None,
            sink_at: None,
            down: true,
        };
        let r = check(&m, &CheckerConfig::default().with_max_depth(5));
        assert!(!r.complete);
        assert_eq!(r.distinct_states, 6, "depth-5 BFS admits values 0..=5");
    }

    #[test]
    fn dfs_explores_the_same_state_space() {
        let m = Counter {
            bound: 50,
            forbidden: None,
            sink_at: None,
            down: true,
        };
        let bfs = check(&m, &CheckerConfig::default());
        let dfs = check(
            &m,
            &CheckerConfig {
                strategy: Strategy::Dfs,
                ..CheckerConfig::default()
            },
        );
        assert_eq!(bfs.distinct_states, dfs.distinct_states);
        assert!(dfs.passed() && dfs.complete);
    }

    #[test]
    fn parallel_bfs_is_byte_identical_on_wide_clean_model() {
        // 2^16 states, widest layer C(16,8) = 12870 — wide enough that the
        // threaded generation path (not the small-layer inline path) runs.
        let m = BitSpread {
            bits: 16,
            forbidden: None,
        };
        let seq = check(&m, &CheckerConfig::default().with_workers(1));
        assert!(seq.complete && seq.passed());
        assert_eq!(seq.distinct_states, 1 << 16);
        for workers in [2, 4, 8] {
            let par = check(&m, &forced().with_workers(workers));
            assert_reports_equal(&seq, &par);
        }
    }

    /// Parallel-engine test configs force the pool so the pooled phases run
    /// even on a 1-core CI host (where `Auto` would inline everything).
    fn forced() -> CheckerConfig {
        CheckerConfig::default().with_pool_policy(PoolPolicy::Forced)
    }

    #[test]
    fn parallel_bfs_matches_sequential_on_violation_stop() {
        // A mid-layer forbidden state: both engines must stop at the same
        // admission, yielding identical distinct-state counts and the
        // same shortest trace.
        let m = BitSpread {
            bits: 12,
            forbidden: Some(0b0000_0101_0011),
        };
        let seq = check(&m, &CheckerConfig::default().with_workers(1));
        assert!(!seq.passed());
        for workers in [2, 4] {
            let par = check(&m, &forced().with_workers(workers));
            assert_reports_equal(&seq, &par);
        }
    }

    #[test]
    fn parallel_bfs_matches_sequential_under_state_budget() {
        let m = BitSpread {
            bits: 14,
            forbidden: None,
        };
        for max_states in [1, 100, 1_000, 5_000] {
            let cfg = CheckerConfig::default().with_max_states(max_states);
            let seq = check(&m, &cfg.with_workers(1));
            let par = check(&m, &cfg.with_pool_policy(PoolPolicy::Forced).with_workers(4));
            assert_reports_equal(&seq, &par);
        }
    }

    #[test]
    fn parallel_bfs_matches_sequential_under_depth_bound() {
        let m = BitSpread {
            bits: 14,
            forbidden: None,
        };
        for max_depth in [0, 1, 3, 7] {
            let cfg = CheckerConfig::default().with_max_depth(max_depth);
            let seq = check(&m, &cfg.with_workers(1));
            let par = check(&m, &cfg.with_pool_policy(PoolPolicy::Forced).with_workers(3));
            assert_reports_equal(&seq, &par);
        }
    }

    #[test]
    fn with_workers_zero_is_sequential() {
        let cfg = CheckerConfig::default().with_workers(0);
        assert_eq!(cfg.workers, 1);
    }

    #[test]
    fn default_workers_track_available_parallelism() {
        // On a 1-core runner the default must be the sequential engine —
        // multi-worker coordination there is pure overhead (ISSUE 8).
        // lint:allow(sim-os-env): the test pins that the default follows the host's parallelism, including the 1-core clamp
        let host = std::thread::available_parallelism().map_or(1, |p| p.get());
        assert_eq!(CheckerConfig::default().workers, host);
    }

    #[test]
    fn state_budget_boundary_is_shard_order_independent() {
        // Budgets straddling BFS layer boundaries of the bits=14 model
        // (cumulative layer sizes 1, 15, 106, 470, 1471): the admission
        // prefix must be the sequential one no matter how the tile's novel
        // keys are distributed across shards — the coordinator assigns
        // indices in global (parent, action) order, not shard order.
        let m = BitSpread {
            bits: 14,
            forbidden: None,
        };
        for max_states in [14, 15, 16, 105, 106, 107, 470, 1470, 1471, 1472] {
            let cfg = CheckerConfig::default().with_max_states(max_states);
            let seq = check(&m, &cfg.with_workers(1));
            assert_eq!(seq.distinct_states, max_states, "budget pins the count");
            assert!(!seq.complete);
            for workers in [2, 3, 5, 8] {
                let par = check(
                    &m,
                    &cfg.with_pool_policy(PoolPolicy::Forced).with_workers(workers),
                );
                assert_reports_equal(&seq, &par);
            }
        }
    }

    #[test]
    fn parallel_matches_sequential_on_initial_state_violation() {
        // The forbidden value is the initial state itself: the violation
        // must be caught before any expansion, with an empty trace.
        let m = Counter {
            bound: 10,
            forbidden: Some(0),
            sink_at: None,
            down: true,
        };
        let seq = check(&m, &CheckerConfig::default().with_workers(1));
        assert!(!seq.passed());
        assert_eq!(seq.violations[0].trace.len(), 0);
        assert_eq!(seq.transitions, 0);
        for workers in [2, 4] {
            let par = check(&m, &forced().with_workers(workers));
            assert_reports_equal(&seq, &par);
        }
    }

    #[test]
    fn pool_policy_auto_matches_forced_and_sequential() {
        // The pool policy selects an execution engine, never a semantics:
        // whatever Auto resolves to on this host, its report must equal
        // both the forced-pool report and the sequential one.
        let m = BitSpread {
            bits: 14,
            forbidden: Some(0b01_0011_0101_0011),
        };
        for cfg in [
            CheckerConfig::default(),
            CheckerConfig::default().with_max_states(300),
        ] {
            let seq = check(&m, &cfg.with_workers(1));
            for workers in [2, 4] {
                let auto = check(
                    &m,
                    &cfg.with_pool_policy(PoolPolicy::Auto).with_workers(workers),
                );
                let pooled = check(
                    &m,
                    &cfg.with_pool_policy(PoolPolicy::Forced).with_workers(workers),
                );
                assert_reports_equal(&seq, &auto);
                assert_reports_equal(&seq, &pooled);
            }
        }
    }
}
