//! Bounded exhaustive exploration: BFS/DFS over canonical keys.
//!
//! The explorer visits every state reachable within the configured bounds,
//! deduplicating on [`Model::key`]. BFS order guarantees that the first
//! violation found for a safety property has a *shortest* counterexample
//! trace, which keeps printed traces readable (the acceptance bar for the
//! session hijack demo is ≤ 12 actions; BFS finds it in 2).
//!
//! AG EF ("always eventually possible") properties are resolved after the
//! forward pass by a reverse reachability sweep over the explored graph.
//! States whose forward closure was truncated by a bound are reported as
//! *undetermined* rather than violating — a bounded checker must never
//! claim a liveness violation it cannot exhibit.

use crate::model::{Model, Property, PropertyKind};
use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};

/// Exploration order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Breadth-first: shortest counterexamples, the default.
    Bfs,
    /// Depth-first: lower frontier memory, longer traces.
    Dfs,
}

/// Exploration bounds and order.
#[derive(Clone, Copy, Debug)]
pub struct CheckerConfig {
    /// Stop discovering new states past this many distinct states.
    pub max_states: usize,
    /// Do not expand states deeper than this many actions from an init.
    pub max_depth: u32,
    /// BFS or DFS.
    pub strategy: Strategy,
}

impl Default for CheckerConfig {
    fn default() -> Self {
        CheckerConfig {
            max_states: 1_000_000,
            max_depth: 10_000,
            strategy: Strategy::Bfs,
        }
    }
}

impl CheckerConfig {
    /// The CI smoke configuration: bounded enough for every PR gate.
    pub fn smoke() -> Self {
        CheckerConfig {
            max_states: 50_000,
            ..Self::default()
        }
    }

    /// Builder-style bound override.
    pub fn with_max_states(mut self, n: usize) -> Self {
        self.max_states = n;
        self
    }

    /// Builder-style depth override.
    pub fn with_max_depth(mut self, d: u32) -> Self {
        self.max_depth = d;
        self
    }
}

struct Node<M: Model> {
    state: M::State,
    /// `(parent node index, action that produced this node)`; `None` for
    /// initial states.
    parent: Option<(usize, M::Action)>,
    depth: u32,
}

/// A property violation with its reconstructed action trace.
pub struct Violation<M: Model> {
    /// Name of the violated property.
    pub property: &'static str,
    /// Was this a safety (`Always`) or reachability (`AlwaysEventually`) failure?
    pub kind: PropertyKind,
    /// Shortest-known action sequence from an initial state to the bad state.
    pub trace: Vec<M::Action>,
    /// The bad state itself.
    pub end_state: M::State,
}

impl<M: Model> Violation<M> {
    /// Pretty-print the counterexample through the model's formatters.
    pub fn pretty(&self, model: &M) -> String {
        let mut out = String::new();
        let what = match self.kind {
            PropertyKind::Always => "invariant violated",
            PropertyKind::AlwaysEventually => "goal unreachable from state",
        };
        out.push_str(&format!(
            "counterexample: {} `{}` after {} action(s)\n",
            what,
            self.property,
            self.trace.len()
        ));
        for (i, action) in self.trace.iter().enumerate() {
            out.push_str(&format!("  {:>3}. {}\n", i + 1, model.format_action(action)));
        }
        out.push_str(&format!("  => {}\n", model.format_state(&self.end_state)));
        out
    }
}

/// What an exploration established.
pub struct CheckReport<M: Model> {
    /// Distinct canonical states discovered.
    pub distinct_states: usize,
    /// Transitions taken (successor evaluations that produced a state).
    pub transitions: u64,
    /// Deepest node expanded.
    pub max_depth_reached: u32,
    /// True when the frontier drained before hitting any bound: the state
    /// space was covered exhaustively and the verdicts are unconditional
    /// (within the model's own bounds).
    pub complete: bool,
    /// Violations found (exploration stops at the first safety violation).
    pub violations: Vec<Violation<M>>,
    /// States whose AG EF verdict was left open by a bound truncation.
    pub undetermined: usize,
}

impl<M: Model> CheckReport<M> {
    /// No violation of any kind was found.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// One-line summary for logs and the example binary.
    pub fn summary(&self) -> String {
        format!(
            "{} distinct states, {} transitions, depth {}, {}{}{}",
            self.distinct_states,
            self.transitions,
            self.max_depth_reached,
            if self.complete { "complete" } else { "bounded" },
            if self.violations.is_empty() {
                ", all properties hold".to_string()
            } else {
                format!(", {} VIOLATION(S)", self.violations.len())
            },
            if self.undetermined > 0 {
                format!(", {} undetermined", self.undetermined)
            } else {
                String::new()
            }
        )
    }
}

/// Exhaustively explore `model` within `cfg`'s bounds and check every
/// property. Stops at the first safety violation (its trace is shortest
/// under BFS); AG EF properties are resolved after the forward sweep.
pub fn check<M: Model>(model: &M, cfg: &CheckerConfig) -> CheckReport<M> {
    let props = model.properties();
    let safety: Vec<&Property<M>> = props
        .iter()
        .filter(|p| p.kind == PropertyKind::Always)
        .collect();
    let liveness: Vec<&Property<M>> = props
        .iter()
        .filter(|p| p.kind == PropertyKind::AlwaysEventually)
        .collect();
    let track_edges = !liveness.is_empty();

    let mut nodes: Vec<Node<M>> = Vec::new();
    let mut seen: HashMap<M::Key, usize> = HashMap::new();
    // Successor adjacency, only populated when a liveness property needs it.
    let mut edges: Vec<Vec<u32>> = Vec::new();
    // Nodes whose successors were *all* generated (frontier nodes are not).
    let mut expanded: Vec<bool> = Vec::new();
    let mut frontier: VecDeque<usize> = VecDeque::new();

    let mut report = CheckReport {
        distinct_states: 0,
        transitions: 0,
        max_depth_reached: 0,
        complete: true,
        violations: Vec::new(),
        undetermined: 0,
    };

    let trace_to = |nodes: &[Node<M>], mut idx: usize| -> Vec<M::Action> {
        let mut rev = Vec::new();
        while let Some((parent, action)) = &nodes[idx].parent {
            rev.push(action.clone());
            idx = *parent;
        }
        rev.reverse();
        rev
    };

    let admit = |state: M::State,
                     parent: Option<(usize, M::Action)>,
                     depth: u32,
                     nodes: &mut Vec<Node<M>>,
                     seen: &mut HashMap<M::Key, usize>,
                     edges: &mut Vec<Vec<u32>>,
                     expanded: &mut Vec<bool>,
                     frontier: &mut VecDeque<usize>|
     -> Option<usize> {
        match seen.entry(model.key(&state)) {
            Entry::Occupied(e) => Some(*e.get()),
            Entry::Vacant(e) => {
                let idx = nodes.len();
                e.insert(idx);
                nodes.push(Node {
                    state,
                    parent,
                    depth,
                });
                if track_edges {
                    edges.push(Vec::new());
                }
                expanded.push(false);
                frontier.push_back(idx);
                None
            }
        }
    };

    for init in model.initial_states() {
        admit(
            init,
            None,
            0,
            &mut nodes,
            &mut seen,
            &mut edges,
            &mut expanded,
            &mut frontier,
        );
    }

    // Safety is checked on admission order; violations on initial states
    // must be caught too, so sweep the queue as part of the main loop.
    let mut actions: Vec<M::Action> = Vec::new();
    let mut checked_upto = 0usize;
    'explore: while let Some(idx) = match cfg.strategy {
        Strategy::Bfs => frontier.pop_front(),
        Strategy::Dfs => frontier.pop_back(),
    } {
        // Check safety on every node admitted since the last round (this
        // covers the popped node and, under DFS, nodes that may linger).
        while checked_upto < nodes.len() {
            for p in &safety {
                if !(p.check)(model, &nodes[checked_upto].state) {
                    report.violations.push(Violation {
                        property: p.name,
                        kind: PropertyKind::Always,
                        trace: trace_to(&nodes, checked_upto),
                        end_state: nodes[checked_upto].state.clone(),
                    });
                    report.complete = false;
                    break 'explore;
                }
            }
            checked_upto += 1;
        }

        let node_depth = nodes[idx].depth;
        report.max_depth_reached = report.max_depth_reached.max(node_depth);
        if node_depth >= cfg.max_depth {
            report.complete = false;
            continue; // left unexpanded: a frontier truncation
        }

        actions.clear();
        model.actions(&nodes[idx].state, &mut actions);
        let mut truncated = false;
        for action in actions.drain(..) {
            let Some(next) = model.step(&nodes[idx].state, &action) else {
                continue;
            };
            report.transitions += 1;
            if seen.len() >= cfg.max_states && !seen.contains_key(&model.key(&next)) {
                // Out of state budget: drop this successor, mark the node
                // as incompletely expanded.
                truncated = true;
                report.complete = false;
                continue;
            }
            let existing = admit(
                next,
                Some((idx, action)),
                node_depth + 1,
                &mut nodes,
                &mut seen,
                &mut edges,
                &mut expanded,
                &mut frontier,
            );
            if track_edges {
                let succ = existing.unwrap_or(nodes.len() - 1) as u32;
                edges[idx].push(succ);
            }
        }
        expanded[idx] = !truncated;
    }
    report.distinct_states = nodes.len();

    // Resolve AG EF properties by reverse reachability over the explored
    // graph (skipped entirely if a safety violation already stopped us).
    if report.violations.is_empty() && !liveness.is_empty() {
        let mut rev: Vec<Vec<u32>> = vec![Vec::new(); nodes.len()];
        for (from, succs) in edges.iter().enumerate() {
            for &to in succs {
                rev[to as usize].push(from as u32);
            }
        }
        // "Unknown" region: states that can reach an unexpanded state may
        // have had their path to the goal truncated.
        let mut unknown = vec![false; nodes.len()];
        let mut queue: VecDeque<usize> = (0..nodes.len()).filter(|&i| !expanded[i]).collect();
        for &i in &queue {
            unknown[i] = true;
        }
        while let Some(i) = queue.pop_front() {
            for &p in &rev[i] {
                if !unknown[p as usize] {
                    unknown[p as usize] = true;
                    queue.push_back(p as usize);
                }
            }
        }
        for prop in &liveness {
            let mut good = vec![false; nodes.len()];
            let mut queue: VecDeque<usize> = VecDeque::new();
            for (i, node) in nodes.iter().enumerate() {
                if (prop.check)(model, &node.state) {
                    good[i] = true;
                    queue.push_back(i);
                }
            }
            while let Some(i) = queue.pop_front() {
                for &p in &rev[i] {
                    if !good[p as usize] {
                        good[p as usize] = true;
                        queue.push_back(p as usize);
                    }
                }
            }
            let mut worst: Option<usize> = None;
            for i in 0..nodes.len() {
                if good[i] {
                    continue;
                }
                if unknown[i] {
                    report.undetermined += 1;
                } else {
                    // Definite violation: fully explored closure, no goal.
                    worst = match worst {
                        Some(w) if nodes[w].depth <= nodes[i].depth => Some(w),
                        _ => Some(i),
                    };
                }
            }
            if let Some(i) = worst {
                report.violations.push(Violation {
                    property: prop.name,
                    kind: PropertyKind::AlwaysEventually,
                    trace: trace_to(&nodes, i),
                    end_state: nodes[i].state.clone(),
                });
            }
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Property, PropertyKind};

    /// A counter that may increment, decrement (not below zero, and only
    /// when `down` is set), or jump into a sink at 7. Safety: value != 5
    /// (violated). AG EF: value can return to 0 (violated by the sink).
    struct Counter {
        bound: u32,
        forbidden: Option<u32>,
        sink_at: Option<u32>,
        down: bool,
    }

    impl Model for Counter {
        type State = (u32, bool); // (value, sunk)
        type Action = i8;
        type Key = (u32, bool);

        fn initial_states(&self) -> Vec<Self::State> {
            vec![(0, false)]
        }

        fn actions(&self, state: &Self::State, out: &mut Vec<i8>) {
            if state.1 {
                return; // sunk: no actions
            }
            if state.0 < self.bound {
                out.push(1);
            }
            if self.down && state.0 > 0 {
                out.push(-1);
            }
            if Some(state.0) == self.sink_at {
                out.push(0);
            }
        }

        fn step(&self, state: &Self::State, action: &i8) -> Option<Self::State> {
            Some(match action {
                0 => (state.0, true),
                d => ((state.0 as i64 + *d as i64) as u32, false),
            })
        }

        fn key(&self, state: &Self::State) -> Self::Key {
            *state
        }

        fn properties(&self) -> Vec<Property<Self>> {
            let mut props: Vec<Property<Self>> = vec![];
            if self.forbidden.is_some() {
                props.push(Property {
                    name: "never-forbidden",
                    kind: PropertyKind::Always,
                    check: |m, s| Some(s.0) != m.forbidden,
                });
            }
            props.push(Property {
                name: "can-return-to-zero",
                kind: PropertyKind::AlwaysEventually,
                check: |_, s| s.0 == 0 && !s.1,
            });
            props
        }
    }

    #[test]
    fn bfs_finds_shortest_safety_counterexample() {
        let m = Counter {
            bound: 10,
            forbidden: Some(5),
            sink_at: None,
            down: true,
        };
        let r = check(&m, &CheckerConfig::default());
        assert!(!r.passed());
        let v = &r.violations[0];
        assert_eq!(v.property, "never-forbidden");
        assert_eq!(v.trace.len(), 5, "shortest path is five increments");
        assert!(v.pretty(&m).contains("never-forbidden"));
    }

    #[test]
    fn clean_model_reaches_fixpoint() {
        let m = Counter {
            bound: 10,
            forbidden: None,
            sink_at: None,
            down: true,
        };
        let r = check(&m, &CheckerConfig::default());
        assert!(r.passed());
        assert!(r.complete);
        assert_eq!(r.distinct_states, 11);
        assert_eq!(r.undetermined, 0);
    }

    #[test]
    fn sink_violates_ag_ef() {
        let m = Counter {
            bound: 10,
            forbidden: None,
            sink_at: Some(7),
            down: true,
        };
        let r = check(&m, &CheckerConfig::default());
        assert!(!r.passed());
        let v = &r.violations[0];
        assert_eq!(v.property, "can-return-to-zero");
        assert_eq!(v.kind, PropertyKind::AlwaysEventually);
        assert!(v.end_state.1, "the wedge is the sunk state");
        assert_eq!(v.trace.len(), 8, "seven increments plus the sink jump");
    }

    #[test]
    fn state_budget_truncates_and_reports_incomplete() {
        // Monotone counter: no explored state (except 0) can return to 0,
        // but every one can reach the truncated frontier — so the checker
        // must file them as undetermined, never as violations.
        let m = Counter {
            bound: 1_000,
            forbidden: None,
            sink_at: None,
            down: false,
        };
        let r = check(&m, &CheckerConfig::default().with_max_states(100));
        assert!(!r.complete);
        assert_eq!(r.distinct_states, 100);
        // Liveness must not claim violations beyond the truncation.
        assert!(r.passed());
        assert!(r.undetermined > 0);
    }

    #[test]
    fn depth_bound_limits_exploration() {
        let m = Counter {
            bound: 1_000,
            forbidden: None,
            sink_at: None,
            down: true,
        };
        let r = check(&m, &CheckerConfig::default().with_max_depth(5));
        assert!(!r.complete);
        assert_eq!(r.distinct_states, 6, "depth-5 BFS admits values 0..=5");
    }

    #[test]
    fn dfs_explores_the_same_state_space() {
        let m = Counter {
            bound: 50,
            forbidden: None,
            sink_at: None,
            down: true,
        };
        let bfs = check(&m, &CheckerConfig::default());
        let dfs = check(
            &m,
            &CheckerConfig {
                strategy: Strategy::Dfs,
                ..CheckerConfig::default()
            },
        );
        assert_eq!(bfs.distinct_states, dfs.distinct_states);
        assert!(dfs.passed() && dfs.complete);
    }
}
