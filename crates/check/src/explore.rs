//! Bounded exhaustive exploration: BFS/DFS over canonical keys.
//!
//! The explorer visits every state reachable within the configured bounds,
//! deduplicating on [`Model::key`]. BFS order guarantees that the first
//! violation found for a safety property has a *shortest* counterexample
//! trace, which keeps printed traces readable (the acceptance bar for the
//! session hijack demo is ≤ 12 actions; BFS finds it in 2).
//!
//! ## Parallel exploration
//!
//! With [`CheckerConfig::workers`] > 1, BFS runs layer-synchronously: each
//! depth layer's frontier is split across `std::thread::scope` workers
//! (via [`aroma_sim::sweep`], the same structured-concurrency idiom the
//! experiment sweeps use) which generate successors — the expensive part:
//! clone + step + canonical key — in parallel; the results are then merged
//! into the `seen` map *sequentially*, in (parent index, action index)
//! order. Because that merge order is exactly the admission order of the
//! sequential pop loop, the resulting [`CheckReport`] (distinct states,
//! transition counts, truncation flags, shortest counterexample traces) is
//! byte-identical at any worker count — pinned by the equivalence proptest
//! in `tests/parallel_equivalence.rs` and the `scripts/check.sh` gate.
//! [`Strategy::Dfs`] always takes the sequential path: its frontier is a
//! stack, which has no layer structure to split.
//!
//! AG EF ("always eventually possible") properties are resolved after the
//! forward pass by a reverse reachability sweep over the explored graph,
//! parallelised the same way (goal seeding and large frontier rounds fan
//! out; marking merges sequentially). States whose forward closure was
//! truncated by a bound are reported as *undetermined* rather than
//! violating — a bounded checker must never claim a liveness violation it
//! cannot exhibit.

use crate::model::{Model, Property, PropertyKind};
use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};

/// Exploration order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Breadth-first: shortest counterexamples, the default.
    Bfs,
    /// Depth-first: lower frontier memory, longer traces.
    Dfs,
}

/// Exploration bounds, order, and parallelism.
#[derive(Clone, Copy, Debug)]
pub struct CheckerConfig {
    /// Stop discovering new states past this many distinct states.
    pub max_states: usize,
    /// Do not expand states deeper than this many actions from an init.
    pub max_depth: u32,
    /// BFS or DFS.
    pub strategy: Strategy,
    /// Worker threads for BFS successor generation and the liveness pass.
    /// `1` is the sequential engine; every count yields the same report.
    pub workers: usize,
}

impl Default for CheckerConfig {
    fn default() -> Self {
        CheckerConfig {
            max_states: 1_000_000,
            max_depth: 10_000,
            strategy: Strategy::Bfs,
            // lint:allow(sim-os-env): host parallelism only picks the default worker count; CheckReports are byte-identical at ANY worker count (DESIGN.md §12, parallel_equivalence proptests)
            workers: std::thread::available_parallelism().map_or(1, |p| p.get()),
        }
    }
}

impl CheckerConfig {
    /// The CI smoke configuration: bounded enough for every PR gate.
    pub fn smoke() -> Self {
        CheckerConfig {
            max_states: 50_000,
            ..Self::default()
        }
    }

    /// Builder-style bound override.
    pub fn with_max_states(mut self, n: usize) -> Self {
        self.max_states = n;
        self
    }

    /// Builder-style depth override.
    pub fn with_max_depth(mut self, d: u32) -> Self {
        self.max_depth = d;
        self
    }

    /// Builder-style worker-count override (`0` is treated as `1`).
    pub fn with_workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }
}

struct Node<M: Model> {
    state: M::State,
    /// `(parent node index, action that produced this node)`; `None` for
    /// initial states.
    parent: Option<(usize, M::Action)>,
    depth: u32,
}

/// A property violation with its reconstructed action trace.
pub struct Violation<M: Model> {
    /// Name of the violated property.
    pub property: &'static str,
    /// Was this a safety (`Always`) or reachability (`AlwaysEventually`) failure?
    pub kind: PropertyKind,
    /// Shortest-known action sequence from an initial state to the bad state.
    pub trace: Vec<M::Action>,
    /// The bad state itself.
    pub end_state: M::State,
}

impl<M: Model> Violation<M> {
    /// Pretty-print the counterexample through the model's formatters.
    pub fn pretty(&self, model: &M) -> String {
        let mut out = String::new();
        let what = match self.kind {
            PropertyKind::Always => "invariant violated",
            PropertyKind::AlwaysEventually => "goal unreachable from state",
        };
        out.push_str(&format!(
            "counterexample: {} `{}` after {} action(s)\n",
            what,
            self.property,
            self.trace.len()
        ));
        for (i, action) in self.trace.iter().enumerate() {
            out.push_str(&format!("  {:>3}. {}\n", i + 1, model.format_action(action)));
        }
        out.push_str(&format!("  => {}\n", model.format_state(&self.end_state)));
        out
    }
}

/// What an exploration established.
pub struct CheckReport<M: Model> {
    /// Distinct canonical states discovered.
    pub distinct_states: usize,
    /// Transitions taken (successor evaluations that produced a state).
    pub transitions: u64,
    /// Deepest node expanded.
    pub max_depth_reached: u32,
    /// True when the frontier drained before hitting any bound: the state
    /// space was covered exhaustively and the verdicts are unconditional
    /// (within the model's own bounds).
    pub complete: bool,
    /// Violations found (exploration stops at the first safety violation).
    pub violations: Vec<Violation<M>>,
    /// States whose AG EF verdict was left open by a bound truncation.
    pub undetermined: usize,
}

impl<M: Model> CheckReport<M> {
    /// No violation of any kind was found.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// One-line summary for logs and the example binary.
    pub fn summary(&self) -> String {
        format!(
            "{} distinct states, {} transitions, depth {}, {}{}{}",
            self.distinct_states,
            self.transitions,
            self.max_depth_reached,
            if self.complete { "complete" } else { "bounded" },
            if self.violations.is_empty() {
                ", all properties hold".to_string()
            } else {
                format!(", {} VIOLATION(S)", self.violations.len())
            },
            if self.undetermined > 0 {
                format!(", {} undetermined", self.undetermined)
            } else {
                String::new()
            }
        )
    }
}

/// The forward pass's full output: the report plus the explored graph the
/// liveness pass walks backwards over.
struct Exploration<M: Model> {
    report: CheckReport<M>,
    nodes: Vec<Node<M>>,
    /// Successor adjacency, only populated when a liveness property needs it.
    edges: Vec<Vec<u32>>,
    /// Nodes whose successors were *all* generated (frontier nodes are not).
    expanded: Vec<bool>,
}

impl<M: Model> Exploration<M> {
    fn new() -> Self {
        Exploration {
            report: CheckReport {
                distinct_states: 0,
                transitions: 0,
                max_depth_reached: 0,
                complete: true,
                violations: Vec::new(),
                undetermined: 0,
            },
            nodes: Vec::new(),
            edges: Vec::new(),
            expanded: Vec::new(),
        }
    }
}

fn trace_to<M: Model>(nodes: &[Node<M>], mut idx: usize) -> Vec<M::Action> {
    let mut rev = Vec::new();
    while let Some((parent, action)) = &nodes[idx].parent {
        rev.push(action.clone());
        idx = *parent;
    }
    rev.reverse();
    rev
}

enum Admitted {
    /// Novel state, stored at this node index.
    New(usize),
    /// Duplicate of this already-known node.
    Existing(usize),
    /// Novel state dropped by the state budget.
    Rejected,
}

/// Admit a state whose canonical key is already computed (exactly once per
/// generated successor — the old engine recomputed `model.key` on the
/// budget path). Boundary semantics, pinned by `exact_state_budget_*`
/// tests: once `nodes.len() == max_states`, a successor is admitted iff
/// its key was already seen; novel states are rejected. Initial states
/// pass `usize::MAX` and bypass the budget.
#[allow(clippy::too_many_arguments)] // one call site shape, two engines
fn admit<M: Model>(
    seen: &mut HashMap<M::Key, usize>,
    ex: &mut Exploration<M>,
    track_edges: bool,
    max_states: usize,
    key: M::Key,
    state: M::State,
    parent: Option<(usize, M::Action)>,
    depth: u32,
) -> Admitted {
    match seen.entry(key) {
        Entry::Occupied(e) => Admitted::Existing(*e.get()),
        Entry::Vacant(e) => {
            // `seen` holds exactly one entry per node, so `nodes.len()` is
            // the live distinct-state count.
            if ex.nodes.len() >= max_states {
                return Admitted::Rejected;
            }
            let idx = ex.nodes.len();
            e.insert(idx);
            ex.nodes.push(Node {
                state,
                parent,
                depth,
            });
            if track_edges {
                ex.edges.push(Vec::new());
            }
            ex.expanded.push(false);
            Admitted::New(idx)
        }
    }
}

/// Check safety on every node admitted since the last sweep, in admission
/// order; on the first violating node, record the violation and return
/// `true` (stop exploring). Both engines sweep at the same moments — the
/// sequential pop points — so the stopping state count and the reported
/// trace coincide.
fn sweep_safety<M: Model>(
    model: &M,
    safety: &[&Property<M>],
    ex: &mut Exploration<M>,
    checked_upto: &mut usize,
) -> bool {
    while *checked_upto < ex.nodes.len() {
        for p in safety {
            if !(p.check)(model, &ex.nodes[*checked_upto].state) {
                let trace = trace_to(&ex.nodes, *checked_upto);
                ex.report.violations.push(Violation {
                    property: p.name,
                    kind: PropertyKind::Always,
                    trace,
                    end_state: ex.nodes[*checked_upto].state.clone(),
                });
                ex.report.complete = false;
                return true;
            }
        }
        *checked_upto += 1;
    }
    false
}

/// Exhaustively explore `model` within `cfg`'s bounds and check every
/// property. Stops at the first safety violation (its trace is shortest
/// under BFS); AG EF properties are resolved after the forward sweep.
///
/// With `cfg.workers > 1` and [`Strategy::Bfs`], exploration is
/// layer-parallel; the report is byte-identical to the sequential engine
/// (`workers == 1`) at any worker count.
pub fn check<M>(model: &M, cfg: &CheckerConfig) -> CheckReport<M>
where
    M: Model + Sync,
    M::State: Send + Sync,
    M::Action: Send + Sync,
    M::Key: Send,
{
    let props = model.properties();
    let safety: Vec<&Property<M>> = props
        .iter()
        .filter(|p| p.kind == PropertyKind::Always)
        .collect();
    let liveness: Vec<&Property<M>> = props
        .iter()
        .filter(|p| p.kind == PropertyKind::AlwaysEventually)
        .collect();
    let track_edges = !liveness.is_empty();

    let workers = cfg.workers.max(1);
    let mut ex = if workers > 1 && cfg.strategy == Strategy::Bfs {
        explore_parallel(model, cfg, workers, &safety, track_edges)
    } else {
        explore_sequential(model, cfg, &safety, track_edges)
    };

    // Resolve AG EF properties by reverse reachability over the explored
    // graph (skipped entirely if a safety violation already stopped us).
    if ex.report.violations.is_empty() && !liveness.is_empty() {
        resolve_liveness(model, &mut ex, &liveness, workers);
    }
    ex.report
}

/// The sequential engine: one pop-expand loop, BFS or DFS.
fn explore_sequential<M: Model>(
    model: &M,
    cfg: &CheckerConfig,
    safety: &[&Property<M>],
    track_edges: bool,
) -> Exploration<M> {
    let mut ex = Exploration::new();
    let mut seen: HashMap<M::Key, usize> = HashMap::new();
    let mut frontier: VecDeque<usize> = VecDeque::new();

    for init in model.initial_states() {
        let key = model.key(&init);
        if let Admitted::New(idx) = admit(
            &mut seen,
            &mut ex,
            track_edges,
            usize::MAX,
            key,
            init,
            None,
            0,
        ) {
            frontier.push_back(idx);
        }
    }

    // Safety is checked on admission order; violations on initial states
    // must be caught too, so sweep the queue as part of the main loop.
    let mut actions: Vec<M::Action> = Vec::new();
    let mut checked_upto = 0usize;
    'explore: while let Some(idx) = match cfg.strategy {
        Strategy::Bfs => frontier.pop_front(),
        Strategy::Dfs => frontier.pop_back(),
    } {
        // Covers the popped node and, under DFS, nodes that may linger.
        if sweep_safety(model, safety, &mut ex, &mut checked_upto) {
            break 'explore;
        }

        let node_depth = ex.nodes[idx].depth;
        ex.report.max_depth_reached = ex.report.max_depth_reached.max(node_depth);
        if node_depth >= cfg.max_depth {
            ex.report.complete = false;
            continue; // left unexpanded: a frontier truncation
        }

        actions.clear();
        model.actions(&ex.nodes[idx].state, &mut actions);
        let mut truncated = false;
        for action in actions.drain(..) {
            let Some(next) = model.step(&ex.nodes[idx].state, &action) else {
                continue;
            };
            ex.report.transitions += 1;
            let key = model.key(&next);
            match admit(
                &mut seen,
                &mut ex,
                track_edges,
                cfg.max_states,
                key,
                next,
                Some((idx, action)),
                node_depth + 1,
            ) {
                Admitted::New(succ) => {
                    frontier.push_back(succ);
                    if track_edges {
                        ex.edges[idx].push(succ as u32);
                    }
                }
                Admitted::Existing(succ) => {
                    if track_edges {
                        ex.edges[idx].push(succ as u32);
                    }
                }
                Admitted::Rejected => {
                    // Out of state budget: drop this successor, mark the
                    // node as incompletely expanded.
                    truncated = true;
                    ex.report.complete = false;
                }
            }
        }
        ex.expanded[idx] = !truncated;
    }
    ex.report.distinct_states = ex.nodes.len();
    ex
}

/// One node's successor batch: `(action, state, key)` in action order.
type SuccBatch<M> = Vec<(
    <M as Model>::Action,
    <M as Model>::State,
    <M as Model>::Key,
)>;

/// Generate every successor of `state` with its canonical key — the
/// per-node unit of parallel work.
fn generate_successors<M: Model>(model: &M, state: &M::State) -> SuccBatch<M> {
    let mut actions: Vec<M::Action> = Vec::new();
    model.actions(state, &mut actions);
    let mut out = Vec::with_capacity(actions.len());
    for action in actions {
        if let Some(next) = model.step(state, &action) {
            let key = model.key(&next);
            out.push((action, next, key));
        }
    }
    out
}

/// The layer-synchronous parallel BFS engine. Per depth layer: split the
/// frontier into tiles, generate each tile's successors on `workers`
/// scoped threads, then merge sequentially in (parent, action) order —
/// which is exactly the sequential engine's admission order, so the report
/// is byte-identical at any worker count.
fn explore_parallel<M>(
    model: &M,
    cfg: &CheckerConfig,
    workers: usize,
    safety: &[&Property<M>],
    track_edges: bool,
) -> Exploration<M>
where
    M: Model + Sync,
    M::State: Send + Sync,
    M::Action: Send + Sync,
    M::Key: Send,
{
    let mut ex = Exploration::new();
    let mut seen: HashMap<M::Key, usize> = HashMap::new();
    // The current BFS layer, in admission order (all nodes share a depth).
    let mut layer: Vec<usize> = Vec::new();

    for init in model.initial_states() {
        let key = model.key(&init);
        if let Admitted::New(idx) = admit(
            &mut seen,
            &mut ex,
            track_edges,
            usize::MAX,
            key,
            init,
            None,
            0,
        ) {
            layer.push(idx);
        }
    }

    // Tiles bound how many successor states are held before merging: a
    // multi-million-node layer at branching factor ~20 would otherwise
    // materialise the whole next layer twice over.
    let tile_len = (workers * 512).max(1024);
    let mut checked_upto = 0usize;

    'explore: while !layer.is_empty() {
        let depth = ex.nodes[layer[0]].depth; // BFS layers are uniform-depth
        if depth >= cfg.max_depth {
            // The sequential engine pops each of these nodes: sweeps (no
            // admissions happen, so once is enough), counts its depth, and
            // marks the truncation. No deeper layer can exist.
            if !sweep_safety(model, safety, &mut ex, &mut checked_upto) {
                ex.report.max_depth_reached = ex.report.max_depth_reached.max(depth);
                ex.report.complete = false;
            }
            break 'explore;
        }

        let mut next_layer: Vec<usize> = Vec::new();
        for tile in layer.chunks(tile_len) {
            // -- Parallel phase: successor generation. -------------------
            let nodes_ro = &ex.nodes;
            let batches: Vec<SuccBatch<M>> = if tile.len() < workers * 4 {
                // Spawning threads for a near-empty layer costs more than
                // it saves; the merge below is order-identical either way.
                tile.iter()
                    .map(|&idx| generate_successors(model, &nodes_ro[idx].state))
                    .collect()
            } else {
                aroma_sim::sweep::run_with_threads(tile, workers, |_, &idx| {
                    generate_successors(model, &nodes_ro[idx].state)
                })
            };

            // -- Sequential merge, in (parent, action) order. ------------
            for (&idx, succs) in tile.iter().zip(batches) {
                // The sequential engine sweeps at each pop, before
                // expanding — i.e. before this node's admissions.
                if sweep_safety(model, safety, &mut ex, &mut checked_upto) {
                    break 'explore;
                }
                ex.report.max_depth_reached = ex.report.max_depth_reached.max(depth);
                let mut truncated = false;
                for (action, state, key) in succs {
                    ex.report.transitions += 1;
                    match admit(
                        &mut seen,
                        &mut ex,
                        track_edges,
                        cfg.max_states,
                        key,
                        state,
                        Some((idx, action)),
                        depth + 1,
                    ) {
                        Admitted::New(succ) => {
                            next_layer.push(succ);
                            if track_edges {
                                ex.edges[idx].push(succ as u32);
                            }
                        }
                        Admitted::Existing(succ) => {
                            if track_edges {
                                ex.edges[idx].push(succ as u32);
                            }
                        }
                        Admitted::Rejected => {
                            truncated = true;
                            ex.report.complete = false;
                        }
                    }
                }
                ex.expanded[idx] = !truncated;
            }
        }
        layer = next_layer;
    }
    ex.report.distinct_states = ex.nodes.len();
    ex
}

/// Indices of nodes satisfying `pred`, evaluated on `workers` threads in
/// contiguous chunks (predicates are the per-node cost of the liveness
/// pass: they clone production structs).
fn par_node_indices<M>(
    model: &M,
    nodes: &[Node<M>],
    workers: usize,
    pred: fn(&M, &M::State) -> bool,
) -> Vec<usize>
where
    M: Model + Sync,
    M::State: Sync,
    M::Action: Sync,
{
    let n = nodes.len();
    if workers <= 1 || n < workers * 64 {
        return (0..n).filter(|&i| pred(model, &nodes[i].state)).collect();
    }
    let chunk = n.div_ceil(workers * 8).max(1);
    let ranges: Vec<(usize, usize)> = (0..n)
        .step_by(chunk)
        .map(|lo| (lo, (lo + chunk).min(n)))
        .collect();
    let hits = aroma_sim::sweep::run_with_threads(&ranges, workers, |_, &(lo, hi)| {
        (lo..hi)
            .filter(|&i| pred(model, &nodes[i].state))
            .collect::<Vec<usize>>()
    });
    hits.concat()
}

/// Mark the backward closure of `seeds` over the reversed edge relation —
/// layer-synchronous like the forward pass: large frontier rounds fan out
/// across workers, the marking merge stays sequential. The final marked
/// set is frontier-order independent, so any worker count agrees.
fn mark_backward(rev: &[Vec<u32>], marked: &mut [bool], seeds: Vec<usize>, workers: usize) {
    let mut frontier = seeds;
    for &s in &frontier {
        marked[s] = true;
    }
    while !frontier.is_empty() {
        let candidates: Vec<u32> = if workers > 1 && frontier.len() >= workers * 64 {
            let snapshot: &[bool] = marked;
            aroma_sim::sweep::run_with_threads(&frontier, workers, |_, &i| {
                rev[i]
                    .iter()
                    .copied()
                    .filter(|&p| !snapshot[p as usize])
                    .collect::<Vec<u32>>()
            })
            .concat()
        } else {
            frontier
                .iter()
                .flat_map(|&i| rev[i].iter().copied().filter(|&p| !marked[p as usize]))
                .collect()
        };
        frontier.clear();
        for p in candidates {
            if !marked[p as usize] {
                marked[p as usize] = true;
                frontier.push(p as usize);
            }
        }
    }
}

/// Resolve every AG EF property over the explored graph by reverse
/// reachability; bound-truncated regions are filed as undetermined.
fn resolve_liveness<M>(
    model: &M,
    ex: &mut Exploration<M>,
    liveness: &[&Property<M>],
    workers: usize,
) where
    M: Model + Sync,
    M::State: Send + Sync,
    M::Action: Sync,
{
    let n = ex.nodes.len();
    let mut rev: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (from, succs) in ex.edges.iter().enumerate() {
        for &to in succs {
            rev[to as usize].push(from as u32);
        }
    }
    // "Unknown" region: states that can reach an unexpanded state may have
    // had their path to the goal truncated.
    let mut unknown = vec![false; n];
    let truncated_seeds: Vec<usize> = (0..n).filter(|&i| !ex.expanded[i]).collect();
    mark_backward(&rev, &mut unknown, truncated_seeds, workers);

    for prop in liveness {
        let mut good = vec![false; n];
        let seeds = par_node_indices(model, &ex.nodes, workers, prop.check);
        mark_backward(&rev, &mut good, seeds, workers);
        let mut worst: Option<usize> = None;
        for i in 0..n {
            if good[i] {
                continue;
            }
            if unknown[i] {
                ex.report.undetermined += 1;
            } else {
                // Definite violation: fully explored closure, no goal.
                worst = match worst {
                    Some(w) if ex.nodes[w].depth <= ex.nodes[i].depth => Some(w),
                    _ => Some(i),
                };
            }
        }
        if let Some(i) = worst {
            let trace = trace_to(&ex.nodes, i);
            ex.report.violations.push(Violation {
                property: prop.name,
                kind: PropertyKind::AlwaysEventually,
                trace,
                end_state: ex.nodes[i].state.clone(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Property, PropertyKind};

    /// A counter that may increment, decrement (not below zero, and only
    /// when `down` is set), or jump into a sink at 7. Safety: value != 5
    /// (violated). AG EF: value can return to 0 (violated by the sink).
    struct Counter {
        bound: u32,
        forbidden: Option<u32>,
        sink_at: Option<u32>,
        down: bool,
    }

    impl Model for Counter {
        type State = (u32, bool); // (value, sunk)
        type Action = i8;
        type Key = (u32, bool);

        fn initial_states(&self) -> Vec<Self::State> {
            vec![(0, false)]
        }

        fn actions(&self, state: &Self::State, out: &mut Vec<i8>) {
            if state.1 {
                return; // sunk: no actions
            }
            if state.0 < self.bound {
                out.push(1);
            }
            if self.down && state.0 > 0 {
                out.push(-1);
            }
            if Some(state.0) == self.sink_at {
                out.push(0);
            }
        }

        fn step(&self, state: &Self::State, action: &i8) -> Option<Self::State> {
            Some(match action {
                0 => (state.0, true),
                d => ((state.0 as i64 + *d as i64) as u32, false),
            })
        }

        fn key(&self, state: &Self::State) -> Self::Key {
            *state
        }

        fn properties(&self) -> Vec<Property<Self>> {
            let mut props: Vec<Property<Self>> = vec![];
            if self.forbidden.is_some() {
                props.push(Property {
                    name: "never-forbidden",
                    kind: PropertyKind::Always,
                    check: |m, s| Some(s.0) != m.forbidden,
                });
            }
            props.push(Property {
                name: "can-return-to-zero",
                kind: PropertyKind::AlwaysEventually,
                check: |_, s| s.0 == 0 && !s.1,
            });
            props
        }
    }

    /// A wide model: states are bitsets of `bits` bits, actions set any
    /// unset bit, so layer `d` holds `C(bits, d)` states — enough breadth
    /// to push the parallel engine through its threaded generation path.
    /// Safety: the `forbidden` mask is never an exact state. AG EF: a
    /// designated `goal` bit can always still be set (fails for states
    /// where `goal` cannot be reached because the mask is full — never
    /// happens — so the property holds; with `forbidden` on a mid-layer
    /// state the safety side trips mid-exploration).
    struct BitSpread {
        bits: u32,
        forbidden: Option<u32>,
    }

    impl Model for BitSpread {
        type State = u32;
        type Action = u32;
        type Key = u32;

        fn initial_states(&self) -> Vec<u32> {
            vec![0]
        }

        fn actions(&self, state: &u32, out: &mut Vec<u32>) {
            for b in 0..self.bits {
                if state & (1 << b) == 0 {
                    out.push(b);
                }
            }
        }

        fn step(&self, state: &u32, action: &u32) -> Option<u32> {
            Some(state | (1 << action))
        }

        fn key(&self, state: &u32) -> u32 {
            *state
        }

        fn properties(&self) -> Vec<Property<Self>> {
            let mut props: Vec<Property<Self>> = vec![Property {
                name: "full-set-reachable",
                kind: PropertyKind::AlwaysEventually,
                check: |m, s| *s == (1u32 << m.bits) - 1,
            }];
            if self.forbidden.is_some() {
                props.push(Property {
                    name: "never-forbidden-mask",
                    kind: PropertyKind::Always,
                    check: |m, s| Some(*s) != m.forbidden,
                });
            }
            props
        }
    }

    fn assert_reports_equal<M: Model>(a: &CheckReport<M>, b: &CheckReport<M>)
    where
        M::Action: PartialEq + std::fmt::Debug,
    {
        assert_eq!(a.distinct_states, b.distinct_states, "distinct states");
        assert_eq!(a.transitions, b.transitions, "transitions");
        assert_eq!(a.max_depth_reached, b.max_depth_reached, "max depth");
        assert_eq!(a.complete, b.complete, "complete flag");
        assert_eq!(a.undetermined, b.undetermined, "undetermined count");
        assert_eq!(a.violations.len(), b.violations.len(), "violation count");
        for (va, vb) in a.violations.iter().zip(&b.violations) {
            assert_eq!(va.property, vb.property);
            assert_eq!(va.kind, vb.kind);
            assert_eq!(va.trace, vb.trace, "counterexample trace");
        }
    }

    #[test]
    fn bfs_finds_shortest_safety_counterexample() {
        let m = Counter {
            bound: 10,
            forbidden: Some(5),
            sink_at: None,
            down: true,
        };
        let r = check(&m, &CheckerConfig::default());
        assert!(!r.passed());
        let v = &r.violations[0];
        assert_eq!(v.property, "never-forbidden");
        assert_eq!(v.trace.len(), 5, "shortest path is five increments");
        assert!(v.pretty(&m).contains("never-forbidden"));
    }

    #[test]
    fn clean_model_reaches_fixpoint() {
        let m = Counter {
            bound: 10,
            forbidden: None,
            sink_at: None,
            down: true,
        };
        let r = check(&m, &CheckerConfig::default());
        assert!(r.passed());
        assert!(r.complete);
        assert_eq!(r.distinct_states, 11);
        assert_eq!(r.undetermined, 0);
    }

    #[test]
    fn sink_violates_ag_ef() {
        let m = Counter {
            bound: 10,
            forbidden: None,
            sink_at: Some(7),
            down: true,
        };
        let r = check(&m, &CheckerConfig::default());
        assert!(!r.passed());
        let v = &r.violations[0];
        assert_eq!(v.property, "can-return-to-zero");
        assert_eq!(v.kind, PropertyKind::AlwaysEventually);
        assert!(v.end_state.1, "the wedge is the sunk state");
        assert_eq!(v.trace.len(), 8, "seven increments plus the sink jump");
    }

    #[test]
    fn state_budget_truncates_and_reports_incomplete() {
        // Monotone counter: no explored state (except 0) can return to 0,
        // but every one can reach the truncated frontier — so the checker
        // must file them as undetermined, never as violations.
        let m = Counter {
            bound: 1_000,
            forbidden: None,
            sink_at: None,
            down: false,
        };
        let r = check(&m, &CheckerConfig::default().with_max_states(100));
        assert!(!r.complete);
        assert_eq!(r.distinct_states, 100);
        // Liveness must not claim violations beyond the truncation.
        assert!(r.passed());
        assert!(r.undetermined > 0);
    }

    #[test]
    fn exact_state_budget_boundary_is_pinned() {
        // The down-counter over 0..=10 has exactly 11 distinct states.
        // With the budget set exactly to the space size, every successor
        // at the boundary is already seen, so the sweep still completes:
        // admitted-iff-seen once `nodes.len() == max_states`.
        let m = Counter {
            bound: 10,
            forbidden: None,
            sink_at: None,
            down: true,
        };
        let at = check(&m, &CheckerConfig::default().with_max_states(11));
        assert!(at.complete, "budget == space size must still complete");
        assert_eq!(at.distinct_states, 11);
        assert!(at.passed());

        // One below: the final novel state is rejected, the sweep reports
        // bounded, and the count pins to the budget exactly.
        let below = check(&m, &CheckerConfig::default().with_max_states(10));
        assert!(!below.complete);
        assert_eq!(below.distinct_states, 10, "never exceeds the budget");
    }

    #[test]
    fn depth_bound_limits_exploration() {
        let m = Counter {
            bound: 1_000,
            forbidden: None,
            sink_at: None,
            down: true,
        };
        let r = check(&m, &CheckerConfig::default().with_max_depth(5));
        assert!(!r.complete);
        assert_eq!(r.distinct_states, 6, "depth-5 BFS admits values 0..=5");
    }

    #[test]
    fn dfs_explores_the_same_state_space() {
        let m = Counter {
            bound: 50,
            forbidden: None,
            sink_at: None,
            down: true,
        };
        let bfs = check(&m, &CheckerConfig::default());
        let dfs = check(
            &m,
            &CheckerConfig {
                strategy: Strategy::Dfs,
                ..CheckerConfig::default()
            },
        );
        assert_eq!(bfs.distinct_states, dfs.distinct_states);
        assert!(dfs.passed() && dfs.complete);
    }

    #[test]
    fn parallel_bfs_is_byte_identical_on_wide_clean_model() {
        // 2^16 states, widest layer C(16,8) = 12870 — wide enough that the
        // threaded generation path (not the small-layer inline path) runs.
        let m = BitSpread {
            bits: 16,
            forbidden: None,
        };
        let seq = check(&m, &CheckerConfig::default().with_workers(1));
        assert!(seq.complete && seq.passed());
        assert_eq!(seq.distinct_states, 1 << 16);
        for workers in [2, 4, 8] {
            let par = check(&m, &CheckerConfig::default().with_workers(workers));
            assert_reports_equal(&seq, &par);
        }
    }

    #[test]
    fn parallel_bfs_matches_sequential_on_violation_stop() {
        // A mid-layer forbidden state: both engines must stop at the same
        // admission, yielding identical distinct-state counts and the
        // same shortest trace.
        let m = BitSpread {
            bits: 12,
            forbidden: Some(0b0000_0101_0011),
        };
        let seq = check(&m, &CheckerConfig::default().with_workers(1));
        assert!(!seq.passed());
        for workers in [2, 4] {
            let par = check(&m, &CheckerConfig::default().with_workers(workers));
            assert_reports_equal(&seq, &par);
        }
    }

    #[test]
    fn parallel_bfs_matches_sequential_under_state_budget() {
        let m = BitSpread {
            bits: 14,
            forbidden: None,
        };
        for max_states in [1, 100, 1_000, 5_000] {
            let cfg = CheckerConfig::default().with_max_states(max_states);
            let seq = check(&m, &cfg.with_workers(1));
            let par = check(&m, &cfg.with_workers(4));
            assert_reports_equal(&seq, &par);
        }
    }

    #[test]
    fn parallel_bfs_matches_sequential_under_depth_bound() {
        let m = BitSpread {
            bits: 14,
            forbidden: None,
        };
        for max_depth in [0, 1, 3, 7] {
            let cfg = CheckerConfig::default().with_max_depth(max_depth);
            let seq = check(&m, &cfg.with_workers(1));
            let par = check(&m, &cfg.with_workers(3));
            assert_reports_equal(&seq, &par);
        }
    }

    #[test]
    fn with_workers_zero_is_sequential() {
        let cfg = CheckerConfig::default().with_workers(0);
        assert_eq!(cfg.workers, 1);
    }
}
