//! Model of the Smart Projector's session protocol, driving the *real*
//! [`smart_projector::session::SessionManager`] — two of them, projection
//! and control, exactly as the Aroma Adapter guards its services.
//!
//! ## Actors and actions
//!
//! N users (the paper's presenters) each may, at any interleaving point:
//! acquire a service, touch or release a token they hold, depart for good
//! without releasing anything (`Depart`, the paper's forgetful presenter —
//! off by default; merely dropping the token would not wedge anything,
//! because the real manager hands the owner their token back on
//! re-acquire), and — as adversary moves — replay a remembered dead token,
//! guess the sequential neighbours of the last token they observed (the
//! attack that broke the old counter-based token scheme), guess a small
//! constant, or cross-apply their token from the *other* service. A global
//! `Advance` action steps the clock by one quantum.
//!
//! ## Properties
//!
//! * **no-hijack** (safety): no action ever grants a user control while a
//!   live session belongs to someone else — neither by displacement nor by
//!   a stale/guessed/cross-applied token being accepted.
//! * **at-most-one-owner** (safety): at most one user per service holds a
//!   token the manager would accept right now.
//! * **service-recoverable** (bounded AG EF): from every reachable state
//!   there is a path on which every service becomes free again. Under
//!   `ManualRelease` with `allow_depart`, this fails — the lockout the
//!   paper asks auto-expiry to solve — and the checker prints the trace.
//!
//! ## Reductions (all key-level; stored states stay faithful)
//!
//! * **Time shift**: only idle durations (bucketed by quantum) enter the
//!   key, never absolute time, so the clock action reaches a fixpoint.
//! * **Token renaming**: token *values* enter the key only through the
//!   equality classes that determine behaviour (matches service 0's / 1's
//!   live token). Fresh tokens are treated as symbolically fresh — the
//!   RNG stream position is abstracted away, which is sound exactly
//!   because production tokens are drawn from a non-repeating stream; the
//!   concrete non-predictability of that stream is pinned separately by
//!   `tokens_are_not_sequentially_predictable` in `smart-projector`.
//! * **User symmetry** (optional): users are sorted by a behavioural
//!   signature, so permutations of indistinguishable users collapse.

use crate::model::{canonical_actor_order, Model, Property, PropertyKind};
use aroma_sim::{SimDuration, SimRng, SimTime};
use smart_projector::session::{SessionManager, SessionPolicy, SessionToken};

/// Model parameters: actors, policy, clock quantum, adversary switches.
#[derive(Clone, Debug)]
pub struct SessionConfig {
    /// Policy both managers enforce.
    pub policy: SessionPolicy,
    /// Number of users (presenters).
    pub users: usize,
    /// Number of guarded services (1 = projection only, 2 = + control).
    pub services: usize,
    /// Clock-advance step.
    pub quantum: SimDuration,
    /// Dead tokens each user remembers for replay attacks.
    pub stale_cap: usize,
    /// Enable the guessing/replay/cross-apply adversary actions.
    pub adversary: bool,
    /// Enable the leave-without-releasing action.
    pub allow_depart: bool,
    /// Collapse permutations of indistinguishable users.
    pub symmetry: bool,
    /// Seed for the managers' token streams.
    pub token_seed: u64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            policy: SessionPolicy::ManualRelease,
            users: 3,
            services: 2,
            quantum: SimDuration::from_secs(1),
            stale_cap: 2,
            adversary: true,
            allow_depart: false,
            symmetry: true,
            token_seed: 0xA60A_5E55,
        }
    }
}

/// Full model state: the real managers plus each user's token knowledge.
#[derive(Clone, Debug)]
pub struct SessionState {
    /// The production state machines, one per service.
    mgrs: Vec<SessionManager>,
    now: SimTime,
    /// `held[user][service]`: token from the user's last successful acquire.
    held: Vec<Vec<Option<SessionToken>>>,
    /// `stale[user][service]`: remembered dead tokens (most recent first).
    stale: Vec<Vec<Vec<SessionToken>>>,
    /// Most recent token value each user has observed (guess basis).
    last_seen: Vec<Option<u64>>,
    /// Users who walked out of the room (they take no further actions).
    departed: Vec<bool>,
    /// Ghost: set when a user obtained control they were not entitled to.
    hijack: Option<&'static str>,
}

/// One protocol step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SessionAction {
    /// User requests the session for a service.
    Acquire {
        /// Acting user.
        user: usize,
        /// Target service (0 = projection, 1 = control).
        service: usize,
    },
    /// User exercises their held token (keeps auto-expiry at bay).
    Touch {
        /// Acting user.
        user: usize,
        /// Target service.
        service: usize,
    },
    /// User releases their held token.
    Release {
        /// Acting user.
        user: usize,
        /// Target service.
        service: usize,
    },
    /// User leaves for good, dropping every token without releasing —
    /// they issue no further actions.
    Depart {
        /// Departing user.
        user: usize,
    },
    /// Adversary replays a remembered dead token.
    StaleReplay {
        /// Acting user.
        user: usize,
        /// Target service.
        service: usize,
        /// Index into the user's stale list.
        idx: usize,
    },
    /// Adversary guesses `last observed token ± 1` (counter-scheme attack).
    GuessAdjacent {
        /// Acting user.
        user: usize,
        /// Target service.
        service: usize,
        /// +1 or -1 from the last observed value.
        up: bool,
    },
    /// Adversary guesses the small constant an uninitialised counter mints.
    GuessSmall {
        /// Acting user.
        user: usize,
        /// Target service.
        service: usize,
    },
    /// Adversary applies their token from the *other* service.
    CrossApply {
        /// Acting user.
        user: usize,
        /// Target service (token comes from `1 - service`).
        service: usize,
    },
    /// The clock advances by one quantum.
    Advance,
}

/// The session-protocol model. See module docs.
pub struct SessionModel {
    /// Parameters.
    pub cfg: SessionConfig,
}

impl SessionModel {
    /// A model over `cfg`.
    pub fn new(cfg: SessionConfig) -> Self {
        SessionModel { cfg }
    }

    /// Live owner of service `s` as of `state.now` (expiry-normalised).
    fn live_owner(state: &SessionState, s: usize) -> Option<(u64, SessionToken)> {
        let mut m = state.mgrs[s].clone();
        m.owner(state.now)?;
        m.snapshot().map(|(u, t, _)| (u, t))
    }

    /// Idle quanta of service `s`'s live session (0 when free / timeless).
    fn idle_quanta(&self, state: &SessionState, s: usize) -> u64 {
        if !matches!(self.cfg.policy, SessionPolicy::AutoExpire { .. }) {
            return 0;
        }
        if Self::live_owner(state, s).is_none() {
            return 0;
        }
        let (_, _, last) = state.mgrs[s].snapshot().expect("live session has a snapshot");
        state.now.saturating_since(last).as_nanos() / self.cfg.quantum.as_nanos().max(1)
    }

    fn demote(&self, state: &mut SessionState, user: usize, service: usize) {
        if let Some(tok) = state.held[user][service].take() {
            let list = &mut state.stale[user][service];
            list.insert(0, tok);
            list.truncate(self.cfg.stale_cap);
        }
    }

    /// Try a token the user is *not* entitled to; flag a hijack if the
    /// production manager accepts it.
    fn probe_foreign(
        state: &mut SessionState,
        service: usize,
        token: SessionToken,
        why: &'static str,
    ) {
        let now = state.now;
        if state.mgrs[service].touch(token, now).is_ok() {
            state.hijack = Some(why);
        }
    }

    /// Equality classes a token value can fall into, per service.
    fn token_class(state: &SessionState, value: u64) -> u64 {
        let mut class = 0u64;
        for s in 0..state.mgrs.len() {
            if Self::live_owner(state, s).is_some_and(|(_, t)| t.value() == value) {
                class |= 1 << s;
            }
        }
        class
    }
}

impl Model for SessionModel {
    type State = SessionState;
    type Action = SessionAction;
    type Key = Vec<u64>;

    fn initial_states(&self) -> Vec<SessionState> {
        let rng = SimRng::new(self.cfg.token_seed);
        let mgrs = (0..self.cfg.services)
            .map(|s| SessionManager::with_token_rng(self.cfg.policy, rng.fork(s as u64)))
            .collect();
        vec![SessionState {
            mgrs,
            now: SimTime::ZERO,
            held: vec![vec![None; self.cfg.services]; self.cfg.users],
            stale: vec![vec![Vec::new(); self.cfg.services]; self.cfg.users],
            last_seen: vec![None; self.cfg.users],
            departed: vec![false; self.cfg.users],
            hijack: None,
        }]
    }

    fn actions(&self, state: &SessionState, out: &mut Vec<SessionAction>) {
        for user in 0..self.cfg.users {
            if state.departed[user] {
                continue;
            }
            if self.cfg.allow_depart && state.held[user].iter().any(Option::is_some) {
                out.push(SessionAction::Depart { user });
            }
            for service in 0..self.cfg.services {
                out.push(SessionAction::Acquire { user, service });
                if state.held[user][service].is_some() {
                    out.push(SessionAction::Touch { user, service });
                    out.push(SessionAction::Release { user, service });
                }
                if self.cfg.adversary {
                    for idx in 0..state.stale[user][service].len() {
                        out.push(SessionAction::StaleReplay { user, service, idx });
                    }
                    if state.last_seen[user].is_some() {
                        out.push(SessionAction::GuessAdjacent {
                            user,
                            service,
                            up: true,
                        });
                        out.push(SessionAction::GuessAdjacent {
                            user,
                            service,
                            up: false,
                        });
                    }
                    out.push(SessionAction::GuessSmall { user, service });
                    if self.cfg.services > 1 && state.held[user][1 - service].is_some() {
                        out.push(SessionAction::CrossApply { user, service });
                    }
                }
            }
        }
        out.push(SessionAction::Advance);
    }

    fn step(&self, state: &SessionState, action: &SessionAction) -> Option<SessionState> {
        let mut st = state.clone();
        let now = st.now;
        match *action {
            SessionAction::Acquire { user, service } => {
                let prev = Self::live_owner(&st, service);
                if let Ok(tok) = st.mgrs[service].acquire(user as u64, now) {
                    if let Some((p, _)) = prev {
                        if p != user as u64 {
                            st.hijack = Some("acquire displaced a live owner");
                        }
                    }
                    if st.held[user][service] != Some(tok) {
                        self.demote(&mut st, user, service);
                        st.held[user][service] = Some(tok);
                    }
                    st.last_seen[user] = Some(tok.value());
                }
            }
            SessionAction::Touch { user, service } => {
                let tok = st.held[user][service]?;
                if st.mgrs[service].touch(tok, now).is_ok() {
                    let owner = Self::live_owner(&st, service).map(|(u, _)| u);
                    if owner != Some(user as u64) {
                        st.hijack = Some("manager accepted a non-owner's token");
                    }
                } else {
                    // NoSession or BadToken: this token is dead forever.
                    self.demote(&mut st, user, service);
                }
            }
            SessionAction::Release { user, service } => {
                let tok = st.held[user][service]?;
                let _ = st.mgrs[service].release(tok, now);
                // Released or already dead: either way it is stale now.
                self.demote(&mut st, user, service);
            }
            SessionAction::Depart { user } => {
                // Walked out: every token is lost, and nothing the user
                // remembered can matter again (they never act), so clear
                // their adversary memory too — a sound state reduction.
                st.departed[user] = true;
                st.held[user] = vec![None; self.cfg.services];
                st.stale[user] = vec![Vec::new(); self.cfg.services];
                st.last_seen[user] = None;
            }
            SessionAction::StaleReplay { user, service, idx } => {
                let tok = *st.stale[user][service].get(idx)?;
                Self::probe_foreign(&mut st, service, tok, "stale token accepted");
            }
            SessionAction::GuessAdjacent { user, service, up } => {
                let base = st.last_seen[user]?;
                let guess = if up {
                    base.wrapping_add(1)
                } else {
                    base.wrapping_sub(1)
                };
                if st.held[user][service].is_some_and(|t| t.value() == guess) {
                    return None; // own live token: not a forgery
                }
                Self::probe_foreign(
                    &mut st,
                    service,
                    SessionToken::from_value(guess),
                    "sequentially-guessed token accepted",
                );
            }
            SessionAction::GuessSmall { user, service } => {
                if st.held[user][service].is_some_and(|t| t.value() == 1) {
                    return None;
                }
                Self::probe_foreign(
                    &mut st,
                    service,
                    SessionToken::from_value(1),
                    "low-constant token accepted",
                );
            }
            SessionAction::CrossApply { user, service } => {
                let tok = st.held[user][1 - service]?;
                Self::probe_foreign(
                    &mut st,
                    service,
                    tok,
                    "cross-service token accepted",
                );
            }
            SessionAction::Advance => {
                st.now = now + self.cfg.quantum;
            }
        }
        Some(st)
    }

    fn key(&self, state: &SessionState) -> Vec<u64> {
        // Per-user behavioural signature: for each service, the held
        // token's equality class, ownership, and the stale list's class
        // sequence; plus the guess-relevant bits of `last_seen`.
        let sigs: Vec<Vec<u64>> = (0..self.cfg.users)
            .map(|u| {
                let mut sig = Vec::with_capacity(self.cfg.services * 4 + 3);
                sig.push(state.departed[u] as u64);
                for s in 0..self.cfg.services {
                    let owner_here =
                        Self::live_owner(state, s).is_some_and(|(ou, _)| ou == u as u64);
                    sig.push(owner_here as u64);
                    sig.push(match state.held[u][s] {
                        None => u64::MAX,
                        Some(t) => Self::token_class(state, t.value()),
                    });
                    // Ordered stale classes (order matters for cap eviction).
                    let mut staleword = 1u64; // leading 1: length marker
                    for t in &state.stale[u][s] {
                        staleword = (staleword << 3) | (Self::token_class(state, t.value()) + 1);
                    }
                    sig.push(staleword);
                }
                match state.last_seen[u] {
                    None => sig.push(u64::MAX),
                    Some(v) => {
                        let mut bits = 0u64;
                        bits |= Self::token_class(state, v.wrapping_add(1)) << 2;
                        bits |= Self::token_class(state, v.wrapping_sub(1)) << 4;
                        sig.push(bits);
                    }
                }
                sig
            })
            .collect();

        let order: Vec<usize> = if self.cfg.symmetry {
            canonical_actor_order(&sigs)
        } else {
            (0..self.cfg.users).collect()
        };

        let mut key = Vec::new();
        for s in 0..self.cfg.services {
            match Self::live_owner(state, s) {
                None => key.push(u64::MAX),
                Some((ou, _)) => {
                    let canon = order
                        .iter()
                        .position(|&old| old as u64 == ou)
                        .expect("owner is a modelled user") as u64;
                    key.push(canon);
                }
            }
            key.push(self.idle_quanta(state, s));
            // Global guess classes that do not depend on a user.
            key.push(Self::token_class(state, 1));
        }
        for &old in &order {
            key.extend_from_slice(&sigs[old]);
        }
        key.push(state.hijack.is_some() as u64);
        key
    }

    fn properties(&self) -> Vec<Property<Self>> {
        vec![
            Property {
                name: "no-hijack",
                kind: PropertyKind::Always,
                check: |_, s| s.hijack.is_none(),
            },
            Property {
                name: "at-most-one-owner",
                kind: PropertyKind::Always,
                check: |m, s| {
                    (0..m.cfg.services).all(|svc| {
                        let accepted = (0..m.cfg.users)
                            .filter(|&u| {
                                s.held[u][svc].is_some_and(|t| {
                                    SessionModel::live_owner(s, svc)
                                        .is_some_and(|(_, ot)| ot == t)
                                })
                            })
                            .count();
                        accepted <= 1
                    })
                },
            },
            Property {
                name: "service-recoverable",
                kind: PropertyKind::AlwaysEventually,
                check: |m, s| {
                    (0..m.cfg.services).all(|svc| SessionModel::live_owner(s, svc).is_none())
                },
            },
        ]
    }

    fn format_action(&self, a: &SessionAction) -> String {
        let svc = |s: usize| if s == 0 { "projection" } else { "control" };
        match *a {
            SessionAction::Acquire { user, service } => {
                format!("user {user} acquires {}", svc(service))
            }
            SessionAction::Touch { user, service } => {
                format!("user {user} touches {}", svc(service))
            }
            SessionAction::Release { user, service } => {
                format!("user {user} releases {}", svc(service))
            }
            SessionAction::Depart { user } => {
                format!("user {user} leaves the room without releasing anything")
            }
            SessionAction::StaleReplay { user, service, idx } => {
                format!("user {user} replays stale token #{idx} on {}", svc(service))
            }
            SessionAction::GuessAdjacent { user, service, up } => format!(
                "user {user} guesses last-seen-token {} on {}",
                if up { "+1" } else { "-1" },
                svc(service)
            ),
            SessionAction::GuessSmall { user, service } => {
                format!("user {user} guesses token value 1 on {}", svc(service))
            }
            SessionAction::CrossApply { user, service } => format!(
                "user {user} applies their {} token to {}",
                svc(1 - service),
                svc(service)
            ),
            SessionAction::Advance => "clock +1 quantum".to_string(),
        }
    }

    fn format_state(&self, s: &SessionState) -> String {
        let mut parts = Vec::new();
        for svc in 0..self.cfg.services {
            let name = if svc == 0 { "projection" } else { "control" };
            match Self::live_owner(s, svc) {
                None => parts.push(format!("{name}: free")),
                Some((u, _)) => parts.push(format!(
                    "{name}: owned by user {u} (idle {} quanta)",
                    self.idle_quanta(s, svc)
                )),
            }
        }
        if let Some(why) = s.hijack {
            parts.push(format!("HIJACK: {why}"));
        }
        format!("[{} | t={}ms]", parts.join("; "), s.now.as_millis())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{check, CheckerConfig};

    fn small(policy: SessionPolicy) -> SessionConfig {
        SessionConfig {
            policy,
            users: 2,
            services: 1,
            stale_cap: 1,
            ..SessionConfig::default()
        }
    }

    #[test]
    fn manual_release_holds_all_safety_properties() {
        let m = SessionModel::new(small(SessionPolicy::ManualRelease));
        let r = check(&m, &CheckerConfig::default().with_max_states(100_000));
        assert!(r.passed(), "{}", r.violations[0].pretty(&m));
        assert!(r.complete, "small model must reach fixpoint");
    }

    #[test]
    fn none_policy_yields_two_step_hijack_counterexample() {
        let m = SessionModel::new(small(SessionPolicy::None));
        let r = check(&m, &CheckerConfig::default().with_max_states(100_000));
        assert!(!r.passed());
        let v = &r.violations[0];
        assert_eq!(v.property, "no-hijack");
        assert_eq!(v.trace.len(), 2, "acquire, acquire is the shortest hijack");
    }

    #[test]
    fn auto_expire_reaches_fixpoint_and_passes() {
        let m = SessionModel::new(SessionConfig {
            policy: SessionPolicy::AutoExpire {
                idle: SimDuration::from_secs(3),
            },
            users: 2,
            services: 1,
            stale_cap: 1,
            ..SessionConfig::default()
        });
        let r = check(&m, &CheckerConfig::default().with_max_states(200_000));
        assert!(r.passed(), "{}", r.violations[0].pretty(&m));
        assert!(r.complete);
        assert_eq!(r.undetermined, 0);
    }

    #[test]
    fn forgetful_manual_release_locks_out_forever() {
        let m = SessionModel::new(SessionConfig {
            allow_depart: true,
            ..small(SessionPolicy::ManualRelease)
        });
        let r = check(&m, &CheckerConfig::default().with_max_states(200_000));
        assert!(!r.passed());
        let v = &r.violations[0];
        assert_eq!(v.property, "service-recoverable");
        assert!(
            v.trace
                .iter()
                .any(|a| matches!(a, SessionAction::Depart { .. })),
            "the wedge requires a departed owner"
        );
    }

    #[test]
    fn forgetful_auto_expire_always_recovers() {
        // The paper's asked-for mechanism, proven: auto-expiry removes the
        // lockout that Depart creates under manual release.
        let m = SessionModel::new(SessionConfig {
            policy: SessionPolicy::AutoExpire {
                idle: SimDuration::from_secs(2),
            },
            allow_depart: true,
            users: 2,
            services: 1,
            stale_cap: 1,
            ..SessionConfig::default()
        });
        let r = check(&m, &CheckerConfig::default().with_max_states(200_000));
        assert!(r.passed(), "{}", r.violations[0].pretty(&m));
        assert!(r.complete);
    }

    #[test]
    fn token_guessing_adversary_cannot_break_in_two_service_model() {
        // Regression for the hardened token scheme: with sequential
        // counters this model finds `GuessAdjacent` hijacks; with
        // RNG-drawn tokens it must prove none exist.
        let m = SessionModel::new(SessionConfig {
            users: 2,
            ..SessionConfig::default()
        });
        let r = check(&m, &CheckerConfig::default().with_max_states(150_000));
        assert!(r.passed(), "{}", r.violations[0].pretty(&m));
    }

    #[test]
    fn symmetry_reduction_shrinks_without_changing_verdict() {
        let base = small(SessionPolicy::ManualRelease);
        let sym = SessionModel::new(SessionConfig {
            symmetry: true,
            ..base.clone()
        });
        let raw = SessionModel::new(SessionConfig {
            symmetry: false,
            ..base
        });
        let rs = check(&sym, &CheckerConfig::default().with_max_states(300_000));
        let rr = check(&raw, &CheckerConfig::default().with_max_states(300_000));
        assert!(rs.passed() && rr.passed());
        assert!(rs.complete && rr.complete);
        assert!(
            rs.distinct_states <= rr.distinct_states,
            "symmetry must never enlarge the canonical space ({} vs {})",
            rs.distinct_states,
            rr.distinct_states
        );
    }
}
