//! F3 kernel: the faculties-vs-resources frustration check.

use criterion::{criterion_group, criterion_main, Criterion};
use lpc_core::resources::{frustration_check, DeviceResources};
use lpc_core::UserProfile;
use std::hint::black_box;

fn bench_frustration_check(c: &mut Criterion) {
    let users = UserProfile::all_presets();
    let resources = [
        DeviceResources::research_prototype(),
        DeviceResources::commercial_grade(),
    ];
    c.bench_function("resource_match/f3_full_matrix", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for u in &users {
                for r in &resources {
                    total += frustration_check(black_box(&u.faculties), r).len();
                }
            }
            black_box(total)
        })
    });
}

criterion_group!(benches, bench_frustration_check);
criterion_main!(benches);
