//! Static-verifier benchmarks: what verification costs up front, and what
//! the verified fast path buys back on every run.
//!
//! Comparisons, each on the checked interpreter vs `Vm::run_verified`
//! (and, since the aroma-flow PR, vs the translation-validated optimizer's
//! output):
//!
//! - the shipped brightness proxy (tiny, loop-free → fuel metering elided),
//! - a compute-heavy summing loop whose bound depends on the argument
//!   (metered fast path: stack checks gone, fuel accounting kept),
//! - the same loop with the counter clamped to a static range (range
//!   analysis proves it bounded → fuel metering elided even though the
//!   CFG is cyclic),
//! - a padded registration blob before/after the optimizer,
//! - the one-off cost of `Program::verify` itself, amortised over runs.

use aroma_mcode::asm::assemble;
use aroma_mcode::opt::optimize_verified;
use aroma_mcode::{NullHost, Program, VerifyConfig, Vm, FUEL_DEFAULT};
use criterion::{criterion_group, criterion_main, Criterion};
use smart_projector::proxy::brightness_proxy;
use std::hint::black_box;

/// The summing loop with locals explicitly initialised, as definite
/// initialization requires (the VM's default-zero locals are a dynamic
/// behaviour the verifier refuses to lean on).
fn sum_loop() -> Program {
    assemble(
        "push 0
         store 0
         arg 0
         store 1
         loop:
         load 1
         jz out
         load 0
         load 1
         add
         store 0
         load 1
         push 1
         sub
         store 1
         jmp loop
         out:
         load 0
         halt",
    )
    .unwrap()
}

fn bench_proxy_paths(c: &mut Criterion) {
    let p = brightness_proxy();
    let vp = p.verify_default().unwrap();
    assert!(vp.fuel_bound().is_some(), "proxy should be loop-free");
    c.bench_function("verifier/brightness_checked", |b| {
        b.iter(|| black_box(Vm.run_default(&p, &[black_box(83)], &mut NullHost)))
    });
    c.bench_function("verifier/brightness_verified_unmetered", |b| {
        b.iter(|| black_box(Vm.run_verified_default(&vp, &[black_box(83)], &mut NullHost)))
    });
}

fn bench_loop_paths(c: &mut Criterion) {
    let p = sum_loop();
    let vp = p.verify_default().unwrap();
    assert!(vp.fuel_bound().is_none(), "loop keeps fuel metering");
    c.bench_function("verifier/sum_1000_checked", |b| {
        b.iter(|| black_box(Vm.run(&p, &[1000], &mut NullHost, FUEL_DEFAULT)))
    });
    c.bench_function("verifier/sum_1000_verified_metered", |b| {
        b.iter(|| black_box(Vm.run_verified(&vp, &[1000], &mut NullHost, FUEL_DEFAULT)))
    });
}

/// The summing loop with the counter clamped to `[0, 1000]` up front:
/// range analysis infers the trip bound, so the certificate carries a
/// static fuel bound and the fast path drops fuel metering too.
fn bounded_sum_loop() -> Program {
    assemble(
        "push 0
         store 0
         arg 0
         push 0
         max
         push 1000
         min
         store 1
         loop:
         load 1
         jz out
         load 0
         load 1
         add
         store 0
         load 1
         push 1
         sub
         store 1
         jmp loop
         out:
         load 0
         halt",
    )
    .unwrap()
}

fn bench_bounded_loop_paths(c: &mut Criterion) {
    let p = bounded_sum_loop();
    let vp = p.verify_default().unwrap();
    assert!(
        vp.fuel_bound().is_some(),
        "clamped counter should yield an inferred fuel bound"
    );
    c.bench_function("verifier/bounded_sum_1000_checked", |b| {
        b.iter(|| black_box(Vm.run(&p, &[1000], &mut NullHost, FUEL_DEFAULT)))
    });
    c.bench_function("verifier/bounded_sum_1000_verified_unmetered", |b| {
        b.iter(|| black_box(Vm.run_verified(&vp, &[1000], &mut NullHost, FUEL_DEFAULT)))
    });
}

fn bench_optimizer_paths(c: &mut Criterion) {
    // A registration padded with dead stores and constant pre-computation.
    let p = assemble(
        "push 3
         push 39
         add
         store 2
         push 7
         store 3
         arg 0
         push 2
         add
         push 5
         div
         push 5
         mul
         push 10
         max
         push 100
         min
         halt",
    )
    .unwrap();
    let config = VerifyConfig::default();
    let vp = p.verify(&config).unwrap();
    let validated = optimize_verified(&vp, &config);
    assert!(validated.improved, "padding should be removable");
    c.bench_function("verifier/padded_proxy_verified", |b| {
        b.iter(|| black_box(Vm.run_verified_default(&vp, &[black_box(83)], &mut NullHost)))
    });
    c.bench_function("verifier/padded_proxy_optimized_verified", |b| {
        b.iter(|| {
            black_box(Vm.run_verified_default(
                &validated.program,
                &[black_box(83)],
                &mut NullHost,
            ))
        })
    });
    c.bench_function("verifier/optimize_and_validate_padded_proxy", |b| {
        b.iter(|| black_box(optimize_verified(&vp, &config)))
    });
}

fn bench_verify_cost(c: &mut Criterion) {
    let proxy = brightness_proxy();
    let looped = sum_loop();
    c.bench_function("verifier/verify_brightness_proxy", |b| {
        b.iter(|| black_box(proxy.verify_default().unwrap()))
    });
    c.bench_function("verifier/verify_sum_loop", |b| {
        b.iter(|| black_box(looped.verify_default().unwrap()))
    });
}

criterion_group!(
    benches,
    bench_proxy_paths,
    bench_loop_paths,
    bench_bounded_loop_paths,
    bench_optimizer_paths,
    bench_verify_cost
);
criterion_main!(benches);
