//! Static-verifier benchmarks: what verification costs up front, and what
//! the verified fast path buys back on every run.
//!
//! Three comparisons, each on the checked interpreter vs
//! `Vm::run_verified`:
//!
//! - the shipped brightness proxy (tiny, loop-free → fuel metering elided),
//! - a compute-heavy summing loop (metered fast path: stack checks gone,
//!   fuel accounting kept),
//! - the one-off cost of `Program::verify` itself, amortised over runs.

use aroma_mcode::asm::assemble;
use aroma_mcode::{NullHost, Program, Vm, FUEL_DEFAULT};
use criterion::{criterion_group, criterion_main, Criterion};
use smart_projector::proxy::brightness_proxy;
use std::hint::black_box;

/// The summing loop with locals explicitly initialised, as definite
/// initialization requires (the VM's default-zero locals are a dynamic
/// behaviour the verifier refuses to lean on).
fn sum_loop() -> Program {
    assemble(
        "push 0
         store 0
         arg 0
         store 1
         loop:
         load 1
         jz out
         load 0
         load 1
         add
         store 0
         load 1
         push 1
         sub
         store 1
         jmp loop
         out:
         load 0
         halt",
    )
    .unwrap()
}

fn bench_proxy_paths(c: &mut Criterion) {
    let p = brightness_proxy();
    let vp = p.verify_default().unwrap();
    assert!(vp.fuel_bound().is_some(), "proxy should be loop-free");
    c.bench_function("verifier/brightness_checked", |b| {
        b.iter(|| black_box(Vm.run_default(&p, &[black_box(83)], &mut NullHost)))
    });
    c.bench_function("verifier/brightness_verified_unmetered", |b| {
        b.iter(|| black_box(Vm.run_verified_default(&vp, &[black_box(83)], &mut NullHost)))
    });
}

fn bench_loop_paths(c: &mut Criterion) {
    let p = sum_loop();
    let vp = p.verify_default().unwrap();
    assert!(vp.fuel_bound().is_none(), "loop keeps fuel metering");
    c.bench_function("verifier/sum_1000_checked", |b| {
        b.iter(|| black_box(Vm.run(&p, &[1000], &mut NullHost, FUEL_DEFAULT)))
    });
    c.bench_function("verifier/sum_1000_verified_metered", |b| {
        b.iter(|| black_box(Vm.run_verified(&vp, &[1000], &mut NullHost, FUEL_DEFAULT)))
    });
}

fn bench_verify_cost(c: &mut Criterion) {
    let proxy = brightness_proxy();
    let looped = sum_loop();
    c.bench_function("verifier/verify_brightness_proxy", |b| {
        b.iter(|| black_box(proxy.verify_default().unwrap()))
    });
    c.bench_function("verifier/verify_sum_loop", |b| {
        b.iter(|| black_box(looped.verify_default().unwrap()))
    });
}

criterion_group!(
    benches,
    bench_proxy_paths,
    bench_loop_paths,
    bench_verify_cost
);
criterion_main!(benches);
