//! VNC codec kernels, with the raw-vs-RLE ablation of DESIGN.md §5: what
//! tile diff + RLE buys over shipping full raw frames.

use aroma_sim::{SimRng, SimTime};
use aroma_vnc::encoding::{decode_tile, encode_tile, rle_encode, write_tile_stream};
use aroma_vnc::workloads::{BouncingBox, ScreenSource, SlideDeck};
use aroma_vnc::{Framebuffer, TILE};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn flat_tile() -> Vec<u16> {
    vec![0x2104; TILE * TILE]
}

fn noise_tile() -> Vec<u16> {
    let mut rng = SimRng::new(3);
    (0..TILE * TILE).map(|_| rng.next_u64_raw() as u16).collect()
}

fn bench_tile_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("vnc_encoding/tile");
    let flat = flat_tile();
    let noise = noise_tile();
    g.bench_function("encode_flat", |b| {
        b.iter(|| black_box(encode_tile(0, 0, black_box(&flat))))
    });
    g.bench_function("encode_noise", |b| {
        b.iter(|| black_box(encode_tile(0, 0, black_box(&noise))))
    });
    g.bench_function("rle_flat", |b| b.iter(|| black_box(rle_encode(&flat))));
    let enc = encode_tile(0, 0, &flat);
    g.bench_function("decode_flat", |b| {
        b.iter(|| black_box(decode_tile(&enc, TILE * TILE).unwrap()))
    });
    g.finish();
}

fn bench_hash_and_diff(c: &mut Criterion) {
    let mut g = c.benchmark_group("vnc_encoding/diff");
    let mut fb = Framebuffer::new(640, 480);
    let mut src = BouncingBox::new();
    src.render(SimTime::from_nanos(0), &mut fb);
    let prev = fb.tile_hashes();
    src.render(SimTime::from_nanos(100_000_000), &mut fb);
    g.bench_function("hash_640x480", |b| b.iter(|| black_box(fb.tile_hashes())));
    g.bench_function("dirty_tiles_640x480", |b| {
        b.iter(|| black_box(fb.dirty_tiles(&prev)))
    });
    g.finish();
}

/// The ablation: full-screen raw encode vs dirty-tile + best-of encode for
/// one animation frame step.
fn bench_full_vs_incremental(c: &mut Criterion) {
    let mut g = c.benchmark_group("vnc_encoding/ablation_full_vs_incremental");
    g.sample_size(20);
    let mut fb = Framebuffer::new(640, 480);
    let mut src = SlideDeck::new(10.0);
    src.render(SimTime::from_nanos(0), &mut fb);
    let prev = fb.tile_hashes();
    let mut anim = BouncingBox::new();
    anim.render(SimTime::from_nanos(50_000_000), &mut fb);
    let mut buf = vec![0u16; TILE * TILE];

    g.bench_function("full_raw_frame", |b| {
        b.iter(|| {
            let tiles: Vec<_> = (0..fb.tiles_y())
                .flat_map(|ty| (0..fb.tiles_x()).map(move |tx| (tx, ty)))
                .map(|(tx, ty)| {
                    let mut t = vec![0u16; TILE * TILE];
                    fb.read_tile(tx, ty, &mut t);
                    // Raw = 2 bytes/px regardless of content.
                    aroma_vnc::encoding::EncodedTile {
                        tx: tx as u16,
                        ty: ty as u16,
                        encoding: aroma_vnc::encoding::Encoding::Raw,
                        data: bytes::Bytes::from(
                            t.iter().flat_map(|p| p.to_le_bytes()).collect::<Vec<u8>>(),
                        ),
                    }
                })
                .collect();
            black_box(write_tile_stream(&tiles).len())
        })
    });
    g.bench_function("dirty_tiles_best_encoding", |b| {
        b.iter(|| {
            let dirty = fb.dirty_tiles(&prev);
            let tiles: Vec<_> = dirty
                .iter()
                .map(|&idx| {
                    let (tx, ty) = (idx % fb.tiles_x(), idx / fb.tiles_x());
                    fb.read_tile(tx, ty, &mut buf);
                    encode_tile(tx as u16, ty as u16, &buf)
                })
                .collect();
            black_box(write_tile_stream(&tiles).len())
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_tile_codec,
    bench_hash_and_diff,
    bench_full_vs_incremental
);
criterion_main!(benches);
