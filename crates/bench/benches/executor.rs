//! E7 bench: executor runs under both policies.

use aroma_sim::SimDuration;
use aroma_appliance::executor::Policy;
use criterion::{criterion_group, criterion_main, Criterion};
use lpc_bench::experiments::executor_exp::run_canonical;
use std::hint::black_box;

fn bench_executor(c: &mut Criterion) {
    let mut g = c.benchmark_group("executor/e7");
    g.bench_function("single_threaded_120s_job", |b| {
        b.iter(|| black_box(run_canonical(Policy::SingleThreaded, 120, 2.0)))
    });
    g.bench_function("cooperative_50ms_120s_job", |b| {
        b.iter(|| {
            black_box(run_canonical(
                Policy::Cooperative {
                    quantum: SimDuration::from_millis(50),
                },
                120,
                2.0,
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_executor);
criterion_main!(benches);
