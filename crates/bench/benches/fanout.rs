//! Broadcast fan-out bench: one screen server streaming to 10 / 100 /
//! 1 000 / 10 000 viewers over the wired star (simulated seconds of
//! encode-once broadcast work per iteration). The same scenario backs
//! `BENCH_fanout.json` via `repro bench --fanout`.

use criterion::{criterion_group, criterion_main, Criterion};
use lpc_bench::fanoutbench;
use std::hint::black_box;

fn bench_fanout(c: &mut Criterion) {
    let mut g = c.benchmark_group("fanout/broadcast");
    g.sample_size(10);
    for &viewers in &fanoutbench::SCALES {
        g.bench_function(format!("viewers_{viewers}"), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(fanoutbench::scale_point(viewers, seed))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fanout);
criterion_main!(benches);
