//! Model-checker throughput: what a state of each production model costs
//! to explore (clone + step + canonicalise + dedup), and what the
//! symmetry reduction saves.
//!
//! The headline sweep in `examples/model_check.rs` visits ~4.5M distinct
//! states; these benches keep its wall-clock honest by tracking the
//! per-transition cost of the session model (clones two `SessionManager`s
//! per step) and the lease model (clones a `ServiceRegistry` plus the
//! ghost spec), plus a thread-scaling group over the layer-parallel BFS
//! engine (DESIGN.md §12). On a single-core runner the multi-worker
//! points measure coordination overhead, not speedup — `scripts/bench.sh`
//! records `available_parallelism` beside the numbers for that reason.

use aroma_check::{check, CheckerConfig, LeaseConfig, LeaseModel, SessionConfig, SessionModel};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn session_cfg(users: usize, symmetry: bool) -> SessionConfig {
    SessionConfig {
        users,
        services: 1,
        stale_cap: 1,
        symmetry,
        ..SessionConfig::default()
    }
}

fn bench_session_exploration(c: &mut Criterion) {
    let cfg = CheckerConfig::default().with_max_states(20_000);
    c.bench_function("checker/session_2users_fixpoint", |b| {
        let m = SessionModel::new(session_cfg(2, true));
        b.iter(|| {
            let r = check(black_box(&m), &cfg);
            assert!(r.passed());
            black_box(r.distinct_states)
        })
    });
    c.bench_function("checker/session_3users_symmetry_on", |b| {
        let m = SessionModel::new(session_cfg(3, true));
        b.iter(|| black_box(check(black_box(&m), &cfg).distinct_states))
    });
    c.bench_function("checker/session_3users_symmetry_off", |b| {
        let m = SessionModel::new(session_cfg(3, false));
        b.iter(|| black_box(check(black_box(&m), &cfg).distinct_states))
    });
}

fn bench_lease_exploration(c: &mut Criterion) {
    let cfg = CheckerConfig::default().with_max_states(20_000);
    c.bench_function("checker/lease_1provider_fixpoint", |b| {
        let m = LeaseModel::new(LeaseConfig {
            providers: 1,
            requested_quanta: vec![2],
            channel_cap: 2,
            ..LeaseConfig::default()
        });
        b.iter(|| {
            let r = check(black_box(&m), &cfg);
            assert!(r.passed());
            black_box(r.distinct_states)
        })
    });
    c.bench_function("checker/lease_2providers", |b| {
        let m = LeaseModel::new(LeaseConfig::default());
        b.iter(|| black_box(check(black_box(&m), &cfg).distinct_states))
    });
}

fn bench_thread_scaling(c: &mut Criterion) {
    // One fixed workload per worker count; every run must report the same
    // distinct-state count (the determinism contract), so the only thing
    // that varies across these benches is wall-clock.
    let cfg = CheckerConfig::default().with_max_states(20_000);
    let session = SessionModel::new(session_cfg(3, true));
    let expected = check(&session, &cfg.with_workers(1)).distinct_states;
    let mut g = c.benchmark_group("checker/threads");
    for workers in [1usize, 2, 4] {
        g.bench_function(format!("session_3users_{workers}w"), |b| {
            b.iter(|| {
                let states = check(black_box(&session), &cfg.with_workers(workers)).distinct_states;
                assert_eq!(states, expected);
                black_box(states)
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_session_exploration,
    bench_lease_exploration,
    bench_thread_scaling
);
criterion_main!(benches);
