//! E4 bench: session-manager kernels and full contention runs, plus the
//! auto-expiry-horizon sweep ablation (DESIGN.md §5).

use aroma_sim::{SimDuration, SimTime};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use lpc_bench::experiments::sessions_exp::run_contention;
use lpc_bench::scenarios::secs;
use smart_projector::session::{SessionManager, SessionPolicy};
use std::hint::black_box;

fn bench_manager_kernel(c: &mut Criterion) {
    c.bench_function("sessions/acquire_release_cycle", |b| {
        b.iter_batched(
            || SessionManager::new(SessionPolicy::ManualRelease),
            |mut m| {
                for user in 0..100u64 {
                    let t = SimTime::ZERO + SimDuration::from_secs(user);
                    let tok = m.acquire(user, t).unwrap();
                    m.touch(tok, t).unwrap();
                    m.release(tok, t).unwrap();
                }
                black_box(m.stats)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_contention_runs(c: &mut Criterion) {
    let mut g = c.benchmark_group("sessions/e4_contention");
    g.sample_size(10);
    for (name, policy) in [
        ("none", SessionPolicy::None),
        ("manual", SessionPolicy::ManualRelease),
        (
            "auto8s",
            SessionPolicy::AutoExpire {
                idle: SimDuration::from_secs(8),
            },
        ),
    ] {
        g.bench_function(format!("3_presenters_{name}"), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(run_contention(3, policy, secs(30), seed))
            })
        });
    }
    g.finish();
}

/// Ablation: how the expiry horizon trades lockout time against the risk
/// of expiring an active-but-quiet presenter.
fn bench_expiry_horizon_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("sessions/ablation_expiry_horizon");
    g.sample_size(10);
    for idle_s in [2u64, 8, 20] {
        g.bench_function(format!("idle_{idle_s}s"), |b| {
            let mut seed = 100u64;
            b.iter(|| {
                seed += 1;
                black_box(run_contention(
                    3,
                    SessionPolicy::AutoExpire {
                        idle: SimDuration::from_secs(idle_s),
                    },
                    secs(30),
                    seed,
                ))
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_manager_kernel,
    bench_contention_runs,
    bench_expiry_horizon_sweep
);
criterion_main!(benches);
