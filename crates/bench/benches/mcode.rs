//! Mobile-code VM benchmarks: proxy-sized programs must be negligible next
//! to the radio work, and hostile code must burn fuel cheaply.

use aroma_mcode::asm::assemble;
use aroma_mcode::{NullHost, Program, Vm};
use criterion::{criterion_group, criterion_main, Criterion};
use smart_projector::proxy::brightness_proxy;
use std::hint::black_box;

fn bench_proxy_run(c: &mut Criterion) {
    let p = brightness_proxy();
    c.bench_function("mcode/brightness_proxy_run", |b| {
        b.iter(|| black_box(Vm.run_default(&p, &[black_box(83)], &mut NullHost)))
    });
}

fn bench_loop(c: &mut Criterion) {
    // sum 1..=1000 — a compute-heavy proxy.
    let p = assemble(
        "arg 0
         store 1
         loop:
         load 1
         jz out
         load 0
         load 1
         add
         store 0
         load 1
         push 1
         sub
         store 1
         jmp loop
         out:
         load 0
         halt",
    )
    .unwrap();
    c.bench_function("mcode/sum_1000_loop", |b| {
        b.iter(|| black_box(Vm.run(&p, &[1000], &mut NullHost, 100_000)))
    });
}

fn bench_hostile(c: &mut Criterion) {
    // Infinite loop: how fast does fuel metering shut it down?
    let p = Program::new(vec![aroma_mcode::Op::Jmp(0)]).unwrap();
    c.bench_function("mcode/hostile_spin_10k_fuel", |b| {
        b.iter(|| black_box(Vm.run(&p, &[], &mut NullHost, 10_000)))
    });
}

fn bench_decode(c: &mut Criterion) {
    let bytes = brightness_proxy().encode();
    c.bench_function("mcode/decode_validate_proxy", |b| {
        b.iter(|| black_box(Program::decode(bytes.clone()).unwrap()))
    });
}

criterion_group!(benches, bench_proxy_run, bench_loop, bench_hostile, bench_decode);
criterion_main!(benches);
