//! F5 kernel: the harmony score.

use criterion::{criterion_group, criterion_main, Criterion};
use lpc_core::intent::{harmony, DesignPurpose, UserGoals};
use std::hint::black_box;

fn bench_harmony(c: &mut Criterion) {
    let goals = [
        UserGoals::researcher(),
        UserGoals::presenter(),
        UserGoals::casual(),
    ];
    let purposes = [
        DesignPurpose::research_prototype(),
        DesignPurpose::commercial_product(),
    ];
    c.bench_function("harmony/f5_matrix", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for g in &goals {
                for p in &purposes {
                    acc += harmony(black_box(g), black_box(p));
                }
            }
            black_box(acc)
        })
    });
}

criterion_group!(benches, bench_harmony);
criterion_main!(benches);
