//! E10 bench: voice command sessions across environments.

use aroma_env::EnvironmentKind;
use criterion::{criterion_group, criterion_main, Criterion};
use lpc_bench::experiments::voice::run_voice;
use std::hint::black_box;

fn bench_voice(c: &mut Criterion) {
    let mut g = c.benchmark_group("voice/e10");
    for kind in [
        EnvironmentKind::QuietOffice,
        EnvironmentKind::ConferenceHall,
        EnvironmentKind::SubwayCar,
    ] {
        g.bench_function(format!("{}_200_sessions", kind.name().replace(' ', "_")), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(run_voice(kind, true, 200, seed))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_voice);
criterion_main!(benches);
