//! Telemetry overhead bench (DESIGN.md §10): the same E2 density run with
//! the recorder off (the default — every recording call is a no-op match
//! arm the optimiser deletes), metrics-only, and with the full trace ring.
//!
//! The acceptance bar is off ≈ absent: since `Telemetry::Off` *is* the
//! absent recorder (the network always carries the enum field), the "off"
//! group is the baseline, and the enabled groups show what turning the
//! instruments on actually costs.

use criterion::{criterion_group, criterion_main, Criterion};
use lpc_bench::scenarios::{run_density, run_density_traced, secs, ChannelPlan};
use aroma_net::RateAdaptation;
use aroma_sim::telemetry::TelemetryConfig;
use std::hint::black_box;

fn bench_telemetry(c: &mut Criterion) {
    let mut g = c.benchmark_group("telemetry");
    g.sample_size(10);
    g.bench_function("density_8_pairs_recorder_off", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(run_density(
                8,
                ChannelPlan::AllCochannel,
                RateAdaptation::SnrBased,
                1000,
                secs(1),
                seed,
            ))
        })
    });
    g.bench_function("density_8_pairs_metrics_only", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(run_density_traced(
                8,
                ChannelPlan::AllCochannel,
                RateAdaptation::SnrBased,
                1000,
                secs(1),
                seed,
                Some(TelemetryConfig::metrics_only()),
            ))
        })
    });
    g.bench_function("density_8_pairs_full_trace", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(run_density_traced(
                8,
                ChannelPlan::AllCochannel,
                RateAdaptation::SnrBased,
                1000,
                secs(1),
                seed,
                Some(TelemetryConfig::default()),
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_telemetry);
criterion_main!(benches);
