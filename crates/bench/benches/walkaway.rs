//! E11 bench: walkaway (mobility) simulation runs per rate policy.

use criterion::{criterion_group, criterion_main, Criterion};
use lpc_bench::experiments::walkaway::walkaway;
use aroma_net::{Rate, RateAdaptation};
use std::hint::black_box;

fn bench_walkaway(c: &mut Criterion) {
    let mut g = c.benchmark_group("walkaway/e11");
    g.sample_size(10);
    for (name, adapt) in [
        ("adaptive", RateAdaptation::SnrBased),
        ("fixed11", RateAdaptation::Fixed(Rate::R11)),
    ] {
        g.bench_function(name, |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(walkaway(adapt, 3.0, 250.0, 5, 1, seed))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_walkaway);
criterion_main!(benches);
