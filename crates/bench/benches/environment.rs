//! F2 kernels: propagation and climate-compatibility computations.

use aroma_env::climate::OperatingRange;
use aroma_env::radio::RadioEnvironment;
use aroma_env::space::{Material, Point, Wall};
use aroma_env::{EnvironmentKind, EnvironmentProfile};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_path_loss(c: &mut Criterion) {
    let mut g = c.benchmark_group("environment/path_loss");
    let open = RadioEnvironment::default();
    let walled = RadioEnvironment {
        walls: (0..20)
            .map(|i| {
                Wall::new(
                    Point::new(i as f64, -10.0),
                    Point::new(i as f64, 10.0),
                    Material::Drywall,
                )
            })
            .collect(),
        ..Default::default()
    };
    g.bench_function("open", |b| {
        b.iter(|| {
            black_box(open.path_loss_db(
                1,
                Point::new(0.0, 0.0),
                2,
                black_box(Point::new(25.0, 3.0)),
            ))
        })
    });
    g.bench_function("20_walls", |b| {
        b.iter(|| {
            black_box(walled.path_loss_db(
                1,
                Point::new(0.0, 0.0),
                2,
                black_box(Point::new(25.0, 3.0)),
            ))
        })
    });
    g.finish();
}

fn bench_sinr(c: &mut Criterion) {
    let env = RadioEnvironment::default();
    let interferers: Vec<(f64, f64)> = (0..16).map(|i| (-70.0 - i as f64, 0.8)).collect();
    c.bench_function("environment/sinr_16_interferers", |b| {
        b.iter(|| black_box(env.sinr_db(black_box(-60.0), &interferers)))
    });
}

fn bench_climate_matrix(c: &mut Criterion) {
    let envs: Vec<_> = EnvironmentKind::ALL
        .iter()
        .map(|&k| EnvironmentProfile::preset(k).build())
        .collect();
    let ranges = [
        OperatingRange::indoor_electronics(),
        OperatingRange::projector(),
        OperatingRange::human_comfort(),
        OperatingRange::ruggedised(),
    ];
    c.bench_function("environment/f2_compatibility_matrix", |b| {
        b.iter(|| {
            let mut violations = 0usize;
            for e in &envs {
                for r in &ranges {
                    violations += r.violations(&e.climate).len();
                }
            }
            black_box(violations)
        })
    });
}

criterion_group!(benches, bench_path_loss, bench_sinr, bench_climate_matrix);
criterion_main!(benches);
