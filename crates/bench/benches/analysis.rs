//! F1/E8 bench: full five-layer analyses of the composed Smart Projector.

use aroma_env::EnvironmentKind;
use criterion::{criterion_group, criterion_main, Criterion};
use lpc_core::UserProfile;
use smart_projector::{smart_projector_system, ProjectorVariant};
use std::hint::black_box;

fn bench_analysis(c: &mut Criterion) {
    let mut g = c.benchmark_group("analysis/e8");
    let field = smart_projector_system(
        ProjectorVariant::Prototype,
        EnvironmentKind::ConferenceHall,
        vec![UserProfile::casual(), UserProfile::presenter()],
        true,
    );
    g.bench_function("prototype_field_2_users", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(field.analyze(seed))
        })
    });
    let many_users = smart_projector_system(
        ProjectorVariant::Prototype,
        EnvironmentKind::ConferenceHall,
        UserProfile::all_presets(),
        true,
    );
    g.bench_function("prototype_field_5_users", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(many_users.analyze(seed))
        })
    });
    g.finish();
}

fn bench_render(c: &mut Criterion) {
    let sys = smart_projector_system(
        ProjectorVariant::Prototype,
        EnvironmentKind::ConferenceHall,
        vec![UserProfile::casual()],
        true,
    );
    let report = sys.analyze(1);
    c.bench_function("analysis/render_report", |b| {
        b.iter(|| black_box(report.render()))
    });
}

criterion_group!(benches, bench_analysis, bench_render);
criterion_main!(benches);
