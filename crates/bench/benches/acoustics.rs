//! E6 bench: acoustic-field evaluation and recognition-curve kernels.

use aroma_env::acoustics::{recognition_accuracy, AcousticField, NoiseSource};
use aroma_env::space::Point;
use aroma_env::{EnvironmentKind, EnvironmentProfile};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_noise_field(c: &mut Criterion) {
    let field = AcousticField {
        ambient_db: 45.0,
        sources: (0..16)
            .map(|i| NoiseSource::new(Point::new(i as f64, (i % 4) as f64), 60.0 + i as f64))
            .collect(),
        ..Default::default()
    };
    c.bench_function("acoustics/noise_at_16_sources", |b| {
        b.iter(|| black_box(field.noise_at(black_box(Point::new(2.5, 1.5)))))
    });
}

fn bench_e6_matrix(c: &mut Criterion) {
    let envs: Vec<_> = EnvironmentKind::ALL
        .iter()
        .map(|&k| EnvironmentProfile::preset(k).build())
        .collect();
    c.bench_function("acoustics/e6_full_matrix", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for env in &envs {
                for d in [0.3f64, 1.0, 3.0] {
                    let snr = env
                        .acoustics
                        .speech_snr_db(Point::new(0.0, 0.0), Point::new(d, 0.0));
                    acc += recognition_accuracy(snr);
                }
            }
            black_box(acc)
        })
    });
}

criterion_group!(benches, bench_noise_field, bench_e6_matrix);
criterion_main!(benches);
