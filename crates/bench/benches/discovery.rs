//! E3 bench: registry kernels plus full discovery rounds, and the
//! lease-vs-permanent-registration ablation (DESIGN.md §5): churn cost of
//! keeping leases alive.

use aroma_discovery::codec::{ServiceId, ServiceItem, Template};
use aroma_discovery::registry::ServiceRegistry;
use aroma_sim::{SimDuration, SimTime};
use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn item(id: u64) -> ServiceItem {
    ServiceItem {
        id: ServiceId(id),
        kind: if id.is_multiple_of(3) { "projector/display" } else { "sensor/misc" }.into(),
        attributes: vec![("room".into(), format!("R-{}", id % 10))],
        provider: id as u32,
        proxy: Bytes::from_static(b"proxy"),
    }
}

fn bench_registry(c: &mut Criterion) {
    let mut g = c.benchmark_group("discovery/registry");
    g.bench_function("register_100", |b| {
        b.iter_batched(
            || ServiceRegistry::new(SimDuration::from_secs(10)),
            |mut r| {
                for i in 0..100 {
                    r.register(SimTime::ZERO, item(i), SimDuration::from_secs(5));
                }
                black_box(r.len())
            },
            BatchSize::SmallInput,
        )
    });
    let mut full = ServiceRegistry::new(SimDuration::from_secs(10));
    for i in 0..200 {
        full.register(SimTime::ZERO, item(i), SimDuration::from_secs(5));
    }
    let template = Template::of_kind("projector/display").with_attr("room", "R-0");
    g.bench_function("lookup_in_200", |b| {
        b.iter(|| black_box(full.lookup(&template).len()))
    });
    g.bench_function("expire_sweep_200", |b| {
        b.iter_batched(
            || {
                let mut r = ServiceRegistry::new(SimDuration::from_secs(10));
                for i in 0..200 {
                    r.register(SimTime::ZERO, item(i), SimDuration::from_secs(1));
                }
                r
            },
            |mut r| black_box(r.expire(SimTime::ZERO + SimDuration::from_secs(2)).len()),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// Ablation: renewal work under short leases vs effectively-permanent ones.
fn bench_lease_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("discovery/ablation_lease_churn");
    for (name, lease_s) in [("1s_leases", 1u64), ("permanent", 3600)] {
        g.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let mut r = ServiceRegistry::new(SimDuration::from_secs(lease_s));
                    for i in 0..50 {
                        r.register(SimTime::ZERO, item(i), SimDuration::from_secs(lease_s));
                    }
                    r
                },
                |mut r| {
                    // Simulate 60 s of provider behaviour: renew every
                    // lease/2 if short, never if permanent; sweep each s.
                    let mut renewals = 0u64;
                    for s in 1..=60u64 {
                        let now = SimTime::ZERO + SimDuration::from_secs(s);
                        if lease_s < 60 && s.is_multiple_of(lease_s.max(1)) {
                            for i in 0..50 {
                                if r.renew(now, ServiceId(i)).is_some() {
                                    renewals += 1;
                                }
                            }
                        }
                        r.expire(now);
                    }
                    black_box((renewals, r.len()))
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_codec(c: &mut Criterion) {
    use aroma_discovery::codec::Msg;
    let msg = Msg::LookupReply {
        req: 1,
        items: (0..8).map(item).collect(),
        truncated: false,
    };
    let encoded = msg.encode();
    let mut g = c.benchmark_group("discovery/codec");
    g.bench_function("encode_reply_8_items", |b| b.iter(|| black_box(msg.encode())));
    g.bench_function("decode_reply_8_items", |b| {
        b.iter(|| black_box(Msg::decode(encoded.clone()).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench_registry, bench_lease_ablation, bench_codec);
criterion_main!(benches);
