//! F4 kernels: divergence, planning, and full behavioural sessions, with
//! the BFS-vs-greedy planner ablation called out in DESIGN.md §5.

use aroma_sim::SimRng;
use criterion::{criterion_group, criterion_main, Criterion};
use lpc_core::mental::divergence;
use lpc_core::user_sim::{simulate_session, PlannerKind, SessionParams};
use lpc_core::{StateMachine, UserProfile};
use smart_projector::system::{application_machine, belief_for, task};
use smart_projector::ProjectorVariant;
use std::hint::black_box;

fn big_machine(n: usize) -> StateMachine {
    let mut m = StateMachine::new();
    for i in 0..n {
        m.add(&format!("s{i}"), "next", &format!("s{}", i + 1));
        m.add(&format!("s{i}"), "back", &format!("s{}", i.saturating_sub(1)));
        m.add(&format!("s{i}"), "reset", "s0");
    }
    m
}

fn bench_divergence(c: &mut Criterion) {
    let actual = big_machine(50);
    let mut belief = actual.clone();
    belief.remove("s10", "next");
    belief.add("s20", "magic", "s40");
    c.bench_function("mental_model/divergence_150_transitions", |b| {
        b.iter(|| black_box(divergence(&belief, &actual)))
    });
}

fn bench_planner(c: &mut Criterion) {
    let m = big_machine(50);
    c.bench_function("mental_model/bfs_plan_50_states", |b| {
        b.iter(|| black_box(m.plan("s0", "s49")))
    });
}

fn bench_sessions(c: &mut Criterion) {
    let mut g = c.benchmark_group("mental_model/session");
    let actual = application_machine(ProjectorVariant::Prototype);
    let user = UserProfile::casual();
    let belief = belief_for(&user, ProjectorVariant::Prototype);
    let (start, goal) = task(ProjectorVariant::Prototype);
    for (name, planner) in [("bfs", PlannerKind::Bfs), ("greedy", PlannerKind::Greedy)] {
        g.bench_function(format!("casual_prototype_{name}"), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut rng = SimRng::new(seed);
                black_box(simulate_session(
                    &user.faculties,
                    &belief,
                    &actual,
                    start,
                    goal,
                    planner,
                    &SessionParams::default(),
                    &mut rng,
                ))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_divergence, bench_planner, bench_sessions);
criterion_main!(benches);
