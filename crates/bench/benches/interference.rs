//! E2 bench: density runs, including the fixed-rate-vs-adaptive ablation
//! (DESIGN.md §5).

use criterion::{criterion_group, criterion_main, Criterion};
use lpc_bench::scenarios::{run_density, secs, ChannelPlan};
use aroma_net::{Rate, RateAdaptation};
use std::hint::black_box;

fn bench_density(c: &mut Criterion) {
    let mut g = c.benchmark_group("interference/e2");
    g.sample_size(10);
    for pairs in [1usize, 4, 8] {
        g.bench_function(format!("cochannel_{pairs}_pairs"), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(run_density(
                    pairs,
                    ChannelPlan::AllCochannel,
                    RateAdaptation::SnrBased,
                    1000,
                    secs(1),
                    seed,
                ))
            })
        });
    }
    g.bench_function("spread_8_pairs", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(run_density(
                8,
                ChannelPlan::OrthogonalSpread,
                RateAdaptation::SnrBased,
                1000,
                secs(1),
                seed,
            ))
        })
    });
    // Ablation: fixed 11 Mbps vs adaptive under contention.
    g.bench_function("ablation_fixed11_8_pairs", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(run_density(
                8,
                ChannelPlan::AllCochannel,
                RateAdaptation::Fixed(Rate::R11),
                1000,
                secs(1),
                seed,
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_density);
criterion_main!(benches);
