//! E5 bench: behavioural-session batches per user profile per variant.

use criterion::{criterion_group, criterion_main, Criterion};
use lpc_bench::experiments::burden::run_burden;
use lpc_core::user_sim::PlannerKind;
use lpc_core::UserProfile;
use smart_projector::ProjectorVariant;
use std::hint::black_box;

fn bench_burden(c: &mut Criterion) {
    let mut g = c.benchmark_group("burden/e5");
    for (uname, user) in [
        ("researcher", UserProfile::researcher()),
        ("casual", UserProfile::casual()),
    ] {
        for (vname, variant) in [
            ("prototype", ProjectorVariant::Prototype),
            ("commercial", ProjectorVariant::Commercial),
        ] {
            g.bench_function(format!("{uname}_{vname}_100_sessions"), |b| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    black_box(run_burden(&user, variant, PlannerKind::Bfs, 100, seed))
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_burden);
criterion_main!(benches);
