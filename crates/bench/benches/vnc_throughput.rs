//! E1 bench: VNC-over-WLAN runs per workload and rate arm (simulated
//! seconds of protocol + PHY work per iteration).

use criterion::{criterion_group, criterion_main, Criterion};
use lpc_bench::scenarios::{fixed, run_vnc, secs, Workload};
use aroma_net::{Rate, RateAdaptation};
use std::hint::black_box;

fn bench_vnc_runs(c: &mut Criterion) {
    let mut g = c.benchmark_group("vnc_throughput/e1");
    g.sample_size(10);
    for wl in Workload::ALL {
        for (name, adapt) in [
            ("2mbps", fixed(Rate::R2)),
            ("11mbps", fixed(Rate::R11)),
            ("adaptive", RateAdaptation::SnrBased),
        ] {
            g.bench_function(format!("{}_{}", wl.label(), name), |b| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    black_box(run_vnc(wl, adapt, 320, 240, secs(1), seed))
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_vnc_runs);
criterion_main!(benches);
