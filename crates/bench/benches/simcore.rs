//! Microbenchmarks of the DES core: event-queue throughput, RNG, sweep.

use aroma_sim::{EventQueue, SimDuration, SimRng};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("simcore/event_queue");
    for &n in &[1_000usize, 10_000] {
        g.bench_function(format!("schedule_pop_{n}"), |b| {
            b.iter_batched(
                EventQueue::<u64>::new,
                |mut q| {
                    let mut rng = SimRng::new(1);
                    for i in 0..n {
                        q.schedule_in(SimDuration::from_nanos(rng.below(1_000_000)), i as u64);
                    }
                    while let Some(ev) = q.pop() {
                        black_box(ev);
                    }
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_rng(c: &mut Criterion) {
    let mut g = c.benchmark_group("simcore/rng");
    g.bench_function("next_u64", |b| {
        let mut rng = SimRng::new(7);
        b.iter(|| black_box(rng.next_u64_raw()))
    });
    g.bench_function("normal", |b| {
        let mut rng = SimRng::new(7);
        b.iter(|| black_box(rng.normal()))
    });
    g.bench_function("below_1000", |b| {
        let mut rng = SimRng::new(7);
        b.iter(|| black_box(rng.below(1000)))
    });
    g.finish();
}

fn bench_sweep(c: &mut Criterion) {
    let params: Vec<u64> = (0..64).collect();
    c.bench_function("simcore/sweep_64x_spin", |b| {
        b.iter(|| {
            aroma_sim::sweep::run(&params, |_, &p| {
                // A small deterministic workload per point.
                let mut acc = p;
                for _ in 0..10_000 {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
                }
                acc
            })
        })
    });
}

criterion_group!(benches, bench_event_queue, bench_rng, bench_sweep);
criterion_main!(benches);
