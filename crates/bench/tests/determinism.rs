//! End-to-end determinism: the contract `aroma-lint` enforces statically
//! (DESIGN.md §14), checked dynamically over whole experiments.
//!
//! A fixed-seed experiment run twice in the same process must produce
//! **byte-identical** output — tables, notes, trace events, counters,
//! histograms — with exactly one sanctioned exception: the wall-clock
//! handler profile, whose nanos come from the `lint:allow(sim-wall-clock)`
//! sites and which `Snapshot::deterministic_eq` excludes by design. The
//! comparison here mirrors that boundary precisely: everything is
//! byte-compared after surgically deleting the `"profile"` key from the
//! rendered metrics JSON, so a nondeterminism leak anywhere else — hash
//! iteration reaching a reply, an unseeded tiebreak, a wall clock feeding a
//! metric — fails the byte diff.

use aroma_sim::report::Json;
use lpc_bench::experiments::{run_with, RunOpts};

/// Delete every `"profile"` key, anywhere in the tree. This is the ONLY
/// thing allowed to differ between same-seed runs.
fn strip_profile(j: Json) -> Json {
    match j {
        Json::Obj(fields) => Json::Obj(
            fields
                .into_iter()
                .filter(|(k, _)| k != "profile")
                .map(|(k, v)| (k, strip_profile(v)))
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(items.into_iter().map(strip_profile).collect()),
        other => other,
    }
}

fn run_once(id: &str) -> (String, String) {
    let out = run_with(
        id,
        RunOpts {
            quick: true,
            metrics: true,
            trace: true,
            seed: Some(233),
        },
    )
    .unwrap_or_else(|| panic!("experiment {id} missing"));
    // Tables + notes, rendered without the metrics blob…
    let mut report = String::new();
    report.push_str(out.title);
    report.push('\n');
    for (caption, table) in &out.tables {
        report.push_str(caption);
        report.push('\n');
        report.push_str(&table.render());
    }
    for note in &out.notes {
        report.push_str(note);
        report.push('\n');
    }
    // …and the full telemetry snapshot (metrics AND trace ring) with only
    // the wall-clock profile removed.
    let metrics = out
        .metrics
        .map(|m| strip_profile(m).render())
        .expect("metrics requested");
    (report, metrics)
}

/// E2 (spectrum density sweep, instrumented substrate) and E9 (chaos
/// walkthrough: crash + failover + burst loss) twice each, same process,
/// same seed: reports and telemetry must be byte-identical.
#[test]
fn e2_and_e9_are_run_to_run_byte_identical() {
    for id in ["e2", "e9"] {
        let (report_a, metrics_a) = run_once(id);
        let (report_b, metrics_b) = run_once(id);
        assert_eq!(report_a, report_b, "{id}: report diverged between runs");
        assert_eq!(
            metrics_a, metrics_b,
            "{id}: telemetry (minus wall-clock profile) diverged between runs"
        );
        // Guard the guard: a snapshot with no trace and no counters would
        // make this test vacuous.
        assert!(
            metrics_a.contains("\"trace\""),
            "{id}: trace ring missing from compared snapshot"
        );
        assert!(metrics_a.len() > 500, "{id}: suspiciously empty snapshot");
    }
}

/// The profile section really is present before stripping — i.e. this test
/// would catch a wall-clock leak *because* wall-clock data exists and is
/// confined to the one excluded section.
#[test]
fn profile_section_exists_and_is_the_only_exclusion() {
    let out = run_with(
        "e2",
        RunOpts {
            quick: true,
            metrics: true,
            trace: false,
            seed: Some(233),
        },
    )
    .unwrap();
    let metrics = out.metrics.expect("metrics requested");
    let full = metrics.clone().render();
    let stripped = strip_profile(metrics).render();
    assert!(full.contains("\"profile\""));
    assert!(!stripped.contains("\"profile\""));
    assert!(full.len() > stripped.len());
}
