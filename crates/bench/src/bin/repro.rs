//! Regenerate the paper's figures and experiments.
//!
//! ```text
//! repro all            # every experiment, full sweeps
//! repro e2 e4          # selected experiments
//! repro --quick all    # reduced sweeps (what the test suite runs)
//! repro --json all     # archival JSON instead of tables
//! repro --metrics e2   # attach the telemetry recorder, emit a metrics snapshot
//! repro --trace e2     # as --metrics plus the structured trace ring
//! repro --experiment e9 --seed 7   # one experiment, with a seed override
//! repro --list         # list experiment ids and titles
//! repro bench          # checker thread-scaling sweep -> BENCH_check.json
//! repro bench --scaling  # scaling-only sweep, APPENDED to BENCH_check.json
//! repro bench --discovery  # lease-table scaling sweep, APPENDED to BENCH_disc.json
//! repro bench --fanout  # broadcast fan-out sweep, APPENDED to BENCH_fanout.json
//! repro fanout-smoke   # deterministic fan-out digest line (check.sh double-runs it)
//! ```

use lpc_bench::experiments::{self, RunOpts, ALL_IDS};

const USAGE: &str = "usage: repro [--quick] [--json] [--metrics] [--trace] [--seed N] [--list] \
                     [--scaling] [--discovery] [--fanout] [--experiment <id>] \
                     <all|bench|fanout-smoke|f1..f5|e1..e11>...";

/// Append one rendered JSON document to a `BENCH_*.json` file, keeping
/// the file a JSON array of bench entries: a missing file starts a fresh
/// array, a legacy single-object file is wrapped into `[old, new]`, and
/// an existing array gains the entry before its final `]`.
fn append_bench_entry(path: &str, entry: &str) {
    let existing = std::fs::read_to_string(path).unwrap_or_default();
    let trimmed = existing.trim_end();
    let out = if let Some(head) = trimmed.strip_suffix(']') {
        let head = head.trim_end();
        if head.ends_with('[') {
            format!("{head}\n{entry}\n]")
        } else {
            format!("{},\n{}\n]", head.trim_end_matches(','), entry)
        }
    } else if trimmed.is_empty() {
        format!("[\n{entry}\n]")
    } else {
        format!("[\n{trimmed},\n{entry}\n]")
    };
    if let Err(e) = std::fs::write(path, out) {
        panic!("write {path}: {e}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = RunOpts::default();
    let mut json = false;
    let mut scaling = false;
    let mut discovery = false;
    let mut fanout = false;
    let mut ids: Vec<String> = Vec::new();
    let mut i = 0usize;
    while i < args.len() {
        let a = &args[i];
        i += 1;
        match a.as_str() {
            "--quick" => opts.quick = true,
            "--json" => json = true,
            "--scaling" => scaling = true,
            "--discovery" => discovery = true,
            "--fanout" => fanout = true,
            "--metrics" => opts.metrics = true,
            "--trace" => opts.trace = true,
            // `--seed N` and `--experiment <id>` take a value argument.
            "--seed" | "--experiment" => {
                let Some(v) = args.get(i) else {
                    eprintln!("{} needs a value\n{USAGE}", a);
                    std::process::exit(2);
                };
                i += 1;
                if a == "--seed" {
                    match v.parse::<u64>() {
                        Ok(s) => opts.seed = Some(s),
                        Err(_) => {
                            eprintln!("--seed wants an unsigned integer, got {v:?}\n{USAGE}");
                            std::process::exit(2);
                        }
                    }
                } else {
                    ids.push(v.clone());
                }
            }
            "--list" => {
                for id in ALL_IDS {
                    let out = experiments::run(id, true).expect("registered id");
                    println!("{id}  {}", out.title);
                }
                return;
            }
            "all" => ids.extend(ALL_IDS.iter().map(|s| s.to_string())),
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
    // `fanout-smoke` prints one fully deterministic line for a fixed-seed
    // broadcast run — `scripts/check.sh` runs it twice and byte-diffs the
    // output (the same gate `--fanout`'s scale points apply internally).
    if ids.iter().any(|id| id == "fanout-smoke") {
        if ids.len() > 1 {
            eprintln!("`fanout-smoke` runs alone");
            std::process::exit(2);
        }
        let seed = opts.seed.unwrap_or(233);
        let viewers = if opts.quick { 100 } else { 1_000 };
        println!("{}", lpc_bench::fanoutbench::smoke_line(viewers, seed));
        return;
    }
    // `bench` is not an experiment: it measures the model checker's
    // thread scaling (plus the E9 recovery times) and the mobile-code
    // execution tiers, writing BENCH_check.json and BENCH_mcode.json in
    // the current directory.
    if ids.iter().any(|id| id == "bench") {
        if ids.len() > 1 {
            eprintln!("`bench` runs alone (it owns the whole machine while timing)");
            std::process::exit(2);
        }
        // Scaling mode: sweep only the checker and *append* the entry, so
        // BENCH_check.json accumulates a trajectory across engine changes
        // instead of overwriting its history.
        if scaling {
            let doc = lpc_bench::checkbench::run_scaling(opts.quick);
            let text = doc.render();
            append_bench_entry("BENCH_check.json", &text);
            println!("{text}");
            eprintln!("appended scaling entry to BENCH_check.json");
            return;
        }
        // Discovery mode: sweep the lease-table engines (flat vs sharded
        // at 10^4..10^6 leases) and *append* to BENCH_disc.json, same
        // trajectory-accumulation contract as --scaling.
        if discovery {
            let doc = lpc_bench::discbench::run(opts.quick);
            let text = doc.render();
            append_bench_entry("BENCH_disc.json", &text);
            println!("{text}");
            eprintln!("appended discovery entry to BENCH_disc.json");
            return;
        }
        // Fan-out mode: broadcast scaling sweep (1 server → 10..10k
        // viewers), *appended* to BENCH_fanout.json, same trajectory-
        // accumulation contract as --scaling/--discovery.
        if fanout {
            let doc = lpc_bench::fanoutbench::run(opts.quick);
            let text = doc.render();
            append_bench_entry("BENCH_fanout.json", &text);
            println!("{text}");
            eprintln!("appended fan-out entry to BENCH_fanout.json");
            return;
        }
        let doc = lpc_bench::checkbench::run(opts.quick);
        let text = doc.render();
        std::fs::write("BENCH_check.json", &text).expect("write BENCH_check.json");
        println!("{text}");
        eprintln!("wrote BENCH_check.json");
        let doc = lpc_bench::mcodebench::run(opts.quick);
        let text = doc.render();
        std::fs::write("BENCH_mcode.json", &text).expect("write BENCH_mcode.json");
        println!("{text}");
        eprintln!("wrote BENCH_mcode.json");
        return;
    }
    for id in &ids {
        if experiments::run_exists(id) {
            continue;
        }
        eprintln!("unknown experiment id: {id}");
        std::process::exit(2);
    }

    // Experiments are independent; run them concurrently but print in the
    // requested order as results arrive (a worker per experiment, results
    // funnelled over a channel, reordered by index).
    let outputs = parking_lot::Mutex::new(vec![None; ids.len()]);
    let (tx, rx) = crossbeam::channel::unbounded::<usize>();
    crossbeam::thread::scope(|scope| {
        for (i, id) in ids.iter().enumerate() {
            let tx = tx.clone();
            let outputs = &outputs;
            scope.spawn(move |_| {
                let out = experiments::run_with(id, opts).expect("validated above");
                outputs.lock()[i] = Some(out);
                let _ = tx.send(i);
            });
        }
        drop(tx);
        let mut done = vec![false; ids.len()];
        let mut next = 0usize;
        let mut json_outputs = Vec::new();
        while let Ok(i) = rx.recv() {
            done[i] = true;
            while next < ids.len() && done[next] {
                let out = outputs.lock()[next].take().expect("marked done");
                if json {
                    json_outputs.push(out.json());
                } else {
                    println!("{}", out.render());
                }
                next += 1;
            }
        }
        if json {
            println!("{}", aroma_sim::report::Json::Arr(json_outputs).render());
        }
    })
    .expect("experiment worker panicked");
}
