//! Reusable simulation scenario builders shared by the experiments and the
//! Criterion benches.

use aroma_env::radio::{Channel, RadioEnvironment};
use aroma_env::space::Point;
use aroma_net::traffic::{CountingSink, SaturatedSource};
use aroma_net::{Address, MacConfig, Network, NodeConfig, NodeId, Rate, RateAdaptation};
use aroma_sim::telemetry::{Snapshot, TelemetryConfig};
use aroma_sim::{SimDuration, SimTime};
use aroma_vnc::workloads::ScreenSource;
use aroma_vnc::{BouncingBox, NoiseVideo, SlideDeck, VncServerApp, VncViewerApp};

/// A clean (shadowing-free) indoor radio environment for controlled
/// experiments; stochasticity enters through MAC backoff and PHY error
/// draws, which are seeded per run.
pub fn clean_env() -> RadioEnvironment {
    RadioEnvironment {
        shadowing_sigma_db: 0.0,
        ..Default::default()
    }
}

/// Screen workloads the E1 experiment sweeps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workload {
    /// Slide deck, one slide per 10 s.
    Slides,
    /// Bouncing-box animation.
    Animation,
    /// Incompressible noise at 10 fps.
    NoiseVideo,
}

impl Workload {
    /// All workloads, in report order.
    pub const ALL: [Workload; 3] = [Workload::Slides, Workload::Animation, Workload::NoiseVideo];

    /// Label for tables.
    pub fn label(self) -> &'static str {
        match self {
            Workload::Slides => "slides",
            Workload::Animation => "animation",
            Workload::NoiseVideo => "noise-video",
        }
    }

    /// Instantiate the screen source.
    pub fn source(self, seed: u64) -> Box<dyn ScreenSource> {
        match self {
            Workload::Slides => Box::new(SlideDeck::new(10.0)),
            Workload::Animation => Box::new(BouncingBox::new()),
            Workload::NoiseVideo => Box::new(NoiseVideo::new(10.0, seed)),
        }
    }
}

/// Result of one VNC-over-WLAN run.
#[derive(Clone, Copy, Debug)]
pub struct VncRunResult {
    /// Updates completed per second.
    pub achieved_fps: f64,
    /// Application-payload goodput, bits per second.
    pub goodput_bps: f64,
    /// Mean update latency, seconds.
    pub mean_latency_s: f64,
    /// Loss-recovery events at the viewer.
    pub recoveries: u64,
}

/// Run a VNC server→viewer pair over the WLAN for `horizon` of simulated
/// time at the given fixed-or-adaptive rate policy.
pub fn run_vnc(
    workload: Workload,
    adapt: RateAdaptation,
    width: usize,
    height: usize,
    horizon: SimDuration,
    seed: u64,
) -> VncRunResult {
    let mut net = Network::new(clean_env(), MacConfig::default(), seed);
    let server_cfg = NodeConfig {
        adapt,
        ..NodeConfig::at(Point::new(0.0, 0.0))
    };
    let server = net.add_node(
        server_cfg,
        Box::new(VncServerApp::new(width, height, workload.source(seed))),
    );
    let viewer_cfg = NodeConfig {
        adapt,
        ..NodeConfig::at(Point::new(5.0, 0.0))
    };
    let viewer = net.add_node(
        viewer_cfg,
        Box::new(VncViewerApp::new(server, width, height)),
    );
    net.run_for(horizon);
    let v = net.app_as::<VncViewerApp>(viewer).unwrap();
    VncRunResult {
        achieved_fps: v.achieved_fps(horizon),
        goodput_bps: net.stats().goodput_bps(horizon),
        mean_latency_s: v.update_latency.mean(),
        recoveries: v.recoveries,
    }
}

/// Result of one co-channel density run.
#[derive(Clone, Copy, Debug)]
pub struct DensityRunResult {
    /// Aggregate application goodput across all pairs, bits/s.
    pub aggregate_bps: f64,
    /// Goodput of one pair, bits/s (aggregate / pairs).
    pub per_pair_bps: f64,
    /// ACK timeouts per second (collision indicator).
    pub timeouts_per_s: f64,
    /// Frames dropped after retry exhaustion.
    pub retry_drops: u64,
}

/// Channel plan for a density run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChannelPlan {
    /// Everyone on channel 6 (worst case).
    AllCochannel,
    /// Pairs spread across 1/6/11.
    OrthogonalSpread,
}

/// Run `pairs` saturated sender→receiver pairs for `horizon`.
///
/// Geometry: receivers cluster near the centre (1 m circle) and senders sit
/// on a 5 m circle, so interferer paths rival signal paths and collisions
/// genuinely destroy frames.
pub fn run_density(
    pairs: usize,
    plan: ChannelPlan,
    adapt: RateAdaptation,
    frame_bytes: usize,
    horizon: SimDuration,
    seed: u64,
) -> DensityRunResult {
    run_density_traced(pairs, plan, adapt, frame_bytes, horizon, seed, None).0
}

/// [`run_density`] with an optional telemetry recorder attached to the
/// network: `Some(cfg)` returns the run's metrics/trace snapshot alongside
/// the result, `None` is the plain (recorder-absent) run.
#[allow(clippy::too_many_arguments)] // mirrors run_density plus the recorder arm
pub fn run_density_traced(
    pairs: usize,
    plan: ChannelPlan,
    adapt: RateAdaptation,
    frame_bytes: usize,
    horizon: SimDuration,
    seed: u64,
    telemetry: Option<TelemetryConfig>,
) -> (DensityRunResult, Option<Snapshot>) {
    let mut net = Network::new(clean_env(), MacConfig::default(), seed);
    if let Some(cfg) = telemetry {
        net.attach_telemetry(cfg);
    }
    let mut sinks: Vec<NodeId> = Vec::with_capacity(pairs);
    for i in 0..pairs {
        let channel = match plan {
            ChannelPlan::AllCochannel => Channel::CH6,
            ChannelPlan::OrthogonalSpread => Channel::ORTHOGONAL[i % 3],
        };
        let angle = i as f64 / pairs as f64 * std::f64::consts::TAU;
        let (s, c) = angle.sin_cos();
        let rx_cfg = NodeConfig {
            adapt,
            ..NodeConfig::at_on(Point::new(1.0 * c, 1.0 * s), channel)
        };
        let rx = net.add_node(rx_cfg, Box::new(CountingSink::default()));
        sinks.push(rx);
        let tx_cfg = NodeConfig {
            adapt,
            ..NodeConfig::at_on(Point::new(5.0 * c, 5.0 * s), channel)
        };
        net.add_node(
            tx_cfg,
            Box::new(SaturatedSource::new(Address::Node(rx), frame_bytes)),
        );
    }
    net.run_for(horizon);
    let total_bytes: u64 = sinks
        .iter()
        .map(|&rx| net.app_as::<CountingSink>(rx).unwrap().bytes)
        .sum();
    let secs = horizon.as_secs_f64();
    let aggregate_bps = total_bytes as f64 * 8.0 / secs;
    let result = DensityRunResult {
        aggregate_bps,
        per_pair_bps: aggregate_bps / pairs as f64,
        timeouts_per_s: net.stats().total_ack_timeouts() as f64 / secs,
        retry_drops: net.stats().total_retry_drops(),
    };
    (result, net.telemetry_snapshot())
}

/// A convenient fixed-rate shorthand.
pub fn fixed(rate: Rate) -> RateAdaptation {
    RateAdaptation::Fixed(rate)
}

/// Simulated-time helpers for experiment code.
pub fn secs(s: u64) -> SimDuration {
    SimDuration::from_secs(s)
}

/// Absolute time at `s` seconds.
pub fn at(s: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vnc_scenario_produces_activity() {
        let r = run_vnc(
            Workload::Slides,
            RateAdaptation::SnrBased,
            160,
            128,
            secs(2),
            1,
        );
        assert!(r.achieved_fps > 1.0);
        assert!(r.goodput_bps > 0.0);
    }

    #[test]
    fn density_scenario_produces_activity() {
        let r = run_density(
            2,
            ChannelPlan::AllCochannel,
            RateAdaptation::SnrBased,
            1000,
            secs(1),
            1,
        );
        assert!(r.aggregate_bps > 0.0);
        assert!(r.per_pair_bps <= r.aggregate_bps);
    }

    #[test]
    fn traced_density_run_matches_untraced_and_yields_metrics() {
        let plain = run_density(
            2,
            ChannelPlan::AllCochannel,
            RateAdaptation::SnrBased,
            1000,
            secs(1),
            7,
        );
        let (traced, snap) = run_density_traced(
            2,
            ChannelPlan::AllCochannel,
            RateAdaptation::SnrBased,
            1000,
            secs(1),
            7,
            Some(TelemetryConfig::metrics_only()),
        );
        // The recorder must not perturb the simulation.
        assert_eq!(plain.retry_drops, traced.retry_drops);
        assert!((plain.aggregate_bps - traced.aggregate_bps).abs() < 1e-9);
        let snap = snap.unwrap();
        assert!(snap.counter("net.mac.tx_attempts") > 0);
        assert_eq!(snap.counter("net.mac.drop.retry_limit"), traced.retry_drops);
    }

    #[test]
    fn workload_labels_unique() {
        let mut l: Vec<&str> = Workload::ALL.iter().map(|w| w.label()).collect();
        l.sort_unstable();
        l.dedup();
        assert_eq!(l.len(), 3);
    }
}
