//! # lpc-bench — the experiment harness
//!
//! Regenerates every figure and every quantified claim of the paper (see
//! DESIGN.md §4 for the experiment index). Each experiment lives in
//! [`experiments`] as a pure function returning both structured data and a
//! rendered table, so the `repro` binary, the Criterion benches, and the
//! integration tests all share one implementation.
//!
//! Run everything:
//!
//! ```text
//! cargo run -p lpc-bench --release --bin repro -- all
//! ```
//!
//! or a single experiment: `repro e2`, `repro f4`, …

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkbench;
pub mod discbench;
pub mod experiments;
pub mod fanoutbench;
pub mod mcodebench;
pub mod scenarios;
