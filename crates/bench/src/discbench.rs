//! Discovery-registry scaling benchmark: the data behind
//! `BENCH_disc.json` (appended by `repro bench --discovery` /
//! `scripts/bench.sh --discovery`).
//!
//! Measures the lease-table engines the replicated registrar applies its
//! committed log to — the flat `ServiceRegistry` and the hash-sharded
//! `ShardedRegistry` (PR 9) — at 10^4, 10^5, and 10^6 live leases:
//! register and renew throughput (ops/sec) and template-lookup throughput
//! with the p50/p99 per-lookup latency. Both engines answer every lookup
//! in global `ServiceId` order, so the numbers compare identical outputs.
//!
//! Numbers are hardware-honest: wall-clock `Instant` timing, recorded
//! alongside `available_parallelism`, and the document is *appended* to
//! `BENCH_disc.json` so the trajectory accumulates across engine changes.
//! Lookups here are template scans (the protocol's `lookup_live` path);
//! sharding exists for lock-free parallel sweeps and smaller per-shard
//! maps, not to win a single-threaded scan, and the JSON reports whatever
//! ratio falls out rather than asserting a direction.

use aroma_discovery::codec::{ServiceId, ServiceItem, Template};
use aroma_discovery::registry::ServiceRegistry;
use aroma_discovery::shard::ShardedRegistry;
use aroma_sim::report::Json;
use aroma_sim::{SimDuration, SimTime};
use bytes::Bytes;
use std::time::Instant;

/// Lease-table sizes the full sweep measures.
pub const SCALES: [usize; 3] = [10_000, 100_000, 1_000_000];
/// Quick-mode sizes (what the test suite and `--quick` runs use).
pub const QUICK_SCALES: [usize; 2] = [10_000, 100_000];
/// Shard count for the sharded engine (the `ClusterConfig::of` default).
const SHARDS: usize = 64;
/// Distinct service kinds; one lookup matches `leases / KINDS` rows.
const KINDS: usize = 100;

/// One engine's numbers at one scale.
pub struct EnginePoint {
    /// Registrations per wall-clock second (filling the table).
    pub register_ops_per_sec: f64,
    /// Renewals per wall-clock second (uniform sample over live ids).
    pub renew_ops_per_sec: f64,
    /// Template lookups per wall-clock second.
    pub lookup_ops_per_sec: f64,
    /// Median per-lookup latency, microseconds.
    pub lookup_p50_us: f64,
    /// 99th-percentile per-lookup latency, microseconds.
    pub lookup_p99_us: f64,
    /// Rows the measured template matched (sanity: identical across
    /// engines, `leases / KINDS`).
    pub rows_per_lookup: usize,
}

impl EnginePoint {
    fn json(&self) -> Json {
        Json::obj(vec![
            ("register_ops_per_sec", Json::from(self.register_ops_per_sec)),
            ("renew_ops_per_sec", Json::from(self.renew_ops_per_sec)),
            ("lookup_ops_per_sec", Json::from(self.lookup_ops_per_sec)),
            ("lookup_p50_us", Json::from(self.lookup_p50_us)),
            ("lookup_p99_us", Json::from(self.lookup_p99_us)),
            ("rows_per_lookup", Json::from(self.rows_per_lookup)),
        ])
    }
}

fn item(i: usize) -> ServiceItem {
    ServiceItem {
        id: ServiceId(i as u64 + 1),
        kind: format!("kind/{:02}", i % KINDS),
        attributes: Vec::new(),
        provider: i as u32,
        proxy: Bytes::from_static(b"proxy"),
    }
}

/// Percentile of a sorted latency vector, in microseconds.
fn pct_us(sorted_nanos: &[u64], p: usize) -> f64 {
    if sorted_nanos.is_empty() {
        return 0.0;
    }
    let idx = (sorted_nanos.len() - 1) * p / 100;
    sorted_nanos[idx] as f64 / 1_000.0
}

/// The operations the benchmark times, implemented by both engines (their
/// inherent methods share signatures but there is no common trait in the
/// production crate — lookups there go through the replica, not a dyn
/// table).
trait LeaseTable {
    fn register(&mut self, now: SimTime, item: ServiceItem, requested: SimDuration);
    fn renew(&mut self, now: SimTime, id: ServiceId);
    fn lookup(&self, now: SimTime, template: &Template) -> usize;
}

impl LeaseTable for ServiceRegistry {
    fn register(&mut self, now: SimTime, item: ServiceItem, requested: SimDuration) {
        ServiceRegistry::register(self, now, item, requested);
    }
    fn renew(&mut self, now: SimTime, id: ServiceId) {
        ServiceRegistry::renew(self, now, id);
    }
    fn lookup(&self, now: SimTime, template: &Template) -> usize {
        self.lookup_live(now, template).len()
    }
}

impl LeaseTable for ShardedRegistry {
    fn register(&mut self, now: SimTime, item: ServiceItem, requested: SimDuration) {
        ShardedRegistry::register(self, now, item, requested);
    }
    fn renew(&mut self, now: SimTime, id: ServiceId) {
        ShardedRegistry::renew(self, now, id);
    }
    fn lookup(&self, now: SimTime, template: &Template) -> usize {
        self.lookup_live(now, template).len()
    }
}

/// Drive one engine through the fill / renew / lookup phases.
fn measure<T: LeaseTable>(table: &mut T, leases: usize, lookups: usize) -> EnginePoint {
    let now = SimTime::from_nanos(1);
    let requested = SimDuration::from_secs(3_600);

    let t = Instant::now();
    for i in 0..leases {
        table.register(now, item(i), requested);
    }
    let register_secs = t.elapsed().as_secs_f64();

    // Renew a uniform stride so every renewal hits a live id without the
    // loop cost being dominated by rng; cap the sample at 200k.
    let renews = leases.min(200_000);
    let stride = (leases / renews).max(1);
    let t = Instant::now();
    for r in 0..renews {
        table.renew(now, ServiceId(((r * stride) % leases) as u64 + 1));
    }
    let renew_secs = t.elapsed().as_secs_f64();

    // Lookups rotate through the kinds so the scan never warms one
    // sub-range of the id space only.
    let mut rows_per_lookup = 0usize;
    let mut lat = Vec::with_capacity(lookups);
    let t = Instant::now();
    for l in 0..lookups {
        let template = Template::of_kind(&format!("kind/{:02}", l % KINDS));
        let t1 = Instant::now();
        rows_per_lookup = table.lookup(now, &template);
        lat.push(t1.elapsed().as_nanos() as u64);
    }
    let lookup_secs = t.elapsed().as_secs_f64();
    lat.sort_unstable();

    EnginePoint {
        register_ops_per_sec: leases as f64 / register_secs.max(1e-9),
        renew_ops_per_sec: renews as f64 / renew_secs.max(1e-9),
        lookup_ops_per_sec: lookups as f64 / lookup_secs.max(1e-9),
        lookup_p50_us: pct_us(&lat, 50),
        lookup_p99_us: pct_us(&lat, 99),
        rows_per_lookup,
    }
}

/// Measure both engines at `leases` live leases.
pub fn scale_point(leases: usize, lookups: usize) -> (String, Json) {
    let max_lease = SimDuration::from_secs(7_200);

    let mut flat = ServiceRegistry::new(max_lease);
    let flat_point = measure(&mut flat, leases, lookups);

    let mut sharded = ShardedRegistry::new(SHARDS, max_lease);
    let sharded_point = measure(&mut sharded, leases, lookups);

    assert_eq!(
        flat_point.rows_per_lookup, sharded_point.rows_per_lookup,
        "engines disagreed on lookup results"
    );
    let ratio = sharded_point.lookup_ops_per_sec / flat_point.lookup_ops_per_sec.max(1e-9);
    let sharded_key = format!("sharded_{SHARDS}");
    (
        format!("leases_{leases}"),
        Json::obj(vec![
            ("leases", Json::from(leases)),
            ("lookups_timed", Json::from(lookups)),
            ("flat", flat_point.json()),
            (sharded_key.as_str(), sharded_point.json()),
            ("lookup_ratio_sharded_vs_flat", Json::from(ratio)),
        ]),
    )
}

/// Run the discovery scaling sweep and return the `BENCH_disc.json`
/// entry. `quick` drops the 10^6 point and times fewer lookups.
pub fn run(quick: bool) -> Json {
    let scales: &[usize] = if quick { &QUICK_SCALES } else { &SCALES };
    let lookups = if quick { 60 } else { 200 };
    let parallelism = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut fields = vec![
        ("engine".to_string(), Json::from("flat-btree vs hash-sharded")),
        ("shards".to_string(), Json::from(SHARDS)),
        ("available_parallelism".to_string(), Json::from(parallelism)),
        ("quick".to_string(), Json::from(quick)),
    ];
    for &leases in scales {
        fields.push(scale_point(leases, lookups));
    }
    Json::Obj(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engines_agree_and_the_document_renders() {
        // A deliberately tiny point: the real scales run in release mode
        // via `scripts/bench.sh --discovery`; this pins the engine
        // cross-check and the JSON shape cheaply for the debug suite.
        let (name, json) = scale_point(2_000, 10);
        assert_eq!(name, "leases_2000");
        let text = json.render();
        assert!(text.contains("lookup_p99_us"));
        assert!(text.contains("sharded_64"));
        assert!(text.contains("lookup_ratio_sharded_vs_flat"));
        assert!(text.contains("\"rows_per_lookup\":20"));
    }

    #[test]
    fn percentiles_come_from_the_sorted_tail() {
        let lat: Vec<u64> = (1..=100).map(|v| v * 1_000).collect();
        assert!((pct_us(&lat, 99) - 99.0).abs() < 1e-9);
        assert!((pct_us(&lat, 50) - 50.0).abs() < 1e-9);
        assert_eq!(pct_us(&[], 99), 0.0);
    }
}
