//! Broadcast fan-out benchmark: the data behind `BENCH_fanout.json`
//! (appended by `repro bench --fanout` / `scripts/bench.sh --fanout`).
//!
//! One projector-side screen server streams to 10 / 100 / 1 000 / 10 000
//! viewers over a wired star (`prefer_wired`; a 10 000-station CSMA cell
//! is not a scenario the MAC — or physics — supports). Every viewer pulls
//! at the same target rate, so each screen change is one encode shared by
//! the whole audience: the headline numbers are messages per wall-clock
//! second, payload bytes per update, and *allocations per update* (buffer
//! pool misses — the zero-copy/pooling claim), next to the `encodes` vs
//! `updates_sent` ratio that proves encode-once fan-out is O(1) encodings
//! per screen change, not O(viewers).
//!
//! Wall-clock figures are hardware-honest (`Instant` timing,
//! `available_parallelism` recorded). Everything else is deterministic:
//! each scale point runs its scenario **twice with the same seed** and
//! refuses to report unless the two runs' digests are byte-identical —
//! the same gate `scripts/check.sh` runs via `repro fanout-smoke`.

use aroma_env::radio::RadioEnvironment;
use aroma_env::space::Point;
use aroma_net::{MacConfig, Network, NodeConfig, NodeId};
use aroma_sim::report::Json;
use aroma_sim::rng::fnv1a;
use aroma_sim::SimDuration;
use aroma_vnc::{SlideDeck, VncServerApp, VncViewerApp};
use std::time::Instant;

/// Audience sizes the full sweep measures.
pub const SCALES: [usize; 4] = [10, 100, 1_000, 10_000];
/// Quick-mode sizes (what the test suite and `--quick` runs use).
pub const QUICK_SCALES: [usize; 2] = [10, 100];

/// Screen edge: small enough that 10 000 viewer-side framebuffers fit in
/// memory, large enough for multi-chunk full updates (16 tiles).
const SCREEN: usize = 64;
/// Slide period — two content changes inside the simulated window.
const SLIDE_PERIOD_S: f64 = 0.5;
/// Per-viewer pull rate.
const PULL_FPS: f64 = 4.0;
/// Simulated time per run.
const SIM_SECS: u64 = 2;
/// Cable latency and rate for the star (switched 100 Mbps Ethernet).
const WIRE_LATENCY_US: u64 = 50;
const WIRE_BPS: u64 = 100_000_000;

/// Deterministic outcome of one scenario run (no wall-clock values —
/// this is what the double-run gate compares).
struct RunOutcome {
    digest: u64,
    updates_sent: u64,
    encodes: u64,
    encode_cache_hits: u64,
    stream_bytes_sent: u64,
    chunk_failures: u64,
    pool_hits: u64,
    pool_misses: u64,
    wired_frames: u64,
    wired_bytes: u64,
    viewers_converged: usize,
    /// Wall-clock seconds for the `run_for` (excluded from the digest).
    wall_secs: f64,
}

/// Build and run the wired-star broadcast scenario once.
fn run_once(viewers: usize, seed: u64) -> RunOutcome {
    let env = RadioEnvironment {
        shadowing_sigma_db: 0.0,
        ..Default::default()
    };
    let mut net = Network::new(env, MacConfig::default(), seed);
    let server = net.add_node(
        NodeConfig::at(Point::new(0.0, 0.0)),
        Box::new(VncServerApp::new(
            SCREEN,
            SCREEN,
            Box::new(SlideDeck::new(SLIDE_PERIOD_S)),
        )),
    );
    let audience: Vec<NodeId> = (0..viewers)
        .map(|i| {
            // Positions only matter to the (unused) radio plane; a grid
            // keeps them distinct.
            let (x, y) = ((i % 100) as f64, (i / 100) as f64);
            let v = net.add_node(
                NodeConfig::at(Point::new(1.0 + x, 1.0 + y)),
                Box::new(
                    VncViewerApp::new(server, SCREEN, SCREEN).with_target_fps(PULL_FPS),
                ),
            );
            net.add_wired_link(
                server,
                v,
                SimDuration::from_micros(WIRE_LATENCY_US),
                WIRE_BPS,
            );
            v
        })
        .collect();
    net.set_prefer_wired(true);

    let t = Instant::now();
    net.run_for(SimDuration::from_secs(SIM_SECS));
    let wall_secs = t.elapsed().as_secs_f64();

    let s = net.app_as::<VncServerApp>(server).expect("server app");
    let server_digest = s.screen_digest();
    let (pool_hits, pool_misses) = s.pool_stats();
    let mut bytes = Vec::with_capacity(viewers * 16 + 64);
    for v in [
        s.updates_sent,
        s.encodes,
        s.stream_bytes_sent,
        s.chunk_failures,
        server_digest,
    ] {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    let mut viewers_converged = 0usize;
    for &vid in &audience {
        let v = net.app_as::<VncViewerApp>(vid).expect("viewer app");
        bytes.extend_from_slice(&v.screen_digest().to_le_bytes());
        bytes.extend_from_slice(&v.updates_completed.to_le_bytes());
        if v.screen_digest() == server_digest {
            viewers_converged += 1;
        }
    }
    bytes.extend_from_slice(&net.stats().wired_frames.to_le_bytes());
    let s = net.app_as::<VncServerApp>(server).expect("server app");
    RunOutcome {
        digest: fnv1a(&bytes),
        updates_sent: s.updates_sent,
        encodes: s.encodes,
        encode_cache_hits: s.encode_cache_hits,
        stream_bytes_sent: s.stream_bytes_sent,
        chunk_failures: s.chunk_failures,
        pool_hits,
        pool_misses,
        wired_frames: net.stats().wired_frames,
        wired_bytes: net.stats().wired_bytes,
        viewers_converged,
        wall_secs,
    }
}

/// One audience size: run the scenario twice with the same seed, insist
/// the deterministic digests agree, and report the numbers.
pub fn scale_point(viewers: usize, seed: u64) -> (String, Json) {
    let a = run_once(viewers, seed);
    let b = run_once(viewers, seed);
    assert_eq!(
        a.digest, b.digest,
        "broadcast to {viewers} viewers diverged between two seed-{seed} runs"
    );
    let updates = a.updates_sent.max(1) as f64;
    (
        format!("viewers_{viewers}"),
        Json::obj(vec![
            ("viewers", Json::from(viewers)),
            ("digest", Json::from(a.digest)),
            ("updates_sent", Json::from(a.updates_sent)),
            ("encodes", Json::from(a.encodes)),
            ("encode_cache_hits", Json::from(a.encode_cache_hits)),
            (
                "encodes_per_update",
                Json::from(a.encodes as f64 / updates),
            ),
            (
                "bytes_per_update",
                Json::from(a.stream_bytes_sent as f64 / updates),
            ),
            (
                "allocations_per_update",
                Json::from(a.pool_misses as f64 / updates),
            ),
            ("pool_hits", Json::from(a.pool_hits)),
            ("pool_misses", Json::from(a.pool_misses)),
            ("chunk_failures", Json::from(a.chunk_failures)),
            ("wired_frames", Json::from(a.wired_frames)),
            ("wired_bytes", Json::from(a.wired_bytes)),
            (
                "msgs_per_sec",
                Json::from(a.wired_frames as f64 / a.wall_secs.max(1e-9)),
            ),
            ("viewers_converged", Json::from(a.viewers_converged)),
            ("wall_secs", Json::from(a.wall_secs)),
        ]),
    )
}

/// Run the fan-out sweep and return the `BENCH_fanout.json` entry.
/// `quick` stops at 100 viewers (the debug-suite / `--quick` arm).
pub fn run(quick: bool) -> Json {
    let scales: &[usize] = if quick { &QUICK_SCALES } else { &SCALES };
    let parallelism = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut fields = vec![
        (
            "scenario".to_string(),
            Json::from("1 server -> N viewers, wired star, encode-once broadcast"),
        ),
        ("screen".to_string(), Json::from(format!("{SCREEN}x{SCREEN}"))),
        ("sim_secs".to_string(), Json::from(SIM_SECS)),
        ("pull_fps".to_string(), Json::from(PULL_FPS)),
        ("available_parallelism".to_string(), Json::from(parallelism)),
        ("quick".to_string(), Json::from(quick)),
    ];
    for &viewers in scales {
        fields.push(scale_point(viewers, 4242));
    }
    Json::Obj(fields)
}

/// The deterministic one-line summary `repro fanout-smoke` prints and
/// `scripts/check.sh` double-runs through a byte diff: every field is a
/// pure function of the seed (no wall-clock anywhere).
pub fn smoke_line(viewers: usize, seed: u64) -> String {
    let o = run_once(viewers, seed);
    format!(
        "fanout viewers={viewers} seed={seed} digest={:016x} updates={} encodes={} \
         stream_bytes={} pool_misses={} wired_frames={} converged={}",
        o.digest,
        o.updates_sent,
        o.encodes,
        o.stream_bytes_sent,
        o.pool_misses,
        o.wired_frames,
        o.viewers_converged
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_point_renders_and_double_runs_deterministically() {
        // The 10-viewer point in debug mode; the real sweep runs in
        // release via `scripts/bench.sh --fanout`. `scale_point` already
        // embeds the same-seed double run, so reaching the JSON at all
        // means determinism held.
        let (name, json) = scale_point(10, 7);
        assert_eq!(name, "viewers_10");
        let text = json.render();
        assert!(text.contains("encodes_per_update"));
        assert!(text.contains("allocations_per_update"));
        assert!(text.contains("msgs_per_sec"));
        assert!(text.contains("\"viewers_converged\":10"));
    }

    #[test]
    fn encode_once_holds_at_small_scale() {
        let a = run_once(25, 3);
        assert_eq!(a.viewers_converged, 25, "audience diverged");
        assert!(
            a.updates_sent >= 25,
            "every viewer should complete at least its full update"
        );
        // O(1) encodings per screen change, not O(viewers): with ~4 slide
        // states and two fidelity/base combinations each, the encode count
        // stays tiny while serves scale with the audience.
        assert!(
            a.encodes * 4 < a.updates_sent,
            "{} encodes for {} serves",
            a.encodes,
            a.updates_sent
        );
        assert!(a.pool_hits > a.pool_misses, "pool never reached steady state");
    }

    #[test]
    fn smoke_line_is_stable_for_a_seed() {
        let l1 = smoke_line(12, 99);
        let l2 = smoke_line(12, 99);
        assert_eq!(l1, l2);
        assert!(l1.starts_with("fanout viewers=12 seed=99 digest="));
    }
}
