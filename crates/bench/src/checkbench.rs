//! Thread-scaling benchmark for the model checker: the data behind
//! `BENCH_check.json` (written by `repro bench` / `scripts/bench.sh`).
//!
//! Measures states/sec on bounded sweeps of the two production models at
//! worker counts 1, 2, and 4, cross-checking that every run reports the
//! identical state and transition counts (the determinism the parallel
//! engine guarantees — DESIGN.md §12), and appends the fixed-seed E9
//! chaos-recovery times so the perf trajectory tracks the recovery
//! deadlines alongside raw checker throughput.
//!
//! Numbers are hardware-honest: `available_parallelism` is recorded in
//! the JSON and every point where `workers` exceeds it carries
//! `oversubscribed: true` — such points measure coordination overhead,
//! not speedup, and must never be read as a scaling curve. Compare points
//! only within one machine generation. The `engine` tag names the
//! exploration engine the numbers were taken on, and `repro bench
//! --scaling` appends a scaling-only document (no chaos run) so the
//! trajectory accumulates instead of overwriting.

use crate::experiments::chaos::{chaos_run, storm};
use aroma_check::{check, CheckerConfig, LeaseConfig, LeaseModel, Model, SessionConfig, SessionModel};
use aroma_sim::report::Json;
use std::time::Instant;

/// Worker counts each model is swept at.
pub const WORKER_COUNTS: [usize; 3] = [1, 2, 4];

/// One (model, worker-count) measurement.
pub struct ScalePoint {
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock seconds for the sweep.
    pub secs: f64,
    /// Distinct states explored (identical across worker counts).
    pub states: usize,
    /// Transitions generated (identical across worker counts).
    pub transitions: u64,
    /// Distinct states per wall-clock second.
    pub states_per_sec: f64,
    /// `workers > available_parallelism`: this point measures coordination
    /// overhead, not parallel speedup, and must never be read as scaling.
    pub oversubscribed: bool,
}

impl ScalePoint {
    fn json(&self) -> Json {
        Json::obj(vec![
            ("workers", Json::from(self.workers)),
            ("secs", Json::from(self.secs)),
            ("states", Json::from(self.states)),
            ("transitions", Json::from(self.transitions)),
            ("states_per_sec", Json::from(self.states_per_sec)),
            ("oversubscribed", Json::from(self.oversubscribed)),
        ])
    }
}

/// Sweep one model at every worker count; panics if any run's report
/// diverges from the sequential one (the determinism gate, enforced here
/// too so a bench run can never publish numbers from diverging engines).
fn scale<M>(model: &M, cfg: CheckerConfig) -> Vec<ScalePoint>
where
    M: Model + Sync,
    M::State: Send + Sync,
    M::Action: Send + Sync,
    M::Key: Send,
{
    let parallelism = std::thread::available_parallelism().map_or(1, |p| p.get());
    let points: Vec<ScalePoint> = WORKER_COUNTS
        .iter()
        .map(|&workers| {
            let start = Instant::now();
            let report = check(model, &cfg.with_workers(workers));
            let secs = start.elapsed().as_secs_f64();
            assert!(report.passed(), "bench models must hold their properties");
            ScalePoint {
                workers,
                secs,
                states: report.distinct_states,
                transitions: report.transitions,
                states_per_sec: report.distinct_states as f64 / secs.max(1e-9),
                oversubscribed: workers > parallelism,
            }
        })
        .collect();
    for p in &points[1..] {
        assert_eq!(
            (p.states, p.transitions),
            (points[0].states, points[0].transitions),
            "parallel sweep diverged from sequential at {} workers",
            p.workers
        );
    }
    points
}

fn model_json(name: &str, max_states: usize, points: &[ScalePoint]) -> (String, Json) {
    let baseline = points[0].states_per_sec;
    let speedup_4 = points
        .iter()
        .find(|p| p.workers == 4)
        .map_or(0.0, |p| p.states_per_sec / baseline.max(1e-9));
    (
        name.to_string(),
        Json::obj(vec![
            ("max_states", Json::from(max_states)),
            ("scaling", Json::Arr(points.iter().map(ScalePoint::json).collect())),
            ("speedup_4_workers_vs_sequential", Json::from(speedup_4)),
        ]),
    )
}

/// Sweep both production models and return their JSON entries (shared by
/// the full bench document and the scaling-only append mode).
fn sweep_models(max_states: usize) -> Vec<(String, Json)> {
    let cfg = CheckerConfig::default().with_max_states(max_states);

    // The 4-user manual-release session sweep (~78k-state fixpoint): big
    // enough that states/sec means something, small enough to bench.
    let session = SessionModel::new(SessionConfig {
        users: 4,
        stale_cap: 3,
        ..SessionConfig::default()
    });
    let session_points = scale(&session, cfg);

    // The 3-provider lease model from the full sweep, bounded.
    let lease = LeaseModel::new(LeaseConfig {
        providers: 3,
        requested_quanta: vec![2, 4, 3],
        channel_cap: 4,
        ..LeaseConfig::default()
    });
    let lease_points = scale(&lease, cfg);

    vec![
        model_json("session_4users", max_states, &session_points),
        model_json("lease_3providers", max_states, &lease_points),
    ]
}

/// The scaling-only document appended by `repro bench --scaling`: checker
/// throughput at 1/2/4 workers with oversubscription flags, no chaos run.
pub fn run_scaling(quick: bool) -> Json {
    let max_states = if quick { 20_000 } else { 200_000 };
    let parallelism = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut fields = vec![
        ("engine".to_string(), Json::from("hash-sharded")),
        ("mode".to_string(), Json::from("scaling")),
        (
            "available_parallelism".to_string(),
            Json::from(parallelism),
        ),
        ("quick".to_string(), Json::from(quick)),
    ];
    fields.extend(sweep_models(max_states));
    Json::Obj(fields)
}

/// Run the checker scaling sweeps plus the E9 recovery measurement and
/// return the full `BENCH_check.json` document.
pub fn run(quick: bool) -> Json {
    let max_states = if quick { 20_000 } else { 200_000 };
    let models = sweep_models(max_states);

    // Fixed-seed chaos recovery: the other half of the perf story — how
    // fast the stack heals, measured from the same telemetry trace E9
    // renders (byte-identical for a fixed seed).
    let chaos = chaos_run(0xE9);
    let recoveries = Json::Arr(
        chaos
            .recoveries
            .iter()
            .map(|r| {
                Json::obj(vec![
                    ("layer", Json::from(r.layer)),
                    ("fault", Json::from(r.fault)),
                    (
                        "ttr_s",
                        r.ttr_s().map_or(Json::Null, Json::from),
                    ),
                    ("deadline_s", Json::from(r.deadline_s)),
                    ("met", Json::from(r.met())),
                ])
            })
            .collect(),
    );

    let parallelism = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut fields = vec![
        ("engine".to_string(), Json::from("hash-sharded")),
        (
            "available_parallelism".to_string(),
            Json::from(parallelism),
        ),
        ("quick".to_string(), Json::from(quick)),
    ];
    fields.extend(models);
    fields.push((
        "e9_chaos_recovery".to_string(),
        Json::obj(vec![
            ("seed", Json::from(0xE9u64)),
            ("deadline_s", Json::from(storm::DEADLINE_S)),
            ("recoveries", recoveries),
        ]),
    ));
    Json::Obj(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_points_agree_and_render() {
        // A deliberately tiny bound: the full document (including the E9
        // chaos run) is exercised by `scripts/bench.sh` in release mode;
        // this pins the cross-worker consistency check and the JSON shape
        // cheaply enough for the debug test suite.
        let session = SessionModel::new(SessionConfig::default());
        let cfg = CheckerConfig::default().with_max_states(1_500);
        let points = scale(&session, cfg);
        assert_eq!(points.len(), WORKER_COUNTS.len());
        assert!(points.iter().all(|p| p.states == points[0].states));
        let (name, json) = model_json("session_4users", 1_500, &points);
        let text = json.render();
        assert_eq!(name, "session_4users");
        assert!(text.contains("speedup_4_workers_vs_sequential"));
        assert!(text.contains("states_per_sec"));
        assert!(text.contains("oversubscribed"));
    }

    #[test]
    fn oversubscription_follows_available_parallelism() {
        let parallelism = std::thread::available_parallelism().map_or(1, |p| p.get());
        let session = SessionModel::new(SessionConfig::default());
        let cfg = CheckerConfig::default().with_max_states(500);
        for p in scale(&session, cfg) {
            assert_eq!(p.oversubscribed, p.workers > parallelism);
        }
    }
}
