//! F1–F5: the paper's five figures, regenerated as data.

use super::ExperimentOutput;
use aroma_env::{EnvironmentKind, EnvironmentProfile};
use aroma_sim::report::{fmt_f, fmt_pct, Table};
use aroma_sim::SimRng;
use lpc_core::intent::{harmony, DesignPurpose, UserGoals};
use lpc_core::mental::divergence;
use lpc_core::model;
use lpc_core::resources::{frustration_check, DeviceResources};
use lpc_core::user_sim::{simulate_session, PlannerKind, SessionParams};
use lpc_core::{Layer, UserProfile};
use smart_projector::system::{application_machine, belief_for, task};
use smart_projector::ProjectorVariant;

/// F1 — the LPC model: the layer stack with both columns and relations.
pub fn f1() -> ExperimentOutput {
    let mut stack = Table::new(&["layer", "user side", "relation", "device side"]);
    for spec in model::lpc_stack().iter().rev() {
        stack.row(&[
            spec.layer.name().to_string(),
            spec.user_side.to_string(),
            spec.relation.to_string(),
            spec.device_side.to_string(),
        ]);
    }
    let mut temporal = Table::new(&["layer (user side)", "change timescale"]);
    for layer in Layer::ALL.iter().rev() {
        let s = layer.user_change_timescale_s();
        let human = if s < 3600.0 {
            format!("{:.0} min", s / 60.0)
        } else if s < 86_400.0 * 2.0 {
            format!("{:.0} h", s / 3600.0)
        } else if s < 86_400.0 * 400.0 {
            format!("{:.0} d", s / 86_400.0)
        } else {
            format!("{:.0} y", s / (86_400.0 * 365.0))
        };
        temporal.row(&[layer.name().to_string(), human]);
    }
    ExperimentOutput {
        id: "f1",
        title: "the Layered Pervasive Computing model (Figure 1)",
        tables: vec![
            ("The five layers, top-down, as in Figure 1:".into(), stack),
            (
                "Temporal specificity: user-side change timescales shrink going up:".into(),
                temporal,
            ),
        ],
        notes: vec![
            "device side orders by abstraction; user side by temporal specificity".into(),
        ],
        metrics: None,
    }
}

/// F2 — environment ↔ physical-entity compatibility matrix (Figure 2).
pub fn f2() -> ExperimentOutput {
    use aroma_appliance::{DeviceClass, DeviceProfile};
    let envs: Vec<_> = EnvironmentKind::ALL
        .iter()
        .map(|&k| EnvironmentProfile::preset(k).build())
        .collect();
    let mut headers: Vec<&str> = vec!["physical entity"];
    let names: Vec<String> = envs.iter().map(|e| e.name.clone()).collect();
    headers.extend(names.iter().map(|s| s.as_str()));
    let mut t = Table::new(&headers);

    let devices: Vec<(String, aroma_env::OperatingRange)> = DeviceClass::ALL
        .iter()
        .map(|&c| {
            let p = DeviceProfile::of(c);
            (p.name.clone(), p.operating_range)
        })
        .collect();
    let users: Vec<(String, aroma_env::OperatingRange)> = UserProfile::all_presets()
        .into_iter()
        .map(|u| (format!("user: {}", u.name), u.physical.comfort))
        .collect();

    for (name, range) in devices.into_iter().chain(users) {
        let mut row = vec![name];
        for env in &envs {
            let v = range.violations(&env.climate);
            row.push(if v.is_empty() {
                "ok".to_string()
            } else {
                format!("{} violation(s)", v.len())
            });
        }
        t.row(&row);
    }
    ExperimentOutput {
        id: "f2",
        title: "environment ↔ physical layer compatibility (Figure 2)",
        tables: vec![(
            "\"...must be compatible with...\": entity operating envelopes vs environments:"
                .into(),
            t,
        )],
        notes: vec![
            "the projector washes out outdoors; humans and rugged gear disagree about the subway"
                .into(),
        ],
        metrics: None,
    }
}

/// F3 — resource layer: faculties vs device resources (Figure 3).
pub fn f3() -> ExperimentOutput {
    let resources = [
        ("research prototype", DeviceResources::research_prototype()),
        ("commercial grade", DeviceResources::commercial_grade()),
    ];
    let mut t = Table::new(&["user", "device resources", "frustrations", "which"]);
    for user in UserProfile::all_presets() {
        for (rname, res) in &resources {
            let v = frustration_check(&user.faculties, res);
            let which = if v.is_empty() {
                "—".to_string()
            } else {
                v.iter()
                    .map(|f| format!("{f}"))
                    .collect::<Vec<_>>()
                    .join("; ")
            };
            t.row(&[
                user.name.clone(),
                rname.to_string(),
                v.len().to_string(),
                which,
            ]);
        }
    }
    ExperimentOutput {
        id: "f3",
        title: "resource layer: user faculties must not be frustrated (Figure 3)",
        tables: vec![(
            "Frustration check, every user preset × both resource profiles:".into(),
            t,
        )],
        notes: vec![
            "researchers are never frustrated by the prototype; casual users always are".into(),
        ],
        metrics: None,
    }
}

/// F4 — abstract layer: mental-model consistency, static and dynamic
/// (Figure 4).
pub fn f4(quick: bool) -> ExperimentOutput {
    let sessions = if quick { 50 } else { 500 };
    let mut t = Table::new(&[
        "user",
        "variant",
        "static gap",
        "completion",
        "abandonment",
        "mean surprises",
        "mean steps",
    ]);
    for variant in [ProjectorVariant::Prototype, ProjectorVariant::Commercial] {
        let actual = application_machine(variant);
        let (start, goal) = task(variant);
        for user in UserProfile::all_presets() {
            let belief = belief_for(&user, variant);
            let gap = divergence(&belief, &actual).gap();
            let mut completed = 0u32;
            let mut abandoned = 0u32;
            let mut surprises = 0u64;
            let mut steps = 0u64;
            for s in 0..sessions {
                let mut rng = SimRng::new(0xF4).fork(s as u64);
                let r = simulate_session(
                    &user.faculties,
                    &belief,
                    &actual,
                    start,
                    goal,
                    PlannerKind::Bfs,
                    &SessionParams::default(),
                    &mut rng,
                );
                if r.reached_goal {
                    completed += 1;
                }
                if r.gave_up {
                    abandoned += 1;
                }
                surprises += r.surprises as u64;
                steps += r.steps as u64;
            }
            t.row(&[
                user.name.clone(),
                match variant {
                    ProjectorVariant::Prototype => "prototype".into(),
                    ProjectorVariant::Commercial => "commercial".into(),
                },
                fmt_pct(gap),
                fmt_pct(completed as f64 / sessions as f64),
                fmt_pct(abandoned as f64 / sessions as f64),
                fmt_f(surprises as f64 / sessions as f64, 2),
                fmt_f(steps as f64 / sessions as f64, 1),
            ]);
        }
    }
    ExperimentOutput {
        id: "f4",
        title: "abstract layer: mental models must be consistent with the application (Figure 4)",
        tables: vec![(
            format!("{sessions} simulated sessions per cell, BFS planner:"),
            t,
        )],
        notes: vec![
            "prototype: completion falls and surprises rise as domain knowledge falls".into(),
            "commercial: every profile completes with zero surprises".into(),
        ],
        metrics: None,
    }
}

/// F5 — intentional layer: harmony matrix (Figure 5).
pub fn f5() -> ExperimentOutput {
    let goals = [
        UserGoals::researcher(),
        UserGoals::presenter(),
        UserGoals::casual(),
    ];
    let purposes = [
        DesignPurpose::research_prototype(),
        DesignPurpose::commercial_product(),
    ];
    let mut t = Table::new(&["goals \\ purpose", "research prototype", "commercial product"]);
    for g in &goals {
        let mut row = vec![g.name.clone()];
        for p in &purposes {
            row.push(fmt_f(harmony(g, p), 2));
        }
        t.row(&row);
    }
    ExperimentOutput {
        id: "f5",
        title: "intentional layer: goals must be in harmony with design purpose (Figure 5)",
        tables: vec![("harmony(goals, purpose) ∈ [0,1]:".into(), t)],
        notes: vec![
            "the prototype harmonises with researchers, the commercial product with everyone else — the paper's own intentional-layer conclusion".into(),
        ],
        metrics: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f1_contains_all_layers_and_relations() {
        let out = f1().render();
        for l in Layer::ALL {
            assert!(out.contains(l.name()));
        }
        assert!(out.contains("must be in harmony with"));
        assert!(out.contains("Mem | Sto | Exe | UI | Net"));
    }

    #[test]
    fn f2_flags_outdoor_projector() {
        let out = f2().render();
        assert!(out.contains("Digital projector"));
        assert!(out.contains("violation"));
    }

    #[test]
    fn f3_shows_asymmetry() {
        let out = f3();
        let rendered = out.render();
        // Researcher × prototype row must be clean; casual × prototype not.
        assert!(rendered.contains("researcher"));
        assert!(rendered.contains("casual user"));
    }

    #[test]
    fn f4_shapes_hold() {
        let out = f4(true);
        let rendered = out.render();
        // Commercial rows must show 100.0% completion.
        assert!(rendered.contains("100.0%"), "{rendered}");
    }

    #[test]
    fn f5_matrix_is_complete() {
        let out = f5();
        assert_eq!(out.tables[0].1.len(), 3);
    }
}
