//! E10 (extension) — voice control of the Smart Projector.
//!
//! The paper's future-work feature built and measured: command success
//! rate, attempts per command, and misfire risk across environments, with
//! and without a confirmation loop, plus the physical-layer consequence
//! the paper predicts (speech replaces the stay-near-the-laptop
//! constraint — but only where the environment permits it).

use super::ExperimentOutput;
use aroma_env::space::Point;
use aroma_env::{EnvironmentKind, EnvironmentProfile};
use aroma_sim::report::{fmt_f, fmt_pct, Table};
use aroma_sim::SimRng;
use smart_projector::voice::{run_command, VoiceChannel, VoiceCommand};

/// Aggregate over many command sessions in one environment.
#[derive(Clone, Copy, Debug, Default)]
pub struct VoiceResult {
    /// Fraction of commands that eventually executed correctly.
    pub success: f64,
    /// Mean utterances per command.
    pub mean_attempts: f64,
    /// Fraction of sessions where a wrong command executed (no-confirm) or
    /// would have (confirm).
    pub misfire: f64,
    /// Recogniser accuracy in this environment.
    pub accuracy: f64,
    /// Social appropriateness.
    pub socially_ok: bool,
}

/// Run `n` command sessions in `kind`.
pub fn run_voice(kind: EnvironmentKind, confirm: bool, n: usize, seed: u64) -> VoiceResult {
    let env = EnvironmentProfile::preset(kind).build();
    let channel = VoiceChannel::in_environment(&env, Point::new(0.0, 0.0), Point::new(0.5, 0.0));
    let mut rng = SimRng::new(seed);
    let mut ok = 0usize;
    let mut attempts = 0u64;
    let mut misfires = 0usize;
    for i in 0..n {
        let cmd = VoiceCommand::ALL[i % VoiceCommand::ALL.len()];
        let s = run_command(&channel, cmd, confirm, 5, &mut rng);
        ok += s.succeeded as usize;
        attempts += s.attempts as u64;
        misfires += (s.would_misfire > 0 && !confirm) as usize;
    }
    VoiceResult {
        success: ok as f64 / n as f64,
        mean_attempts: attempts as f64 / n as f64,
        misfire: misfires as f64 / n as f64,
        accuracy: channel.accuracy,
        socially_ok: channel.socially_ok,
    }
}

/// Run E10.
pub fn e10(quick: bool) -> ExperimentOutput {
    let n = if quick { 200 } else { 2000 };
    let mut t = Table::new(&[
        "environment",
        "recogniser acc",
        "success (confirm)",
        "attempts",
        "success (no confirm)",
        "misfires (no confirm)",
        "socially ok",
    ]);
    for kind in EnvironmentKind::ALL {
        let with = run_voice(kind, true, n, 0xE10);
        let without = run_voice(kind, false, n, 0xE10 + 1);
        t.row(&[
            kind.name().to_string(),
            fmt_pct(with.accuracy),
            fmt_pct(with.success),
            fmt_f(with.mean_attempts, 2),
            fmt_pct(without.success),
            fmt_pct(without.misfire),
            with.socially_ok.to_string(),
        ]);
    }
    ExperimentOutput {
        id: "e10",
        title: "voice control of the Smart Projector (the paper's future-work feature)",
        tables: vec![(
            format!("{n} command sessions per cell, 5-utterance budget, close-talk mic:"),
            t,
        )],
        notes: vec![
            "voice removes the stay-near-the-laptop constraint exactly where the environment permits it (office, hall) and fails where the paper predicted (subway: acoustics; cubicles: social)".into(),
            "the confirmation loop trades attempts for safety: misfires vanish, success rises".into(),
        ],
        metrics: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e10_shape_environment_ordering() {
        let office = run_voice(EnvironmentKind::QuietOffice, true, 300, 1);
        let hall = run_voice(EnvironmentKind::ConferenceHall, true, 300, 1);
        let subway = run_voice(EnvironmentKind::SubwayCar, true, 300, 1);
        assert!(office.success > 0.99);
        assert!(hall.success > 0.95);
        assert!(subway.success < 0.10, "{}", subway.success);
        assert!(office.mean_attempts < hall.mean_attempts);
        assert!(hall.mean_attempts < subway.mean_attempts);
    }

    #[test]
    fn e10_shape_confirmation_eliminates_misfires() {
        let without = run_voice(EnvironmentKind::OutdoorCourtyard, false, 500, 2);
        let with = run_voice(EnvironmentKind::OutdoorCourtyard, true, 500, 2);
        assert!(without.misfire > 0.02, "{}", without.misfire);
        assert_eq!(with.misfire, 0.0);
        assert!(with.success >= without.success);
    }
}
