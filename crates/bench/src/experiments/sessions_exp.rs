//! E4 — session objects: hijacks, lockouts, and the auto-expiry mechanism.
//!
//! The paper: session objects "ensure that another user cannot
//! inadvertently 'hijack' either the use or control of the projector", and
//! mechanisms are needed for "users who forget to relinquish control …
//! without relying on a system administrator to intervene". N presenters
//! contend for the projector under three policies; one of them always
//! forgets to release.

use super::ExperimentOutput;
use crate::scenarios::{clean_env, secs};
use aroma_discovery::apps::RegistrarApp;
use aroma_env::space::Point;
use aroma_net::{MacConfig, Network, NodeConfig, NodeId};
use aroma_sim::report::{fmt_f, Table};
use aroma_sim::SimDuration;
use aroma_vnc::SlideDeck;
use smart_projector::laptop::{PresenterLaptopApp, PresenterScript};
use smart_projector::session::SessionPolicy;
use smart_projector::{AcquireOrder, SmartProjectorApp};

/// Outcome of one contention run.
#[derive(Clone, Copy, Debug, Default)]
pub struct ContentionResult {
    /// Session hijacks observed (projection + control).
    pub hijacks: u64,
    /// Presenters who never got to present.
    pub locked_out: usize,
    /// Total acquisition refusals.
    pub denials: u64,
    /// Mean time from arrival to presenting, seconds (completers only).
    pub mean_wait_s: f64,
}

/// Run `presenters` staggered presenters under `policy` for `horizon`; the
/// first presenter forgets to release.
pub fn run_contention(
    presenters: usize,
    policy: SessionPolicy,
    horizon: SimDuration,
    seed: u64,
) -> ContentionResult {
    let mut net = Network::new(clean_env(), MacConfig::default(), seed);
    let _registrar = net.add_node(
        NodeConfig::at(Point::new(0.0, 0.0)),
        Box::new(RegistrarApp::new(SimDuration::from_secs(60))),
    );
    let projector = net.add_node(
        NodeConfig::at(Point::new(3.0, 0.0)),
        Box::new(SmartProjectorApp::new(160, 128, policy, "A-101")),
    );
    let laptops: Vec<NodeId> = (0..presenters)
        .map(|i| {
            let script = PresenterScript {
                start_after: SimDuration::from_secs(3 * i as u64),
                order: if i % 2 == 0 {
                    AcquireOrder::ProjectionFirst
                } else {
                    AcquireOrder::ControlFirst
                },
                present_for: SimDuration::from_secs(6),
                release_on_finish: i != 0, // the first one forgets
                ..Default::default()
            };
            net.add_node(
                NodeConfig::at(Point::new(1.0 + i as f64, 3.0)),
                Box::new(PresenterLaptopApp::new(
                    script,
                    160,
                    128,
                    Box::new(SlideDeck::new(10.0)),
                )),
            )
        })
        .collect();
    net.run_for(horizon);

    let proj = net.app_as::<SmartProjectorApp>(projector).unwrap();
    let hijacks = proj.projection_sessions.stats.hijacks + proj.control_sessions.stats.hijacks;
    let mut locked_out = 0usize;
    let mut denials = 0u64;
    let mut waits: Vec<f64> = Vec::new();
    for (i, &l) in laptops.iter().enumerate() {
        let app = net.app_as::<PresenterLaptopApp>(l).unwrap();
        denials += app.denials as u64;
        match app.projecting_at {
            Some(t) => {
                let arrival = 3.0 * i as f64;
                waits.push(t.as_secs_f64() - arrival);
            }
            None => locked_out += 1,
        }
    }
    ContentionResult {
        hijacks,
        locked_out,
        denials,
        mean_wait_s: if waits.is_empty() {
            f64::NAN
        } else {
            waits.iter().sum::<f64>() / waits.len() as f64
        },
    }
}

/// Run E4.
pub fn e4(quick: bool) -> ExperimentOutput {
    let horizon = if quick { secs(30) } else { secs(90) };
    let presenter_counts: &[usize] = if quick { &[3] } else { &[2, 4, 6] };
    let policies = [
        ("no sessions", SessionPolicy::None),
        ("sessions, manual release", SessionPolicy::ManualRelease),
        (
            "sessions + 8 s auto-expiry",
            SessionPolicy::AutoExpire {
                idle: SimDuration::from_secs(8),
            },
        ),
    ];
    let grid: Vec<(usize, (&str, SessionPolicy))> = presenter_counts
        .iter()
        .flat_map(|&n| policies.iter().map(move |&p| (n, p)))
        .collect();
    let results = aroma_sim::sweep::run(&grid, |i, &(n, (_, policy))| {
        run_contention(n, policy, horizon, 0xE4 + i as u64)
    });

    let mut t = Table::new(&[
        "presenters",
        "policy",
        "hijacks",
        "locked out",
        "denials",
        "mean wait s",
    ]);
    for ((n, (pname, _)), r) in grid.iter().zip(&results) {
        t.row(&[
            n.to_string(),
            pname.to_string(),
            r.hijacks.to_string(),
            r.locked_out.to_string(),
            r.denials.to_string(),
            if r.mean_wait_s.is_nan() {
                "—".into()
            } else {
                fmt_f(r.mean_wait_s, 1)
            },
        ]);
    }
    ExperimentOutput {
        id: "e4",
        title: "session objects under contention (abstract-layer mechanisms)",
        tables: vec![(
            format!(
                "staggered arrivals every 3 s, first presenter forgets to release, {:.0}s horizon:",
                horizon.as_secs_f64()
            ),
            t,
        )],
        notes: vec![
            "no sessions → hijacks; manual release → lockouts behind the forgetful presenter;".into(),
            "auto-expiry eliminates both without an administrator — the mechanism the paper calls for".into(),
        ],
        metrics: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e4_shape_policies() {
        let horizon = secs(40);
        let none = run_contention(3, SessionPolicy::None, horizon, 1);
        let manual = run_contention(3, SessionPolicy::ManualRelease, horizon, 1);
        let auto = run_contention(
            3,
            SessionPolicy::AutoExpire {
                idle: SimDuration::from_secs(8),
            },
            horizon,
            1,
        );
        assert!(none.hijacks >= 1, "no sessions must allow hijack");
        assert_eq!(manual.hijacks, 0);
        assert_eq!(auto.hijacks, 0);
        assert!(
            manual.locked_out >= 1,
            "forgetful presenter must lock others out under manual release"
        );
        assert_eq!(
            auto.locked_out, 0,
            "auto-expiry must let everyone through eventually"
        );
    }
}
