//! E3 — "the ability to automatically discover the projector service is
//! implemented using Jini and relies on having a Jini lookup service
//! present."
//!
//! Three sub-experiments: (a) time-to-service vs how many other services
//! are registered; (b) availability: registrar present / absent / crashed
//! then restarted; (c) lease-duration churn: renewal traffic vs lease
//! length.

use super::ExperimentOutput;
use crate::scenarios::{clean_env, secs};
use aroma_discovery::apps::{ClientApp, ProviderApp, RegistrarApp};
use aroma_discovery::codec::{ServiceId, ServiceItem, Template};
use aroma_env::space::Point;
use aroma_net::{MacConfig, Network, NodeConfig};
use aroma_sim::report::{fmt_f, Table};
use aroma_sim::SimDuration;
use bytes::Bytes;

fn item(id: u64, kind: &str) -> ServiceItem {
    ServiceItem {
        id: ServiceId(id),
        kind: kind.into(),
        attributes: vec![("room".into(), format!("R-{id}"))],
        provider: 0,
        proxy: Bytes::from_static(b"proxy"),
    }
}

/// One time-to-service measurement with `background` extra services.
fn time_to_service_ms(background: usize, seed: u64) -> Option<f64> {
    let mut net = Network::new(clean_env(), MacConfig::default(), seed);
    let _reg = net.add_node(
        NodeConfig::at(Point::new(0.0, 0.0)),
        Box::new(RegistrarApp::new(SimDuration::from_secs(30))),
    );
    // Background providers with other service kinds.
    for i in 0..background {
        let angle = i as f64 / background.max(1) as f64 * std::f64::consts::TAU;
        let (s, c) = angle.sin_cos();
        net.add_node(
            NodeConfig::at(Point::new(6.0 * c, 6.0 * s)),
            Box::new(ProviderApp::new(item(100 + i as u64, "sensor/misc"), 20_000)),
        );
    }
    let _wanted = net.add_node(
        NodeConfig::at(Point::new(3.0, 0.0)),
        Box::new(ProviderApp::new(item(1, "projector/display"), 20_000)),
    );
    let client = net.add_node(
        NodeConfig::at(Point::new(0.0, 3.0)),
        Box::new(ClientApp::new(Template::of_kind("projector/display"))),
    );
    net.run_for(secs(10));
    let c = net.app_as::<ClientApp>(client).unwrap();
    c.service_found_at.map(|t| t.as_millis() as f64)
}

/// Availability run: returns (found_before_crash, found_after_restart).
fn availability(seed: u64) -> (bool, bool, bool) {
    // Arm 1: registrar present the whole time.
    let present = time_to_service_ms(0, seed).is_some();

    // Arm 2: registrar absent (crashed from t=0).
    let absent = {
        let mut net = Network::new(clean_env(), MacConfig::default(), seed + 1);
        let reg = net.add_node(
            NodeConfig::at(Point::new(0.0, 0.0)),
            Box::new(RegistrarApp::new(SimDuration::from_secs(30))),
        );
        net.add_node(
            NodeConfig::at(Point::new(3.0, 0.0)),
            Box::new(ProviderApp::new(item(1, "projector/display"), 20_000)),
        );
        let client = net.add_node(
            NodeConfig::at(Point::new(0.0, 3.0)),
            Box::new(ClientApp::new(Template::of_kind("projector/display"))),
        );
        net.app_as_mut::<RegistrarApp>(reg).unwrap().crash();
        net.run_for(secs(5));
        net.app_as::<ClientApp>(client)
            .unwrap()
            .service_found_at
            .is_some()
    };

    // Arm 3: crash at 2 s, restart at 4 s, recovery expected.
    let recovered = {
        let mut net = Network::new(clean_env(), MacConfig::default(), seed + 2);
        let reg = net.add_node(
            NodeConfig::at(Point::new(0.0, 0.0)),
            Box::new(RegistrarApp::new(SimDuration::from_secs(5))),
        );
        net.add_node(
            NodeConfig::at(Point::new(3.0, 0.0)),
            Box::new(ProviderApp::new(item(1, "projector/display"), 20_000)),
        );
        net.run_for(secs(2));
        net.app_as_mut::<RegistrarApp>(reg).unwrap().crash();
        net.run_for(secs(2));
        net.app_as_mut::<RegistrarApp>(reg).unwrap().restart();
        net.run_for(secs(10));
        net.app_as::<RegistrarApp>(reg).unwrap().registry.len() == 1
    };
    (present, absent, recovered)
}

/// Lease churn: renewals per minute vs lease duration.
fn lease_churn(lease_ms: u64, seed: u64) -> f64 {
    let mut net = Network::new(clean_env(), MacConfig::default(), seed);
    let reg = net.add_node(
        NodeConfig::at(Point::new(0.0, 0.0)),
        Box::new(RegistrarApp::new(SimDuration::from_millis(lease_ms))),
    );
    for i in 0..5 {
        net.add_node(
            NodeConfig::at(Point::new(2.0 + i as f64, 0.0)),
            Box::new(ProviderApp::new(item(i as u64, "sensor/misc"), lease_ms)),
        );
    }
    let horizon = secs(30);
    net.run_for(horizon);
    let r = net.app_as::<RegistrarApp>(reg).unwrap();
    r.renewals as f64 / horizon.as_secs_f64() * 60.0
}

/// Run E3.
pub fn e3(quick: bool) -> ExperimentOutput {
    let backgrounds: &[usize] = if quick { &[0, 10] } else { &[0, 5, 10, 20, 40] };
    let seeds_per_point: u64 = if quick { 2 } else { 10 };
    let grid: Vec<(usize, u64)> = backgrounds
        .iter()
        .flat_map(|&b| (0..seeds_per_point).map(move |s| (b, s)))
        .collect();
    let tts = aroma_sim::sweep::run(&grid, |i, &(b, s)| {
        time_to_service_ms(b, 0xE3 + s * 1000 + i as u64)
    });
    let mut t1 = Table::new(&["background services", "mean time-to-service (ms)", "found"]);
    for &b in backgrounds {
        let samples: Vec<f64> = grid
            .iter()
            .zip(&tts)
            .filter(|((b2, _), _)| *b2 == b)
            .filter_map(|(_, ms)| *ms)
            .collect();
        let found = samples.len();
        let mean = if samples.is_empty() {
            f64::NAN
        } else {
            samples.iter().sum::<f64>() / samples.len() as f64
        };
        t1.row(&[
            b.to_string(),
            if mean.is_nan() { "—".into() } else { fmt_f(mean, 0) },
            format!("{found}/{seeds_per_point}"),
        ]);
    }

    let (present, absent, recovered) = availability(0x3A);
    let mut t2 = Table::new(&["scenario", "service usable"]);
    t2.row(&["lookup service present".into(), present.to_string()]);
    t2.row(&["lookup service absent".into(), absent.to_string()]);
    t2.row(&[
        "crash at 2s, restart at 4s (re-registration)".into(),
        recovered.to_string(),
    ]);

    let leases: &[u64] = if quick { &[2_000, 10_000] } else { &[1_000, 2_000, 5_000, 10_000, 30_000] };
    let churn = aroma_sim::sweep::run(leases, |i, &l| lease_churn(l, 0xE3C + i as u64));
    let mut t3 = Table::new(&["lease (ms)", "renewals/min (5 providers)"]);
    for (l, c) in leases.iter().zip(&churn) {
        t3.row(&[l.to_string(), fmt_f(*c, 1)]);
    }

    ExperimentOutput {
        id: "e3",
        title: "service discovery: latency, availability, lease churn (resource-layer dependency)",
        tables: vec![
            ("(a) time-to-service vs registrar load:".into(), t1),
            ("(b) availability under registrar failure:".into(), t2),
            ("(c) lease-duration vs renewal traffic:".into(), t3),
        ],
        notes: vec![
            "nothing is discoverable without the lookup service — the paper's dependency made falsifiable".into(),
            "shorter leases mean faster failure detection but proportionally more renewal traffic".into(),
        ],
        metrics: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e3_availability_shape() {
        let (present, absent, recovered) = availability(7);
        assert!(present);
        assert!(!absent);
        assert!(recovered);
    }

    #[test]
    fn e3_lease_churn_monotone() {
        let short = lease_churn(1_000, 1);
        let long = lease_churn(10_000, 1);
        assert!(
            short > 3.0 * long,
            "1 s leases should renew far more often: {short} vs {long}"
        );
    }

    #[test]
    fn e3_time_to_service_found_quickly() {
        let ms = time_to_service_ms(0, 5).expect("service must be found");
        assert!(ms < 3_000.0, "{ms} ms");
    }
}
