//! E6 — "background noise, that is currently acceptable, may become
//! objectionable if voice recognition is used in a pervasive computing
//! system" — plus the social-appropriateness gate.

use super::ExperimentOutput;
use aroma_env::acoustics::recognition_accuracy;
use aroma_env::space::Point;
use aroma_env::{EnvironmentKind, EnvironmentProfile};
use aroma_sim::report::{fmt_f, fmt_pct, Table};

/// Recognition accuracy for a talker at the origin, mic at `d` metres, in
/// environment `kind`.
pub fn accuracy_at(kind: EnvironmentKind, mic_distance_m: f64) -> f64 {
    let env = EnvironmentProfile::preset(kind).build();
    let talker = Point::new(0.0, 0.0);
    let mic = Point::new(mic_distance_m, 0.0);
    recognition_accuracy(env.acoustics.speech_snr_db(talker, mic))
}

/// Run E6.
pub fn e6() -> ExperimentOutput {
    let distances = [0.3, 1.0, 3.0];
    let mut headers: Vec<String> = vec!["environment".into(), "noise dB".into()];
    headers.extend(distances.iter().map(|d| format!("acc @ {d} m")));
    headers.push("voice socially ok".into());
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(&header_refs);

    for kind in EnvironmentKind::ALL {
        let env = EnvironmentProfile::preset(kind).build();
        let noise = env.acoustics.noise_at(Point::new(0.5, 0.0));
        let mut row = vec![kind.name().to_string(), fmt_f(noise, 1)];
        for &d in &distances {
            row.push(fmt_pct(accuracy_at(kind, d)));
        }
        row.push(env.acoustics.social.voice_appropriate().to_string());
        t.row(&row);
    }
    ExperimentOutput {
        id: "e6",
        title: "voice-interface viability vs acoustic & social environment (environment layer)",
        tables: vec![(
            "speech recognition accuracy by environment and microphone distance:".into(),
            t,
        )],
        notes: vec![
            "the subway defeats recognition outright; the cubicle farm permits it acoustically but not socially — the paper's two distinct failure modes".into(),
        ],
        metrics: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e6_shape_subway_defeats_recognition() {
        let office = accuracy_at(EnvironmentKind::QuietOffice, 0.3);
        let subway = accuracy_at(EnvironmentKind::SubwayCar, 0.3);
        assert!(office > 0.85, "office {office}");
        assert!(subway < 0.5, "subway {subway}");
    }

    #[test]
    fn e6_shape_distance_hurts() {
        for kind in EnvironmentKind::ALL {
            assert!(accuracy_at(kind, 0.3) >= accuracy_at(kind, 3.0));
        }
    }

    #[test]
    fn e6_social_gate_differs_from_acoustic_gate() {
        // The cubicle farm: acoustically workable at close range, socially
        // inappropriate — the distinction the paper draws.
        let acc = accuracy_at(EnvironmentKind::CubicleFarm, 0.3);
        let env = EnvironmentProfile::preset(EnvironmentKind::CubicleFarm).build();
        assert!(acc > 0.5, "cubicle close-mic acc {acc}");
        assert!(!env.acoustics.social.voice_appropriate());
    }
}
