//! E2 — "there are many wireless devices operating in the 2.4 GHz radio
//! band, and the effect of a high concentration of these devices needs to
//! be studied."
//!
//! Co-channel device-density sweep: aggregate and per-pair goodput,
//! collision indicators, plus the orthogonal-channel-plan arm showing how
//! much spectral planning recovers.

use super::ExperimentOutput;
use crate::scenarios::{run_density, secs, ChannelPlan};
use aroma_net::RateAdaptation;
use aroma_sim::report::{fmt_f, Table};

/// Run E2.
pub fn e2(quick: bool) -> ExperimentOutput {
    let horizon = if quick { secs(1) } else { secs(4) };
    let densities: &[usize] = if quick {
        &[1, 4, 8]
    } else {
        &[1, 2, 4, 8, 12, 16, 24]
    };
    let plans = [
        ("co-channel", ChannelPlan::AllCochannel),
        ("1/6/11 spread", ChannelPlan::OrthogonalSpread),
    ];
    let grid: Vec<(usize, (&str, ChannelPlan))> = densities
        .iter()
        .flat_map(|&d| plans.iter().map(move |&p| (d, p)))
        .collect();
    let results = aroma_sim::sweep::run(&grid, |i, &(pairs, (_, plan))| {
        run_density(
            pairs,
            plan,
            RateAdaptation::SnrBased,
            1000,
            horizon,
            0xE2 + i as u64,
        )
    });

    let mut t = Table::new(&[
        "pairs",
        "channel plan",
        "aggregate Mbit/s",
        "per-pair Mbit/s",
        "ACK timeouts/s",
        "retry drops",
    ]);
    for ((pairs, (plan_name, _)), r) in grid.iter().zip(&results) {
        t.row(&[
            pairs.to_string(),
            plan_name.to_string(),
            fmt_f(r.aggregate_bps / 1e6, 2),
            fmt_f(r.per_pair_bps / 1e6, 3),
            fmt_f(r.timeouts_per_s, 1),
            r.retry_drops.to_string(),
        ]);
    }

    let per_pair = |pairs: usize, plan: &str| -> f64 {
        grid.iter()
            .zip(&results)
            .find(|((d, (p, _)), _)| *d == pairs && *p == plan)
            .map(|(_, r)| r.per_pair_bps)
            .unwrap()
    };
    let solo = per_pair(densities[0], "co-channel");
    let dense = per_pair(*densities.last().unwrap(), "co-channel");
    let dense_spread = per_pair(*densities.last().unwrap(), "1/6/11 spread");
    ExperimentOutput {
        id: "e2",
        title: "2.4 GHz device-density sweep (environment-layer congestion claim)",
        tables: vec![(
            format!(
                "saturated 1000-byte senders, {:.0}s horizon, receivers clustered:",
                horizon.as_secs_f64()
            ),
            t,
        )],
        notes: vec![
            format!(
                "per-pair goodput collapses {:.0}x from 1 to {} co-channel pairs",
                solo / dense.max(1.0),
                densities.last().unwrap()
            ),
            format!(
                "spreading over channels 1/6/11 recovers {:.1}x per-pair goodput at the highest density",
                dense_spread / dense.max(1.0)
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aroma_net::Rate;

    #[test]
    fn e2_shape_density_collapse() {
        let solo = run_density(
            1,
            ChannelPlan::AllCochannel,
            RateAdaptation::SnrBased,
            1000,
            secs(1),
            1,
        );
        let dense = run_density(
            8,
            ChannelPlan::AllCochannel,
            RateAdaptation::SnrBased,
            1000,
            secs(1),
            1,
        );
        assert!(dense.per_pair_bps < solo.per_pair_bps / 4.0);
        assert!(dense.timeouts_per_s > solo.timeouts_per_s);
    }

    #[test]
    fn e2_shape_channel_spread_helps() {
        let co = run_density(
            6,
            ChannelPlan::AllCochannel,
            RateAdaptation::SnrBased,
            1000,
            secs(1),
            2,
        );
        let spread = run_density(
            6,
            ChannelPlan::OrthogonalSpread,
            RateAdaptation::SnrBased,
            1000,
            secs(1),
            2,
        );
        assert!(
            spread.aggregate_bps > 1.5 * co.aggregate_bps,
            "spread {} vs co {}",
            spread.aggregate_bps,
            co.aggregate_bps
        );
    }

    #[test]
    fn ablation_fixed_rate_underperforms_adaptive_on_clean_links() {
        // With one clean pair, fixed 1 Mbps leaves most capacity unused.
        let fixed1 = run_density(
            1,
            ChannelPlan::AllCochannel,
            RateAdaptation::Fixed(Rate::R1),
            1000,
            secs(1),
            3,
        );
        let adaptive = run_density(
            1,
            ChannelPlan::AllCochannel,
            RateAdaptation::SnrBased,
            1000,
            secs(1),
            3,
        );
        assert!(adaptive.aggregate_bps > 3.0 * fixed1.aggregate_bps);
    }
}
