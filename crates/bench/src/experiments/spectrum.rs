//! E2 — "there are many wireless devices operating in the 2.4 GHz radio
//! band, and the effect of a high concentration of these devices needs to
//! be studied."
//!
//! Co-channel device-density sweep: aggregate and per-pair goodput,
//! collision indicators, plus the orthogonal-channel-plan arm showing how
//! much spectral planning recovers.

use super::{ExperimentOutput, RunOpts};
use crate::scenarios::{run_density, run_density_traced, secs, ChannelPlan};
use aroma_net::RateAdaptation;
use aroma_sim::report::{fmt_f, Table};
use aroma_sim::telemetry::snapshot_json;

/// Run E2 with default options.
pub fn e2(quick: bool) -> ExperimentOutput {
    e2_with(RunOpts {
        quick,
        ..RunOpts::default()
    })
}

/// Run E2; with `opts.metrics` the densest co-channel point is re-run with
/// the telemetry recorder attached and its snapshot (MAC retries, drop
/// causes, handler timings) is emitted beside the sweep table.
pub fn e2_with(opts: RunOpts) -> ExperimentOutput {
    let quick = opts.quick;
    let horizon = if quick { secs(1) } else { secs(4) };
    let densities: &[usize] = if quick {
        &[1, 4, 8]
    } else {
        &[1, 2, 4, 8, 12, 16, 24]
    };
    let plans = [
        ("co-channel", ChannelPlan::AllCochannel),
        ("1/6/11 spread", ChannelPlan::OrthogonalSpread),
    ];
    let grid: Vec<(usize, (&str, ChannelPlan))> = densities
        .iter()
        .flat_map(|&d| plans.iter().map(move |&p| (d, p)))
        .collect();
    let results = aroma_sim::sweep::run(&grid, |i, &(pairs, (_, plan))| {
        run_density(
            pairs,
            plan,
            RateAdaptation::SnrBased,
            1000,
            horizon,
            0xE2 + i as u64,
        )
    });

    let mut t = Table::new(&[
        "pairs",
        "channel plan",
        "aggregate Mbit/s",
        "per-pair Mbit/s",
        "ACK timeouts/s",
        "retry drops",
    ]);
    for ((pairs, (plan_name, _)), r) in grid.iter().zip(&results) {
        t.row(&[
            pairs.to_string(),
            plan_name.to_string(),
            fmt_f(r.aggregate_bps / 1e6, 2),
            fmt_f(r.per_pair_bps / 1e6, 3),
            fmt_f(r.timeouts_per_s, 1),
            r.retry_drops.to_string(),
        ]);
    }

    let per_pair = |pairs: usize, plan: &str| -> f64 {
        grid.iter()
            .zip(&results)
            .find(|((d, (p, _)), _)| *d == pairs && *p == plan)
            .map(|(_, r)| r.per_pair_bps)
            .unwrap()
    };
    let solo = per_pair(densities[0], "co-channel");
    let dense = per_pair(*densities.last().unwrap(), "co-channel");
    let dense_spread = per_pair(*densities.last().unwrap(), "1/6/11 spread");

    // The snapshot comes from a recorder-attached re-run of the densest
    // co-channel point — the representative congested case — with the same
    // seed that point used in the sweep, so counters line up with the row.
    let metrics = opts.recording().then(|| {
        let idx = grid
            .iter()
            .position(|&(d, (name, _))| d == *densities.last().unwrap() && name == "co-channel")
            .expect("densest co-channel point is in the grid");
        let (_, snap) = run_density_traced(
            *densities.last().unwrap(),
            ChannelPlan::AllCochannel,
            RateAdaptation::SnrBased,
            1000,
            horizon,
            0xE2 + idx as u64,
            Some(opts.telemetry_config()),
        );
        snapshot_json(&snap.expect("recorder was attached"), opts.trace)
    });

    ExperimentOutput {
        id: "e2",
        title: "2.4 GHz device-density sweep (environment-layer congestion claim)",
        tables: vec![(
            format!(
                "saturated 1000-byte senders, {:.0}s horizon, receivers clustered:",
                horizon.as_secs_f64()
            ),
            t,
        )],
        notes: vec![
            format!(
                "per-pair goodput collapses {:.0}x from 1 to {} co-channel pairs",
                solo / dense.max(1.0),
                densities.last().unwrap()
            ),
            format!(
                "spreading over channels 1/6/11 recovers {:.1}x per-pair goodput at the highest density",
                dense_spread / dense.max(1.0)
            ),
        ],
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aroma_net::Rate;

    #[test]
    fn e2_shape_density_collapse() {
        let solo = run_density(
            1,
            ChannelPlan::AllCochannel,
            RateAdaptation::SnrBased,
            1000,
            secs(1),
            1,
        );
        let dense = run_density(
            8,
            ChannelPlan::AllCochannel,
            RateAdaptation::SnrBased,
            1000,
            secs(1),
            1,
        );
        assert!(dense.per_pair_bps < solo.per_pair_bps / 4.0);
        assert!(dense.timeouts_per_s > solo.timeouts_per_s);
    }

    #[test]
    fn e2_metrics_snapshot_rides_along() {
        let out = e2_with(RunOpts {
            quick: true,
            metrics: true,
            ..RunOpts::default()
        });
        let rendered = out.render();
        assert!(rendered.contains("metrics: {"));
        assert!(rendered.contains("net.mac.tx_attempts"));
        assert!(rendered.contains("\"profile\""));
        assert!(
            rendered.contains("\"trace_len\""),
            "no trace embedded without --trace"
        );
        // Default runs carry no snapshot and render without the block.
        assert!(e2(true).metrics.is_none());
    }

    #[test]
    fn e2_shape_channel_spread_helps() {
        let co = run_density(
            6,
            ChannelPlan::AllCochannel,
            RateAdaptation::SnrBased,
            1000,
            secs(1),
            2,
        );
        let spread = run_density(
            6,
            ChannelPlan::OrthogonalSpread,
            RateAdaptation::SnrBased,
            1000,
            secs(1),
            2,
        );
        assert!(
            spread.aggregate_bps > 1.5 * co.aggregate_bps,
            "spread {} vs co {}",
            spread.aggregate_bps,
            co.aggregate_bps
        );
    }

    #[test]
    fn ablation_fixed_rate_underperforms_adaptive_on_clean_links() {
        // With one clean pair, fixed 1 Mbps leaves most capacity unused.
        let fixed1 = run_density(
            1,
            ChannelPlan::AllCochannel,
            RateAdaptation::Fixed(Rate::R1),
            1000,
            secs(1),
            3,
        );
        let adaptive = run_density(
            1,
            ChannelPlan::AllCochannel,
            RateAdaptation::SnrBased,
            1000,
            secs(1),
            3,
        );
        assert!(adaptive.aggregate_bps > 3.0 * fixed1.aggregate_bps);
    }
}
