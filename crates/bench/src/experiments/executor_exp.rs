//! E7 — "a single-threaded system that does not allow a user to abort a
//! task causes needless frustration and will ultimately alter the patterns
//! of usage."
//!
//! The same workload (a long background job plus interactive taps and an
//! abort attempt) under run-to-completion vs cooperative scheduling.

use super::ExperimentOutput;
use aroma_appliance::executor::{run, AbortRequest, Policy, TaskKind, TaskSpec, Workload};
use aroma_sim::report::{fmt_f, Table};
use aroma_sim::{SimDuration, SimTime};

/// Outcome of one executor run.
#[derive(Clone, Copy, Debug)]
pub struct ExecOutcome {
    /// Best interactive response, seconds.
    pub min_response_s: f64,
    /// Mean interactive response, seconds.
    pub mean_response_s: f64,
    /// Worst interactive response, seconds.
    pub max_response_s: f64,
    /// Abort latency, seconds (NaN if no abort landed).
    pub abort_latency_s: f64,
    /// Frustration events (responses beyond patience).
    pub frustrations: usize,
}

/// Run the canonical workload: a background job of `background_s` seconds,
/// taps every 2 s, and an abort at t = 1 s, under `policy`.
pub fn run_canonical(policy: Policy, background_s: u64, patience_s: f64) -> ExecOutcome {
    let mut w = Workload::background_plus_taps(
        SimDuration::from_secs(background_s),
        SimDuration::from_secs(2),
        8,
        SimDuration::from_millis(100),
        SimTime::ZERO + SimDuration::from_secs(1),
    );
    // A second background job queued behind the first, so the abort has a
    // victim under both policies.
    w.tasks.push(TaskSpec {
        arrival: SimTime::ZERO,
        work: SimDuration::from_secs(background_s),
        kind: TaskKind::Background,
    });
    w.aborts.push(AbortRequest {
        at: SimTime::ZERO + SimDuration::from_secs(2),
    });
    let (report, frustrations) = run(policy, &w, SimDuration::from_secs_f64(patience_s));
    ExecOutcome {
        min_response_s: report.interactive_latency.min().unwrap_or(0.0),
        mean_response_s: report.interactive_latency.mean(),
        max_response_s: report.interactive_latency.max().unwrap_or(0.0),
        abort_latency_s: if report.abort_latency.count() > 0 {
            report.abort_latency.mean()
        } else {
            f64::NAN
        },
        frustrations,
    }
}

/// Run E7.
pub fn e7() -> ExperimentOutput {
    let policies = [
        ("single-threaded", Policy::SingleThreaded),
        (
            "cooperative 50 ms",
            Policy::Cooperative {
                quantum: SimDuration::from_millis(50),
            },
        ),
        (
            "cooperative 500 ms",
            Policy::Cooperative {
                quantum: SimDuration::from_millis(500),
            },
        ),
    ];
    let backgrounds = [5u64, 30, 120];
    let mut t = Table::new(&[
        "policy",
        "background s",
        "min resp s",
        "mean resp s",
        "max resp s",
        "abort latency s",
        "frustrations",
    ]);
    for (pname, policy) in policies {
        for &bg in &backgrounds {
            let o = run_canonical(policy, bg, 2.0);
            t.row(&[
                pname.to_string(),
                bg.to_string(),
                fmt_f(o.min_response_s, 2),
                fmt_f(o.mean_response_s, 2),
                fmt_f(o.max_response_s, 2),
                if o.abort_latency_s.is_nan() {
                    "never".into()
                } else {
                    fmt_f(o.abort_latency_s, 2)
                },
                o.frustrations.to_string(),
            ]);
        }
    }
    ExperimentOutput {
        id: "e7",
        title: "executor responsiveness & abortability (resource layer, Exe)",
        tables: vec![(
            "8 interactive taps during background work; abort at t=2 s; patience 2 s:".into(),
            t,
        )],
        notes: vec![
            "single-threaded response and abort latency grow with the background job — unbounded frustration".into(),
            "cooperative scheduling bounds both by the quantum regardless of job length".into(),
        ],
        metrics: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e7_shape_single_threaded_scales_with_job() {
        let short = run_canonical(Policy::SingleThreaded, 5, 2.0);
        let long = run_canonical(Policy::SingleThreaded, 120, 2.0);
        assert!(long.max_response_s > 10.0 * short.max_response_s.max(0.1));
        assert!(long.frustrations >= short.frustrations);
    }

    #[test]
    fn e7_shape_cooperative_is_flat() {
        let q = Policy::Cooperative {
            quantum: SimDuration::from_millis(50),
        };
        let short = run_canonical(q, 5, 2.0);
        let long = run_canonical(q, 120, 2.0);
        assert!(long.mean_response_s < 1.0, "{}", long.mean_response_s);
        assert!(long.frustrations == 0 && short.frustrations == 0);
        assert!(long.abort_latency_s <= 0.06);
    }

    #[test]
    fn e7_reports_a_real_minimum_response() {
        // Guards the Summary::default fix: a zeroed-min Summary made every
        // policy's best response read as 0.00 s.
        let o = run_canonical(Policy::SingleThreaded, 30, 2.0);
        assert!(
            o.min_response_s > 0.0,
            "minimum response must come from a recorded sample, got {}",
            o.min_response_s
        );
        assert!(o.min_response_s <= o.mean_response_s);
    }

    #[test]
    fn e7_shape_quantum_matters() {
        let fine = run_canonical(
            Policy::Cooperative {
                quantum: SimDuration::from_millis(50),
            },
            30,
            2.0,
        );
        let coarse = run_canonical(
            Policy::Cooperative {
                quantum: SimDuration::from_millis(500),
            },
            30,
            2.0,
        );
        assert!(coarse.mean_response_s >= fine.mean_response_s);
    }
}
