//! E9 (extension) — chaos walkthrough: the smart-projector scenario under a
//! scripted fault storm.
//!
//! The paper's hidden-dependency analysis asks what happens when a layer the
//! user never sees fails underneath a working application. Here the full
//! scenario — federated registrar pair, smart projector, presenter laptop,
//! plus a polling lookup client — runs while a deterministic
//! [`FaultSchedule`] kills the primary registrar process, crash-restarts the
//! projector adapter mid-presentation, and opens a burst-loss window on the
//! channel. Every client is self-healing, so the interesting output is not
//! *whether* the scenario survives but *how long* each layer takes to
//! recover, measured from the telemetry trace:
//!
//! * **abstract / discovery** — registrar process kill → first successful
//!   `lookup_live` reply (served by the standby after failover).
//! * **abstract / sessions** — adapter crash → first post-crash session
//!   acquire. The restarted adapter mints tokens from a fresh incarnation
//!   stream, so the presenter's old tokens are refused (not hijacked) and it
//!   re-acquires.
//! * **resource / vnc** — burst-loss onset → first completed update
//!   delivery after the burst clears (the viewer may also drop to coarse
//!   encoding in between; quality restoration is reported separately).
//!
//! Everything is scripted and seeded, so the report is bit-reproducible:
//! same seed + same schedule ⇒ identical JSON.

use super::{ExperimentOutput, RunOpts};
use aroma_discovery::apps::{ClientApp, RegistrarApp};
use aroma_discovery::codec::Template;
use aroma_env::space::Point;
use aroma_net::{MacConfig, Network, NodeConfig, NodeId};
use aroma_sim::faults::FaultSchedule;
use aroma_sim::report::{fmt_f, Table};
use aroma_sim::telemetry::{Snapshot, TelemetryConfig, TraceEvent};
use aroma_sim::SimDuration;
use aroma_vnc::SlideDeck;
use smart_projector::laptop::{PresenterLaptopApp, PresenterScript};
use smart_projector::session::SessionPolicy;
use smart_projector::SmartProjectorApp;

use crate::scenarios::clean_env;

/// The scripted storm, in seconds of simulated time. Constants rather than
/// parameters: E9 is a *walkthrough* of one reproducible storm, not a sweep.
pub mod storm {
    /// Primary registrar process killed (soft state lost)…
    pub const REGISTRAR_KILL_S: u64 = 10;
    /// …and restarted much later — recovery must come from the standby.
    pub const REGISTRAR_RESTART_S: u64 = 38;
    /// Projector adapter loses power mid-presentation…
    pub const PROJECTOR_CRASH_S: u64 = 18;
    /// …and reboots two seconds later with a fresh token incarnation.
    pub const PROJECTOR_RESTART_S: u64 = 20;
    /// Channel burst-loss window start (e.g. a microwave two rooms over).
    pub const BURST_START_S: u64 = 28;
    /// Channel burst-loss window end.
    pub const BURST_END_S: u64 = 31;
    /// Frame loss probability inside the window.
    pub const BURST_LOSS: f64 = 0.85;
    /// Total horizon: long enough for every layer to recover.
    pub const HORIZON_S: u64 = 42;
    /// Per-layer recovery deadline, measured from fault onset.
    pub const DEADLINE_S: u64 = 10;
}

/// One per-layer recovery measurement extracted from the trace.
#[derive(Clone, Debug)]
pub struct Recovery {
    /// LPC layer label ("abstract", "resource", …).
    pub layer: &'static str,
    /// The injected fault.
    pub fault: &'static str,
    /// Fault onset, seconds.
    pub injected_s: f64,
    /// First healthy event at/after the qualifying instant, seconds.
    pub recovered_s: Option<f64>,
    /// Deadline (from onset) this recovery is held to, seconds.
    pub deadline_s: f64,
}

impl Recovery {
    /// Time-to-recover, seconds.
    pub fn ttr_s(&self) -> Option<f64> {
        self.recovered_s.map(|r| r - self.injected_s)
    }

    /// Did recovery happen inside the deadline?
    pub fn met(&self) -> bool {
        self.ttr_s().is_some_and(|t| t <= self.deadline_s)
    }
}

/// Everything one chaos run yields: the recovery rows, the self-healing
/// end-state counters, and the raw telemetry snapshot.
pub struct ChaosRun {
    /// Per-layer recovery measurements, report order.
    pub recoveries: Vec<Recovery>,
    /// Presenter re-acquisitions after the adapter restart.
    pub reacquisitions: u32,
    /// Adapter incarnation after the storm (1 = restarted once).
    pub incarnation: u32,
    /// Lookup-client failovers to the standby registrar.
    pub client_rediscoveries: u64,
    /// Viewer drops to coarse encoding during the burst.
    pub degradations: u64,
    /// Viewer restorations to full quality afterwards.
    pub quality_recoveries: u64,
    /// Session hijacks across the whole storm (must be zero).
    pub hijacks: u64,
    /// Commands the presenter landed successfully.
    pub commands_ok: u32,
    /// The run's telemetry snapshot (metrics + full trace).
    pub snapshot: Snapshot,
}

const S: u64 = 1_000_000_000;

/// First event named `name` at or after `from_nanos` that satisfies `pred`,
/// as seconds.
fn first_after(
    trace: &[TraceEvent],
    name: &str,
    from_nanos: u64,
    pred: impl Fn(&TraceEvent) -> bool,
) -> Option<f64> {
    trace
        .iter()
        .find(|e| e.name == name && e.t_nanos >= from_nanos && pred(e))
        .map(|e| e.t_nanos as f64 / S as f64)
}

/// Run the chaos walkthrough once at `seed`.
pub fn chaos_run(seed: u64) -> ChaosRun {
    let schedule = FaultSchedule::builder(seed)
        .process_kill_restart(
            storm::REGISTRAR_KILL_S * S,
            storm::REGISTRAR_RESTART_S * S,
            0, // primary registrar, added first below
        )
        .crash_restart(
            storm::PROJECTOR_CRASH_S * S,
            storm::PROJECTOR_RESTART_S * S,
            2, // projector adapter
        )
        .burst_loss(storm::BURST_START_S * S, storm::BURST_END_S * S, storm::BURST_LOSS)
        .build();

    let mut net = Network::new(clean_env(), MacConfig::default(), seed);
    // The default 4096-event ring is sized for short traces; 42 s of MAC
    // state transitions alone is ~7k events, and a dropped window would eat
    // the very recovery timestamps this experiment reports.
    net.attach_telemetry(TelemetryConfig {
        ring_capacity: 32_768,
    });
    net.attach_faults(&schedule);

    // Federated registrar pair: the standby mirrors every registration, so
    // failover needs no re-registration round to serve live lookups.
    let primary = net.add_node(
        NodeConfig::at(Point::new(0.0, 0.0)),
        Box::new(RegistrarApp::new(SimDuration::from_secs(30)).federated_with(NodeId(1))),
    );
    let standby = net.add_node(
        NodeConfig::at(Point::new(0.5, 0.5)),
        Box::new(RegistrarApp::new(SimDuration::from_secs(30)).federated_with(NodeId(0))),
    );
    let projector = net.add_node(
        NodeConfig::at(Point::new(3.0, 0.0)),
        Box::new(SmartProjectorApp::new(
            320,
            240,
            SessionPolicy::ManualRelease,
            "A-101",
        )),
    );
    let laptop = net.add_node(
        NodeConfig::at(Point::new(1.0, 3.0)),
        Box::new(PresenterLaptopApp::new(
            PresenterScript {
                present_for: SimDuration::from_secs(storm::HORIZON_S),
                ..Default::default()
            },
            320,
            240,
            Box::new(SlideDeck::new(8.0)),
        )),
    );
    let client = net.add_node(
        NodeConfig::at(Point::new(2.0, 2.0)),
        Box::new(ClientApp::new(Template::of_kind("projector/display")).polling()),
    );
    debug_assert_eq!((primary, projector), (NodeId(0), NodeId(2)));
    // The building cable the mirrors travel over — without it the standby
    // never hears about the primary's registrations.
    net.add_wired_link(primary, standby, SimDuration::from_millis(1), 10_000_000);
    // The session managers record into their own (non-perturbing) recorders;
    // their traces are absorbed into the network snapshot after the run so
    // `session.acquire` carries the session-layer recovery timestamp.
    {
        let proj = net.app_as_mut::<SmartProjectorApp>(projector).unwrap();
        proj.projection_sessions
            .attach_telemetry(TelemetryConfig::default());
        proj.control_sessions
            .attach_telemetry(TelemetryConfig::default());
    }

    net.run_for(SimDuration::from_secs(storm::HORIZON_S));

    let mut snapshot = net.telemetry_snapshot().expect("telemetry attached");
    {
        let proj = net.app_as::<SmartProjectorApp>(projector).unwrap();
        for s in [
            proj.projection_sessions.telemetry_snapshot(),
            proj.control_sessions.telemetry_snapshot(),
        ]
        .into_iter()
        .flatten()
        {
            snapshot.absorb(s);
        }
    }
    let trace = &snapshot.trace;
    let recoveries = vec![
        Recovery {
            layer: "abstract",
            fault: "registrar process kill -> standby failover",
            injected_s: storm::REGISTRAR_KILL_S as f64,
            // First lookup reply carrying a live registration: a successful
            // `lookup_live` served after the primary died.
            recovered_s: first_after(trace, "lookup.serve", storm::REGISTRAR_KILL_S * S, |e| {
                e.a > 0
            }),
            deadline_s: storm::DEADLINE_S as f64,
        },
        Recovery {
            layer: "abstract",
            fault: "adapter crash/restart -> session re-acquire",
            injected_s: storm::PROJECTOR_CRASH_S as f64,
            recovered_s: first_after(trace, "session.acquire", storm::PROJECTOR_CRASH_S * S, |_| {
                true
            }),
            deadline_s: storm::DEADLINE_S as f64,
        },
        Recovery {
            layer: "resource",
            fault: "channel burst loss -> update delivery",
            injected_s: storm::BURST_START_S as f64,
            // Delivery during the burst is luck; recovered means a completed
            // update once the channel cleared.
            recovered_s: first_after(trace, "vnc.update.deliver", storm::BURST_END_S * S, |_| {
                true
            }),
            deadline_s: storm::DEADLINE_S as f64,
        },
    ];

    let lap = net.app_as::<PresenterLaptopApp>(laptop).unwrap();
    let (reacquisitions, commands_ok) = (lap.reacquisitions, lap.commands_ok);
    let proj = net.app_as::<SmartProjectorApp>(projector).unwrap();
    let (incarnation, hijacks) = (
        proj.incarnation,
        proj.projection_sessions.stats.hijacks + proj.control_sessions.stats.hijacks,
    );
    let cli = net.app_as::<ClientApp>(client).unwrap();
    let _ = standby;
    ChaosRun {
        recoveries,
        reacquisitions,
        incarnation,
        client_rediscoveries: cli.rediscoveries,
        degradations: snapshot.counter("vnc.degrade"),
        quality_recoveries: snapshot.counter("vnc.recover"),
        hijacks,
        commands_ok,
        snapshot,
    }
}

/// Run E9. The walkthrough is a single fixed-storm run, so `quick` changes
/// nothing — the test suite executes exactly what `repro` reports. The seed
/// defaults to `0xE9` and can be overridden with `repro --seed N e9`.
pub fn e9_with(opts: RunOpts) -> ExperimentOutput {
    let seed = opts.seed.unwrap_or(0xE9);
    let run = chaos_run(seed);

    let mut t = Table::new(&["layer", "fault", "injected s", "recovered s", "ttr s", "ok"]);
    for r in &run.recoveries {
        t.row(&[
            r.layer.into(),
            r.fault.into(),
            fmt_f(r.injected_s, 1),
            r.recovered_s.map_or("-".into(), |v| fmt_f(v, 2)),
            r.ttr_s().map_or("-".into(), |v| fmt_f(v, 2)),
            if r.met() { "yes".into() } else { "NO".into() },
        ]);
    }
    let mut e = Table::new(&["counter", "value"]);
    for (name, v) in [
        ("presenter re-acquisitions", run.reacquisitions as u64),
        ("adapter incarnation", run.incarnation as u64),
        ("client registrar failovers", run.client_rediscoveries),
        ("vnc degradations (coarse)", run.degradations),
        ("vnc quality recoveries", run.quality_recoveries),
        ("commands landed", run.commands_ok as u64),
        ("session hijacks", run.hijacks),
    ] {
        e.row(&[name.into(), v.to_string()]);
    }

    let all_met = run.recoveries.iter().all(Recovery::met);
    let notes = vec![
        if all_met {
            format!(
                "chaos recovery: all layers within deadline ({} s per fault)",
                storm::DEADLINE_S
            )
        } else {
            "chaos recovery: DEADLINE MISSED — see table".into()
        },
        format!(
            "session security: {} hijacks across the storm; the restarted adapter mints incarnation-{} tokens, pre-crash tokens are refused",
            run.hijacks, run.incarnation
        ),
        "faults off, same seed: the run is byte-identical to the fault-free scenario — the plane draws from its own RNG stream".into(),
    ];
    ExperimentOutput {
        id: "e9",
        title: "chaos walkthrough: scripted fault storm vs self-healing clients (extension)",
        tables: vec![
            (
                format!(
                    "storm at seed {seed:#x}: registrar kill @{}s, adapter crash @{}-{}s, {:.0}% burst loss @{}-{}s:",
                    storm::REGISTRAR_KILL_S,
                    storm::PROJECTOR_CRASH_S,
                    storm::PROJECTOR_RESTART_S,
                    storm::BURST_LOSS * 100.0,
                    storm::BURST_START_S,
                    storm::BURST_END_S
                ),
                t,
            ),
            ("self-healing end-state:".into(), e),
        ],
        notes,
        metrics: opts.recording().then(|| {
            aroma_sim::telemetry::snapshot_json(&run.snapshot, opts.trace)
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e9_every_layer_recovers_within_deadline_with_zero_hijacks() {
        let run = chaos_run(0xE9);
        for r in &run.recoveries {
            assert!(
                r.met(),
                "{} [{}] failed to recover in time: {:?}",
                r.fault,
                r.layer,
                r.ttr_s()
            );
        }
        assert_eq!(run.hijacks, 0, "a crash must never enable a hijack");
        assert_eq!(run.incarnation, 1, "adapter restarted exactly once");
        assert!(run.reacquisitions >= 1, "presenter never re-acquired");
        assert!(
            run.client_rediscoveries >= 1,
            "lookup client never failed over to the standby"
        );
    }

    #[test]
    fn e9_report_is_deterministic() {
        let a = e9_with(RunOpts::default());
        let b = e9_with(RunOpts::default());
        assert_eq!(a.json().render(), b.json().render());
    }
}
