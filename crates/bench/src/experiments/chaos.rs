//! E9 (extension) — chaos walkthrough: the smart-projector scenario under a
//! scripted fault storm.
//!
//! The paper's hidden-dependency analysis asks what happens when a layer the
//! user never sees fails underneath a working application. Here the full
//! scenario — federated registrar pair, smart projector, presenter laptop,
//! plus a polling lookup client — runs while a deterministic
//! [`FaultSchedule`] kills the primary registrar process, crash-restarts the
//! projector adapter mid-presentation, and opens a burst-loss window on the
//! channel. Every client is self-healing, so the interesting output is not
//! *whether* the scenario survives but *how long* each layer takes to
//! recover, measured from the telemetry trace:
//!
//! * **abstract / discovery** — registrar process kill → first successful
//!   `lookup_live` reply (served by the standby after failover).
//! * **abstract / sessions** — adapter crash → first post-crash session
//!   acquire. The restarted adapter mints tokens from a fresh incarnation
//!   stream, so the presenter's old tokens are refused (not hijacked) and it
//!   re-acquires.
//! * **resource / vnc** — burst-loss onset → first completed update
//!   delivery after the burst clears (the viewer may also drop to coarse
//!   encoding in between; quality restoration is reported separately).
//!
//! Everything is scripted and seeded, so the report is bit-reproducible:
//! same seed + same schedule ⇒ identical JSON.

use super::{ExperimentOutput, RunOpts};
use aroma_discovery::apps::{ClientApp, ProviderApp, RegistrarApp};
use aroma_discovery::codec::{Msg, ServiceId, ServiceItem, Template};
use aroma_discovery::{ClusterConfig, ReplicatedRegistrarApp};
use aroma_env::space::Point;
use aroma_net::{Address, MacConfig, NetApp, NetCtx, Network, NodeConfig, NodeId};
use aroma_sim::faults::FaultSchedule;
use aroma_sim::report::{fmt_f, Table};
use aroma_sim::telemetry::{Snapshot, TelemetryConfig, TraceEvent};
use aroma_sim::SimDuration;
use aroma_vnc::SlideDeck;
use bytes::Bytes;
use smart_projector::laptop::{PresenterLaptopApp, PresenterScript};
use smart_projector::session::SessionPolicy;
use smart_projector::SmartProjectorApp;

use crate::scenarios::clean_env;

/// The scripted storm, in seconds of simulated time. Constants rather than
/// parameters: E9 is a *walkthrough* of one reproducible storm, not a sweep.
pub mod storm {
    /// Primary registrar process killed (soft state lost)…
    pub const REGISTRAR_KILL_S: u64 = 10;
    /// …and restarted much later — recovery must come from the standby.
    pub const REGISTRAR_RESTART_S: u64 = 38;
    /// Projector adapter loses power mid-presentation…
    pub const PROJECTOR_CRASH_S: u64 = 18;
    /// …and reboots two seconds later with a fresh token incarnation.
    pub const PROJECTOR_RESTART_S: u64 = 20;
    /// Channel burst-loss window start (e.g. a microwave two rooms over).
    pub const BURST_START_S: u64 = 28;
    /// Channel burst-loss window end.
    pub const BURST_END_S: u64 = 31;
    /// Frame loss probability inside the window.
    pub const BURST_LOSS: f64 = 0.85;
    /// Total horizon: long enough for every layer to recover.
    pub const HORIZON_S: u64 = 42;
    /// Per-layer recovery deadline, measured from fault onset.
    pub const DEADLINE_S: u64 = 10;
}

/// One per-layer recovery measurement extracted from the trace.
#[derive(Clone, Debug)]
pub struct Recovery {
    /// LPC layer label ("abstract", "resource", …).
    pub layer: &'static str,
    /// The injected fault.
    pub fault: &'static str,
    /// Fault onset, seconds.
    pub injected_s: f64,
    /// First healthy event at/after the qualifying instant, seconds.
    pub recovered_s: Option<f64>,
    /// Deadline (from onset) this recovery is held to, seconds.
    pub deadline_s: f64,
}

impl Recovery {
    /// Time-to-recover, seconds.
    pub fn ttr_s(&self) -> Option<f64> {
        self.recovered_s.map(|r| r - self.injected_s)
    }

    /// Did recovery happen inside the deadline?
    pub fn met(&self) -> bool {
        self.ttr_s().is_some_and(|t| t <= self.deadline_s)
    }
}

/// Everything one chaos run yields: the recovery rows, the self-healing
/// end-state counters, and the raw telemetry snapshot.
pub struct ChaosRun {
    /// Per-layer recovery measurements, report order.
    pub recoveries: Vec<Recovery>,
    /// Presenter re-acquisitions after the adapter restart.
    pub reacquisitions: u32,
    /// Adapter incarnation after the storm (1 = restarted once).
    pub incarnation: u32,
    /// Lookup-client failovers to the standby registrar.
    pub client_rediscoveries: u64,
    /// Viewer drops to coarse encoding during the burst.
    pub degradations: u64,
    /// Viewer restorations to full quality afterwards.
    pub quality_recoveries: u64,
    /// Session hijacks across the whole storm (must be zero).
    pub hijacks: u64,
    /// Commands the presenter landed successfully.
    pub commands_ok: u32,
    /// The run's telemetry snapshot (metrics + full trace).
    pub snapshot: Snapshot,
}

const S: u64 = 1_000_000_000;

/// First event named `name` at or after `from_nanos` that satisfies `pred`,
/// as seconds.
fn first_after(
    trace: &[TraceEvent],
    name: &str,
    from_nanos: u64,
    pred: impl Fn(&TraceEvent) -> bool,
) -> Option<f64> {
    trace
        .iter()
        .find(|e| e.name == name && e.t_nanos >= from_nanos && pred(e))
        .map(|e| e.t_nanos as f64 / S as f64)
}

/// Run the chaos walkthrough once at `seed`.
pub fn chaos_run(seed: u64) -> ChaosRun {
    let schedule = FaultSchedule::builder(seed)
        .process_kill_restart(
            storm::REGISTRAR_KILL_S * S,
            storm::REGISTRAR_RESTART_S * S,
            0, // primary registrar, added first below
        )
        .crash_restart(
            storm::PROJECTOR_CRASH_S * S,
            storm::PROJECTOR_RESTART_S * S,
            2, // projector adapter
        )
        .burst_loss(storm::BURST_START_S * S, storm::BURST_END_S * S, storm::BURST_LOSS)
        .build();

    let mut net = Network::new(clean_env(), MacConfig::default(), seed);
    // The default 4096-event ring is sized for short traces; 42 s of MAC
    // state transitions alone is ~7k events, and a dropped window would eat
    // the very recovery timestamps this experiment reports.
    net.attach_telemetry(TelemetryConfig {
        ring_capacity: 32_768,
    });
    net.attach_faults(&schedule);

    // Federated registrar pair: the standby mirrors every registration, so
    // failover needs no re-registration round to serve live lookups.
    let primary = net.add_node(
        NodeConfig::at(Point::new(0.0, 0.0)),
        Box::new(RegistrarApp::new(SimDuration::from_secs(30)).federated_with(NodeId(1))),
    );
    let standby = net.add_node(
        NodeConfig::at(Point::new(0.5, 0.5)),
        Box::new(RegistrarApp::new(SimDuration::from_secs(30)).federated_with(NodeId(0))),
    );
    let projector = net.add_node(
        NodeConfig::at(Point::new(3.0, 0.0)),
        Box::new(SmartProjectorApp::new(
            320,
            240,
            SessionPolicy::ManualRelease,
            "A-101",
        )),
    );
    let laptop = net.add_node(
        NodeConfig::at(Point::new(1.0, 3.0)),
        Box::new(PresenterLaptopApp::new(
            PresenterScript {
                present_for: SimDuration::from_secs(storm::HORIZON_S),
                ..Default::default()
            },
            320,
            240,
            Box::new(SlideDeck::new(8.0)),
        )),
    );
    let client = net.add_node(
        NodeConfig::at(Point::new(2.0, 2.0)),
        Box::new(ClientApp::new(Template::of_kind("projector/display")).polling()),
    );
    debug_assert_eq!((primary, projector), (NodeId(0), NodeId(2)));
    // The building cable the mirrors travel over — without it the standby
    // never hears about the primary's registrations.
    net.add_wired_link(primary, standby, SimDuration::from_millis(1), 10_000_000);
    // The session managers record into their own (non-perturbing) recorders;
    // their traces are absorbed into the network snapshot after the run so
    // `session.acquire` carries the session-layer recovery timestamp.
    {
        let proj = net.app_as_mut::<SmartProjectorApp>(projector).unwrap();
        proj.projection_sessions
            .attach_telemetry(TelemetryConfig::default());
        proj.control_sessions
            .attach_telemetry(TelemetryConfig::default());
    }

    net.run_for(SimDuration::from_secs(storm::HORIZON_S));

    let mut snapshot = net.telemetry_snapshot().expect("telemetry attached");
    {
        let proj = net.app_as::<SmartProjectorApp>(projector).unwrap();
        for s in [
            proj.projection_sessions.telemetry_snapshot(),
            proj.control_sessions.telemetry_snapshot(),
        ]
        .into_iter()
        .flatten()
        {
            snapshot.absorb(s);
        }
    }
    let trace = &snapshot.trace;
    let recoveries = vec![
        Recovery {
            layer: "abstract",
            fault: "registrar process kill -> standby failover",
            injected_s: storm::REGISTRAR_KILL_S as f64,
            // First lookup reply carrying a live registration: a successful
            // `lookup_live` served after the primary died.
            recovered_s: first_after(trace, "lookup.serve", storm::REGISTRAR_KILL_S * S, |e| {
                e.a > 0
            }),
            deadline_s: storm::DEADLINE_S as f64,
        },
        Recovery {
            layer: "abstract",
            fault: "adapter crash/restart -> session re-acquire",
            injected_s: storm::PROJECTOR_CRASH_S as f64,
            recovered_s: first_after(trace, "session.acquire", storm::PROJECTOR_CRASH_S * S, |_| {
                true
            }),
            deadline_s: storm::DEADLINE_S as f64,
        },
        Recovery {
            layer: "resource",
            fault: "channel burst loss -> update delivery",
            injected_s: storm::BURST_START_S as f64,
            // Delivery during the burst is luck; recovered means a completed
            // update once the channel cleared.
            recovered_s: first_after(trace, "vnc.update.deliver", storm::BURST_END_S * S, |_| {
                true
            }),
            deadline_s: storm::DEADLINE_S as f64,
        },
    ];

    let lap = net.app_as::<PresenterLaptopApp>(laptop).unwrap();
    let (reacquisitions, commands_ok) = (lap.reacquisitions, lap.commands_ok);
    let proj = net.app_as::<SmartProjectorApp>(projector).unwrap();
    let (incarnation, hijacks) = (
        proj.incarnation,
        proj.projection_sessions.stats.hijacks + proj.control_sessions.stats.hijacks,
    );
    let cli = net.app_as::<ClientApp>(client).unwrap();
    let _ = standby;
    ChaosRun {
        recoveries,
        reacquisitions,
        incarnation,
        client_rediscoveries: cli.rediscoveries,
        degradations: snapshot.counter("vnc.degrade"),
        quality_recoveries: snapshot.counter("vnc.recover"),
        hijacks,
        commands_ok,
        snapshot,
    }
}

// ---------------------------------------------------------------------
// Registrar-churn storm: the PR 9 replicated registrar under fire.
// ---------------------------------------------------------------------

/// The second storm: a three-member replicated registrar cluster loses a
/// replica (which must later rejoin from a snapshot install), then loses
/// its primary mid-replication (which must fail over with zero stale
/// lookups), all while a pathological provider flaps its registration in
/// a tight loop (which the damper must absorb at the edge).
pub mod churn {
    /// Replica registrar (member 2) process-killed…
    pub const REPLICA_KILL_S: u64 = 4;
    /// …and restarted after the primary has folded + truncated past its
    /// log position, forcing a snapshot-install rejoin.
    pub const REPLICA_RESTART_S: u64 = 11;
    /// Primary registrar (member 0) process-killed mid-replication…
    pub const PRIMARY_KILL_S: u64 = 14;
    /// …and restarted long after the epoch has moved on.
    pub const PRIMARY_RESTART_S: u64 = 28;
    /// Flapping provider churn window start.
    pub const FLAP_FROM_S: u64 = 3;
    /// Flapping provider churn window end.
    pub const FLAP_UNTIL_S: u64 = 16;
    /// One flap half-cycle (register or unregister) every this many ms.
    pub const FLAP_PERIOD_MS: u64 = 400;
    /// Total horizon: long enough for the restarted primary to catch up.
    pub const HORIZON_S: u64 = 32;
    /// Failover deadline (primary kill → first served lookup), seconds.
    pub const DEADLINE_S: u64 = 10;
}

const TF_DISCOVER: u64 = 31;
const TF_FLAP: u64 = 32;

/// A pathological provider: once inside its churn window it registers and
/// withdraws its service every [`churn::FLAP_PERIOD_MS`], re-discovering
/// the active primary as failovers move it. The cluster's flap damper is
/// expected to suppress it — acked but neither logged nor replicated.
pub struct FlappingProviderApp {
    item: ServiceItem,
    registrar: Option<NodeId>,
    nonce: u64,
    registered: bool,
    /// Register/unregister halves sent into the churn window.
    pub ops_sent: u64,
}

impl FlappingProviderApp {
    /// A flapper exporting `item`.
    pub fn new(item: ServiceItem) -> Self {
        FlappingProviderApp { item, registrar: None, nonce: 0, registered: false, ops_sent: 0 }
    }

    fn discover(&mut self, ctx: &mut NetCtx<'_>) {
        self.nonce = ctx.rng().next_u64_raw();
        ctx.send(Address::Broadcast, Msg::DiscoverReq { nonce: self.nonce }.encode());
        ctx.set_timer(SimDuration::from_millis(500), TF_DISCOVER);
    }
}

impl NetApp for FlappingProviderApp {
    fn on_start(&mut self, ctx: &mut NetCtx<'_>) {
        self.item.provider = ctx.node().0;
        self.discover(ctx);
        ctx.set_timer(SimDuration::from_secs(churn::FLAP_FROM_S), TF_FLAP);
    }

    fn on_packet(&mut self, ctx: &mut NetCtx<'_>, from: NodeId, payload: &Bytes) {
        let _ = ctx;
        if let Ok(Msg::DiscoverResp { nonce }) = Msg::decode(payload.clone()) {
            if nonce == self.nonce {
                // Only the active primary answers discovery, so following
                // the latest responder follows the failovers.
                self.registrar = Some(from);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut NetCtx<'_>, token: u64) {
        let in_window = ctx.now().as_nanos() < churn::FLAP_UNTIL_S * S;
        match token {
            TF_DISCOVER if in_window => self.discover(ctx),
            TF_FLAP if in_window => {
                if let Some(reg) = self.registrar {
                    let msg = if self.registered {
                        Msg::Unregister { id: self.item.id }
                    } else {
                        Msg::Register { item: self.item.clone(), lease_ms: 2_000 }
                    };
                    self.registered = !self.registered;
                    self.ops_sent += 1;
                    ctx.send(Address::Node(reg), msg.encode());
                }
                ctx.set_timer(SimDuration::from_millis(churn::FLAP_PERIOD_MS), TF_FLAP);
            }
            _ => {}
        }
    }
}

/// Everything one churn-storm run yields.
pub struct ChurnRun {
    /// Primary kill → first post-kill served lookup (the failover TTR).
    pub failover: Recovery,
    /// Stale rows across every served lookup (sum of `lookup.serve`
    /// b-fields) — the headline must be zero.
    pub stale_rows: i64,
    /// Lookups the cluster served over the whole storm.
    pub lookups_served: u64,
    /// `disc.repl.epoch_bumps` across all members.
    pub epoch_bumps: u64,
    /// `disc.repl.snapshots_taken` across all members.
    pub snapshots_taken: u64,
    /// `disc.repl.snapshot_installs_rx` across all members.
    pub snapshot_installs: u64,
    /// Durable restores across all members (the two scripted restarts).
    pub restores: u64,
    /// Flap operations absorbed at the primary's edge.
    pub flap_absorbed: u64,
    /// Register/unregister halves the flapper actually sent.
    pub flapper_ops: u64,
    /// Lease-table rows `(id, expires_nanos)` per registrar at the end —
    /// convergence means all three agree.
    pub tables: Vec<Vec<(u64, u64)>>,
    /// The run's telemetry snapshot.
    pub snapshot: Snapshot,
}

/// Run the registrar-churn storm once at `seed`.
pub fn churn_run(seed: u64) -> ChurnRun {
    // `try_build` (not `build`): the storm script is exactly the kind of
    // hand-written schedule the overlap check exists for.
    let schedule = FaultSchedule::builder(seed ^ 0xC0)
        .process_kill_restart(churn::REPLICA_KILL_S * S, churn::REPLICA_RESTART_S * S, 2)
        .process_kill_restart(churn::PRIMARY_KILL_S * S, churn::PRIMARY_RESTART_S * S, 0)
        .try_build()
        .expect("churn storm intervals are disjoint per node");

    let mut net = Network::new(clean_env(), MacConfig::default(), seed);
    net.attach_telemetry(TelemetryConfig { ring_capacity: 32_768 });
    net.attach_faults(&schedule);

    // Snapshot every 4 applied entries, so the replica's downtime is
    // enough for the primary to truncate past it.
    let ccfg = ClusterConfig { snapshot_every: 4, ..ClusterConfig::of(vec![0, 1, 2]) };
    let reg_pts = [Point::new(0.0, 0.0), Point::new(0.5, 0.5), Point::new(0.0, 1.0)];
    let regs: Vec<NodeId> = reg_pts
        .iter()
        .map(|p| net.add_node(NodeConfig::at(*p), Box::new(ReplicatedRegistrarApp::new(ccfg.clone()))))
        .collect();
    for i in 0..regs.len() {
        for j in (i + 1)..regs.len() {
            net.add_wired_link(regs[i], regs[j], SimDuration::from_millis(1), 10_000_000);
        }
    }
    let item = |id: u64, kind: &str| ServiceItem {
        id: ServiceId(id),
        kind: kind.into(),
        attributes: Vec::new(),
        provider: 0, // filled in by each app's on_start
        proxy: Bytes::from_static(b"proxy"),
    };
    // Two stable providers: their leases must ride out every fault.
    net.add_node(
        NodeConfig::at(Point::new(3.0, 0.0)),
        Box::new(ProviderApp::new(item(1, "projector/display"), 8_000)),
    );
    net.add_node(
        NodeConfig::at(Point::new(0.0, 3.0)),
        Box::new(ProviderApp::new(item(2, "projector/display"), 8_000)),
    );
    // One flapper on its own service kind, so the polling client's lookups
    // measure the stable services.
    let flapper = net.add_node(
        NodeConfig::at(Point::new(3.0, 3.0)),
        Box::new(FlappingProviderApp::new(item(3, "printer/laser"))),
    );
    let _client = net.add_node(
        NodeConfig::at(Point::new(2.0, 2.0)),
        Box::new(ClientApp::new(Template::of_kind("projector/display")).polling()),
    );

    net.run_for(SimDuration::from_secs(churn::HORIZON_S));

    let snapshot = net.telemetry_snapshot().expect("telemetry attached");
    let stale_rows: i64 =
        snapshot.trace.iter().filter(|e| e.name == "lookup.serve").map(|e| e.b).sum();
    let failover = Recovery {
        layer: "abstract",
        fault: "replicated primary kill -> epoch-1 failover",
        injected_s: churn::PRIMARY_KILL_S as f64,
        recovered_s: first_after(&snapshot.trace, "lookup.serve", churn::PRIMARY_KILL_S * S, |e| {
            e.a > 0
        }),
        deadline_s: churn::DEADLINE_S as f64,
    };
    let mut lookups_served = 0;
    let mut restores = 0;
    let mut tables = Vec::new();
    for &r in &regs {
        let app = net.app_as::<ReplicatedRegistrarApp>(r).unwrap();
        lookups_served += app.lookups_served;
        restores += app.restores;
        tables.push(
            app.replica()
                .map(|n| {
                    n.table()
                        .entries()
                        .into_iter()
                        .map(|(i, e)| (i.id.0, e.as_nanos()))
                        .collect()
                })
                .unwrap_or_default(),
        );
    }
    let flapper_ops = net.app_as::<FlappingProviderApp>(flapper).unwrap().ops_sent;
    ChurnRun {
        failover,
        stale_rows,
        lookups_served,
        epoch_bumps: snapshot.counter("disc.repl.epoch_bumps"),
        snapshots_taken: snapshot.counter("disc.repl.snapshots_taken"),
        snapshot_installs: snapshot.counter("disc.repl.snapshot_installs_rx"),
        restores,
        flap_absorbed: snapshot.counter("disc.repl.flap_absorbed"),
        flapper_ops,
        tables,
        snapshot,
    }
}

/// Run E9. The walkthrough is a single fixed-storm run, so `quick` changes
/// nothing — the test suite executes exactly what `repro` reports. The seed
/// defaults to `0xE9` and can be overridden with `repro --seed N e9`.
pub fn e9_with(opts: RunOpts) -> ExperimentOutput {
    let seed = opts.seed.unwrap_or(0xE9);
    let run = chaos_run(seed);
    let churn = churn_run(seed);

    let mut t = Table::new(&["layer", "fault", "injected s", "recovered s", "ttr s", "ok"]);
    for r in &run.recoveries {
        t.row(&[
            r.layer.into(),
            r.fault.into(),
            fmt_f(r.injected_s, 1),
            r.recovered_s.map_or("-".into(), |v| fmt_f(v, 2)),
            r.ttr_s().map_or("-".into(), |v| fmt_f(v, 2)),
            if r.met() { "yes".into() } else { "NO".into() },
        ]);
    }
    let mut e = Table::new(&["counter", "value"]);
    for (name, v) in [
        ("presenter re-acquisitions", run.reacquisitions as u64),
        ("adapter incarnation", run.incarnation as u64),
        ("client registrar failovers", run.client_rediscoveries),
        ("vnc degradations (coarse)", run.degradations),
        ("vnc quality recoveries", run.quality_recoveries),
        ("commands landed", run.commands_ok as u64),
        ("session hijacks", run.hijacks),
    ] {
        e.row(&[name.into(), v.to_string()]);
    }

    let mut c = Table::new(&["registrar churn", "value"]);
    let converged = churn.tables.windows(2).all(|w| w[0] == w[1]);
    for (name, v) in [
        ("lookups served", churn.lookups_served.to_string()),
        ("stale rows served", churn.stale_rows.to_string()),
        (
            "failover ttr s",
            churn.failover.ttr_s().map_or("-".into(), |v| fmt_f(v, 2)),
        ),
        ("epoch bumps", churn.epoch_bumps.to_string()),
        ("snapshots taken", churn.snapshots_taken.to_string()),
        ("snapshot installs (rejoin)", churn.snapshot_installs.to_string()),
        ("durable restores", churn.restores.to_string()),
        ("flap ops sent", churn.flapper_ops.to_string()),
        ("flap ops absorbed at edge", churn.flap_absorbed.to_string()),
        ("lease tables converged", if converged { "yes".into() } else { "NO".into() }),
    ] {
        c.row(&[name.into(), v]);
    }

    let all_met = run.recoveries.iter().all(Recovery::met);
    let churn_ok = churn.stale_rows == 0 && churn.failover.met() && converged;
    let notes = vec![
        if churn_ok {
            format!(
                "registrar churn: zero stale lookups across {} served; failover ttr {} s; replica rejoined via {} snapshot install(s); damper absorbed {}/{} flap ops",
                churn.lookups_served,
                churn.failover.ttr_s().map_or("-".into(), |v| fmt_f(v, 2)),
                churn.snapshot_installs,
                churn.flap_absorbed,
                churn.flapper_ops,
            )
        } else {
            "registrar churn: INVARIANT BROKEN — see table".into()
        },
        if all_met {
            format!(
                "chaos recovery: all layers within deadline ({} s per fault)",
                storm::DEADLINE_S
            )
        } else {
            "chaos recovery: DEADLINE MISSED — see table".into()
        },
        format!(
            "session security: {} hijacks across the storm; the restarted adapter mints incarnation-{} tokens, pre-crash tokens are refused",
            run.hijacks, run.incarnation
        ),
        "faults off, same seed: the run is byte-identical to the fault-free scenario — the plane draws from its own RNG stream".into(),
    ];
    ExperimentOutput {
        id: "e9",
        title: "chaos walkthrough: scripted fault storm vs self-healing clients (extension)",
        tables: vec![
            (
                format!(
                    "storm at seed {seed:#x}: registrar kill @{}s, adapter crash @{}-{}s, {:.0}% burst loss @{}-{}s:",
                    storm::REGISTRAR_KILL_S,
                    storm::PROJECTOR_CRASH_S,
                    storm::PROJECTOR_RESTART_S,
                    storm::BURST_LOSS * 100.0,
                    storm::BURST_START_S,
                    storm::BURST_END_S
                ),
                t,
            ),
            ("self-healing end-state:".into(), e),
            (
                format!(
                    "replicated-registrar churn at seed {seed:#x}: replica kill @{}-{}s, primary kill @{}-{}s, flapper @{}-{}s every {}ms:",
                    churn::REPLICA_KILL_S,
                    churn::REPLICA_RESTART_S,
                    churn::PRIMARY_KILL_S,
                    churn::PRIMARY_RESTART_S,
                    churn::FLAP_FROM_S,
                    churn::FLAP_UNTIL_S,
                    churn::FLAP_PERIOD_MS
                ),
                c,
            ),
        ],
        notes,
        metrics: opts.recording().then(|| {
            aroma_sim::telemetry::snapshot_json(&run.snapshot, opts.trace)
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e9_every_layer_recovers_within_deadline_with_zero_hijacks() {
        let run = chaos_run(0xE9);
        for r in &run.recoveries {
            assert!(
                r.met(),
                "{} [{}] failed to recover in time: {:?}",
                r.fault,
                r.layer,
                r.ttr_s()
            );
        }
        assert_eq!(run.hijacks, 0, "a crash must never enable a hijack");
        assert_eq!(run.incarnation, 1, "adapter restarted exactly once");
        assert!(run.reacquisitions >= 1, "presenter never re-acquired");
        assert!(
            run.client_rediscoveries >= 1,
            "lookup client never failed over to the standby"
        );
    }

    #[test]
    fn e9_churn_zero_stale_lookups_and_bounded_failover() {
        let run = churn_run(0xE9);
        assert_eq!(run.stale_rows, 0, "a lookup served a lapsed lease");
        assert!(run.lookups_served > 10, "cluster barely served: {}", run.lookups_served);
        assert!(
            run.failover.met(),
            "failover missed the {} s deadline: {:?}",
            churn::DEADLINE_S,
            run.failover.ttr_s()
        );
        assert!(run.epoch_bumps >= 1, "the primary kill never forced an election");
        assert!(run.snapshots_taken >= 1, "the primary never folded a snapshot");
        assert!(
            run.snapshot_installs >= 1,
            "the lagging replica rejoined without a snapshot install"
        );
        assert!(run.restores >= 2, "both scripted restarts must restore durable state");
        assert!(
            run.flap_absorbed > 0,
            "the damper absorbed nothing across {} flap ops",
            run.flapper_ops
        );
        for w in run.tables.windows(2) {
            assert_eq!(w[0], w[1], "registrar lease tables diverged at the horizon");
        }
    }

    #[test]
    fn e9_report_is_deterministic() {
        let a = e9_with(RunOpts::default());
        let b = e9_with(RunOpts::default());
        assert_eq!(a.json().render(), b.json().render());
    }
}
