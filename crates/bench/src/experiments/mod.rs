//! The experiment registry: every figure (F1–F5) and derived experiment
//! (E1–E8) of DESIGN.md §4, one module each.
//!
//! All experiments are functions of a `quick` flag — `true` shrinks sweeps
//! and horizons so the integration tests can execute every experiment in
//! seconds, while the `repro` binary runs the full versions.

use aroma_sim::report::{Json, Table};

/// Harness options threaded to every experiment.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunOpts {
    /// Shrink sweeps and horizons (what the test suite runs).
    pub quick: bool,
    /// Attach the telemetry recorder to a representative run and emit the
    /// metrics snapshot next to the tables.
    pub metrics: bool,
    /// Also embed the structured trace ring in the snapshot (implies
    /// `metrics`).
    pub trace: bool,
    /// Override the base seed of experiments that honour one (E9's chaos
    /// walkthrough); `None` keeps each experiment's built-in seed.
    pub seed: Option<u64>,
}

impl RunOpts {
    /// Recording requested at all?
    pub fn recording(&self) -> bool {
        self.metrics || self.trace
    }

    /// The recorder configuration for these options: a full ring when a
    /// trace was asked for, metrics-only otherwise.
    pub fn telemetry_config(&self) -> aroma_sim::telemetry::TelemetryConfig {
        if self.trace {
            aroma_sim::telemetry::TelemetryConfig::default()
        } else {
            aroma_sim::telemetry::TelemetryConfig::metrics_only()
        }
    }
}

pub mod acoustics_exp;
pub mod analysis_exp;
pub mod burden;
pub mod chaos;
pub mod discovery_exp;
pub mod executor_exp;
pub mod figures;
pub mod link;
pub mod sessions_exp;
pub mod spectrum;
pub mod voice;
pub mod walkaway;

/// Output of one experiment: captioned tables plus free-form notes on the
/// expected (paper) shape vs what was measured.
#[derive(Clone, Debug)]
pub struct ExperimentOutput {
    /// Experiment id ("f1" … "e8").
    pub id: &'static str,
    /// Title line.
    pub title: &'static str,
    /// Captioned result tables.
    pub tables: Vec<(String, Table)>,
    /// Shape commentary.
    pub notes: Vec<String>,
    /// Telemetry snapshot (rendered JSON) from a representative run, when
    /// the harness asked for one with [`RunOpts::metrics`].
    pub metrics: Option<Json>,
}

impl ExperimentOutput {
    /// Render for the terminal / EXPERIMENTS.md.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n\n", self.id.to_uppercase(), self.title));
        for (caption, table) in &self.tables {
            out.push_str(caption);
            out.push('\n');
            out.push_str(&table.render());
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("note: {note}\n"));
        }
        if let Some(m) = &self.metrics {
            out.push_str(&format!("metrics: {}\n", m.render()));
        }
        out
    }

    /// Archival JSON: id, title, captioned tables (as header-keyed rows)
    /// and notes.
    pub fn json(&self) -> Json {
        Json::obj(vec![
            ("id", self.id.into()),
            ("title", self.title.into()),
            (
                "tables",
                Json::Arr(
                    self.tables
                        .iter()
                        .map(|(caption, table)| {
                            Json::obj(vec![
                                ("caption", caption.as_str().into()),
                                ("rows", table.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "notes",
                Json::Arr(self.notes.iter().map(|n| n.as_str().into()).collect()),
            ),
            (
                "metrics",
                self.metrics.clone().unwrap_or(Json::Null),
            ),
        ])
    }
}

/// All experiment ids in run order (e9–e11 are extensions beyond the
/// paper's figures: the chaos walkthrough, voice control, and mobility).
pub const ALL_IDS: [&str; 16] = [
    "f1", "f2", "f3", "f4", "f5", "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10",
    "e11",
];

/// Is `id` a registered experiment?
pub fn run_exists(id: &str) -> bool {
    ALL_IDS.contains(&id)
}

/// Run one experiment by id with the default (no-telemetry) options.
pub fn run(id: &str, quick: bool) -> Option<ExperimentOutput> {
    run_with(
        id,
        RunOpts {
            quick,
            ..RunOpts::default()
        },
    )
}

/// Run one experiment by id. Experiments with instrumented substrates (E2's
/// density sweep, E8's analysis engine) honour `opts.metrics`/`opts.trace`;
/// the rest ignore them.
pub fn run_with(id: &str, opts: RunOpts) -> Option<ExperimentOutput> {
    let quick = opts.quick;
    match id {
        "f1" => Some(figures::f1()),
        "f2" => Some(figures::f2()),
        "f3" => Some(figures::f3()),
        "f4" => Some(figures::f4(quick)),
        "f5" => Some(figures::f5()),
        "e1" => Some(link::e1(quick)),
        "e2" => Some(spectrum::e2_with(opts)),
        "e3" => Some(discovery_exp::e3(quick)),
        "e4" => Some(sessions_exp::e4(quick)),
        "e5" => Some(burden::e5(quick)),
        "e6" => Some(acoustics_exp::e6()),
        "e7" => Some(executor_exp::e7()),
        "e8" => Some(analysis_exp::e8_with(opts)),
        "e9" => Some(chaos::e9_with(opts)),
        "e10" => Some(voice::e10(quick)),
        "e11" => Some(walkaway::e11(quick)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_id_resolves() {
        for id in ALL_IDS {
            assert!(run(id, true).is_some(), "{id} missing");
        }
        assert!(run("zz", true).is_none());
    }
}
