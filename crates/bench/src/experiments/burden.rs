//! E5 — conceptual burden: research prototype vs commercial variant.
//!
//! "Since the Smart Projector is a research prototype, its operation is
//! more complex than would be tolerated for a commercial product … If this
//! burden is greater than what users are willing to bear in meeting their
//! goals, then the system will not be used." Sessions of the behavioural
//! user simulator quantify the burden per user profile per variant, with a
//! planner ablation (deliberate BFS vs impulsive greedy).

use super::ExperimentOutput;
use aroma_sim::report::{fmt_f, fmt_pct, Table};
use aroma_sim::SimRng;
use lpc_core::user_sim::{simulate_session, InteractionReport, PlannerKind, SessionParams};
use lpc_core::UserProfile;
use smart_projector::system::{application_machine, belief_for, task};
use smart_projector::ProjectorVariant;

/// Aggregate of many simulated sessions.
#[derive(Clone, Copy, Debug, Default)]
pub struct BurdenResult {
    /// Fraction of sessions reaching the goal.
    pub completion: f64,
    /// Fraction abandoning.
    pub abandonment: f64,
    /// Mean surprises per session.
    pub mean_surprises: f64,
    /// Mean steps per session.
    pub mean_steps: f64,
    /// Mean burden metric.
    pub mean_burden: f64,
}

/// Run `n` sessions of `user` against `variant` with `planner`.
pub fn run_burden(
    user: &UserProfile,
    variant: ProjectorVariant,
    planner: PlannerKind,
    n: usize,
    seed: u64,
) -> BurdenResult {
    let actual = application_machine(variant);
    let belief = belief_for(user, variant);
    let (start, goal) = task(variant);
    let mut completed = 0usize;
    let mut abandoned = 0usize;
    let mut surprises = 0u64;
    let mut steps = 0u64;
    let mut burden = 0.0f64;
    for s in 0..n {
        let mut rng = SimRng::new(seed).fork(s as u64);
        let r: InteractionReport = simulate_session(
            &user.faculties,
            &belief,
            &actual,
            start,
            goal,
            planner,
            &SessionParams::default(),
            &mut rng,
        );
        completed += r.reached_goal as usize;
        abandoned += r.gave_up as usize;
        surprises += r.surprises as u64;
        steps += r.steps as u64;
        burden += r.burden();
    }
    BurdenResult {
        completion: completed as f64 / n as f64,
        abandonment: abandoned as f64 / n as f64,
        mean_surprises: surprises as f64 / n as f64,
        mean_steps: steps as f64 / n as f64,
        mean_burden: burden / n as f64,
    }
}

/// Run E5.
pub fn e5(quick: bool) -> ExperimentOutput {
    let n = if quick { 100 } else { 1000 };
    let mut t = Table::new(&[
        "user",
        "variant",
        "completion",
        "abandonment",
        "surprises",
        "steps",
        "burden",
    ]);
    for variant in [ProjectorVariant::Prototype, ProjectorVariant::Commercial] {
        for user in UserProfile::all_presets() {
            let r = run_burden(&user, variant, PlannerKind::Bfs, n, 0xE5);
            t.row(&[
                user.name.clone(),
                match variant {
                    ProjectorVariant::Prototype => "prototype".into(),
                    ProjectorVariant::Commercial => "commercial".into(),
                },
                fmt_pct(r.completion),
                fmt_pct(r.abandonment),
                fmt_f(r.mean_surprises, 2),
                fmt_f(r.mean_steps, 1),
                fmt_f(r.mean_burden, 3),
            ]);
        }
    }

    // Planner ablation across the profiles that *can* finish the prototype.
    let mut t2 = Table::new(&["user", "planner", "completion", "surprises", "steps"]);
    for user in [UserProfile::researcher(), UserProfile::presenter(), UserProfile::casual()] {
        for (name, planner) in [
            ("BFS (deliberate)", PlannerKind::Bfs),
            ("greedy (impulsive)", PlannerKind::Greedy),
        ] {
            let r = run_burden(&user, ProjectorVariant::Prototype, planner, n, 0xE5A);
            t2.row(&[
                user.name.clone(),
                name.to_string(),
                fmt_pct(r.completion),
                fmt_f(r.mean_surprises, 2),
                fmt_f(r.mean_steps, 1),
            ]);
        }
    }

    ExperimentOutput {
        id: "e5",
        title: "conceptual burden: prototype vs commercial variant (intentional+abstract layers)",
        tables: vec![
            (format!("{n} sessions per cell, BFS planner:"), t),
            (
                format!("planner ablation on the prototype, {n} sessions per cell:"),
                t2,
            ),
        ],
        notes: vec![
            "the commercial variant completes for every profile; the prototype sheds casual users".into(),
            "researchers tolerate the prototype — matching the paper's intended-user claim".into(),
        ],
        metrics: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e5_shape_commercial_rescues_casual_users() {
        let casual = UserProfile::casual();
        let proto = run_burden(&casual, ProjectorVariant::Prototype, PlannerKind::Bfs, 200, 1);
        let com = run_burden(&casual, ProjectorVariant::Commercial, PlannerKind::Bfs, 200, 1);
        assert!(com.completion > proto.completion + 0.2,
            "commercial {} vs prototype {}", com.completion, proto.completion);
        assert!(com.mean_surprises < proto.mean_surprises);
        assert_eq!(com.abandonment, 0.0);
    }

    #[test]
    fn e5_shape_researchers_are_fine_either_way() {
        let res = UserProfile::researcher();
        let proto = run_burden(&res, ProjectorVariant::Prototype, PlannerKind::Bfs, 200, 2);
        assert!(proto.completion > 0.95, "{}", proto.completion);
        assert!(proto.mean_surprises < 0.5);
    }

    #[test]
    fn e5_burden_orders_profiles_on_prototype() {
        let casual = run_burden(
            &UserProfile::casual(),
            ProjectorVariant::Prototype,
            PlannerKind::Bfs,
            200,
            3,
        );
        let presenter = run_burden(
            &UserProfile::presenter(),
            ProjectorVariant::Prototype,
            PlannerKind::Bfs,
            200,
            3,
        );
        assert!(casual.completion <= presenter.completion + 0.05);
    }
}
