//! E11 (extension) — mobility and ranging: the presenter walks away.
//!
//! The paper's list of wireless environment issues opens with *ranging*,
//! and pervasive computing's "dynamic nature is a result of its mobile and
//! adaptive applications". Here the presenter's laptop keeps serving the
//! projection while walking away from the projector; we record goodput per
//! distance window for an SNR-adaptive radio vs one pinned at 11 Mbit/s.
//! Expected shape: the adaptive radio degrades in steps (11 → 5.5 → 2 → 1)
//! and holds a link several times farther out; the fixed radio falls off a
//! cliff at its SINR threshold.

use super::ExperimentOutput;
use crate::scenarios::clean_env;
use aroma_env::space::Point;
use aroma_net::traffic::{CountingSink, SaturatedSource};
use aroma_net::{Address, MacConfig, MobilityPath, Network, NodeConfig, Rate, RateAdaptation};
use aroma_sim::report::{fmt_f, Table};
use aroma_sim::{SimDuration, SimTime};

/// Goodput per window while walking from `from_m` to `to_m` over
/// `windows`×`window_s` seconds. Returns (mean distance, Mbit/s) pairs.
pub fn walkaway(
    adapt: RateAdaptation,
    from_m: f64,
    to_m: f64,
    windows: usize,
    window_s: u64,
    seed: u64,
) -> Vec<(f64, f64)> {
    let total = SimDuration::from_secs(window_s * windows as u64);
    let mut net = Network::new(clean_env(), MacConfig::default(), seed);
    let rx = net.add_node(
        NodeConfig {
            adapt,
            ..NodeConfig::at(Point::new(from_m, 0.0))
        }
        .moving(MobilityPath::line(
            Point::new(from_m, 0.0),
            Point::new(to_m, 0.0),
            SimTime::ZERO,
            total,
        )),
        Box::new(CountingSink::default()),
    );
    net.add_node(
        NodeConfig {
            adapt,
            ..NodeConfig::at(Point::new(0.0, 0.0))
        },
        Box::new(SaturatedSource::new(Address::Node(rx), 1000)),
    );
    let mut out = Vec::with_capacity(windows);
    let mut last_bytes = 0u64;
    for w in 0..windows {
        net.run_for(SimDuration::from_secs(window_s));
        let bytes = net.app_as::<CountingSink>(rx).unwrap().bytes;
        let mid_frac = (w as f64 + 0.5) / windows as f64;
        let dist = from_m + (to_m - from_m) * mid_frac;
        let mbps = (bytes - last_bytes) as f64 * 8.0 / window_s as f64 / 1e6;
        out.push((dist, mbps));
        last_bytes = bytes;
    }
    out
}

/// Run E11.
pub fn e11(quick: bool) -> ExperimentOutput {
    let (windows, window_s, to_m) = if quick { (5, 1, 250.0) } else { (10, 2, 300.0) };
    let arms = [
        ("adaptive", RateAdaptation::SnrBased),
        ("fixed 11 Mbps", RateAdaptation::Fixed(Rate::R11)),
        ("fixed 1 Mbps", RateAdaptation::Fixed(Rate::R1)),
    ];
    let results: Vec<Vec<(f64, f64)>> = aroma_sim::sweep::run(&arms, |i, &(_, adapt)| {
        walkaway(adapt, 3.0, to_m, windows, window_s, 0xE9 + i as u64)
    });
    let mut t = Table::new(&[
        "distance m",
        "adaptive Mbit/s",
        "fixed-11 Mbit/s",
        "fixed-1 Mbit/s",
    ]);
    let rows = results[0]
        .iter()
        .zip(results[1].iter().zip(&results[2]))
        .take(windows);
    for (adaptive, (fixed11, fixed1)) in rows {
        t.row(&[
            fmt_f(adaptive.0, 0),
            fmt_f(adaptive.1, 3),
            fmt_f(fixed11.1, 3),
            fmt_f(fixed1.1, 3),
        ]);
    }
    // Range where each arm still moves >50 kbit/s.
    let range_of = |series: &[(f64, f64)]| -> f64 {
        series
            .iter()
            .filter(|(_, mbps)| *mbps > 0.05)
            .map(|(d, _)| *d)
            .fold(0.0, f64::max)
    };
    let r_adapt = range_of(&results[0]);
    let r_fixed = range_of(&results[1]);
    ExperimentOutput {
        id: "e11",
        title: "mobility/ranging: goodput vs distance while walking away (extension)",
        tables: vec![(
            format!("saturated 1000-byte stream, walking 3 → {to_m:.0} m:"),
            t,
        )],
        notes: vec![
            format!(
                "usable range: adaptive ~{r_adapt:.0} m vs fixed-11 ~{r_fixed:.0} m — rate adaptation trades speed for reach"
            ),
            "the adaptive column degrades in steps (the DSSS rate ladder); the fixed column falls off its SINR cliff".into(),
        ],
        metrics: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e11_shape_adaptive_outranges_fixed_fast() {
        let adaptive = walkaway(RateAdaptation::SnrBased, 3.0, 250.0, 5, 1, 1);
        let fixed = walkaway(RateAdaptation::Fixed(Rate::R11), 3.0, 250.0, 5, 1, 1);
        let last_adaptive = adaptive.last().unwrap().1;
        let last_fixed = fixed.last().unwrap().1;
        assert!(
            last_adaptive > last_fixed + 0.05,
            "at ~225 m adaptive ({last_adaptive}) should still deliver, fixed-11 ({last_fixed}) not"
        );
        // Goodput near the start is higher than near the end for both.
        assert!(adaptive[0].1 > last_adaptive);
        assert!(fixed[0].1 > last_fixed);
    }
}
