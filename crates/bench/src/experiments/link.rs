//! E1 — "the relatively low bandwidth of current wireless networking
//! adapters … prevents us from displaying rapid animation."
//!
//! VNC frame rate and goodput per screen workload per link rate. The paper
//! shape: slides are fine everywhere; animation collapses at 2 Mbit/s-class
//! rates and becomes usable at 11 Mbit/s; incompressible video is hopeless
//! on any 2.4 GHz DSSS rate.

use super::ExperimentOutput;
use crate::scenarios::{fixed, run_vnc, secs, Workload};
use aroma_net::{Rate, RateAdaptation};
use aroma_sim::report::{fmt_f, Table};

/// Run E1.
pub fn e1(quick: bool) -> ExperimentOutput {
    let horizon = if quick { secs(2) } else { secs(8) };
    let (w, h) = if quick { (320, 240) } else { (640, 480) };
    let arms: [(&str, RateAdaptation); 4] = [
        ("1 Mbps", fixed(Rate::R1)),
        ("2 Mbps", fixed(Rate::R2)),
        ("11 Mbps", fixed(Rate::R11)),
        ("adaptive", RateAdaptation::SnrBased),
    ];
    let grid: Vec<(Workload, (&str, RateAdaptation))> = Workload::ALL
        .iter()
        .flat_map(|&wl| arms.iter().map(move |&arm| (wl, arm)))
        .collect();
    let results = aroma_sim::sweep::run(&grid, |i, &(wl, (_, adapt))| {
        run_vnc(wl, adapt, w, h, horizon, 0xE1 + i as u64)
    });

    let mut t = Table::new(&[
        "workload",
        "link rate",
        "updates/s",
        "goodput Mbit/s",
        "mean latency ms",
        "recoveries",
    ]);
    for ((wl, (rate_name, _)), r) in grid.iter().zip(&results) {
        t.row(&[
            wl.label().to_string(),
            rate_name.to_string(),
            fmt_f(r.achieved_fps, 1),
            fmt_f(r.goodput_bps / 1e6, 2),
            fmt_f(r.mean_latency_s * 1e3, 1),
            r.recoveries.to_string(),
        ]);
    }
    // Shape notes computed from the data so EXPERIMENTS.md records
    // measured claims, not hopes.
    let fps_of = |wl: Workload, rate: &str| -> f64 {
        grid.iter()
            .zip(&results)
            .find(|((w2, (r2, _)), _)| *w2 == wl && *r2 == rate)
            .map(|(_, r)| r.achieved_fps)
            .unwrap()
    };
    let anim2 = fps_of(Workload::Animation, "2 Mbps");
    let anim11 = fps_of(Workload::Animation, "11 Mbps");
    let slides2 = fps_of(Workload::Slides, "2 Mbps");
    let noise2 = fps_of(Workload::NoiseVideo, "2 Mbps");
    let noise11 = fps_of(Workload::NoiseVideo, "11 Mbps");
    ExperimentOutput {
        id: "e1",
        title: "VNC frame rate vs workload vs link rate (physical-layer bandwidth claim)",
        tables: vec![(
            format!(
                "{}×{} RGB565 screen, {}s horizon, clean 5 m link:",
                w,
                h,
                horizon.as_secs_f64()
            ),
            t,
        )],
        notes: vec![
            format!(
                "box animation at 2 Mbps: {anim2:.1} updates/s vs {anim11:.1} at 11 Mbps ({:.1}x)",
                anim11 / anim2.max(0.01)
            ),
            format!(
                "full-motion (noise) video: {noise2:.2} fps at 2 Mbps vs {noise11:.2} fps at 11 Mbps — 'rapid animation' is unwatchable on the slow rates, exactly the paper's physical-layer finding"
            ),
            format!(
                "slides sustain {slides2:.1} updates/s even at 2 Mbps — static content is cheap"
            ),
        ],
        metrics: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_shape_animation_collapses_on_slow_links() {
        let out = e1(true);
        let table = &out.tables[0].1;
        assert_eq!(table.len(), 12);
        // The notes embed the measured ratio; recompute the core shape here.
        let r2 = run_vnc(Workload::Animation, fixed(Rate::R2), 320, 240, secs(2), 1);
        let r11 = run_vnc(Workload::Animation, fixed(Rate::R11), 320, 240, secs(2), 1);
        assert!(
            r11.achieved_fps > 2.0 * r2.achieved_fps,
            "11 Mbps {} vs 2 Mbps {}",
            r11.achieved_fps,
            r2.achieved_fps
        );
    }

    #[test]
    fn e1_shape_noise_video_is_worst() {
        let noise = run_vnc(Workload::NoiseVideo, fixed(Rate::R11), 320, 240, secs(2), 2);
        let slides = run_vnc(Workload::Slides, fixed(Rate::R11), 320, 240, secs(2), 2);
        assert!(slides.achieved_fps > 2.0 * noise.achieved_fps);
    }
}
