//! Mobile-code execution-path benchmark: the data behind
//! `BENCH_mcode.json` (written by `repro bench` / `scripts/bench.sh`).
//!
//! Measures runs/sec of representative proxies on the three execution
//! tiers the verifier stack provides:
//!
//! - **checked** — the always-safe interpreter (per-op stack/fuel checks),
//! - **verified** — `Vm::run_verified` under the program's certificate
//!   (checks elided; fuel metering elided too when the certificate carries
//!   a static fuel bound — loop-free *or* counted-loop programs since the
//!   range-analysis PR),
//! - **optimized_verified** — the translation-validated optimizer's
//!   output under its re-verified certificate.
//!
//! Every optimized program is differentially cross-checked against its
//! original here as well, so a bench run can never publish numbers from a
//! miscompiled proxy. Numbers are hardware-honest: compare points only
//! within one machine generation.

use aroma_mcode::asm::assemble;
use aroma_mcode::opt::optimize_verified;
use aroma_mcode::{NullHost, Program, VerifiedProgram, VerifyConfig, Vm, FUEL_DEFAULT};
use aroma_sim::report::Json;
use smart_projector::proxy::brightness_proxy;
use std::hint::black_box;
use std::time::Instant;

/// A brightness mapper padded with the scaffolding real registrations
/// accumulate: constant pre-computation and dead debug stores the
/// optimizer folds away.
fn padded_proxy() -> Program {
    assemble(
        "push 3
         push 39
         add
         store 2      ; dead: never read
         push 7
         store 3      ; dead: never read
         arg 0
         push 2
         add
         push 5
         div
         push 5
         mul
         push 10
         max
         push 100
         min
         halt",
    )
    .expect("padded proxy source is well-formed")
}

/// A counted summing loop with a statically inferable trip bound: the
/// argument is clamped to `[0, 1000]` before it becomes the counter, so
/// range analysis proves the loop bounded and the certificate carries a
/// fuel bound — unlocking the unmetered fast path for a *cyclic* program.
fn bounded_sum_loop() -> Program {
    assemble(
        "push 0
         store 0
         arg 0
         push 0
         max
         push 1000
         min
         store 1
         loop:
         load 1
         jz out
         load 0
         load 1
         add
         store 0
         load 1
         push 1
         sub
         store 1
         jmp loop
         out:
         load 0
         halt",
    )
    .expect("loop source is well-formed")
}

/// One timed execution path of one program.
pub struct PathPoint {
    /// Path name: `checked`, `verified`, or `optimized_verified`.
    pub path: &'static str,
    /// Executions timed.
    pub runs: u64,
    /// Wall-clock seconds for all of them.
    pub secs: f64,
    /// Executions per wall-clock second.
    pub runs_per_sec: f64,
}

impl PathPoint {
    fn json(&self) -> (String, Json) {
        (
            self.path.to_string(),
            Json::obj(vec![
                ("runs", Json::from(self.runs)),
                ("secs", Json::from(self.secs)),
                ("runs_per_sec", Json::from(self.runs_per_sec)),
            ]),
        )
    }
}

fn time_path(path: &'static str, runs: u64, mut f: impl FnMut()) -> PathPoint {
    // One warmup pass, then the timed loop.
    f();
    let start = Instant::now();
    for _ in 0..runs {
        f();
    }
    let secs = start.elapsed().as_secs_f64();
    PathPoint {
        path,
        runs,
        secs,
        runs_per_sec: runs as f64 / secs.max(1e-9),
    }
}

/// Bench one program on all three tiers and return its JSON section.
///
/// Asserts (not just records) the invariants the numbers depend on: the
/// certificate exists, the optimized program re-verified (it is a
/// `VerifiedProgram` by construction), and all three paths produce the
/// same result for the benched input.
fn bench_program(name: &str, program: &Program, arg: i64, runs: u64) -> (String, Json) {
    let config = VerifyConfig::default();
    let vp: VerifiedProgram = program.verify(&config).expect("bench programs verify");
    let validated = optimize_verified(&vp, &config);
    let opt: &VerifiedProgram = &validated.program;

    let args = [arg];
    let checked_result = Vm.run(program, &args, &mut NullHost, FUEL_DEFAULT);
    assert_eq!(
        checked_result,
        Vm.run_verified(&vp, &args, &mut NullHost, FUEL_DEFAULT),
        "verified path diverged on {name}"
    );
    assert_eq!(
        checked_result,
        Vm.run_verified(opt, &args, &mut NullHost, FUEL_DEFAULT),
        "optimized path diverged on {name}"
    );

    let points = [
        time_path("checked", runs, || {
            black_box(Vm.run(
                black_box(program),
                &args,
                &mut NullHost,
                FUEL_DEFAULT,
            ))
            .expect("bench program runs");
        }),
        time_path("verified", runs, || {
            black_box(Vm.run_verified(
                black_box(&vp),
                &args,
                &mut NullHost,
                FUEL_DEFAULT,
            ))
            .expect("bench program runs");
        }),
        time_path("optimized_verified", runs, || {
            black_box(Vm.run_verified(
                black_box(opt),
                &args,
                &mut NullHost,
                FUEL_DEFAULT,
            ))
            .expect("bench program runs");
        }),
    ];

    let per_sec = |p: &str| {
        points
            .iter()
            .find(|x| x.path == p)
            .map_or(0.0, |x| x.runs_per_sec)
    };
    let base = per_sec("checked").max(1e-9);
    (
        name.to_string(),
        Json::obj(vec![
            ("len", Json::from(program.len())),
            ("optimized_len", Json::from(opt.program().len())),
            ("improved", Json::from(validated.improved)),
            (
                "fuel_bound",
                vp.fuel_bound().map_or(Json::Null, Json::from),
            ),
            (
                "optimized_fuel_bound",
                opt.fuel_bound().map_or(Json::Null, Json::from),
            ),
            (
                "paths",
                Json::Obj(points.iter().map(PathPoint::json).collect()),
            ),
            (
                "speedup_verified_vs_checked",
                Json::from(per_sec("verified") / base),
            ),
            (
                "speedup_optimized_vs_checked",
                Json::from(per_sec("optimized_verified") / base),
            ),
        ]),
    )
}

/// Run the mobile-code path sweep and return the full `BENCH_mcode.json`
/// document.
pub fn run(quick: bool) -> Json {
    let runs: u64 = if quick { 20_000 } else { 200_000 };
    let loop_runs = runs / 10; // the loop is ~100× the work per run

    Json::Obj(vec![
        ("quick".to_string(), Json::from(quick)),
        ("runs_per_program".to_string(), Json::from(runs)),
        bench_program("brightness_proxy", &brightness_proxy(), 83, runs),
        bench_program("padded_proxy", &padded_proxy(), 83, runs),
        bench_program("bounded_sum_loop", &bounded_sum_loop(), 1000, loop_runs),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padded_proxy_optimizes_and_agrees() {
        let config = VerifyConfig::default();
        let vp = padded_proxy().verify(&config).unwrap();
        let validated = optimize_verified(&vp, &config);
        assert!(validated.improved, "padding should be removable");
        assert!(validated.program.program().len() < padded_proxy().len());
        for x in [-10, 0, 42, 83, 300] {
            assert_eq!(
                Vm.run_default(&padded_proxy(), &[x], &mut NullHost),
                Vm.run_verified_default(&validated.program, &[x], &mut NullHost),
            );
        }
    }

    #[test]
    fn bounded_loop_certificate_carries_a_fuel_bound() {
        let vp = bounded_sum_loop().verify_default().unwrap();
        let bound = vp.fuel_bound().expect("counted loop should be bounded");
        // The bound must cover the worst case (counter = 1000) …
        assert_eq!(
            Vm.run_verified(&vp, &[1000], &mut NullHost, bound),
            Ok(500_500)
        );
        // … and stay a real bound, not FUEL_DEFAULT-sized slack.
        assert!(bound < 100_000, "bound {bound} is implausibly loose");
    }

    #[test]
    fn document_renders_with_all_paths() {
        // Tiny run counts: the full sweep runs in release via bench.sh;
        // this pins the JSON shape and the cross-path agreement asserts.
        let (_, section) = bench_program("brightness_proxy", &brightness_proxy(), 83, 50);
        let text = section.render();
        for key in [
            "checked",
            "verified",
            "optimized_verified",
            "speedup_optimized_vs_checked",
            "fuel_bound",
        ] {
            assert!(text.contains(key), "missing {key} in {text}");
        }
    }
}
