//! Hash-sharded lease table.
//!
//! One `BTreeMap` holding millions of leases turns every point operation
//! into a walk of a single deep tree and every expiry sweep into one long
//! stop-the-world scan. [`ShardedRegistry`] splits the table into `N`
//! independent [`ServiceRegistry`] shards routed by a fixed multiplicative
//! hash of the [`ServiceId`], so point operations (register/renew/
//! unregister — the hot path under heavy provider traffic) touch one small
//! tree, while whole-table traversals re-establish the global `ServiceId`
//! order by k-way merging the per-shard outputs.
//!
//! Determinism: the shard route is a pure function of the id (a fixed
//! Fibonacci-hash constant — never a per-process hasher seed), each shard
//! is itself a `BTreeMap`, and every cross-shard output is merged back into
//! `ServiceId` order, so lookup replies, sweep events, and snapshots remain
//! byte-identical to the unsharded registry's. Pinned by the equivalence
//! tests below and benchmarked (sharded vs unsharded) in `BENCH_disc.json`.

use crate::codec::{ServiceId, ServiceItem, Template};
use crate::registry::{RegistryEvent, ServiceRegistry};
use aroma_sim::{SimDuration, SimTime};

/// Fibonacci multiplicative hashing: spreads consecutive provider-assigned
/// ids across shards while staying a pure function of the id.
const HASH_K: u64 = 0x9E37_79B9_7F4A_7C15;

/// A lease table split into `N` hash-routed [`ServiceRegistry`] shards.
#[derive(Clone, Debug)]
pub struct ShardedRegistry {
    shards: Vec<ServiceRegistry>,
}

impl ShardedRegistry {
    /// A table of `shards` shards granting leases of at most `max_lease`.
    pub fn new(shards: usize, max_lease: SimDuration) -> Self {
        assert!(shards >= 1, "need at least one shard");
        ShardedRegistry {
            shards: (0..shards).map(|_| ServiceRegistry::new(max_lease)).collect(),
        }
    }

    /// Which shard owns `id`.
    pub fn shard_of(&self, id: ServiceId) -> usize {
        (id.0.wrapping_mul(HASH_K) >> 33) as usize % self.shards.len()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Maximum lease granted (uniform across shards).
    pub fn max_lease(&self) -> SimDuration {
        self.shards[0].max_lease
    }

    /// Total registrations across shards (lapsed-but-unswept included).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// True when no registrations exist.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.is_empty())
    }

    /// Register (or refresh) a service; see [`ServiceRegistry::register`].
    pub fn register(
        &mut self,
        now: SimTime,
        item: ServiceItem,
        requested: SimDuration,
    ) -> (SimDuration, Vec<RegistryEvent>) {
        let shard = self.shard_of(item.id);
        self.shards[shard].register(now, item, requested)
    }

    /// Renew a lease; see [`ServiceRegistry::renew`].
    pub fn renew(&mut self, now: SimTime, id: ServiceId) -> Option<SimDuration> {
        let shard = self.shard_of(id);
        self.shards[shard].renew(now, id)
    }

    /// Withdraw a service; see [`ServiceRegistry::unregister`].
    pub fn unregister(&mut self, id: ServiceId) -> Vec<RegistryEvent> {
        let shard = self.shard_of(id);
        self.shards[shard].unregister(id)
    }

    /// The stored expiry for `id` (lapsed-but-unswept included).
    pub fn expiry_of(&self, id: ServiceId) -> Option<SimTime> {
        let shard = self.shard_of(id);
        self.shards[shard].expiry_of(id)
    }

    /// Install a registration with an exact expiry (snapshot restore / log
    /// application); see [`ServiceRegistry::install`].
    pub fn install(&mut self, item: ServiceItem, lease_expires: SimTime) {
        let shard = self.shard_of(item.id);
        self.shards[shard].install(item, lease_expires);
    }

    /// Drop every lapsed registration, returning subscriber events in
    /// global `ServiceId` order (per-shard sweeps are id-ordered; the
    /// outputs are k-way merged so the sharding is unobservable).
    pub fn expire(&mut self, now: SimTime) -> Vec<RegistryEvent> {
        let per_shard: Vec<Vec<RegistryEvent>> =
            self.shards.iter_mut().map(|s| s.expire(now)).collect();
        merge_by_id(per_shard, |e| e.item.id)
    }

    /// Earliest lease expiry across shards.
    pub fn next_expiry(&self) -> Option<SimTime> {
        self.shards.iter().filter_map(|s| s.next_expiry()).min()
    }

    /// All registrations matching `template` in global `ServiceId` order
    /// (lapsed-but-unswept included); protocol paths must use
    /// [`ShardedRegistry::lookup_live`].
    pub fn lookup(&self, template: &Template) -> Vec<&ServiceItem> {
        let per_shard: Vec<Vec<&ServiceItem>> =
            self.shards.iter().map(|s| s.lookup(template)).collect();
        merge_by_id(per_shard, |i| i.id)
    }

    /// Live registrations matching `template` as of `now`, in global
    /// `ServiceId` order; see [`ServiceRegistry::lookup_live`].
    pub fn lookup_live(&self, now: SimTime, template: &Template) -> Vec<&ServiceItem> {
        let per_shard: Vec<Vec<&ServiceItem>> =
            self.shards.iter().map(|s| s.lookup_live(now, template)).collect();
        merge_by_id(per_shard, |i| i.id)
    }

    /// Subscribe `node` to events matching `template`. The subscription is
    /// mirrored into every shard; only the shard owning a service emits its
    /// events, so no duplicates arise.
    pub fn subscribe(&mut self, node: u32, template: Template) {
        for s in &mut self.shards {
            s.subscribe(node, template.clone());
        }
    }

    /// Number of subscriptions (as seen by any one shard — they mirror).
    pub fn subscription_count(&self) -> usize {
        self.shards[0].subscription_count()
    }

    /// Every stored registration with its expiry, in global `ServiceId`
    /// order — the snapshot capture path.
    pub fn entries(&self) -> Vec<(&ServiceItem, SimTime)> {
        let per_shard: Vec<Vec<(&ServiceItem, SimTime)>> =
            self.shards.iter().map(|s| s.entries().collect()).collect();
        merge_by_id(per_shard, |(i, _)| i.id)
    }
}

/// K-way merge of per-shard vectors, each already sorted by `ServiceId`,
/// into one globally id-ordered vector. Shard count is small (≤ dozens), so
/// a linear scan for the minimum head beats a heap's constant factor.
fn merge_by_id<T>(per_shard: Vec<Vec<T>>, id_of: impl Fn(&T) -> ServiceId) -> Vec<T> {
    let total: usize = per_shard.iter().map(|v| v.len()).sum();
    let mut queues: Vec<std::collections::VecDeque<T>> =
        per_shard.into_iter().map(std::collections::VecDeque::from).collect();
    let mut out = Vec::with_capacity(total);
    for _ in 0..total {
        let mut best: Option<(usize, ServiceId)> = None;
        for (s, q) in queues.iter().enumerate() {
            if let Some(head) = q.front() {
                let id = id_of(head);
                let better = match best {
                    None => true,
                    Some((_, b)) => id < b,
                };
                if better {
                    best = Some((s, id));
                }
            }
        }
        let (s, _) = best.expect("total counted non-empty heads");
        out.push(queues[s].pop_front().expect("head just observed"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn item(id: u64, kind: &str) -> ServiceItem {
        ServiceItem {
            id: ServiceId(id),
            kind: kind.into(),
            attributes: vec![("room".into(), "A".into())],
            provider: 1,
            proxy: Bytes::new(),
        }
    }

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    /// The sharding must be unobservable: every output of an 8-shard table
    /// is byte-identical to the 1-shard (plain) table's.
    #[test]
    fn sharded_outputs_match_unsharded() {
        let max = SimDuration::from_secs(10);
        let mut flat = ShardedRegistry::new(1, max);
        let mut sharded = ShardedRegistry::new(8, max);
        for r in [&mut flat, &mut sharded] {
            r.subscribe(42, Template::any());
            for id in [17u64, 3, 99, 4, 1000, 23, 8, 56, 71, 2] {
                let lease = if id % 2 == 1 { 1 } else { 10 };
                r.register(t(0), item(id, "x"), SimDuration::from_secs(lease));
            }
        }
        let ids = |v: Vec<&ServiceItem>| v.iter().map(|i| i.id.0).collect::<Vec<_>>();
        assert_eq!(ids(flat.lookup(&Template::any())), ids(sharded.lookup(&Template::any())));
        assert_eq!(
            ids(flat.lookup_live(t(500), &Template::any())),
            ids(sharded.lookup_live(t(500), &Template::any()))
        );
        assert_eq!(flat.next_expiry(), sharded.next_expiry());
        let sweep = |r: &mut ShardedRegistry| {
            r.expire(t(1_000))
                .into_iter()
                .map(|e| (e.item.id.0, e.kind, e.subscriber))
                .collect::<Vec<_>>()
        };
        let (f, s) = (sweep(&mut flat), sweep(&mut sharded));
        assert!(!f.is_empty());
        assert_eq!(f, s, "sweep events in identical global order");
        assert_eq!(flat.len(), sharded.len());
    }

    #[test]
    fn point_ops_route_to_owning_shard() {
        let mut r = ShardedRegistry::new(4, SimDuration::from_secs(10));
        for id in 0..100u64 {
            r.register(t(0), item(id, "x"), SimDuration::from_secs(5));
        }
        assert_eq!(r.len(), 100);
        // Every id is found again through the route (renew + unregister).
        for id in 0..100u64 {
            assert!(r.renew(t(10), ServiceId(id)).is_some(), "id {id} lost in routing");
        }
        for id in 0..100u64 {
            r.unregister(ServiceId(id));
        }
        assert!(r.is_empty());
    }

    #[test]
    fn shards_are_actually_used() {
        let r = ShardedRegistry::new(8, SimDuration::from_secs(1));
        let mut hit = vec![false; 8];
        for id in 0..64u64 {
            hit[r.shard_of(ServiceId(id))] = true;
        }
        assert!(hit.iter().all(|&h| h), "64 consecutive ids must touch all 8 shards");
    }

    #[test]
    fn entries_are_globally_ordered() {
        let mut r = ShardedRegistry::new(8, SimDuration::from_secs(10));
        for id in [9u64, 2, 77, 31, 5] {
            r.register(t(0), item(id, "x"), SimDuration::from_secs(5));
        }
        let ids: Vec<u64> = r.entries().iter().map(|(i, _)| i.id.0).collect();
        assert_eq!(ids, vec![2, 5, 9, 31, 77]);
    }
}
