//! Flap damping for churning services.
//!
//! A service that registers and withdraws in a tight loop (a crashing
//! provider daemon, a link that bounces) multiplies work across the whole
//! replicated registrar: every cycle appends two log entries, ships them to
//! every replica, and fans out two subscriber events. [`FlapDamper`]
//! applies the classic BGP route-flap-damping discipline (RFC 2439 shape):
//! each churn operation adds a per-service **penalty** that **decays
//! exponentially** with a configurable half-life; once the penalty crosses
//! the suppression threshold the service's churn is absorbed at the
//! registrar's edge — not logged, not replicated, not fanned out — until
//! the penalty decays back below the reuse threshold.
//!
//! Renewals add no penalty, so a stable service renewing its lease forever
//! never accumulates anything; a one-shot re-registration after a registrar
//! failover costs one unit and decays away. Only sustained churn crosses
//! the threshold.
//!
//! Pure and deterministic: time is the caller's [`SimTime`], decay is a
//! closed-form power (no incremental drift), and per-service state lives in
//! a `BTreeMap` so iteration (sweeps, stats) is id-ordered.

use crate::codec::ServiceId;
use aroma_sim::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Damping thresholds and decay rate.
#[derive(Clone, Copy, Debug)]
pub struct FlapConfig {
    /// Penalty added by a (state-changing) register.
    pub penalty_register: f64,
    /// Penalty added by an unregister (withdrawals are the stronger churn
    /// signal: a register/unregister cycle costs the sum).
    pub penalty_unregister: f64,
    /// Suppression starts when the penalty reaches this.
    pub suppress_at: f64,
    /// Suppression ends when the decayed penalty falls below this.
    pub reuse_below: f64,
    /// Penalty half-life.
    pub half_life: SimDuration,
    /// Penalty cap, so suppression always ends within
    /// `half_life * log2(ceiling / reuse_below)` of the last flap.
    pub ceiling: f64,
}

impl Default for FlapConfig {
    fn default() -> Self {
        FlapConfig {
            penalty_register: 1.0,
            penalty_unregister: 2.0,
            suppress_at: 8.0,
            reuse_below: 2.0,
            half_life: SimDuration::from_secs(8),
            ceiling: 16.0,
        }
    }
}

/// What the damper decided about one churn operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlapDecision {
    /// Admit the operation into the replication log.
    Admit,
    /// Absorb it: the service is (now) suppressed.
    Suppress,
}

#[derive(Clone, Copy, Debug)]
struct FlapState {
    penalty: f64,
    last: SimTime,
    suppressed: bool,
}

/// Per-service penalty accounting; see the module docs.
#[derive(Clone, Debug)]
pub struct FlapDamper {
    cfg: FlapConfig,
    states: BTreeMap<ServiceId, FlapState>,
    /// Operations absorbed since construction (telemetry mirror).
    pub suppressed_ops: u64,
    /// Services that entered suppression since construction.
    pub suppressions: u64,
}

impl FlapDamper {
    /// A damper with the given thresholds.
    pub fn new(cfg: FlapConfig) -> Self {
        assert!(cfg.reuse_below < cfg.suppress_at && cfg.suppress_at <= cfg.ceiling);
        assert!(cfg.half_life > SimDuration::ZERO);
        FlapDamper { cfg, states: BTreeMap::new(), suppressed_ops: 0, suppressions: 0 }
    }

    /// Record a state-changing register for `id` and decide its fate.
    pub fn on_register(&mut self, now: SimTime, id: ServiceId) -> FlapDecision {
        self.record(now, id, self.cfg.penalty_register)
    }

    /// Record an unregister for `id` and decide its fate.
    pub fn on_unregister(&mut self, now: SimTime, id: ServiceId) -> FlapDecision {
        self.record(now, id, self.cfg.penalty_unregister)
    }

    /// Is `id` currently suppressed (with decay applied as of `now`)?
    pub fn is_suppressed(&mut self, now: SimTime, id: ServiceId) -> bool {
        let cfg = self.cfg;
        match self.states.get_mut(&id) {
            Some(s) => {
                decay(s, now, &cfg);
                s.suppressed
            }
            None => false,
        }
    }

    /// The decayed penalty for `id` as of `now` (0 when untracked).
    pub fn penalty(&self, now: SimTime, id: ServiceId) -> f64 {
        match self.states.get(&id) {
            Some(s) => decayed(s, now, &self.cfg),
            None => 0.0,
        }
    }

    /// Services currently suppressed as of `now`.
    pub fn suppressed_count(&mut self, now: SimTime) -> usize {
        let cfg = self.cfg;
        for s in self.states.values_mut() {
            decay(s, now, &cfg);
        }
        self.states.values().filter(|s| s.suppressed).count()
    }

    /// Forget services whose penalty has decayed to noise (< 1/8 of the
    /// reuse threshold); call from a housekeeping timer so the map tracks
    /// flappers, not every service ever seen.
    pub fn sweep(&mut self, now: SimTime) {
        let cfg = self.cfg;
        self.states.retain(|_, s| {
            decay(s, now, &cfg);
            s.suppressed || s.penalty >= cfg.reuse_below / 8.0
        });
    }

    /// Tracked services (post-decay entries not yet swept).
    pub fn tracked(&self) -> usize {
        self.states.len()
    }

    fn record(&mut self, now: SimTime, id: ServiceId, add: f64) -> FlapDecision {
        let cfg = self.cfg;
        let s = self
            .states
            .entry(id)
            .or_insert(FlapState { penalty: 0.0, last: now, suppressed: false });
        decay(s, now, &cfg);
        s.penalty = (s.penalty + add).min(cfg.ceiling);
        let was = s.suppressed;
        if s.penalty >= cfg.suppress_at {
            s.suppressed = true;
        }
        if s.suppressed {
            if !was {
                self.suppressions += 1;
            }
            self.suppressed_ops += 1;
            FlapDecision::Suppress
        } else {
            FlapDecision::Admit
        }
    }
}

/// Apply exponential decay in place and handle reuse-threshold crossing.
fn decay(s: &mut FlapState, now: SimTime, cfg: &FlapConfig) {
    s.penalty = decayed(s, now, cfg);
    s.last = s.last.max(now);
    if s.suppressed && s.penalty < cfg.reuse_below {
        s.suppressed = false;
    }
}

/// Closed-form decayed penalty (no in-place update).
fn decayed(s: &FlapState, now: SimTime, cfg: &FlapConfig) -> f64 {
    if now <= s.last {
        return s.penalty;
    }
    let dt = (now.as_nanos() - s.last.as_nanos()) as f64;
    s.penalty * 0.5f64.powf(dt / cfg.half_life.as_nanos() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn quick() -> FlapConfig {
        FlapConfig { half_life: SimDuration::from_secs(1), ..FlapConfig::default() }
    }

    #[test]
    fn stable_service_is_never_suppressed() {
        let mut d = FlapDamper::new(quick());
        // One registration, then years of nothing (renewals don't touch the
        // damper at all).
        assert_eq!(d.on_register(t(0), ServiceId(1)), FlapDecision::Admit);
        assert!(!d.is_suppressed(t(60_000), ServiceId(1)));
        assert_eq!(d.suppressed_ops, 0);
    }

    #[test]
    fn sustained_churn_crosses_the_threshold() {
        let mut d = FlapDamper::new(quick());
        let id = ServiceId(9);
        let mut suppressed_at = None;
        for cycle in 0..10 {
            let now = t(cycle * 200);
            let a = d.on_register(now, id);
            let b = d.on_unregister(now + SimDuration::from_millis(100), id);
            if suppressed_at.is_none() && (a == FlapDecision::Suppress || b == FlapDecision::Suppress)
            {
                suppressed_at = Some(cycle);
            }
        }
        let at = suppressed_at.expect("3 penalty/cycle against threshold 8 must suppress");
        assert!(at <= 3, "suppression must kick in within ~3 cycles, got {at}");
        assert!(d.suppressions >= 1);
        assert!(d.suppressed_ops > 0);
    }

    #[test]
    fn suppression_decays_back_to_reuse() {
        let mut d = FlapDamper::new(quick());
        let id = ServiceId(5);
        for i in 0..6 {
            d.on_unregister(t(i * 10), id);
        }
        assert!(d.is_suppressed(t(100), id), "12 penalty in 60ms is far past 8");
        // Penalty ≤ 12; reuse at 2 ⇒ ≤ log2(12/2) ≈ 2.6 half-lives.
        assert!(!d.is_suppressed(t(100 + 3_000), id), "must be reusable after 3 half-lives");
        // And churn while suppressed keeps it suppressed (penalty re-adds).
        for i in 0..6 {
            d.on_unregister(t(10_000 + i * 10), id);
        }
        assert_eq!(d.on_register(t(10_100), id), FlapDecision::Suppress);
    }

    #[test]
    fn ceiling_bounds_the_outage() {
        let mut d = FlapDamper::new(quick());
        let id = ServiceId(7);
        // An hour of violent churn cannot push the penalty past the ceiling…
        for i in 0..1000 {
            d.on_unregister(t(i * 10), id);
        }
        assert!(d.penalty(t(10_000), id) <= d.cfg.ceiling);
        // …so recovery is bounded: ceiling 16 → reuse 2 is 3 half-lives.
        assert!(!d.is_suppressed(t(10_000 + 3_001), id));
    }

    #[test]
    fn sweep_forgets_cold_entries_but_keeps_suppressed() {
        let mut d = FlapDamper::new(quick());
        d.on_register(t(0), ServiceId(1)); // one-shot, will decay to noise
        for i in 0..8 {
            d.on_unregister(t(i * 10), ServiceId(2)); // suppressed flapper
        }
        assert_eq!(d.tracked(), 2);
        // At 2.5 half-lives: the one-shot's penalty (1 → ~0.18) is below the
        // forget floor (reuse/8 = 0.25); the flapper (≈16 → ~2.8) is still
        // above reuse (2), hence still suppressed.
        d.sweep(t(2_500));
        assert_eq!(d.tracked(), 1, "cold entry forgotten");
        assert!(d.is_suppressed(t(2_500), ServiceId(2)), "suppressed entry kept");
    }

    #[test]
    fn per_service_isolation() {
        let mut d = FlapDamper::new(quick());
        for i in 0..6 {
            d.on_unregister(t(i * 10), ServiceId(1));
        }
        assert!(d.is_suppressed(t(100), ServiceId(1)));
        assert_eq!(d.on_register(t(100), ServiceId(2)), FlapDecision::Admit, "innocent bystander");
    }
}
