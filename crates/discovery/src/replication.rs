//! Log-shipped lease-state replication between registrars.
//!
//! PR 4's warm standby mirrors registrations best-effort: a registrar crash
//! loses every lease granted since the last mirrored message. This module
//! replaces mirroring with a replicated log in the Raft shape, specialised
//! by one structural rule that the paper's fixed-infrastructure registrars
//! afford us: **epoch `e` may only ever be claimed by
//! `members[e mod members.len()]`**. There is exactly one legal candidate
//! per epoch, so at-most-one-active-primary-per-epoch holds by
//! construction (votes from different nodes in the same epoch cannot
//! diverge), and a vote needs no durable `votedFor`: re-granting after a
//! crash can only re-grant to the same candidate.
//!
//! The rest is classic:
//!
//! * every lease mutation (register / renew / unregister / expiry sweep)
//!   is a [`LogEntry`] appended by the active primary and shipped to the
//!   replicas over the wired federation link ([`RepMsg::Append`]);
//! * an entry is **committed** once a majority holds it; the primary only
//!   advances the commit index over entries of its own epoch (the Raft
//!   commit rule), and a new primary opens its reign with a no-op sweep
//!   barrier so earlier-epoch entries commit promptly;
//! * elections require a majority of [`RepMsg::VoteGrant`]s, and a voter
//!   refuses any candidate whose log is behind its own
//!   (`(last_epoch, last_index)` lexicographic), which gives Leader
//!   Completeness: a new primary holds every committed entry —
//!   no-committed-lease-lost;
//! * entries carry the primary's receive time (`at_nanos`) and are applied
//!   with it, so the lease table is a pure function of the log prefix and
//!   every replica's table is byte-identical at equal applied indices;
//! * applied prefixes are periodically folded into a
//!   [`LeaseSnapshot`](crate::snapshot::LeaseSnapshot) and the log
//!   truncated; a replica that nacks below the primary's retained log gets
//!   a [`RepMsg::SnapshotInstall`] and then catches up from the suffix.
//!
//! Only the **active primary** answers discovery, lookups and client
//! operations. A replica's table can lag the committed prefix (a committed
//! unregister it has not applied yet), so a replica serving lookups would
//! re-open exactly the stale window `aroma-check` closed for the
//! single-registrar protocol — the `replication_model` in `crates/check`
//! demonstrates that failure and proves the primary-only path.
//!
//! Client churn is damped at the edge by a [`FlapDamper`]: suppressed
//! services' register/unregister cycles are absorbed (acked but neither
//! logged nor replicated nor fanned out). Damper state is primary-local by
//! design — after a failover the new primary starts the flapper at zero
//! penalty, which merely delays re-suppression by a few cycles.

use crate::codec::{get_item, put_item, CodecError, ServiceId, ServiceItem, Template};
use crate::flap::{FlapConfig, FlapDamper, FlapDecision};
use crate::registry::RegistryEvent;
use crate::shard::ShardedRegistry;
use crate::snapshot::LeaseSnapshot;
use aroma_sim::{SimDuration, SimTime};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::collections::{BTreeMap, BTreeSet};

/// Protocol discriminator: first byte of every replication message.
pub const PROTO_REPLICATION: u8 = 0xD2;

const TAG_APPEND: u8 = 1;
const TAG_APPEND_ACK: u8 = 2;
const TAG_VOTE_REQ: u8 = 3;
const TAG_VOTE_GRANT: u8 = 4;
const TAG_SNAPSHOT_INSTALL: u8 = 5;

const OP_REGISTER: u8 = 1;
const OP_RENEW: u8 = 2;
const OP_UNREGISTER: u8 = 3;
const OP_SWEEP: u8 = 4;

/// One replicated lease mutation.
#[derive(Clone, Debug, PartialEq)]
pub enum RepOp {
    /// Grant (or refresh) a registration. `lease_ms` is the lease as
    /// granted by the appending primary (already capped), so application
    /// is policy-free.
    Register {
        /// The service.
        item: ServiceItem,
        /// Granted lease, milliseconds.
        lease_ms: u64,
    },
    /// Renew a lease (outcome decided at application time).
    Renew {
        /// The service id.
        id: ServiceId,
    },
    /// Withdraw a service.
    Unregister {
        /// The service id.
        id: ServiceId,
    },
    /// Expiry-sweep barrier: applying it sweeps every lease lapsed as of
    /// the entry's `at_nanos`. Also appended (empty or not) by a freshly
    /// elected primary as its commit barrier.
    Sweep,
}

/// One replication-log entry: the op, the epoch it was appended in, and
/// the primary's receive time, which every replica applies it with (the
/// table is a pure function of the log).
#[derive(Clone, Debug, PartialEq)]
pub struct LogEntry {
    /// Epoch of the appending primary.
    pub epoch: u64,
    /// Primary's receive time (nanoseconds), used as `now` at application.
    pub at_nanos: u64,
    /// The mutation.
    pub op: RepOp,
}

/// A registrar-to-registrar replication message.
#[derive(Clone, Debug, PartialEq)]
pub enum RepMsg {
    /// Primary → replica: log entries after (`prev_index`, `prev_epoch`),
    /// plus the primary's commit index. Empty `entries` is the heartbeat.
    Append {
        /// Primary's epoch.
        epoch: u64,
        /// Index of the entry immediately before `entries`.
        prev_index: u64,
        /// Epoch of that entry (0 at the log's origin).
        prev_epoch: u64,
        /// Primary's commit index.
        commit: u64,
        /// Primary-clock send time (nanoseconds); the ack echoes it, which
        /// is what lets the primary compute its serving lease without any
        /// cross-node clock assumption.
        sent_nanos: u64,
        /// The shipped entries (indices `prev_index + 1 ..`).
        entries: Vec<LogEntry>,
    },
    /// Replica → primary: append outcome. `match_index` is the highest
    /// index the replica's log now provably matches the primary's (on
    /// nack: its last index, as a back-off hint).
    AppendAck {
        /// Replica's epoch (a higher epoch tells the primary to step down).
        epoch: u64,
        /// Whether the append was consistent and accepted.
        ok: bool,
        /// Match hint (see above).
        match_index: u64,
        /// Echo of the acknowledged message's `sent_nanos`. An `ok` ack
        /// proves the replica heard this primary no earlier than that
        /// instant, so it will refuse votes until `sent_nanos +
        /// election_quiet` — the primary's lease evidence.
        heard_nanos: u64,
    },
    /// Candidate → all: request a vote for `epoch` (which the candidate
    /// must own by the modulo rule), advertising its log position.
    VoteReq {
        /// The claimed epoch.
        epoch: u64,
        /// Candidate's last log index.
        last_index: u64,
        /// Epoch of that entry.
        last_epoch: u64,
    },
    /// Voter → candidate: vote granted for `epoch`.
    VoteGrant {
        /// The epoch voted in.
        epoch: u64,
    },
    /// Primary → far-behind replica: a full applied-state snapshot to
    /// install, after which the replica catches up from the log suffix.
    SnapshotInstall {
        /// Primary's epoch.
        epoch: u64,
        /// Primary-clock send time (echoed by the ack, like `Append`).
        sent_nanos: u64,
        /// The snapshot.
        snapshot: LeaseSnapshot,
    },
}

fn put_entry(buf: &mut BytesMut, e: &LogEntry) {
    buf.put_u64(e.epoch);
    buf.put_u64(e.at_nanos);
    match &e.op {
        RepOp::Register { item, lease_ms } => {
            buf.put_u8(OP_REGISTER);
            buf.put_u64(*lease_ms);
            put_item(buf, item);
        }
        RepOp::Renew { id } => {
            buf.put_u8(OP_RENEW);
            buf.put_u64(id.0);
        }
        RepOp::Unregister { id } => {
            buf.put_u8(OP_UNREGISTER);
            buf.put_u64(id.0);
        }
        RepOp::Sweep => buf.put_u8(OP_SWEEP),
    }
}

fn get_entry(buf: &mut Bytes) -> Result<LogEntry, CodecError> {
    if buf.remaining() < 17 {
        return Err(CodecError::Truncated);
    }
    let epoch = buf.get_u64();
    let at_nanos = buf.get_u64();
    let op = match buf.get_u8() {
        OP_REGISTER => {
            if buf.remaining() < 8 {
                return Err(CodecError::Truncated);
            }
            let lease_ms = buf.get_u64();
            RepOp::Register { item: get_item(buf)?, lease_ms }
        }
        OP_RENEW => {
            if buf.remaining() < 8 {
                return Err(CodecError::Truncated);
            }
            RepOp::Renew { id: ServiceId(buf.get_u64()) }
        }
        OP_UNREGISTER => {
            if buf.remaining() < 8 {
                return Err(CodecError::Truncated);
            }
            RepOp::Unregister { id: ServiceId(buf.get_u64()) }
        }
        OP_SWEEP => RepOp::Sweep,
        t => return Err(CodecError::BadTag(t)),
    };
    Ok(LogEntry { epoch, at_nanos, op })
}

impl RepMsg {
    /// Encode to wire bytes (prefixed with [`PROTO_REPLICATION`]).
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_u8(PROTO_REPLICATION);
        match self {
            RepMsg::Append { epoch, prev_index, prev_epoch, commit, sent_nanos, entries } => {
                buf.put_u8(TAG_APPEND);
                buf.put_u64(*epoch);
                buf.put_u64(*prev_index);
                buf.put_u64(*prev_epoch);
                buf.put_u64(*commit);
                buf.put_u64(*sent_nanos);
                buf.put_u16(entries.len() as u16);
                for e in entries {
                    put_entry(&mut buf, e);
                }
            }
            RepMsg::AppendAck { epoch, ok, match_index, heard_nanos } => {
                buf.put_u8(TAG_APPEND_ACK);
                buf.put_u64(*epoch);
                buf.put_u8(*ok as u8);
                buf.put_u64(*match_index);
                buf.put_u64(*heard_nanos);
            }
            RepMsg::VoteReq { epoch, last_index, last_epoch } => {
                buf.put_u8(TAG_VOTE_REQ);
                buf.put_u64(*epoch);
                buf.put_u64(*last_index);
                buf.put_u64(*last_epoch);
            }
            RepMsg::VoteGrant { epoch } => {
                buf.put_u8(TAG_VOTE_GRANT);
                buf.put_u64(*epoch);
            }
            RepMsg::SnapshotInstall { epoch, sent_nanos, snapshot } => {
                buf.put_u8(TAG_SNAPSHOT_INSTALL);
                buf.put_u64(*epoch);
                buf.put_u64(*sent_nanos);
                let blob = snapshot.encode();
                buf.put_u32(blob.len() as u32);
                buf.put_slice(&blob);
            }
        }
        buf.freeze()
    }

    /// Decode from wire bytes; must consume the buffer exactly.
    pub fn decode(mut buf: Bytes) -> Result<RepMsg, CodecError> {
        if buf.remaining() < 2 {
            return Err(CodecError::Truncated);
        }
        let proto = buf.get_u8();
        if proto != PROTO_REPLICATION {
            return Err(CodecError::BadTag(proto));
        }
        let tag = buf.get_u8();
        let need_u64 = |buf: &mut Bytes| -> Result<u64, CodecError> {
            if buf.remaining() < 8 {
                Err(CodecError::Truncated)
            } else {
                Ok(buf.get_u64())
            }
        };
        let msg = match tag {
            TAG_APPEND => {
                let epoch = need_u64(&mut buf)?;
                let prev_index = need_u64(&mut buf)?;
                let prev_epoch = need_u64(&mut buf)?;
                let commit = need_u64(&mut buf)?;
                let sent_nanos = need_u64(&mut buf)?;
                if buf.remaining() < 2 {
                    return Err(CodecError::Truncated);
                }
                let n = buf.get_u16() as usize;
                let mut entries = Vec::with_capacity(n.min(64));
                for _ in 0..n {
                    entries.push(get_entry(&mut buf)?);
                }
                Ok(RepMsg::Append { epoch, prev_index, prev_epoch, commit, sent_nanos, entries })
            }
            TAG_APPEND_ACK => {
                let epoch = need_u64(&mut buf)?;
                if buf.remaining() < 1 {
                    return Err(CodecError::Truncated);
                }
                let ok = buf.get_u8() != 0;
                let match_index = need_u64(&mut buf)?;
                let heard_nanos = need_u64(&mut buf)?;
                Ok(RepMsg::AppendAck { epoch, ok, match_index, heard_nanos })
            }
            TAG_VOTE_REQ => Ok(RepMsg::VoteReq {
                epoch: need_u64(&mut buf)?,
                last_index: need_u64(&mut buf)?,
                last_epoch: need_u64(&mut buf)?,
            }),
            TAG_VOTE_GRANT => Ok(RepMsg::VoteGrant { epoch: need_u64(&mut buf)? }),
            TAG_SNAPSHOT_INSTALL => {
                let epoch = need_u64(&mut buf)?;
                let sent_nanos = need_u64(&mut buf)?;
                if buf.remaining() < 4 {
                    return Err(CodecError::Truncated);
                }
                let len = buf.get_u32() as usize;
                if buf.remaining() < len {
                    return Err(CodecError::Truncated);
                }
                let snapshot = LeaseSnapshot::decode(buf.split_to(len))?;
                Ok(RepMsg::SnapshotInstall { epoch, sent_nanos, snapshot })
            }
            t => Err(CodecError::BadTag(t)),
        }?;
        if buf.remaining() > 0 {
            return Err(CodecError::TrailingBytes { remaining: buf.remaining() });
        }
        Ok(msg)
    }
}

/// Static cluster membership and replication tuning.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Member node ids; `members[0]` bootstraps as the epoch-0 primary and
    /// epoch `e` belongs to `members[e % len]`.
    pub members: Vec<u32>,
    /// Maximum lease the cluster grants.
    pub max_lease: SimDuration,
    /// Lease-table shard count (see [`ShardedRegistry`]).
    pub shards: usize,
    /// Fold the applied prefix into a snapshot (and truncate the log)
    /// every this many applied entries.
    pub snapshot_every: u64,
    /// The election quiet period, doing double duty as the serving lease:
    /// a member refuses votes (and will not campaign) within this long of
    /// hearing a current-epoch primary, and a primary serves clients only
    /// while a majority provably heard from it within this long (acks echo
    /// its own send timestamps, so no cross-node clock is assumed). The
    /// two uses sharing one constant is what makes serve windows of
    /// successive primaries provably disjoint.
    pub election_quiet: SimDuration,
    /// Flap-damping thresholds.
    pub flap: FlapConfig,
}

impl ClusterConfig {
    /// A config with the given members and defaults suitable for tests.
    pub fn of(members: Vec<u32>) -> Self {
        ClusterConfig {
            members,
            max_lease: SimDuration::from_secs(10),
            shards: 4,
            snapshot_every: 64,
            election_quiet: SimDuration::from_millis(600),
            flap: FlapConfig::default(),
        }
    }

    /// The unique legal primary for `epoch`.
    pub fn owner_of(&self, epoch: u64) -> u32 {
        self.members[(epoch % self.members.len() as u64) as usize]
    }

    /// Votes (acks) needed for election (commit).
    pub fn majority(&self) -> usize {
        self.members.len() / 2 + 1
    }
}

/// The replication role of a registrar.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// Accepting entries from the current primary.
    Follower,
    /// Campaigning for an owned epoch.
    Candidate,
    /// The active primary: the only node that serves clients.
    Primary,
}

/// A protocol-level acknowledgement owed to a client once its entry
/// commits (the I/O layer turns these into `RegisterAck`/`RenewAck`).
#[derive(Clone, Debug, PartialEq)]
pub enum ClientAck {
    /// Registration durable; lease granted.
    Register {
        /// The service id.
        id: ServiceId,
        /// Granted lease, milliseconds.
        granted_ms: u64,
    },
    /// Renewal outcome (decided at application time).
    Renew {
        /// The service id.
        id: ServiceId,
        /// Whether the lease was live and renewed.
        ok: bool,
        /// New lease if `ok`, milliseconds.
        granted_ms: u64,
    },
}

/// An externally visible action requested by the replication core; the
/// I/O layer (or the model checker) carries them out.
#[derive(Clone, Debug, PartialEq)]
pub enum Effect {
    /// Send `msg` to peer registrar `to` over the federation link.
    Send {
        /// Destination member id.
        to: u32,
        /// The message.
        msg: RepMsg,
    },
    /// Push a subscriber event (only the active primary emits these, at
    /// the moment the causing entry is applied).
    Notify(RegistryEvent),
    /// A client op committed (or was absorbed): acknowledge it.
    Ack {
        /// The client node to answer.
        to: u32,
        /// The acknowledgement.
        ack: ClientAck,
    },
}

#[derive(Clone, Debug)]
enum Pending {
    Register { to: u32, id: ServiceId, granted_ms: u64 },
    Renew { to: u32, id: ServiceId },
}

/// Replication counters, mirrored into `disc.repl.*` telemetry by the I/O
/// layer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RepStats {
    /// Appends shipped (primary side).
    pub appends_tx: u64,
    /// Entries committed (commit-index advances observed locally).
    pub committed: u64,
    /// Entries applied to the lease table.
    pub applied: u64,
    /// Times this node's epoch increased.
    pub epoch_bumps: u64,
    /// Elections this node started.
    pub elections: u64,
    /// Snapshots folded locally (log truncations).
    pub snapshots_taken: u64,
    /// Snapshots shipped to far-behind replicas.
    pub snapshot_installs_tx: u64,
    /// Snapshots installed from the primary.
    pub snapshot_installs_rx: u64,
    /// Durable-state restores (crash recovery via persisted snapshot+log).
    pub snapshot_restores: u64,
    /// Client churn ops absorbed by the flap damper.
    pub flap_absorbed: u64,
    /// Highest replica log lag seen at a heartbeat (primary side gauge).
    pub log_lag_max: u64,
}

/// What a restarted registrar recovers from: the durable fraction of
/// [`ReplicaNode`] (epoch, folded snapshot, retained log suffix). The I/O
/// layer persists the [`DurableState::encode`] blob across process kills
/// — this is the "disk" a real registrar daemon would fsync.
#[derive(Clone, Debug, PartialEq)]
pub struct DurableState {
    /// Highest epoch seen.
    pub epoch: u64,
    /// Applied-prefix snapshot (possibly empty at index 0).
    pub snapshot: LeaseSnapshot,
    /// Index of `log[0]` (= `snapshot.last_index + 1`).
    pub log_start: u64,
    /// Retained log suffix.
    pub log: Vec<LogEntry>,
}

/// Durable-state layout version.
pub const DURABLE_VERSION: u8 = 1;

impl DurableState {
    /// Encode to bytes (versioned, deterministic).
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_u8(DURABLE_VERSION);
        buf.put_u64(self.epoch);
        buf.put_u64(self.log_start);
        let blob = self.snapshot.encode();
        buf.put_u32(blob.len() as u32);
        buf.put_slice(&blob);
        buf.put_u32(self.log.len() as u32);
        for e in &self.log {
            put_entry(&mut buf, e);
        }
        buf.freeze()
    }

    /// Decode from bytes; must consume the buffer exactly.
    pub fn decode(mut buf: Bytes) -> Result<Self, CodecError> {
        if buf.remaining() < 1 {
            return Err(CodecError::Truncated);
        }
        let version = buf.get_u8();
        if version != DURABLE_VERSION {
            return Err(CodecError::BadTag(version));
        }
        if buf.remaining() < 8 + 8 + 4 {
            return Err(CodecError::Truncated);
        }
        let epoch = buf.get_u64();
        let log_start = buf.get_u64();
        let blob_len = buf.get_u32() as usize;
        if buf.remaining() < blob_len {
            return Err(CodecError::Truncated);
        }
        let snapshot = LeaseSnapshot::decode(buf.split_to(blob_len))?;
        if buf.remaining() < 4 {
            return Err(CodecError::Truncated);
        }
        let n = buf.get_u32() as usize;
        let mut log = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            log.push(get_entry(&mut buf)?);
        }
        if buf.remaining() > 0 {
            return Err(CodecError::TrailingBytes { remaining: buf.remaining() });
        }
        Ok(DurableState { epoch, snapshot, log_start, log })
    }
}

/// One registrar's replication state machine. Pure: all I/O is expressed
/// as returned [`Effect`]s, all time is the caller's, so the same struct
/// runs under the network simulator and under `aroma-check`.
#[derive(Clone, Debug)]
pub struct ReplicaNode {
    /// This member's node id.
    pub me: u32,
    /// Cluster membership and tuning.
    pub cfg: ClusterConfig,
    /// Current epoch (highest seen).
    pub epoch: u64,
    /// Current role.
    pub role: Role,
    /// Counters (telemetry mirror).
    pub stats: RepStats,
    voted: u64,
    log: Vec<LogEntry>,
    log_start: u64,
    snapshot: LeaseSnapshot,
    commit: u64,
    applied: u64,
    table: ShardedRegistry,
    damper: FlapDamper,
    votes: BTreeSet<u32>,
    next: BTreeMap<u32, u64>,
    matched: BTreeMap<u32, u64>,
    pending: Vec<(u64, Pending)>,
    last_heard: SimTime,
    /// First index of this reign (the election barrier): a new primary
    /// serves only once `commit >= serve_from`, i.e. once its applied
    /// table provably covers every entry committed in earlier epochs.
    serve_from: u64,
    /// Per-peer highest echoed `sent_nanos` from an ok current-epoch ack
    /// — the evidence backing [`ReplicaNode::serving_deadline`].
    lease_contact: BTreeMap<u32, u64>,
    #[cfg(feature = "model-check")]
    journal: Vec<LogEntry>,
    #[cfg(feature = "model-check")]
    journal_base: u64,
}

impl ReplicaNode {
    /// Boot a fresh member: `members[0]` starts as the epoch-0 primary,
    /// everyone else as a follower.
    pub fn new(me: u32, cfg: ClusterConfig) -> Self {
        assert!(cfg.members.contains(&me), "node {me} not a cluster member");
        let role = if cfg.owner_of(0) == me { Role::Primary } else { Role::Follower };
        let table = ShardedRegistry::new(cfg.shards, cfg.max_lease);
        let damper = FlapDamper::new(cfg.flap);
        let mut node = ReplicaNode {
            me,
            cfg,
            epoch: 0,
            role,
            stats: RepStats::default(),
            voted: 0,
            log: Vec::new(),
            log_start: 1,
            snapshot: LeaseSnapshot { last_index: 0, last_epoch: 0, entries: Vec::new() },
            commit: 0,
            applied: 0,
            table,
            damper,
            votes: BTreeSet::new(),
            next: BTreeMap::new(),
            matched: BTreeMap::new(),
            pending: Vec::new(),
            last_heard: SimTime::ZERO,
            serve_from: 0,
            lease_contact: BTreeMap::new(),
            #[cfg(feature = "model-check")]
            journal: Vec::new(),
            #[cfg(feature = "model-check")]
            journal_base: 0,
        };
        if node.role == Role::Primary {
            node.reset_peer_tracking();
        }
        node
    }

    /// Recover a crashed member from its persisted [`DurableState`]:
    /// always a follower (a restarted node must never resume primacy on
    /// stale authority — it rejoins, hears the current epoch, and serves
    /// again only if elected), with the snapshot's table and the retained
    /// log suffix; volatile state (commit beyond the snapshot, votes, peer
    /// tracking, damper penalties, pending acks) is rebuilt from traffic.
    pub fn restore(me: u32, cfg: ClusterConfig, durable: DurableState) -> Self {
        let mut node = ReplicaNode::new(me, cfg);
        node.role = Role::Follower;
        node.epoch = durable.epoch;
        node.table = durable.snapshot.restore(node.cfg.shards, node.cfg.max_lease);
        node.commit = durable.snapshot.last_index;
        node.applied = durable.snapshot.last_index;
        node.log_start = durable.log_start;
        node.log = durable.log;
        node.snapshot = durable.snapshot;
        node.stats.snapshot_restores = 1;
        #[cfg(feature = "model-check")]
        {
            // The journal only tracks entries this incarnation observed
            // committing; `journal_base` anchors them at a global log
            // index so the model checker's ghost spec can stitch
            // incarnations together.
            node.journal.clear();
            node.journal_base = node.applied;
        }
        node
    }

    /// The durable fraction of this node's state (what a real daemon would
    /// have fsynced: epoch mark, folded snapshot, retained log suffix).
    pub fn durable(&self) -> DurableState {
        DurableState {
            epoch: self.epoch,
            snapshot: self.snapshot.clone(),
            log_start: self.log_start,
            log: self.log.clone(),
        }
    }

    /// Is this node the active primary — the only node allowed to serve
    /// clients at `now`? Three conditions, each load-bearing:
    ///
    /// 1. role is [`Role::Primary`];
    /// 2. the reign's election barrier has committed (`commit >=
    ///    serve_from`), so the applied table covers every entry committed
    ///    in earlier epochs — a freshly elected primary must not serve
    ///    from a table that lags a committed unregister;
    /// 3. `now` is inside the serving lease
    ///    ([`ReplicaNode::serving_deadline`]), so a deposed-but-unaware
    ///    primary stops serving *before* any successor can be elected.
    pub fn is_active(&self, now: SimTime) -> bool {
        self.role == Role::Primary && self.commit >= self.serve_from && now < self.serving_deadline()
    }

    /// The instant this primary's right to serve expires unless refreshed
    /// by further acks: `election_quiet` past the majority-th freshest
    /// ack-echoed contact time (self always counts as fresh). A voter
    /// refuses ballots until `election_quiet` after it last acked, so any
    /// majority electing a successor intersects the majority backing this
    /// lease — the overlapping member's ack time bounds the vote time
    /// from below, making the reigns disjoint in time.
    pub fn serving_deadline(&self) -> SimTime {
        if self.cfg.members.len() == 1 {
            return SimTime::from_nanos(u64::MAX);
        }
        let mut contacts: Vec<u64> = self
            .peers()
            .iter()
            .map(|p| self.lease_contact.get(p).copied().unwrap_or(0))
            .collect();
        contacts.push(u64::MAX); // self
        contacts.sort_unstable_by(|a, b| b.cmp(a));
        let base = contacts[self.cfg.majority() - 1];
        SimTime::from_nanos(base.saturating_add(self.cfg.election_quiet.as_nanos()))
    }

    /// Highest log index (snapshot-covered entries included).
    pub fn last_index(&self) -> u64 {
        self.log_start + self.log.len() as u64 - 1
    }

    /// Commit index.
    pub fn commit_index(&self) -> u64 {
        self.commit
    }

    /// Live registrations matching `template` as of `now`. The I/O layer
    /// must gate this behind [`ReplicaNode::is_active`] — a replica's
    /// table may lag a committed unregister.
    pub fn lookup_live(&self, now: SimTime, template: &Template) -> Vec<&ServiceItem> {
        self.table.lookup_live(now, template)
    }

    /// The applied lease table (read-only).
    pub fn table(&self) -> &ShardedRegistry {
        &self.table
    }

    /// Earliest lease expiry (to schedule the sweep timer).
    pub fn next_expiry(&self) -> Option<SimTime> {
        self.table.next_expiry()
    }

    /// Subscribe `node` to events matching `template` (primary-local, like
    /// the damper: subscribers re-subscribe after failover).
    pub fn subscribe(&mut self, node: u32, template: Template) {
        self.table.subscribe(node, template);
    }

    /// Committed-entry journal for the model checker's ghost spec: every
    /// entry this node observed committing, in commit order, immune to log
    /// truncation.
    #[cfg(feature = "model-check")]
    pub fn committed_journal(&self) -> &[LogEntry] {
        &self.journal
    }

    /// Global log index preceding `committed_journal()[0]` (the applied
    /// index this incarnation started from).
    #[cfg(feature = "model-check")]
    pub fn journal_base(&self) -> u64 {
        self.journal_base
    }

    /// Exact canonical serialisation of this node's *behavioural* state
    /// for model-checker deduplication: the durable fraction (epoch,
    /// snapshot, retained log) plus the volatile fields that influence
    /// future transitions (role, commit/applied, vote bookkeeping, peer
    /// cursors, lease contacts, `last_heard`). Deliberately excludes
    /// `stats`, `pending` acks and the flap damper, none of which the
    /// model observes.
    #[cfg(feature = "model-check")]
    pub fn canonical_words(&self) -> Vec<u64> {
        let role = match self.role {
            Role::Follower => 0,
            Role::Candidate => 1,
            Role::Primary => 2,
        };
        let mut w = vec![role, self.commit, self.applied, self.voted];
        let mut votes_mask = 0u64;
        for v in &self.votes {
            votes_mask |= 1 << (v % 64);
        }
        w.push(votes_mask);
        w.push(self.serve_from);
        w.push(self.last_heard.as_nanos());
        for p in self.peers() {
            w.push(self.next.get(&p).copied().unwrap_or(0));
            w.push(self.matched.get(&p).copied().unwrap_or(0));
            w.push(self.lease_contact.get(&p).copied().unwrap_or(0));
        }
        let blob = self.durable().encode();
        w.push(blob.len() as u64);
        let mut chunk = [0u8; 8];
        for c in blob.chunks(8) {
            chunk.fill(0);
            chunk[..c.len()].copy_from_slice(c);
            w.push(u64::from_be_bytes(chunk));
        }
        w
    }

    /// Lease-table rows `(id, expires)` for the model checker.
    #[cfg(feature = "model-check")]
    pub fn table_rows(&self) -> Vec<(ServiceId, SimTime)> {
        self.table.entries().into_iter().map(|(i, e)| (i.id, e)).collect()
    }

    /// Number of flap-damper-tracked services (telemetry).
    pub fn damper(&mut self) -> &mut FlapDamper {
        &mut self.damper
    }

    /// When this node last heard from a legitimate (current- or
    /// higher-epoch) primary — the election timer's silence reference.
    pub fn last_heard(&self) -> SimTime {
        self.last_heard
    }

    /// Treat `now` as contact with the primary (called at boot/restart so
    /// a rejoining node grants the incumbent a full quiet period before
    /// considering a campaign).
    pub fn note_heard(&mut self, now: SimTime) {
        self.last_heard = self.last_heard.max(now);
    }

    /// Demote to follower, dropping volatile leadership state — the I/O
    /// layer's recovery path when a restart finds no decodable durable
    /// blob.
    pub fn step_down_for_restart(&mut self) {
        self.step_down();
    }

    // ------------------------------------------------------------------
    // Client edge (active primary only; callers must check `is_active`).
    // ------------------------------------------------------------------

    /// A client registers (or refreshes) a service.
    pub fn client_register(
        &mut self,
        now: SimTime,
        from: u32,
        item: ServiceItem,
        requested: SimDuration,
    ) -> Vec<Effect> {
        debug_assert_eq!(self.role, Role::Primary);
        let granted = requested.min(self.cfg.max_lease);
        let granted_ms = granted.as_nanos() / 1_000_000;
        let id = item.id;
        if self.damper.on_register(now, id) == FlapDecision::Suppress {
            // Absorbed: acked so the flapper quiets down, but neither
            // logged nor replicated nor fanned out — the grant is not
            // durable and lookups will not see it (that is the damping).
            self.stats.flap_absorbed += 1;
            return vec![Effect::Ack { to: from, ack: ClientAck::Register { id, granted_ms } }];
        }
        let index = self.append_local(LogEntry {
            epoch: self.epoch,
            at_nanos: now.as_nanos(),
            op: RepOp::Register { item, lease_ms: granted_ms },
        });
        self.pending.push((index, Pending::Register { to: from, id, granted_ms }));
        self.after_append(now)
    }

    /// A client renews a lease.
    pub fn client_renew(&mut self, now: SimTime, from: u32, id: ServiceId) -> Vec<Effect> {
        debug_assert_eq!(self.role, Role::Primary);
        // Fast-path nack for unknown/lapsed ids straight from the applied
        // table: renew probes must not spam the replication log. (A lease
        // is only renewed after its RegisterAck, i.e. after commit, so the
        // applied table is authoritative here.)
        let live = matches!(self.table.expiry_of(id), Some(e) if e > now);
        if !live {
            return vec![Effect::Ack {
                to: from,
                ack: ClientAck::Renew { id, ok: false, granted_ms: 0 },
            }];
        }
        let index = self.append_local(LogEntry {
            epoch: self.epoch,
            at_nanos: now.as_nanos(),
            op: RepOp::Renew { id },
        });
        self.pending.push((index, Pending::Renew { to: from, id }));
        self.after_append(now)
    }

    /// A client withdraws a service.
    pub fn client_unregister(&mut self, now: SimTime, _from: u32, id: ServiceId) -> Vec<Effect> {
        debug_assert_eq!(self.role, Role::Primary);
        if self.damper.on_unregister(now, id) == FlapDecision::Suppress {
            self.stats.flap_absorbed += 1;
            return Vec::new();
        }
        self.append_local(LogEntry {
            epoch: self.epoch,
            at_nanos: now.as_nanos(),
            op: RepOp::Unregister { id },
        });
        self.after_append(now)
    }

    /// The sweep timer fired: if any lease has lapsed, append a sweep
    /// barrier so the expiry is replicated like any other mutation.
    pub fn sweep(&mut self, now: SimTime) -> Vec<Effect> {
        debug_assert_eq!(self.role, Role::Primary);
        self.damper.sweep(now);
        let lapsed = self.table.next_expiry().is_some_and(|e| e <= now);
        if !lapsed {
            return Vec::new();
        }
        self.append_local(LogEntry { epoch: self.epoch, at_nanos: now.as_nanos(), op: RepOp::Sweep });
        self.after_append(now)
    }

    // ------------------------------------------------------------------
    // Timers.
    // ------------------------------------------------------------------

    /// The heartbeat timer fired (primary): ship pending entries (or empty
    /// heartbeats) to every peer and record the worst log lag.
    pub fn heartbeat(&mut self, now: SimTime) -> Vec<Effect> {
        if self.role != Role::Primary {
            return Vec::new();
        }
        let lag = self
            .cfg
            .members
            .clone()
            .iter()
            .filter(|&&p| p != self.me)
            .map(|p| self.last_index() - self.matched.get(p).copied().unwrap_or(0).min(self.last_index()))
            .max()
            .unwrap_or(0);
        self.stats.log_lag_max = self.stats.log_lag_max.max(lag);
        self.broadcast_appends(now)
    }

    /// The election timer fired on a follower (no heartbeat within the
    /// timeout): campaign for the next epoch this node owns — unless a
    /// primary was heard within the quiet period (the voter-side half of
    /// the serving-lease argument applies to the campaigner's own ballot
    /// too).
    pub fn election_timeout(&mut self, now: SimTime) -> Vec<Effect> {
        if self.role == Role::Primary {
            return Vec::new();
        }
        if self.cfg.members.len() > 1 && now < self.last_heard + self.cfg.election_quiet {
            return Vec::new();
        }
        let mut e = self.epoch + 1;
        while self.cfg.owner_of(e) != self.me {
            e += 1;
        }
        self.bump_epoch(e);
        self.role = Role::Candidate;
        self.voted = e; // own vote
        self.votes = BTreeSet::new();
        self.votes.insert(self.me);
        self.stats.elections += 1;
        if self.votes.len() >= self.cfg.majority() {
            return self.become_primary(now);
        }
        let (last_index, last_epoch) = (self.last_index(), self.last_log_epoch());
        self.peers()
            .into_iter()
            .map(|p| Effect::Send {
                to: p,
                msg: RepMsg::VoteReq { epoch: e, last_index, last_epoch },
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Peer messages.
    // ------------------------------------------------------------------

    /// Handle a replication message from peer registrar `from`.
    pub fn on_message(&mut self, now: SimTime, from: u32, msg: RepMsg) -> Vec<Effect> {
        match msg {
            RepMsg::Append { epoch, prev_index, prev_epoch, commit, sent_nanos, entries } => {
                self.on_append(now, from, epoch, prev_index, prev_epoch, commit, sent_nanos, entries)
            }
            RepMsg::AppendAck { epoch, ok, match_index, heard_nanos } => {
                self.on_append_ack(now, from, epoch, ok, match_index, heard_nanos)
            }
            RepMsg::VoteReq { epoch, last_index, last_epoch } => {
                self.on_vote_req(now, from, epoch, last_index, last_epoch)
            }
            RepMsg::VoteGrant { epoch } => self.on_vote_grant(now, from, epoch),
            RepMsg::SnapshotInstall { epoch, sent_nanos, snapshot } => {
                self.on_snapshot_install(now, from, epoch, sent_nanos, snapshot)
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_append(
        &mut self,
        now: SimTime,
        from: u32,
        epoch: u64,
        prev_index: u64,
        prev_epoch: u64,
        commit: u64,
        sent_nanos: u64,
        entries: Vec<LogEntry>,
    ) -> Vec<Effect> {
        if epoch < self.epoch {
            // Stale primary: our epoch in the ack tells it to step down.
            return vec![Effect::Send {
                to: from,
                msg: RepMsg::AppendAck {
                    epoch: self.epoch,
                    ok: false,
                    match_index: self.last_index(),
                    heard_nanos: sent_nanos,
                },
            }];
        }
        debug_assert!(
            self.cfg.owner_of(epoch) == from,
            "append for epoch {epoch} from non-owner {from}"
        );
        if epoch > self.epoch {
            self.bump_epoch(epoch);
        }
        if self.role != Role::Follower {
            self.step_down();
        }
        self.last_heard = self.last_heard.max(now);
        // Log-consistency check at (prev_index, prev_epoch).
        let consistent = if prev_index > self.last_index() {
            false
        } else {
            match self.epoch_at(prev_index) {
                Some(e) => e == prev_epoch,
                // Inside our snapshot: folded entries are committed, and
                // committed prefixes agree (Leader Completeness).
                None => true,
            }
        };
        if !consistent {
            // Conflict: drop our tail from prev_index on (it is uncommitted
            // — commit never exceeds a matched prefix) and ask for more.
            if prev_index >= self.log_start && prev_index <= self.last_index() {
                self.log.truncate((prev_index - self.log_start) as usize);
            }
            return vec![Effect::Send {
                to: from,
                msg: RepMsg::AppendAck {
                    epoch: self.epoch,
                    ok: false,
                    match_index: self.last_index(),
                    heard_nanos: sent_nanos,
                },
            }];
        }
        // Graft the entries: skip what we already hold, truncate on the
        // first epoch conflict, append the rest.
        let mut effects = Vec::new();
        for (k, entry) in entries.iter().enumerate() {
            let index = prev_index + 1 + k as u64;
            if index <= self.snapshot.last_index {
                continue; // folded, committed, known equal
            }
            if index <= self.last_index() {
                if self.epoch_at(index) == Some(entry.epoch) {
                    continue; // duplicate ship
                }
                self.log.truncate((index - self.log_start) as usize);
            }
            debug_assert_eq!(index, self.last_index() + 1);
            self.log.push(entry.clone());
        }
        let match_index = prev_index + entries.len() as u64;
        let new_commit = commit.min(self.last_index());
        if new_commit > self.commit {
            self.advance_commit_to(new_commit, &mut effects);
        }
        effects.push(Effect::Send {
            to: from,
            msg: RepMsg::AppendAck { epoch: self.epoch, ok: true, match_index, heard_nanos: sent_nanos },
        });
        let _ = now;
        effects
    }

    fn on_append_ack(
        &mut self,
        now: SimTime,
        from: u32,
        epoch: u64,
        ok: bool,
        match_index: u64,
        heard_nanos: u64,
    ) -> Vec<Effect> {
        if epoch > self.epoch {
            self.bump_epoch(epoch);
            self.step_down();
            return Vec::new();
        }
        if self.role != Role::Primary || epoch < self.epoch {
            return Vec::new(); // stale ack
        }
        let mut effects = Vec::new();
        if ok {
            // Lease evidence: `from` heard us no earlier than `heard_nanos`
            // (our own clock — it is an echo of our send time), and it will
            // refuse votes until `heard_nanos + election_quiet`.
            let c = self.lease_contact.entry(from).or_insert(0);
            *c = (*c).max(heard_nanos);
            let m = self.matched.entry(from).or_insert(0);
            *m = (*m).max(match_index);
            self.next.insert(from, match_index + 1);
            let before = self.commit;
            self.try_advance_commit(&mut effects);
            if self.commit > before {
                // Propagate the new commit index eagerly (empty appends for
                // caught-up peers) instead of waiting a heartbeat round, so
                // replicas apply committed entries promptly.
                effects.extend(self.broadcast_appends(now));
                return effects;
            }
        } else {
            // Back off to the replica's hint; if the entries it needs are
            // already folded away, ship a snapshot instead.
            let hint = match_index.min(self.last_index());
            self.next.insert(from, hint + 1);
            if hint + 1 < self.log_start {
                self.stats.snapshot_installs_tx += 1;
                effects.push(Effect::Send {
                    to: from,
                    msg: RepMsg::SnapshotInstall {
                        epoch: self.epoch,
                        sent_nanos: now.as_nanos(),
                        snapshot: self.snapshot.clone(),
                    },
                });
                self.next.insert(from, self.snapshot.last_index + 1);
                return effects;
            }
        }
        // Ship (more) entries if the peer is behind.
        if self.next.get(&from).copied().unwrap_or(1) <= self.last_index() {
            effects.extend(self.append_to(from, now));
        }
        effects
    }

    fn on_vote_req(
        &mut self,
        now: SimTime,
        from: u32,
        epoch: u64,
        last_index: u64,
        last_epoch: u64,
    ) -> Vec<Effect> {
        // The quiet period: having heard a legitimate primary this
        // recently, refuse to help depose it — without touching any state
        // (bumping our epoch here would itself disrupt the incumbent).
        // This is the voter-side promise the serving lease relies on.
        if self.cfg.members.len() > 1 && now < self.last_heard + self.cfg.election_quiet {
            return Vec::new();
        }
        if epoch <= self.epoch && !(epoch == self.epoch && self.role == Role::Follower) {
            return Vec::new(); // stale campaign
        }
        if self.cfg.owner_of(epoch) != from {
            debug_assert!(false, "vote request for epoch {epoch} from non-owner {from}");
            return Vec::new();
        }
        if epoch > self.epoch {
            self.bump_epoch(epoch);
            self.step_down();
        }
        // Up-to-date check (Leader Completeness): refuse a candidate whose
        // log is behind ours.
        let mine = (self.last_log_epoch(), self.last_index());
        if (last_epoch, last_index) < mine {
            return Vec::new();
        }
        if self.voted >= epoch {
            // Already voted this epoch — necessarily for the same unique
            // owner, so re-granting is idempotent and safe (this is why no
            // durable `votedFor` is needed; see the module docs).
            debug_assert!(self.voted > epoch || self.cfg.owner_of(self.voted) == from || from == self.me);
        }
        self.voted = self.voted.max(epoch);
        vec![Effect::Send { to: from, msg: RepMsg::VoteGrant { epoch } }]
    }

    fn on_vote_grant(&mut self, now: SimTime, from: u32, epoch: u64) -> Vec<Effect> {
        if self.role != Role::Candidate || epoch != self.epoch {
            return Vec::new();
        }
        self.votes.insert(from);
        if self.votes.len() >= self.cfg.majority() {
            return self.become_primary(now);
        }
        Vec::new()
    }

    fn on_snapshot_install(
        &mut self,
        now: SimTime,
        from: u32,
        epoch: u64,
        sent_nanos: u64,
        snapshot: LeaseSnapshot,
    ) -> Vec<Effect> {
        if epoch < self.epoch {
            return vec![Effect::Send {
                to: from,
                msg: RepMsg::AppendAck {
                    epoch: self.epoch,
                    ok: false,
                    match_index: self.last_index(),
                    heard_nanos: sent_nanos,
                },
            }];
        }
        if epoch > self.epoch {
            self.bump_epoch(epoch);
        }
        if self.role != Role::Follower {
            self.step_down();
        }
        self.last_heard = self.last_heard.max(now);
        if snapshot.last_index > self.commit {
            self.table = snapshot.restore(self.cfg.shards, self.cfg.max_lease);
            self.commit = snapshot.last_index;
            self.applied = snapshot.last_index;
            self.log.clear();
            self.log_start = snapshot.last_index + 1;
            self.snapshot = snapshot;
            self.stats.snapshot_installs_rx += 1;
            #[cfg(feature = "model-check")]
            {
                // The install jumped `applied` over entries this node never
                // held; re-anchor the journal at the new applied index (the
                // skipped entries were observed committing by the snapshot's
                // sender, so the ghost spec already has them).
                self.journal.clear();
                self.journal_base = self.applied;
            }
        }
        vec![Effect::Send {
            to: from,
            msg: RepMsg::AppendAck {
                epoch: self.epoch,
                ok: true,
                match_index: self.last_index(),
                heard_nanos: sent_nanos,
            },
        }]
    }

    // ------------------------------------------------------------------
    // Internals.
    // ------------------------------------------------------------------

    fn peers(&self) -> Vec<u32> {
        self.cfg.members.iter().copied().filter(|&p| p != self.me).collect()
    }

    fn bump_epoch(&mut self, to: u64) {
        debug_assert!(to > self.epoch);
        self.epoch = to;
        self.stats.epoch_bumps += 1;
    }

    fn step_down(&mut self) {
        self.role = Role::Follower;
        self.votes.clear();
        self.next.clear();
        self.matched.clear();
        self.lease_contact.clear();
        // Acks owed by a deposed primary die with its authority: if the
        // entries survive and commit, the client's retry path (timeout →
        // rediscover → re-register/renew against the new primary) takes
        // over; an ack from a non-primary would be a lie about authority.
        self.pending.clear();
    }

    fn become_primary(&mut self, now: SimTime) -> Vec<Effect> {
        debug_assert_eq!(self.cfg.owner_of(self.epoch), self.me, "epoch ownership violated");
        self.role = Role::Primary;
        self.votes.clear();
        self.reset_peer_tracking();
        // The Raft no-op barrier, as a sweep: earlier-epoch entries cannot
        // be counted for commit directly, so open the reign with an entry
        // of this epoch (which also promptly sweeps anything that lapsed
        // during the failover window). Serving waits until it commits —
        // only then does the applied table cover every earlier commit.
        let barrier =
            self.append_local(LogEntry { epoch: self.epoch, at_nanos: now.as_nanos(), op: RepOp::Sweep });
        self.serve_from = barrier;
        self.after_append(now)
    }

    fn reset_peer_tracking(&mut self) {
        self.next.clear();
        self.matched.clear();
        self.lease_contact.clear();
        for p in self.peers() {
            self.next.insert(p, self.last_index() + 1);
            self.matched.insert(p, 0);
        }
    }

    fn append_local(&mut self, entry: LogEntry) -> u64 {
        self.log.push(entry);
        self.last_index()
    }

    /// After a local append: single-member clusters commit immediately;
    /// otherwise ship to every peer.
    fn after_append(&mut self, now: SimTime) -> Vec<Effect> {
        let mut effects = Vec::new();
        self.try_advance_commit(&mut effects);
        effects.extend(self.broadcast_appends(now));
        effects
    }

    fn broadcast_appends(&mut self, now: SimTime) -> Vec<Effect> {
        let mut effects = Vec::new();
        for p in self.peers() {
            effects.extend(self.append_to(p, now));
        }
        effects
    }

    /// Build one `Append` for peer `p` from its `next` cursor (empty =
    /// heartbeat). If the cursor has fallen below the retained log, ship
    /// the snapshot instead.
    fn append_to(&mut self, p: u32, now: SimTime) -> Vec<Effect> {
        let next = self.next.get(&p).copied().unwrap_or(self.last_index() + 1);
        if next < self.log_start {
            self.stats.snapshot_installs_tx += 1;
            self.next.insert(p, self.snapshot.last_index + 1);
            return vec![Effect::Send {
                to: p,
                msg: RepMsg::SnapshotInstall {
                    epoch: self.epoch,
                    sent_nanos: now.as_nanos(),
                    snapshot: self.snapshot.clone(),
                },
            }];
        }
        let prev_index = next - 1;
        let prev_epoch = self.epoch_at(prev_index).unwrap_or(self.snapshot.last_epoch);
        let entries: Vec<LogEntry> = self.log[(next - self.log_start) as usize..].to_vec();
        self.stats.appends_tx += 1;
        vec![Effect::Send {
            to: p,
            msg: RepMsg::Append {
                epoch: self.epoch,
                prev_index,
                prev_epoch,
                commit: self.commit,
                sent_nanos: now.as_nanos(),
                entries,
            },
        }]
    }

    /// Epoch of entry `index`: `Some(0)` at the origin, `None` for entries
    /// folded inside the snapshot (committed; content no longer held).
    fn epoch_at(&self, index: u64) -> Option<u64> {
        if index == 0 {
            Some(0)
        } else if index == self.snapshot.last_index {
            Some(self.snapshot.last_epoch)
        } else if index < self.log_start {
            None
        } else if index <= self.last_index() {
            Some(self.log[(index - self.log_start) as usize].epoch)
        } else {
            None
        }
    }

    fn last_log_epoch(&self) -> u64 {
        self.log.last().map(|e| e.epoch).unwrap_or(self.snapshot.last_epoch)
    }

    /// Primary: advance the commit index to the largest majority-matched
    /// index bearing the current epoch (the Raft commit rule).
    fn try_advance_commit(&mut self, effects: &mut Vec<Effect>) {
        if self.role != Role::Primary {
            return;
        }
        let mut matches: Vec<u64> = self.peers().iter().map(|p| self.matched.get(p).copied().unwrap_or(0)).collect();
        matches.push(self.last_index());
        matches.sort_unstable();
        // The majority-th highest match: every index ≤ it is on a majority.
        let majority_match = matches[matches.len() - self.cfg.majority()];
        let target = majority_match.min(self.last_index());
        if target > self.commit && self.epoch_at(target) == Some(self.epoch) {
            self.advance_commit_to(target, effects);
        }
    }

    /// Commit (and apply) entries up to `to`.
    fn advance_commit_to(&mut self, to: u64, effects: &mut Vec<Effect>) {
        debug_assert!(to <= self.last_index());
        self.stats.committed += to - self.commit;
        self.commit = to;
        while self.applied < self.commit {
            let index = self.applied + 1;
            let entry = self.log[(index - self.log_start) as usize].clone();
            self.apply(index, &entry, effects);
            self.applied = index;
            self.stats.applied += 1;
            #[cfg(feature = "model-check")]
            self.journal.push(entry);
        }
        self.maybe_snapshot();
    }

    /// Apply one committed entry. Subscriber events and client acks are
    /// only emitted while this node is the active primary.
    fn apply(&mut self, index: u64, entry: &LogEntry, effects: &mut Vec<Effect>) {
        let at = SimTime::from_nanos(entry.at_nanos);
        let serve = self.role == Role::Primary;
        let mut events = Vec::new();
        let mut renew_ok = false;
        match &entry.op {
            RepOp::Register { item, lease_ms } => {
                let (_, ev) = self.table.register(at, item.clone(), SimDuration::from_millis(*lease_ms));
                events = ev;
            }
            RepOp::Renew { id } => {
                renew_ok = self.table.renew(at, *id).is_some();
            }
            RepOp::Unregister { id } => {
                events = self.table.unregister(*id);
            }
            RepOp::Sweep => {
                events = self.table.expire(at);
            }
        }
        if !serve {
            return;
        }
        for ev in events {
            effects.push(Effect::Notify(ev));
        }
        // Acks owed at this index (pending is append-ordered).
        let due: Vec<Pending> = {
            let mut due = Vec::new();
            self.pending.retain(|(i, p)| {
                if *i == index {
                    due.push(p.clone());
                    false
                } else {
                    true
                }
            });
            due
        };
        for p in due {
            match p {
                Pending::Register { to, id, granted_ms } => {
                    effects.push(Effect::Ack { to, ack: ClientAck::Register { id, granted_ms } });
                }
                Pending::Renew { to, id } => {
                    let granted_ms = if renew_ok {
                        self.cfg.max_lease.as_nanos() / 1_000_000
                    } else {
                        0
                    };
                    effects.push(Effect::Ack {
                        to,
                        ack: ClientAck::Renew { id, ok: renew_ok, granted_ms },
                    });
                }
            }
        }
    }

    /// Fold the applied prefix into a snapshot and truncate the log once
    /// `snapshot_every` entries have been applied since the last fold.
    fn maybe_snapshot(&mut self) {
        if self.applied - self.snapshot.last_index < self.cfg.snapshot_every {
            return;
        }
        let last_epoch = self
            .epoch_at(self.applied)
            .expect("applied entry is at or above the previous snapshot");
        self.snapshot = LeaseSnapshot::capture(&self.table, self.applied, last_epoch);
        self.log.drain(..(self.applied + 1 - self.log_start) as usize);
        self.log_start = self.applied + 1;
        self.stats.snapshots_taken += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(id: u64) -> ServiceItem {
        ServiceItem {
            id: ServiceId(id),
            kind: "projector/display".into(),
            attributes: vec![("room".into(), "A".into())],
            provider: 40 + id as u32,
            proxy: Bytes::new(),
        }
    }

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn lease(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    /// A 3-member cluster with a perfect in-test message fabric: effects
    /// are delivered immediately (optionally dropping some nodes).
    struct Harness {
        nodes: BTreeMap<u32, ReplicaNode>,
        down: BTreeSet<u32>,
        acks: Vec<(u32, ClientAck)>,
        notifies: Vec<RegistryEvent>,
    }

    impl Harness {
        fn new(members: &[u32]) -> Self {
            let cfg = ClusterConfig::of(members.to_vec());
            Harness {
                nodes: members.iter().map(|&m| (m, ReplicaNode::new(m, cfg.clone()))).collect(),
                down: BTreeSet::new(),
                acks: Vec::new(),
                notifies: Vec::new(),
            }
        }

        fn node(&mut self, id: u32) -> &mut ReplicaNode {
            self.nodes.get_mut(&id).unwrap()
        }

        fn deliver(&mut self, now: SimTime, from: u32, effects: Vec<Effect>) {
            let mut queue: Vec<(u32, u32, RepMsg)> = Vec::new();
            for e in effects {
                match e {
                    Effect::Send { to, msg } => queue.push((from, to, msg)),
                    Effect::Ack { to, ack } => self.acks.push((to, ack)),
                    Effect::Notify(ev) => self.notifies.push(ev),
                }
            }
            while let Some((src, dst, msg)) = queue.pop() {
                if self.down.contains(&dst) || self.down.contains(&src) {
                    continue;
                }
                let out = self.nodes.get_mut(&dst).unwrap().on_message(now, src, msg);
                for e in out {
                    match e {
                        Effect::Send { to, msg } => queue.push((dst, to, msg)),
                        Effect::Ack { to, ack } => self.acks.push((to, ack)),
                        Effect::Notify(ev) => self.notifies.push(ev),
                    }
                }
            }
        }

        fn register(&mut self, now: SimTime, primary: u32, it: ServiceItem, l: SimDuration) {
            let fx = self.node(primary).client_register(now, 99, it, l);
            self.deliver(now, primary, fx);
        }
    }

    #[test]
    fn bootstrap_roles() {
        let h = Harness::new(&[10, 11, 12]);
        assert!(h.nodes[&10].is_active(t(0)));
        assert_eq!(h.nodes[&11].role, Role::Follower);
        assert_eq!(h.nodes[&12].role, Role::Follower);
    }

    #[test]
    fn committed_register_is_applied_everywhere_and_acked() {
        let mut h = Harness::new(&[10, 11, 12]);
        h.register(t(0), 10, item(1), lease(5));
        assert_eq!(
            h.acks,
            vec![(99, ClientAck::Register { id: ServiceId(1), granted_ms: 5_000 })]
        );
        for n in [10, 11, 12] {
            assert_eq!(h.nodes[&n].commit_index(), 1, "node {n}");
            assert_eq!(h.nodes[&n].table().len(), 1, "node {n}");
        }
    }

    #[test]
    fn entry_does_not_commit_without_majority() {
        let mut h = Harness::new(&[10, 11, 12]);
        h.down.insert(11);
        h.down.insert(12);
        h.register(t(0), 10, item(1), lease(5));
        assert_eq!(h.nodes[&10].commit_index(), 0, "no majority, no commit");
        assert!(h.acks.is_empty(), "no commit, no ack");
        // One replica comes back; its ack completes the majority.
        h.down.remove(&11);
        let fx = h.node(10).heartbeat(t(100));
        h.deliver(t(100), 10, fx);
        assert_eq!(h.nodes[&10].commit_index(), 1);
        assert_eq!(h.acks.len(), 1);
    }

    #[test]
    fn failover_elects_next_owner_and_preserves_committed_leases() {
        let mut h = Harness::new(&[10, 11, 12]);
        h.register(t(0), 10, item(1), lease(8));
        h.register(t(100), 10, item(2), lease(8));
        // Primary dies; once the quiet period has passed, node 11 (owner of
        // epoch 1) times out and campaigns.
        h.down.insert(10);
        let fx = h.node(11).election_timeout(t(1_000));
        h.deliver(t(1_000), 11, fx);
        assert!(h.nodes[&11].is_active(t(1_000)), "epoch-1 owner must win");
        assert_eq!(h.nodes[&11].epoch, 1);
        // Both committed leases survived the failover.
        let live = h.nodes[&11].lookup_live(t(1_100), &Template::any());
        assert_eq!(live.len(), 2);
        // And the no-op barrier committed (commit advanced past the old tail).
        assert!(h.nodes[&11].commit_index() >= 3);
    }

    #[test]
    fn election_respects_the_quiet_period() {
        let mut h = Harness::new(&[10, 11, 12]);
        h.register(t(0), 10, item(1), lease(8));
        h.down.insert(10);
        // Node 11 heard the primary at t=0; campaigning (or voting) before
        // election_quiet (600ms) has passed is refused without any state
        // change — this is what keeps successive serve windows disjoint.
        let fx = h.node(11).election_timeout(t(300));
        assert!(fx.is_empty(), "campaign inside the quiet period");
        assert_eq!(h.nodes[&11].role, Role::Follower);
        assert_eq!(h.nodes[&11].epoch, 0);
        let fx = h.node(11).election_timeout(t(600));
        h.deliver(t(600), 11, fx);
        assert!(h.nodes[&11].is_active(t(600)), "quiet period over, election proceeds");
    }

    #[test]
    fn serving_lease_expires_without_majority_contact() {
        let mut h = Harness::new(&[10, 11, 12]);
        h.register(t(0), 10, item(1), lease(8));
        // The acks to the register (sent at t=0) back a lease to t=600ms.
        assert!(h.nodes[&10].is_active(t(500)));
        assert!(!h.nodes[&10].is_active(t(600)), "no contact since t=0: lease lapsed");
        assert_eq!(h.nodes[&10].role, Role::Primary, "still primary, just not serving");
        // Fresh heartbeat acks extend the lease from their send time.
        let fx = h.node(10).heartbeat(t(700));
        h.deliver(t(700), 10, fx);
        assert!(h.nodes[&10].is_active(t(1_200)));
        assert!(!h.nodes[&10].is_active(t(1_300)));
    }

    #[test]
    fn deposed_primary_steps_down_on_higher_epoch() {
        let mut h = Harness::new(&[10, 11, 12]);
        h.register(t(0), 10, item(1), lease(8));
        h.down.insert(10); // crash...
        let fx = h.node(11).election_timeout(t(1_000));
        h.deliver(t(1_000), 11, fx);
        h.down.remove(&10); // ...and the old primary returns, still thinking
                            // it reigns over epoch 0.
        assert_eq!(h.nodes[&10].role, Role::Primary);
        let fx = h.node(10).heartbeat(t(1_400));
        h.deliver(t(1_400), 10, fx);
        assert_eq!(h.nodes[&10].role, Role::Follower, "higher-epoch ack deposes it");
        assert_eq!(h.nodes[&10].epoch, 1);
    }

    #[test]
    fn restarted_replica_rejoins_from_snapshot_install() {
        let mut h = Harness::new(&[10, 11, 12]);
        // Small snapshot interval so truncation happens quickly.
        for n in h.nodes.values_mut() {
            n.cfg.snapshot_every = 4;
        }
        h.down.insert(12); // replica 12 misses everything
        for i in 0..6 {
            h.register(t(i * 100), 10, item(i + 1), lease(30));
        }
        assert!(h.nodes[&10].stats.snapshots_taken >= 1, "log must have truncated");
        // 12 comes back empty (cold restart, no durable state).
        let cfg = h.nodes[&12].cfg.clone();
        *h.node(12) = ReplicaNode::new(12, cfg);
        h.node(12).role = Role::Follower;
        h.down.remove(&12);
        let fx = h.node(10).heartbeat(t(1_000));
        h.deliver(t(1_000), 10, fx);
        assert_eq!(h.nodes[&12].table().len(), 6, "snapshot install + catch-up");
        assert!(h.nodes[&12].stats.snapshot_installs_rx >= 1);
        assert!(h.nodes[&10].stats.snapshot_installs_tx >= 1);
    }

    #[test]
    fn durable_restore_keeps_committed_state_without_install() {
        let mut h = Harness::new(&[10, 11, 12]);
        for i in 0..3 {
            h.register(t(i * 100), 10, item(i + 1), lease(30));
        }
        let durable = h.nodes[&11].durable();
        let blob = durable.encode();
        let decoded = DurableState::decode(blob).expect("durable round-trip");
        assert_eq!(decoded, durable);
        let cfg = h.nodes[&11].cfg.clone();
        *h.node(11) = ReplicaNode::restore(11, cfg, decoded);
        assert_eq!(h.nodes[&11].role, Role::Follower);
        // Log suffix survived, so catch-up needs no snapshot install.
        let fx = h.node(10).heartbeat(t(500));
        h.deliver(t(500), 10, fx);
        assert_eq!(h.nodes[&11].table().len(), 3);
        assert_eq!(h.nodes[&11].stats.snapshot_installs_rx, 0);
    }

    #[test]
    fn renew_and_sweep_replicate() {
        let mut h = Harness::new(&[10, 11, 12]);
        h.register(t(0), 10, item(1), lease(2));
        h.register(t(0), 10, item(2), lease(10));
        let fx = h.node(10).client_renew(t(1_000), 99, ServiceId(1));
        h.deliver(t(1_000), 10, fx);
        assert!(matches!(
            h.acks.last(),
            Some((99, ClientAck::Renew { ok: true, .. }))
        ));
        // Renewed to t=1s+max_lease(10s)=11s; sweep at 12s kills both.
        let fx = h.node(10).sweep(t(12_000));
        h.deliver(t(12_000), 10, fx);
        for n in [10, 11, 12] {
            assert_eq!(h.nodes[&n].table().len(), 0, "node {n} swept");
        }
    }

    #[test]
    fn renew_of_unknown_id_nacks_without_logging() {
        let mut h = Harness::new(&[10, 11, 12]);
        let before = h.nodes[&10].last_index();
        let fx = h.node(10).client_renew(t(0), 99, ServiceId(77));
        h.deliver(t(0), 10, fx);
        assert_eq!(h.nodes[&10].last_index(), before, "probe must not spam the log");
        assert!(matches!(h.acks.last(), Some((99, ClientAck::Renew { ok: false, .. }))));
    }

    #[test]
    fn flapping_service_is_absorbed_at_the_edge() {
        let mut h = Harness::new(&[10, 11, 12]);
        let mut appended = Vec::new();
        for cycle in 0..8 {
            let now = t(cycle * 200);
            let fx = h.node(10).client_register(now, 99, item(9), lease(5));
            h.deliver(now, 10, fx);
            let fx = h.node(10).client_unregister(now + SimDuration::from_millis(100), 99, ServiceId(9));
            h.deliver(now, 10, fx);
            appended.push(h.nodes[&10].last_index());
        }
        let absorbed = h.nodes[&10].stats.flap_absorbed;
        assert!(absorbed >= 8, "sustained churn must be absorbed, got {absorbed}");
        // The log stopped growing once suppression kicked in.
        let tail: Vec<_> = appended.windows(2).map(|w| w[1] - w[0]).collect();
        assert_eq!(*tail.last().unwrap(), 0, "suppressed cycles append nothing");
        // Flapper still got its (non-durable) acks — it quiets down.
        assert!(h.acks.len() >= 8);
    }

    #[test]
    fn rep_msgs_round_trip() {
        let msgs = vec![
            RepMsg::Append {
                epoch: 3,
                prev_index: 7,
                prev_epoch: 2,
                commit: 6,
                sent_nanos: 42,
                entries: vec![
                    LogEntry { epoch: 3, at_nanos: 1_000, op: RepOp::Register { item: item(1), lease_ms: 5_000 } },
                    LogEntry { epoch: 3, at_nanos: 2_000, op: RepOp::Renew { id: ServiceId(1) } },
                    LogEntry { epoch: 3, at_nanos: 3_000, op: RepOp::Unregister { id: ServiceId(1) } },
                    LogEntry { epoch: 3, at_nanos: 4_000, op: RepOp::Sweep },
                ],
            },
            RepMsg::AppendAck { epoch: 3, ok: false, match_index: 9, heard_nanos: 42 },
            RepMsg::VoteReq { epoch: 4, last_index: 9, last_epoch: 3 },
            RepMsg::VoteGrant { epoch: 4 },
            RepMsg::SnapshotInstall {
                epoch: 4,
                sent_nanos: 43,
                snapshot: LeaseSnapshot {
                    last_index: 9,
                    last_epoch: 3,
                    entries: vec![(item(1), t(5_000))],
                },
            },
        ];
        for m in msgs {
            assert_eq!(RepMsg::decode(m.encode()).expect("decode"), m);
        }
    }

    #[test]
    fn rep_msg_trailing_and_truncation_rejected() {
        let m = RepMsg::VoteReq { epoch: 1, last_index: 2, last_epoch: 1 };
        let mut padded = BytesMut::new();
        padded.put_slice(&m.encode());
        padded.put_u8(0);
        assert_eq!(
            RepMsg::decode(padded.freeze()),
            Err(CodecError::TrailingBytes { remaining: 1 })
        );
        let full = RepMsg::Append {
            epoch: 1,
            prev_index: 0,
            prev_epoch: 0,
            commit: 0,
            sent_nanos: 7,
            entries: vec![LogEntry { epoch: 1, at_nanos: 5, op: RepOp::Register { item: item(2), lease_ms: 9 } }],
        }
        .encode();
        for cut in 0..full.len() {
            assert!(RepMsg::decode(full.slice(0..cut)).is_err(), "prefix {cut} decoded");
        }
    }
}
